#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "ml/features.hpp"
#include "sparse/stats.hpp"

namespace dnnspmv {
namespace {

TEST(Stats, PureDiagonalMatrix) {
  std::vector<Triplet> ts;
  for (index_t i = 0; i < 10; ++i) ts.push_back({i, i, 1.0});
  const MatrixStats s = compute_stats(csr_from_triplets(10, 10, ts));
  EXPECT_EQ(s.nnz, 10);
  EXPECT_EQ(s.ndiags, 1);
  EXPECT_DOUBLE_EQ(s.diag_frac, 1.0);
  EXPECT_DOUBLE_EQ(s.dia_fill, 1.0);
  EXPECT_DOUBLE_EQ(s.ell_fill, 1.0);
  EXPECT_EQ(s.bandwidth, 0);
  EXPECT_EQ(s.row_nnz_min, 1);
  EXPECT_EQ(s.row_nnz_max, 1);
  EXPECT_DOUBLE_EQ(s.row_nnz_cv, 0.0);
}

TEST(Stats, TridiagonalCounts) {
  Rng rng(1);
  const Csr a = gen_banded(20, 20, 1, 1.0, rng);
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.ndiags, 3);
  EXPECT_EQ(s.bandwidth, 1);
  EXPECT_EQ(s.nnz, 58);
}

TEST(Stats, EmptyRowsCounted) {
  const Csr a = csr_from_triplets(5, 5, {{0, 0, 1.0}, {4, 4, 1.0}});
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.empty_rows, 3);
  EXPECT_EQ(s.row_nnz_min, 0);
}

TEST(Stats, MaxOverMeanDetectsSkew) {
  Rng rng(2);
  const Csr uniform = gen_uniform_rows(100, 100, 5, 0, rng);
  const Csr skewed = gen_dense_rows(100, 100, 2, 1, 90, rng);
  EXPECT_NEAR(compute_stats(uniform).max_over_mean, 1.0, 1e-9);
  EXPECT_GT(compute_stats(skewed).max_over_mean, 10.0);
}

TEST(Stats, DensityIsNnzOverArea) {
  Rng rng(3);
  const Csr a = gen_uniform_rows(10, 20, 4, 0, rng);
  const MatrixStats s = compute_stats(a);
  EXPECT_NEAR(s.density, 40.0 / 200.0, 1e-12);
}

TEST(Stats, BsrBlocksForAlignedDenseBlocks) {
  Rng rng(4);
  const Csr a = gen_block(16, 16, 1.0, 1.0, rng);
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.bsr_blocks * 16, s.nnz);
}

TEST(Stats, ZeroMatrixIsSafe) {
  const Csr a = csr_from_triplets(4, 4, {});
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.nnz, 0);
  EXPECT_EQ(s.empty_rows, 4);
  EXPECT_DOUBLE_EQ(s.row_nnz_mean, 0.0);
}

TEST(Features, CountMatchesNames) {
  Rng rng(5);
  const Csr a = gen_powerlaw(50, 50, 5.0, 1.5, rng);
  const auto f = extract_features(a);
  EXPECT_EQ(f.size(), static_cast<std::size_t>(kNumFeatures));
  EXPECT_EQ(feature_names().size(), static_cast<std::size_t>(kNumFeatures));
}

TEST(Features, AllFinite) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const Csr a = gen_powerlaw(30 + i, 30, 4.0, 1.5, rng);
    for (double v : extract_features(a)) EXPECT_TRUE(std::isfinite(v));
  }
  // Degenerate matrices too.
  for (double v : extract_features(csr_from_triplets(3, 3, {})))
    EXPECT_TRUE(std::isfinite(v));
}

TEST(Features, SeparateDiagonalFromRandom) {
  Rng rng(7);
  const auto fd = extract_features(gen_banded(64, 64, 1, 1.0, rng));
  const auto fr = extract_features(gen_uniform_rows(64, 64, 3, 0, rng));
  // dia_fill (index 11) distinguishes the two strongly.
  EXPECT_GT(fd[11], 0.9);
  EXPECT_LT(fr[11], 0.2);
}

}  // namespace
}  // namespace dnnspmv
