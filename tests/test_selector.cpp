// End-to-end FormatSelector: fit on a small labelled corpus, predict better
// than chance, survive save/load, and migrate across platforms.
#include "core/selector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dnnspmv {
namespace {

struct SmallPipeline {
  std::vector<CorpusEntry> corpus;
  std::unique_ptr<Platform> platform;
  std::vector<LabeledMatrix> labeled;

  SmallPipeline() {
    CorpusSpec spec;
    spec.count = 120;
    spec.min_dim = 48;
    spec.max_dim = 192;
    spec.seed = 11;
    corpus = build_corpus(spec);
    platform = make_analytic_cpu(intel_xeon_params());
    labeled = collect_labels(corpus, *platform);
  }
};

SelectorOptions fast_options() {
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.rep_rows = 16;
  opts.rep_bins = 8;
  opts.train.epochs = 10;
  opts.train.batch = 16;
  opts.train.lr = 2e-3;
  return opts;
}

TEST(Selector, FitAndBeatMajorityBaseline) {
  SmallPipeline p;
  FormatSelector sel(fast_options());
  sel.fit(p.labeled, p.platform->formats());
  ASSERT_TRUE(sel.trained());

  // Training-set accuracy must beat always-predict-the-majority-class.
  std::vector<std::int64_t> counts(p.platform->formats().size(), 0);
  std::int64_t correct = 0;
  for (const auto& lm : p.labeled) {
    ++counts[static_cast<std::size_t>(lm.label)];
    if (sel.predict_index(*lm.matrix) == lm.label) ++correct;
  }
  const auto majority = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(correct, majority);
}

TEST(Selector, PredictReturnsCandidateFormat) {
  SmallPipeline p;
  FormatSelector sel(fast_options());
  sel.fit(p.labeled, p.platform->formats());
  const Format f = sel.predict(p.corpus[0].matrix);
  const auto& cands = sel.candidates();
  EXPECT_NE(std::find(cands.begin(), cands.end(), f), cands.end());
}

TEST(Selector, SaveLoadPredictsIdentically) {
  SmallPipeline p;
  FormatSelector sel(fast_options());
  sel.fit(p.labeled, p.platform->formats());
  const std::string path = ::testing::TempDir() + "/selector.bin";
  sel.save(path);
  const FormatSelector back = FormatSelector::load(path);
  EXPECT_EQ(back.candidates(), sel.candidates());
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(back.predict_index(p.corpus[static_cast<std::size_t>(i)].matrix),
              sel.predict_index(p.corpus[static_cast<std::size_t>(i)].matrix))
        << "matrix " << i;
  }
}

TEST(Selector, PredictBeforeFitThrows) {
  FormatSelector sel(fast_options());
  Rng rng(1);
  const Csr a = gen_banded(32, 32, 1, 1.0, rng);
  EXPECT_THROW(sel.predict(a), std::runtime_error);
}

TEST(Selector, GeometryOptionsRoundTrip) {
  // The size1/size2 deprecation window is over: rep_rows/rep_bins are the
  // only names, and they flow from options into the selector unchanged.
  SelectorOptions opts;
  opts.rep_rows = 24;
  opts.rep_bins = 12;
  opts.rep_sample_nnz = 4096;
  const FormatSelector sel(opts);
  EXPECT_EQ(sel.options().rep_rows, 24);
  EXPECT_EQ(sel.options().rep_bins, 12);
  EXPECT_EQ(sel.options().rep_sample_nnz, 4096);
  EXPECT_EQ(sel.rep_builder().options().rep_rows, 24);
  EXPECT_EQ(sel.rep_builder().options().sample_nnz, 4096);
}

TEST(Selector, MigrationKeepsCandidates) {
  SmallPipeline p;
  FormatSelector sel(fast_options());
  sel.fit(p.labeled, p.platform->formats());

  const auto amd = make_analytic_cpu(amd_a8_params());
  const auto amd_labeled = collect_labels(p.corpus, *amd);
  const Dataset target = build_dataset(amd_labeled, amd->formats(),
                                       sel.options().mode,
                                       sel.options().rep_rows,
                                       sel.options().rep_bins);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch = 16;
  const FormatSelector migrated =
      sel.migrate(MigrationMethod::kTopEvolve, target, cfg);
  EXPECT_TRUE(migrated.trained());
  EXPECT_EQ(migrated.candidates(), sel.candidates());
  // Still produces valid predictions.
  const auto idx = migrated.predict_index(p.corpus[0].matrix);
  EXPECT_GE(idx, 0);
  EXPECT_LT(idx, static_cast<std::int32_t>(sel.candidates().size()));
}

TEST(Selector, BuildDatasetCarriesTimesAndFeatures) {
  SmallPipeline p;
  const Dataset ds = build_dataset(p.labeled, p.platform->formats(),
                                   RepMode::kHistogram, 16, 8);
  ASSERT_EQ(ds.size(), p.labeled.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.samples[i].label, p.labeled[i].label);
    EXPECT_EQ(ds.samples[i].format_times, p.labeled[i].format_times);
    EXPECT_EQ(ds.samples[i].features.size(),
              static_cast<std::size_t>(kNumFeatures));
    EXPECT_EQ(ds.samples[i].inputs.size(), 2u);
  }
}

TEST(Selector, LoadRejectsMissingFile) {
  EXPECT_THROW(FormatSelector::load("/nonexistent/model.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace dnnspmv
