// Int8 quantized inference (DESIGN.md §13): per-channel weight round-trip
// bounds, SIMD-vs-scalar bitwise equality of the u7 GEMM kernel across odd
// shapes and overhang tiles, saturation/clamp edge cases, calibration
// determinism, fp32↔int8 serialization compatibility, and the Release-only
// accuracy-parity gate of the quantized selector against its fp32 twin.
#include "nn/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/adaptive.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace dnnspmv {
namespace {

// ----------------------------------------------------------------- kernel

struct QShape {
  std::int64_t m, n, k;
};

// Odd shapes on purpose: single-element, exact-tile, overhang rows
// (70 % 6 != 0), overhang columns (17 % 16 != 0), and depths that are not
// multiples of the 4-byte quad (zero-padded packing must not leak).
constexpr QShape kQuantShapes[] = {
    {1, 1, 1},    {6, 16, 4},  {3, 5, 7},    {7, 17, 5},   {13, 33, 64},
    {23, 40, 300}, {70, 50, 20}, {12, 128, 9}, {5, 100, 3}, {64, 64, 31},
};

void fill_s8(Rng& rng, std::vector<std::int8_t>& v) {
  for (auto& x : v)
    x = static_cast<std::int8_t>(static_cast<int>(rng.uniform_u64(255)) -
                                 127);
}

void fill_u7(Rng& rng, std::vector<std::uint8_t>& v) {
  for (auto& x : v) x = static_cast<std::uint8_t>(rng.uniform_u64(128));
}

TEST(QuantKernel, SimdAndScalarAreBitIdenticalAcrossShapes) {
  Rng rng(101);
  int case_id = 0;
  for (const QShape& s : kQuantShapes) {
    std::vector<std::int8_t> w(static_cast<std::size_t>(s.m * s.k));
    std::vector<std::uint8_t> x(static_cast<std::size_t>(s.k * s.n));
    fill_s8(rng, w);
    fill_u7(rng, x);
    std::vector<float> scale(static_cast<std::size_t>(s.m));
    std::vector<float> bias(static_cast<std::size_t>(s.m));
    for (auto& v : scale) v = static_cast<float>(rng.uniform(1e-3, 2e-2));
    for (auto& v : bias) v = static_cast<float>(rng.uniform(-0.5, 0.5));
    const bool relu = (case_id % 2) == 0;
    // Exercise the null-bias epilogue on every third shape.
    const float* b = (case_id % 3 == 0) ? nullptr : bias.data();
    ++case_id;

    const QGemmWeights packed = qgemm_pack_weights(s.m, s.k, w.data());
    std::vector<float> c_simd(static_cast<std::size_t>(s.m * s.n), -42.0f);
    std::vector<float> c_ref(static_cast<std::size_t>(s.m * s.n), 42.0f);
    qgemm_u7(packed, s.n, x.data(), s.n, 1, scale.data(), b, relu,
             c_simd.data(), s.n);
    qgemm_u7_ref(packed, s.n, x.data(), s.n, 1, scale.data(), b, relu,
                 c_ref.data(), s.n);
    ASSERT_EQ(std::memcmp(c_simd.data(), c_ref.data(),
                          c_simd.size() * sizeof(float)),
              0)
        << "m=" << s.m << " n=" << s.n << " k=" << s.k << " relu=" << relu;
  }
}

TEST(QuantKernel, MatchesWidenedIntegerReference) {
  Rng rng(202);
  for (const QShape& s : kQuantShapes) {
    std::vector<std::int8_t> w(static_cast<std::size_t>(s.m * s.k));
    std::vector<std::uint8_t> x(static_cast<std::size_t>(s.k * s.n));
    fill_s8(rng, w);
    fill_u7(rng, x);
    std::vector<float> scale(static_cast<std::size_t>(s.m));
    std::vector<float> bias(static_cast<std::size_t>(s.m));
    for (auto& v : scale) v = static_cast<float>(rng.uniform(1e-3, 2e-2));
    for (auto& v : bias) v = static_cast<float>(rng.uniform(-0.5, 0.5));

    for (const bool relu : {false, true}) {
      std::vector<float> expected(static_cast<std::size_t>(s.m * s.n));
      for (std::int64_t i = 0; i < s.m; ++i) {
        for (std::int64_t j = 0; j < s.n; ++j) {
          std::int64_t acc = 0;
          for (std::int64_t p = 0; p < s.k; ++p)
            acc += static_cast<std::int64_t>(w[i * s.k + p]) *
                   static_cast<std::int64_t>(x[p * s.n + j]);
          float v = std::fmaf(static_cast<float>(acc), scale[i], bias[i]);
          if (relu) v = v > 0.0f ? v : 0.0f;
          expected[static_cast<std::size_t>(i * s.n + j)] = v;
        }
      }
      const QGemmWeights packed = qgemm_pack_weights(s.m, s.k, w.data());
      std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
      qgemm_u7(packed, s.n, x.data(), s.n, 1, scale.data(), bias.data(),
               relu, c.data(), s.n);
      for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_EQ(c[i], expected[i])
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
    }
  }
}

TEST(QuantKernel, StridedOperandsMatchContiguous) {
  constexpr std::int64_t m = 9, n = 13, k = 21;
  Rng rng(303);
  std::vector<std::int8_t> w(m * k);
  fill_s8(rng, w);
  std::vector<std::uint8_t> logical(k * n);
  fill_u7(rng, logical);
  // Conv layout: B[p, j] row-major (rs=n, cs=1). Dense layout: the same
  // logical matrix stored column-major (rs=1, cs=k), the x^T view
  // run_dense uses.
  std::vector<std::uint8_t> colmajor(k * n);
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j)
      colmajor[static_cast<std::size_t>(j * k + p)] =
          logical[static_cast<std::size_t>(p * n + j)];
  std::vector<float> scale(m, 0.01f), bias(m, 0.25f);
  const QGemmWeights packed = qgemm_pack_weights(m, k, w.data());

  std::vector<float> c_rm(m * n, 0.0f), c_cm(m * n, 1.0f);
  qgemm_u7(packed, n, logical.data(), n, 1, scale.data(), bias.data(), true,
           c_rm.data(), n);
  qgemm_u7(packed, n, colmajor.data(), 1, k, scale.data(), bias.data(), true,
           c_cm.data(), n);
  EXPECT_EQ(std::memcmp(c_rm.data(), c_cm.data(), c_rm.size() * sizeof(float)),
            0);
}

TEST(QuantKernel, RespectsLdcAndLeavesTheTailUntouched) {
  constexpr std::int64_t m = 6, n = 5, ldc = 8, k = 11;
  Rng rng(404);
  std::vector<std::int8_t> w(m * k);
  fill_s8(rng, w);
  std::vector<std::uint8_t> x(k * n);
  fill_u7(rng, x);
  std::vector<float> scale(m, 0.02f), bias(m, -0.1f);
  const QGemmWeights packed = qgemm_pack_weights(m, k, w.data());

  constexpr float kSentinel = 123.5f;
  std::vector<float> c_simd(m * ldc, kSentinel), c_ref(m * ldc, kSentinel);
  qgemm_u7(packed, n, x.data(), n, 1, scale.data(), bias.data(), false,
           c_simd.data(), ldc);
  qgemm_u7_ref(packed, n, x.data(), n, 1, scale.data(), bias.data(), false,
               c_ref.data(), ldc);
  EXPECT_EQ(std::memcmp(c_simd.data(), c_ref.data(),
                        c_simd.size() * sizeof(float)),
            0);
  // Columns [n, ldc) belong to the caller: the masked epilogue store must
  // not touch them.
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = n; j < ldc; ++j)
      EXPECT_EQ(c_simd[static_cast<std::size_t>(i * ldc + j)], kSentinel)
          << "row " << i << " col " << j;
}

TEST(QuantKernel, PerChannelRoundTripWithinHalfScale) {
  constexpr std::int64_t rows = 7, cols = 33;
  Rng rng(505);
  std::vector<float> w(rows * cols);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-3.0, 3.0));
  std::vector<std::int8_t> wq(rows * cols);
  std::vector<float> scales(rows);
  quantize_weights_per_channel(w.data(), rows, cols, wq.data(),
                               scales.data());
  for (std::int64_t i = 0; i < rows; ++i) {
    float amax = 0.0f;
    std::int32_t qmax = 0;
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::size_t at = static_cast<std::size_t>(i * cols + j);
      amax = std::max(amax, std::fabs(w[at]));
      qmax = std::max(qmax, std::abs(static_cast<std::int32_t>(wq[at])));
      // Symmetric rounding: every element is within half a quantization
      // step of its dequantized value.
      EXPECT_LE(std::fabs(w[at] - static_cast<float>(wq[at]) * scales[i]),
                scales[i] * 0.5f * (1.0f + 1e-5f));
    }
    EXPECT_NEAR(scales[i], amax / 127.0f, 1e-7f * amax);
    // The channel max always lands on the last code.
    EXPECT_EQ(qmax, 127);
  }
}

TEST(QuantKernel, ZeroChannelGetsUnitScaleAndZeroCodes) {
  constexpr std::int64_t rows = 2, cols = 16;
  std::vector<float> w(rows * cols, 0.0f);
  for (std::int64_t j = 0; j < cols; ++j)
    w[static_cast<std::size_t>(cols + j)] = 0.5f;  // second row is nonzero
  std::vector<std::int8_t> wq(rows * cols, 99);
  std::vector<float> scales(rows, -1.0f);
  quantize_weights_per_channel(w.data(), rows, cols, wq.data(),
                               scales.data());
  EXPECT_EQ(scales[0], 1.0f);
  for (std::int64_t j = 0; j < cols; ++j) EXPECT_EQ(wq[j], 0);
  EXPECT_GT(scales[1], 0.0f);
  EXPECT_EQ(wq[static_cast<std::size_t>(cols)], 127);
}

TEST(QuantKernel, OutlierChannelClampsSmallWeightsToZero) {
  constexpr std::int64_t cols = 64;
  std::vector<float> w(cols, 1e-4f);
  w[cols - 1] = 100.0f;  // one outlier stretches the symmetric range
  std::vector<std::int8_t> wq(cols);
  float scale = 0.0f;
  quantize_weights_per_channel(w.data(), 1, cols, wq.data(), &scale);
  EXPECT_NEAR(scale, 100.0f / 127.0f, 1e-5f);
  for (std::int64_t j = 0; j < cols - 1; ++j) EXPECT_EQ(wq[j], 0);
  EXPECT_EQ(wq[cols - 1], 127);
  EXPECT_LE(std::fabs(100.0f - static_cast<float>(wq[cols - 1]) * scale),
            scale * 0.5f);
}

TEST(QuantKernel, ActivationQuantClampsToU7Range) {
  const float xs[] = {-10.0f, -0.01f, 0.0f, 0.5f, 1.0f, 50.0f};
  std::uint8_t q[6] = {};
  // scale 1/127 (inv_scale 127), zp 0: the [0, 1] range.
  quantize_u7(xs, 6, 127.0f, 0, q);
  EXPECT_EQ(q[0], 0);  // below range clamps to 0
  EXPECT_EQ(q[1], 0);  // round(-1.27) = -1 clamps to 0
  EXPECT_EQ(q[2], 0);
  EXPECT_EQ(q[3], 64);  // 63.5 rounds to even
  EXPECT_EQ(q[4], 127);
  EXPECT_EQ(q[5], 127);  // above range clamps to 127
  // A nonzero zero-point shifts the representable window.
  quantize_u7(xs, 6, 127.0f, 32, q);
  EXPECT_EQ(q[2], 32);   // fp32 zero maps exactly onto the zero-point
  EXPECT_EQ(q[3], 96);   // 64 + 32
  EXPECT_EQ(q[5], 127);  // still clamps
}

// The u8 im2col feeding the quantized conv path has stride- and
// width-specialised fast paths (single-memcpy full-pitch rows, pshufb
// stride-2 gathers) — fuzz random geometries against a four-loop naive
// lowering so every specialisation, including the all-padding edge where
// a kernel row never overlaps the image, stays byte-identical.
TEST(QuantKernel, Im2colU8MatchesNaiveReferenceOverFuzzedGeometries) {
  Rng rng(606);
  for (int iter = 0; iter < 400; ++iter) {
    ConvGeom g;
    g.channels = 1 + static_cast<std::int64_t>(rng.uniform_u64(4));
    g.height = 1 + static_cast<std::int64_t>(rng.uniform_u64(20));
    g.width = 1 + static_cast<std::int64_t>(rng.uniform_u64(20));
    g.kernel_h = 1 + static_cast<std::int64_t>(rng.uniform_u64(5));
    g.kernel_w = 1 + static_cast<std::int64_t>(rng.uniform_u64(5));
    g.stride_h = 1 + static_cast<std::int64_t>(rng.uniform_u64(3));
    g.stride_w = 1 + static_cast<std::int64_t>(rng.uniform_u64(3));
    g.pad_h = static_cast<std::int64_t>(rng.uniform_u64(
        static_cast<std::uint64_t>(g.kernel_h)));
    g.pad_w = static_cast<std::int64_t>(rng.uniform_u64(
        static_cast<std::uint64_t>(g.kernel_w)));
    if (g.height + 2 * g.pad_h < g.kernel_h ||
        g.width + 2 * g.pad_w < g.kernel_w)
      continue;
    const std::int64_t batch =
        1 + static_cast<std::int64_t>(rng.uniform_u64(3));
    const std::int64_t oh = g.out_h(), ow = g.out_w();
    const std::int64_t opix = oh * ow, ldc = batch * opix;
    const std::int64_t imsz = g.channels * g.height * g.width;
    const std::uint8_t pad = static_cast<std::uint8_t>(rng.uniform_u64(128));
    std::vector<std::uint8_t> im(static_cast<std::size_t>(batch * imsz));
    fill_u7(rng, im);
    std::vector<std::uint8_t> col(
        static_cast<std::size_t>(g.patch_size() * ldc), 0xEE);
    im2col_batch_u8(g, batch, im.data(), col.data(), pad);
    for (std::int64_t n = 0; n < batch; ++n) {
      const std::uint8_t* s = im.data() + n * imsz;
      std::int64_t row = 0;
      for (std::int64_t c = 0; c < g.channels; ++c)
        for (std::int64_t kh = 0; kh < g.kernel_h; ++kh)
          for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row)
            for (std::int64_t y = 0; y < oh; ++y)
              for (std::int64_t x = 0; x < ow; ++x) {
                const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
                const std::int64_t ix = x * g.stride_w + kw - g.pad_w;
                const std::uint8_t want =
                    (iy >= 0 && iy < g.height && ix >= 0 && ix < g.width)
                        ? s[(c * g.height + iy) * g.width + ix]
                        : pad;
                ASSERT_EQ(col[static_cast<std::size_t>(
                              row * ldc + n * opix + y * ow + x)],
                          want)
                    << "iter " << iter << " n=" << n << " row=" << row
                    << " y=" << y << " x=" << x;
              }
    }
  }
}

// ------------------------------------------------------------ calibration

TEST(QuantCalib, MinMaxObserverTracksExactRange) {
  MinMaxObserver o;
  EXPECT_FALSE(o.seen());
  EXPECT_EQ(o.lo(), 0.0f);
  EXPECT_EQ(o.hi(), 0.0f);
  const float a[] = {0.5f, -2.25f, 1.75f};
  o.observe(a, 3);
  EXPECT_TRUE(o.seen());
  EXPECT_EQ(o.lo(), -2.25f);
  EXPECT_EQ(o.hi(), 1.75f);
  const float b[] = {3.5f};
  o.observe(b, 1);
  EXPECT_EQ(o.lo(), -2.25f);
  EXPECT_EQ(o.hi(), 3.5f);
}

TEST(QuantCalib, HistogramPercentileIgnoresALoneOutlier) {
  HistogramObserver h;
  std::vector<float> base(4096);
  for (std::size_t i = 0; i < base.size(); ++i) {
    const float v = static_cast<float>(i) / 4096.0f;
    base[i] = (i % 2 == 0) ? v : -v;  // |x| histogram: sign must not matter
  }
  h.observe(base.data(), static_cast<std::int64_t>(base.size()));
  EXPECT_LE(h.percentile(100.0), 1.0f);

  const float outlier = 300.0f;
  h.observe(&outlier, 1);
  EXPECT_EQ(h.total(), 4097);
  // The range doubled to cover the outlier, but 99% of the mass still
  // lives below 1 — the percentile bound stays close while the minmax
  // range would have exploded to 300.
  EXPECT_LT(h.percentile(99.0), 1.5f);
  EXPECT_GE(h.percentile(100.0), 299.0f);
}

TEST(QuantCalib, HistogramRangeDoublingPreservesMass) {
  HistogramObserver h(8);  // tiny bins make the pair-merges visible
  const float small[] = {0.1f, 0.2f, 0.3f, 0.4f};
  h.observe(small, 4);
  const float big[] = {3.2f};  // forces several doublings
  h.observe(big, 1);
  EXPECT_EQ(h.total(), 5);
  // All early mass survived the merges: covering 80% of 5 samples needs
  // only the small values.
  EXPECT_LE(h.percentile(80.0), 1.0f);
  EXPECT_GE(h.percentile(100.0), 3.2f * 0.9f);
}

// One corpus + platform + a trained fp32 selector and its quantized clone.
// Shared by the calibration/serialization/parity tests below; training
// dominates the fixture cost (same shape as test_online's pipeline).
struct QuantPipeline {
  std::vector<CorpusEntry> corpus;
  std::unique_ptr<Platform> plat;
  std::vector<LabeledMatrix> labeled;
  Dataset train;
  FormatSelector fp32;
  FormatSelector quant;

  QuantPipeline() {
    CorpusSpec spec;
    spec.count = 96;
    spec.min_dim = 48;
    spec.max_dim = 160;
    spec.seed = 33;
    corpus = build_corpus(spec);
    plat = make_analytic_cpu(intel_xeon_params());
    labeled = collect_labels(corpus, *plat);

    SelectorOptions opts;
    opts.mode = RepMode::kHistogram;
    opts.rep_rows = 16;
    opts.rep_bins = 8;
    opts.train.epochs = 5;
    opts.train.batch = 16;
    opts.train.lr = 2e-3;
    fp32 = FormatSelector(opts);
    fp32.fit(labeled, plat->formats());
    train = build_dataset(labeled, plat->formats(), opts.mode,
                          opts.rep_rows, opts.rep_bins);
    quant = fp32.clone();
    quant.quantize(train);
  }
};

QuantPipeline& qpipeline() {
  static QuantPipeline p;
  return p;
}

void expect_qws_equal(const QuantizedWeightSet& a,
                      const QuantizedWeightSet& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const QLayer& la = a.layers[i];
    const QLayer& lb = b.layers[i];
    EXPECT_EQ(la.seq, lb.seq);
    EXPECT_EQ(la.index, lb.index);
    EXPECT_EQ(la.kind, lb.kind);
    EXPECT_EQ(la.rows, lb.rows);
    EXPECT_EQ(la.cols, lb.cols);
    EXPECT_EQ(la.act_scale, lb.act_scale);
    EXPECT_EQ(la.act_zp, lb.act_zp);
    EXPECT_EQ(la.w_scale, lb.w_scale);
    EXPECT_EQ(la.bias, lb.bias);
    EXPECT_EQ(la.wq, lb.wq);
  }
}

TEST(QuantCalib, CalibrationIsDeterministicAcrossRuns) {
  auto& p = qpipeline();
  FormatSelector again = p.fp32.clone();
  again.quantize(p.train);
  ASSERT_TRUE(again.quantized());
  ASSERT_TRUE(p.quant.quantized());
  expect_qws_equal(*p.quant.quantized_weights(), *again.quantized_weights());
}

TEST(QuantCalib, QuantizedPredictionsAreBatchInvariant) {
  auto& p = qpipeline();
  std::vector<const Csr*> ptrs;
  for (std::size_t i = 0; i < 24; ++i)
    ptrs.push_back(&p.corpus[i].matrix);
  const std::vector<std::int32_t> batched = p.quant.predict_index_batch(ptrs);
  ASSERT_EQ(batched.size(), ptrs.size());
  // The batched conv scatter / dense transpose paths accumulate each output
  // element in the same order as the batch==1 direct-write paths, so the
  // logits — and therefore the argmax — are bitwise batch-size invariant.
  for (std::size_t i = 0; i < ptrs.size(); ++i)
    EXPECT_EQ(batched[i], p.quant.predict_index(*ptrs[i])) << "sample " << i;
}

TEST(QuantCalib, CloneCarriesTheQuantizedPath) {
  auto& p = qpipeline();
  const FormatSelector copy = p.quant.clone();
  ASSERT_TRUE(copy.quantized());
  expect_qws_equal(*copy.quantized_weights(), *p.quant.quantized_weights());
  for (std::size_t i = 0; i < 8; ++i) {
    const Csr& a = p.corpus[i].matrix;
    EXPECT_EQ(copy.predict_index(a), p.quant.predict_index(a));
  }
}

// ---------------------------------------------------------- serialization

TEST(QuantSerialize, QuantizedRoundTripPredictsIdentically) {
  auto& p = qpipeline();
  const std::string path = "test_quant_ws_int8.bin";
  p.quant.save(path);
  const FormatSelector loaded = FormatSelector::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.quantized());
  expect_qws_equal(*loaded.quantized_weights(), *p.quant.quantized_weights());
  for (std::size_t i = 0; i < 32; ++i) {
    const Csr& a = p.corpus[i].matrix;
    EXPECT_EQ(loaded.predict_index(a), p.quant.predict_index(a));
  }
}

TEST(QuantSerialize, Fp32RoundTripStaysFp32) {
  auto& p = qpipeline();
  const std::string path = "test_quant_ws_fp32.bin";
  p.fp32.save(path);
  const FormatSelector loaded = FormatSelector::load(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.quantized());
  for (std::size_t i = 0; i < 16; ++i) {
    const Csr& a = p.corpus[i].matrix;
    EXPECT_EQ(loaded.predict_index(a), p.fp32.predict_index(a));
  }
}

TEST(QuantSerialize, LegacyPreHeaderFilesStillLoad) {
  auto& p = qpipeline();
  const std::string path = "test_quant_ws_legacy.bin";
  p.fp32.save(path);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  // A pre-versioning file has no 16-byte header (magic + format version +
  // model version), no quantize flag, and no SpMM-head fields. Those sit
  // after the 4-byte mode, three 8-byte rep fields and the 4-byte late
  // flag: quantize at [48, 52), has_spmm + spmm_cols at [52, 60).
  ASSERT_GT(bytes.size(), 60u);
  const std::string legacy =
      bytes.substr(16, 48 - 16) + bytes.substr(60);
  {
    std::ofstream os(path, std::ios::binary);
    os.write(legacy.data(), static_cast<std::streamsize>(legacy.size()));
  }
  const FormatSelector loaded = FormatSelector::load(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.quantized());
  EXPECT_EQ(loaded.model_version(), 0u);  // pre-header files are unpublished
  for (std::size_t i = 0; i < 16; ++i) {
    const Csr& a = p.corpus[i].matrix;
    EXPECT_EQ(loaded.predict_index(a), p.fp32.predict_index(a));
  }
}

TEST(QuantSerialize, TruncatedQuantTrailerIsRejected) {
  auto& p = qpipeline();
  const std::string path = "test_quant_ws_trunc.bin";
  p.quant.save(path);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  {
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 64));
  }
  EXPECT_THROW(FormatSelector::load(path), DnnspmvError);
  std::remove(path.c_str());
}

TEST(QuantSerialize, MismatchedWeightSetIsRejectedByTheExecutor) {
  auto& p = qpipeline();
  const QuantizedWeightSet& good = *p.quant.quantized_weights();
  MergeNet& net = p.fp32.net();  // same architecture as the quantized twin
  { QuantizedMergeNet ok(net, good); }  // sanity: the good set compiles

  {
    QuantizedWeightSet bad = good;
    bad.layers[0].cols += 1;  // geometry drift
    EXPECT_THROW(QuantizedMergeNet rejected(net, bad), DnnspmvError);
  }
  {
    QuantizedWeightSet bad = good;
    bad.layers[0].kind = bad.layers[0].kind == QLayer::kConv ? QLayer::kDense
                                                             : QLayer::kConv;
    EXPECT_THROW(QuantizedMergeNet rejected(net, bad), DnnspmvError);
  }
  {
    QuantizedWeightSet bad = good;
    bad.layers.pop_back();  // a quantizable layer has no record
    EXPECT_THROW(QuantizedMergeNet rejected(net, bad), DnnspmvError);
  }
  {
    QuantizedWeightSet bad = good;
    bad.layers.push_back(bad.layers[0]);
    bad.layers.back().seq = 99;  // record that matches no layer
    EXPECT_THROW(QuantizedMergeNet rejected(net, bad), DnnspmvError);
  }
}

// ------------------------------------------------- accuracy parity (e2e)

TEST(QuantParity, AgreesWithFp32OnAtLeast99PercentOfSlice) {
#if !defined(NDEBUG)
  GTEST_SKIP() << "Release-only end-to-end gate";
#else
  auto& p = qpipeline();
  CorpusSpec spec;
  spec.count = 200;
  spec.min_dim = 48;
  spec.max_dim = 160;
  spec.seed = 77;  // fixed slice, disjoint from the training corpus
  const std::vector<CorpusEntry> slice = build_corpus(spec);
  std::vector<const Csr*> ptrs;
  ptrs.reserve(slice.size());
  for (const CorpusEntry& e : slice) ptrs.push_back(&e.matrix);
  const std::vector<std::int32_t> fp = p.fp32.predict_index_batch(ptrs);
  const std::vector<std::int32_t> q8 = p.quant.predict_index_batch(ptrs);
  ASSERT_EQ(fp.size(), q8.size());
  int agree = 0;
  for (std::size_t i = 0; i < fp.size(); ++i) agree += fp[i] == q8[i] ? 1 : 0;
  EXPECT_GE(agree, 198) << "int8 selector diverged from fp32 on "
                        << (200 - agree) << "/200 matrices";
#endif
}

TEST(QuantParity, AdaptiveSpmvAnswersMatchWherePredictionsAgree) {
#if !defined(NDEBUG)
  GTEST_SKIP() << "Release-only end-to-end gate";
#else
  auto& p = qpipeline();
  int used = 0;
  for (std::size_t i = 0; i < p.corpus.size() && used < 8; ++i) {
    const Csr& a = p.corpus[i].matrix;
    if (p.fp32.predict_index(a) != p.quant.predict_index(a)) continue;
    ++used;
    // Private (null) caches: a shared prediction cache would serve the
    // fp32 entry to the quantized operator and hide the int8 path.
    const AdaptiveSpmv op_f(p.fp32, a, nullptr);
    const AdaptiveSpmv op_q(p.quant, a, nullptr);
    Rng rng(1000 + static_cast<std::uint64_t>(i));
    std::vector<double> x(static_cast<std::size_t>(a.cols));
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    std::vector<double> yf(static_cast<std::size_t>(a.rows), 0.0);
    std::vector<double> yq(static_cast<std::size_t>(a.rows), 0.0);
    op_f.apply(x, yf);
    op_q.apply(x, yq);
    // Same prediction => same format => the exact same SpMV arithmetic.
    for (std::size_t r = 0; r < yf.size(); ++r)
      EXPECT_EQ(yf[r], yq[r]) << "matrix " << i << " row " << r;
  }
  EXPECT_GE(used, 1);
#endif
}

}  // namespace
}  // namespace dnnspmv
