// SpMM kernels (sparse/spmm.hpp): every format against the dense
// reference over a generator × format × K grid (K = 1 and ragged tails
// included), the K = 1 bitwise-parity contract with SpMV, empty-row
// handling, and shape validation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"
#include "gen/generators.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {
namespace {

Csr make_matrix(int gen_id, std::uint64_t seed) {
  Rng rng(seed);
  switch (gen_id) {
    case 0: return gen_banded(60, 60, 3, 0.8, rng);
    case 1: return gen_multidiag(70, 70, 5, 0.9, rng);
    case 2: return gen_uniform_rows(50, 64, 6, 1, rng);
    case 3: return gen_powerlaw(64, 80, 5.0, 1.6, rng);
    case 4: return gen_block(48, 52, 3.0, 0.95, rng);
    case 5: return gen_hypersparse(100, 90, 25, rng);  // mostly empty rows
    case 6: return gen_dense_rows(60, 60, 4, 3, 40, rng);
    case 7: return gen_rmat(6, 300, 0.45, 0.22, 0.22, rng);
    default: return gen_uniform_rows(10, 10, 2, 0, rng);
  }
}

std::vector<double> random_panel(index_t rows, index_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(rows) *
                        static_cast<std::size_t>(k));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

// (generator, format, K): K covers the SpMV-degenerate case (1), ragged
// widths no vector lane divides (3, 7), and a serving-typical panel (32).
class SpmmGrid
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t, int>> {};

TEST_P(SpmmGrid, MatchesDenseReference) {
  const auto [gen_id, fmt_id, k] = GetParam();
  const Csr a = make_matrix(gen_id, 4000 + static_cast<std::uint64_t>(gen_id));
  const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(fmt_id));
  if (!m) {
    const Format f = static_cast<Format>(fmt_id);
    EXPECT_TRUE(f == Format::kDia || f == Format::kEll);
    return;
  }
  const std::vector<double> x =
      random_panel(a.cols, k, 900 + static_cast<std::uint64_t>(k));
  std::vector<double> y(
      static_cast<std::size_t>(a.rows) * static_cast<std::size_t>(k), -99.0);
  std::vector<double> ref(y.size(), 0.0);
  m->spmm(x, y, k);
  spmm_reference(a, x, ref, k);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], ref[i], 1e-10 * (1.0 + std::fabs(ref[i])))
        << "lane " << i << " format "
        << format_name(static_cast<Format>(fmt_id)) << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpmmGrid,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Range(0, kNumFormats),
                       ::testing::Values(1, 3, 7, 32)));

// At K = 1 every kernel must reproduce its SpMV sibling bit for bit: the
// traversal and accumulation order are shared by construction. Atomic
// accumulation (COO boundary rows, CSR5 partial tiles) is only
// deterministic single-threaded, so the comparison pins one thread.
TEST(Spmm, KEqualsOneIsBitwiseSpmv) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  for (int gen_id = 0; gen_id < 8; ++gen_id) {
    const Csr a =
        make_matrix(gen_id, 5000 + static_cast<std::uint64_t>(gen_id));
    const std::vector<double> x =
        random_panel(a.cols, 1, 31 + static_cast<std::uint64_t>(gen_id));
    for (std::int32_t f = 0; f < kNumFormats; ++f) {
      const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
      if (!m) continue;
      std::vector<double> y_mv(static_cast<std::size_t>(a.rows), -1.0);
      std::vector<double> y_mm(static_cast<std::size_t>(a.rows), -2.0);
      m->spmv(x, y_mv);
      m->spmm(x, y_mm, 1);
      EXPECT_EQ(0, std::memcmp(y_mv.data(), y_mm.data(),
                               y_mv.size() * sizeof(double)))
          << "gen " << gen_id << " format "
          << format_name(static_cast<Format>(f));
    }
  }
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
}

// Leading, interior, and trailing empty rows must produce exact zero
// panels — formats that scatter (COO, CSR5) as well as row-driven ones.
TEST(Spmm, EmptyRowsYieldZeroPanels) {
  std::vector<Triplet> t = {{1, 0, 2.0}, {1, 3, -1.0}, {4, 2, 0.5}};
  const Csr a = csr_from_triplets(6, 5, t);  // rows 0, 2, 3, 5 empty
  const index_t k = 4;
  const std::vector<double> x = random_panel(a.cols, k, 7);
  std::vector<double> ref(static_cast<std::size_t>(a.rows) * k, 0.0);
  spmm_reference(a, x, ref, k);
  for (std::int32_t f = 0; f < kNumFormats; ++f) {
    const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
    if (!m) continue;
    std::vector<double> y(ref.size(), -99.0);
    m->spmm(x, y, k);
    for (const index_t row : {0, 2, 3, 5})
      for (index_t c = 0; c < k; ++c)
        EXPECT_EQ(0.0, y[static_cast<std::size_t>(row) * k + c])
            << "format " << format_name(static_cast<Format>(f));
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], ref[i], 1e-12)
          << "format " << format_name(static_cast<Format>(f));
  }
}

TEST(Spmm, RejectsMisshapenPanels) {
  Rng rng(11);
  const Csr a = gen_uniform_rows(8, 10, 3, 0, rng);
  std::vector<double> x(static_cast<std::size_t>(a.cols) * 4);
  std::vector<double> y(static_cast<std::size_t>(a.rows) * 4);
  EXPECT_THROW(spmm_csr(a, x, y, 0), DnnspmvError);   // k < 1
  EXPECT_THROW(spmm_csr(a, x, y, 3), DnnspmvError);   // x/y sized for k=4
  std::vector<double> y_short(y.size() - 1);
  EXPECT_THROW(spmm_csr(a, x, y_short, 4), DnnspmvError);
}

// The wide-K case that makes SpMM its own workload: a K=64 panel through
// the dispatching AnyFormatMatrix::spmm on a larger matrix.
TEST(Spmm, WidePanelThroughDispatch) {
  Rng rng(19);
  const Csr a = gen_powerlaw(200, 160, 6.0, 1.5, rng);
  const index_t k = 64;
  const std::vector<double> x = random_panel(a.cols, k, 23);
  std::vector<double> ref(static_cast<std::size_t>(a.rows) * k, 0.0);
  spmm_reference(a, x, ref, k);
  for (std::int32_t f = 0; f < kNumFormats; ++f) {
    const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
    if (!m) continue;
    std::vector<double> y(ref.size(), 0.0);
    m->spmm(x, y, k);
    double max_err = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      max_err = std::max(max_err, std::fabs(y[i] - ref[i]));
    EXPECT_LT(max_err, 1e-9)
        << "format " << format_name(static_cast<Format>(f));
  }
}

}  // namespace
}  // namespace dnnspmv
