#include "perf/labels.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace dnnspmv {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Labels, BestIndexPicksMinimum) {
  EXPECT_EQ(best_format_index({3.0, 1.0, 2.0}), 1);
  EXPECT_EQ(best_format_index({0.5}), 0);
}

TEST(Labels, BestIndexSkipsInfinity) {
  EXPECT_EQ(best_format_index({kInf, 5.0, kInf, 4.0}), 3);
}

TEST(Labels, BestIndexTieBreaksLow) {
  EXPECT_EQ(best_format_index({2.0, 2.0, 3.0}), 0);
}

TEST(Labels, AllInfeasibleThrows) {
  EXPECT_THROW(best_format_index({kInf, kInf}), std::runtime_error);
  EXPECT_THROW(best_format_index({}), std::runtime_error);
}

TEST(Labels, CollectProducesOnePerMatrix) {
  CorpusSpec spec;
  spec.count = 30;
  spec.min_dim = 32;
  spec.max_dim = 128;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);
  ASSERT_EQ(labeled.size(), corpus.size());
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    EXPECT_EQ(labeled[i].matrix, &corpus[i].matrix);
    EXPECT_EQ(labeled[i].format_times.size(), platform->formats().size());
    EXPECT_GE(labeled[i].label, 0);
    EXPECT_LT(labeled[i].label,
              static_cast<std::int32_t>(platform->formats().size()));
    // Label really is the argmin.
    EXPECT_EQ(labeled[i].label, best_format_index(labeled[i].format_times));
  }
}

TEST(Labels, CorpusYieldsMultipleWinningFormats) {
  // The learning task is only meaningful if several formats win somewhere.
  CorpusSpec spec;
  spec.count = 150;
  spec.min_dim = 64;
  spec.max_dim = 512;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);
  std::set<std::int32_t> winners;
  for (const auto& lm : labeled) winners.insert(lm.label);
  EXPECT_GE(winners.size(), 3u);
}

}  // namespace
}  // namespace dnnspmv
