// DLMC-style pruned-weight generators (gen/dlmc.hpp): density accuracy per
// pruning method, block structure, corpus composition, and the binary
// corpus cache round trip (including corrupt-file rejection — CI trusts
// load_corpus to fail closed on a bad cache hit).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gen/dlmc.hpp"
#include "sparse/csr.hpp"

namespace dnnspmv {
namespace {

double density_of(const Csr& a) {
  return static_cast<double>(a.nnz()) /
         (static_cast<double>(a.rows) * static_cast<double>(a.cols));
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DlmcGen, RandomPruningHitsTargetDensity) {
  Rng rng(42);
  for (const double d : {0.5, 0.2, 0.05}) {
    const Csr a = gen_pruned_random(256, 256, d, rng);
    a.validate();
    // i.i.d. Bernoulli over 65536 cells: ±3 sigma is well under 0.01.
    EXPECT_NEAR(density_of(a), d, 0.01) << "target " << d;
  }
}

TEST(DlmcGen, MagnitudePruningKeepsTopFraction) {
  Rng rng(7);
  const Csr a = gen_pruned_magnitude(200, 300, 0.1, rng);
  a.validate();
  // Threshold selection keeps the top-|w| fraction near-exactly.
  EXPECT_NEAR(density_of(a), 0.1, 0.005);
  // Magnitude pruning survivors are the large weights: nothing tiny stays.
  double min_abs = 1e30;
  for (const double v : a.val) min_abs = std::min(min_abs, std::fabs(v));
  EXPECT_GT(min_abs, 0.0);
}

TEST(DlmcGen, BlockPruningProducesDenseTiles) {
  Rng rng(9);
  const index_t block = 4;
  const Csr a = gen_pruned_block(128, 128, block, 0.2, rng);
  a.validate();
  // Kept tiles are fully dense, so nnz is a multiple of block².
  EXPECT_EQ(0, a.nnz() % (block * block));
  EXPECT_NEAR(density_of(a), 0.2, 0.05);
  // Every row of a kept tile has the same support pattern as the tile: row
  // lengths come in multiples of the block width.
  for (index_t i = 0; i < a.rows; ++i)
    EXPECT_EQ(0, (a.ptr[static_cast<std::size_t>(i) + 1] -
                  a.ptr[static_cast<std::size_t>(i)]) %
                     block)
        << "row " << i;
}

TEST(DlmcGen, GenClassNames) {
  EXPECT_EQ("pruned_random", gen_class_name(GenClass::kPrunedRandom));
  EXPECT_EQ("pruned_magnitude", gen_class_name(GenClass::kPrunedMagnitude));
  EXPECT_EQ("pruned_block", gen_class_name(GenClass::kPrunedBlock));
}

TEST(DlmcGen, CorpusCoversMethodsAndDensities) {
  DlmcSpec spec;
  spec.count = 60;
  spec.min_dim = 64;
  spec.max_dim = 128;
  const std::vector<CorpusEntry> corpus = build_dlmc_corpus(spec);
  ASSERT_EQ(60u, corpus.size());
  std::int64_t n_random = 0, n_magnitude = 0, n_block = 0;
  for (const CorpusEntry& e : corpus) {
    e.matrix.validate();
    EXPECT_GE(e.matrix.rows, spec.min_dim);
    EXPECT_LE(e.matrix.rows, spec.max_dim);
    switch (e.gen_class) {
      case GenClass::kPrunedRandom: ++n_random; break;
      case GenClass::kPrunedMagnitude: ++n_magnitude; break;
      case GenClass::kPrunedBlock: ++n_block; break;
      default: FAIL() << "unexpected class in DLMC corpus";
    }
  }
  EXPECT_GT(n_random, 0);
  EXPECT_GT(n_magnitude, 0);
  EXPECT_GT(n_block, 0);
}

TEST(DlmcGen, CorpusIsSeedDeterministic) {
  DlmcSpec spec;
  spec.count = 12;
  spec.min_dim = 64;
  spec.max_dim = 96;
  const auto a = build_dlmc_corpus(spec);
  const auto b = build_dlmc_corpus(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gen_class, b[i].gen_class);
    EXPECT_TRUE(csr_equal(a[i].matrix, b[i].matrix, 0.0)) << "entry " << i;
  }
}

TEST(DlmcGen, CorpusCacheRoundTrips) {
  DlmcSpec spec;
  spec.count = 10;
  spec.min_dim = 64;
  spec.max_dim = 96;
  const std::vector<CorpusEntry> corpus = build_dlmc_corpus(spec);
  const std::string path = temp_path("dlmc_cache.bin");
  ASSERT_TRUE(save_corpus(path, corpus));
  std::vector<CorpusEntry> loaded;
  ASSERT_TRUE(load_corpus(path, &loaded));
  ASSERT_EQ(corpus.size(), loaded.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].gen_class, loaded[i].gen_class);
    EXPECT_TRUE(csr_equal(corpus[i].matrix, loaded[i].matrix, 0.0))
        << "entry " << i;
  }
  std::remove(path.c_str());
}

TEST(DlmcGen, LoadRejectsMissingAndCorruptFiles) {
  std::vector<CorpusEntry> out;
  EXPECT_FALSE(load_corpus(temp_path("does_not_exist.bin"), &out));
  EXPECT_TRUE(out.empty());

  // Wrong magic.
  const std::string garbage = temp_path("dlmc_garbage.bin");
  {
    std::ofstream f(garbage, std::ios::binary);
    f << "this is not a corpus cache at all";
  }
  EXPECT_FALSE(load_corpus(garbage, &out));
  EXPECT_TRUE(out.empty());
  std::remove(garbage.c_str());

  // Valid header, truncated payload.
  DlmcSpec spec;
  spec.count = 4;
  spec.min_dim = 64;
  spec.max_dim = 96;
  const std::string truncated = temp_path("dlmc_truncated.bin");
  ASSERT_TRUE(save_corpus(truncated, build_dlmc_corpus(spec)));
  {
    std::ifstream in(truncated, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 40u);
    bytes.resize(bytes.size() / 2);
    std::ofstream outf(truncated, std::ios::binary | std::ios::trunc);
    outf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(load_corpus(truncated, &out));
  EXPECT_TRUE(out.empty());
  std::remove(truncated.c_str());
}

}  // namespace
}  // namespace dnnspmv
