#include "io/mmio.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "gen/generators.hpp"

namespace dnnspmv {
namespace {

TEST(Mmio, ParsesGeneralRealCoordinate) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "2 4 -1.0\n"
      "3 2 7\n");
  const Csr m = read_matrix_market(is);
  m.validate();
  EXPECT_EQ(m.rows, 3);
  EXPECT_EQ(m.cols, 4);
  EXPECT_EQ(m.nnz(), 3);
  std::vector<double> x = {1, 0, 0, 0}, y(3, 0.0);
  spmv_reference(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
}

TEST(Mmio, PatternEntriesGetValueOne) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const Csr m = read_matrix_market(is);
  EXPECT_DOUBLE_EQ(m.val[0], 1.0);
  EXPECT_DOUBLE_EQ(m.val[1], 1.0);
}

TEST(Mmio, SymmetricMirrorsOffDiagonal) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 5.0\n"
      "3 2 6.0\n");
  const Csr m = read_matrix_market(is);
  EXPECT_EQ(m.nnz(), 5);  // diagonal stays single, off-diag mirrored
  std::vector<double> x = {0, 1, 0}, y(3, 0.0);
  spmv_reference(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);  // mirrored (1,2) entry
  EXPECT_DOUBLE_EQ(y[2], 6.0);
}

TEST(Mmio, SkewSymmetricNegatesMirror) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const Csr m = read_matrix_market(is);
  EXPECT_EQ(m.nnz(), 2);
  std::vector<double> x = {0, 1}, y(2, 0.0);
  spmv_reference(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], -3.0);
}

TEST(Mmio, IntegerFieldAccepted) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 42\n");
  const Csr m = read_matrix_market(is);
  EXPECT_DOUBLE_EQ(m.val[0], 42.0);
}

TEST(Mmio, RejectsMissingBanner) {
  std::istringstream is("3 3 0\n");
  EXPECT_THROW(read_matrix_market(is), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat) {
  std::istringstream is("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(is), std::runtime_error);
}

TEST(Mmio, RejectsOutOfBoundsEntry) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(is), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedData) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(is), std::runtime_error);
}

TEST(Mmio, ParseErrorsCarryLineAndFileContext) {
  // Bad entry on line 3 of the stream → typed parse_error naming the line.
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  try {
    read_matrix_market(is);
    FAIL() << "expected DnnspmvError";
  } catch (const DnnspmvError& e) {
    EXPECT_EQ(e.code(), errc::parse_error);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }

  // The file wrapper prepends the path so batch ingest logs are actionable.
  const std::string path = ::testing::TempDir() + "/mmio_bad.mtx";
  {
    std::ofstream os(path);
    os << "%%MatrixMarket matrix coordinate real general\n"
          "2 2 1\n"
          "1 oops 1.0\n";
  }
  try {
    read_matrix_market_file(path);
    FAIL() << "expected DnnspmvError";
  } catch (const DnnspmvError& e) {
    EXPECT_EQ(e.code(), errc::parse_error);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }

  try {
    read_matrix_market_file("/nonexistent/x.mtx");
    FAIL() << "expected DnnspmvError";
  } catch (const DnnspmvError& e) {
    EXPECT_EQ(e.code(), errc::io_error);
  }
}

TEST(Mmio, WriteReadRoundTrip) {
  Rng rng(42);
  const Csr a = gen_powerlaw(30, 25, 4.0, 1.7, rng);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const Csr b = read_matrix_market(ss);
  EXPECT_TRUE(csr_equal(a, b, 1e-12));
}

TEST(Mmio, FileRoundTrip) {
  Rng rng(43);
  const Csr a = gen_banded(20, 20, 2, 0.9, rng);
  const std::string path = ::testing::TempDir() + "/mmio_rt.mtx";
  write_matrix_market_file(path, a);
  const Csr b = read_matrix_market_file(path);
  EXPECT_TRUE(csr_equal(a, b, 1e-12));
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/x.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace dnnspmv
