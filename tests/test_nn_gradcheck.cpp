// Numerical gradient verification for every layer and for the full
// late-merging network: central finite differences against backprop.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/merge_net.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace dnnspmv {
namespace {

constexpr float kEps = 1e-2f;   // fp32 central differences
constexpr float kTol = 2e-2f;   // relative tolerance

double rel_err(double a, double b) {
  const double scale = std::max({1e-4, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

/// Scalar loss = sum of out elements weighted by a fixed random tensor
/// (keeps the loss sensitive to every output).
double weighted_sum(const Tensor& out, const Tensor& w) {
  double s = 0.0;
  for (std::int64_t i = 0; i < out.size(); ++i)
    s += static_cast<double>(out[i]) * w[i];
  return s;
}

/// Checks input and parameter gradients of `layer` on input `in`.
/// `kink_budget` coordinates may fail: finite differences are invalid when
/// the ±eps probe crosses a ReLU kink or flips a max-pool argmax, which
/// composed stacks cannot avoid.
void check_layer(Layer& layer, Tensor in, int max_checks = 40,
                 int kink_budget = 0) {
  int bad = 0;
  Rng rng(1234);
  Tensor out;
  layer.forward(in, out, /*training=*/false);
  Tensor w(out.shape());
  w.fill_uniform(rng, -1.0f, 1.0f);

  // Backprop gradients.
  zero_grads(layer.params());
  Tensor grad_in;
  layer.backward(in, out, w, grad_in);

  // Input gradient check.
  const std::int64_t stride_in = std::max<std::int64_t>(1, in.size() / max_checks);
  for (std::int64_t i = 0; i < in.size(); i += stride_in) {
    const float orig = in[i];
    in[i] = orig + kEps;
    Tensor op;
    layer.forward(in, op, false);
    const double fp = weighted_sum(op, w);
    in[i] = orig - kEps;
    layer.forward(in, op, false);
    const double fm = weighted_sum(op, w);
    in[i] = orig;
    const double num = (fp - fm) / (2.0 * kEps);
    if (rel_err(num, grad_in[i]) >= kTol) {
      ++bad;
      EXPECT_LE(bad, kink_budget)
          << "input grad mismatch at " << i << ": num=" << num
          << " bp=" << grad_in[i];
    }
  }
  // Restore forward state for the parameter loop below.
  layer.forward(in, out, false);

  // Parameter gradient check.
  for (Param* p : layer.params()) {
    const std::int64_t stride_p =
        std::max<std::int64_t>(1, p->value.size() / max_checks);
    for (std::int64_t i = 0; i < p->value.size(); i += stride_p) {
      const float orig = p->value[i];
      p->value[i] = orig + kEps;
      Tensor op;
      layer.forward(in, op, false);
      const double fp = weighted_sum(op, w);
      p->value[i] = orig - kEps;
      layer.forward(in, op, false);
      const double fm = weighted_sum(op, w);
      p->value[i] = orig;
      const double num = (fp - fm) / (2.0 * kEps);
      if (rel_err(num, p->grad[i]) >= kTol) {
        ++bad;
        EXPECT_LE(bad, kink_budget)
            << p->name << " grad mismatch at " << i << ": num=" << num
            << " bp=" << p->grad[i];
      }
    }
  }
}

TEST(GradCheck, Dense) {
  Rng rng(1);
  Dense layer(7, 5, rng);
  Tensor in({3, 7});
  in.fill_uniform(rng, -1.0f, 1.0f);
  check_layer(layer, in);
}

TEST(GradCheck, Conv2dStride1) {
  Rng rng(2);
  Conv2D layer(2, 3, 3, 1, 1, rng);
  Tensor in({2, 2, 6, 5});
  in.fill_uniform(rng, -1.0f, 1.0f);
  check_layer(layer, in);
}

TEST(GradCheck, Conv2dStride2NoPad) {
  Rng rng(3);
  Conv2D layer(1, 2, 3, 2, 0, rng);
  Tensor in({2, 1, 7, 7});
  in.fill_uniform(rng, -1.0f, 1.0f);
  check_layer(layer, in);
}

TEST(GradCheck, ReLUAwayFromKink) {
  Rng rng(4);
  ReLU layer;
  Tensor in({2, 10});
  in.fill_uniform(rng, 0.2f, 1.0f);  // keep away from 0 where ReLU kinks
  Tensor neg({2, 10});
  neg.fill_uniform(rng, -1.0f, -0.2f);
  check_layer(layer, in);
  check_layer(layer, neg);
}

TEST(GradCheck, MaxPool) {
  Rng rng(5);
  MaxPool2D layer(2);
  Tensor in({2, 2, 6, 6});
  in.fill_uniform(rng, -1.0f, 1.0f);
  check_layer(layer, in);
}

TEST(GradCheck, Flatten) {
  Rng rng(6);
  Flatten layer;
  Tensor in({2, 3, 4, 5});
  in.fill_uniform(rng, -1.0f, 1.0f);
  check_layer(layer, in);
}

TEST(GradCheck, SequentialStack) {
  Rng rng(7);
  Sequential seq;
  seq.emplace<Conv2D>(1, 2, 3, 1, 1, rng);
  seq.emplace<ReLU>();
  seq.emplace<MaxPool2D>(2);
  seq.emplace<Flatten>();
  seq.emplace<Dense>(2 * 4 * 4, 3, rng);
  Tensor in({2, 1, 8, 8});
  in.fill_uniform(rng, 0.1f, 1.0f);
  // Hidden ReLU/pool kinks are unavoidable in a composed stack: allow a
  // handful of finite-difference outliers out of ~100 sampled coordinates.
  check_layer(seq, in, 25, /*kink_budget=*/15);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(8);
  Tensor logits({4, 3});
  logits.fill_uniform(rng, -2.0f, 2.0f);
  const std::vector<std::int32_t> labels = {0, 2, 1, 2};
  Tensor grad;
  softmax_cross_entropy(logits, labels, grad);
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    Tensor g;
    logits[i] = orig + kEps;
    const double fp = softmax_cross_entropy(logits, labels, g);
    logits[i] = orig - kEps;
    const double fm = softmax_cross_entropy(logits, labels, g);
    logits[i] = orig;
    const double num = (fp - fm) / (2.0 * kEps);
    EXPECT_LT(rel_err(num, grad[i]), kTol) << "logit grad at " << i;
  }
}

TEST(GradCheck, FullLateMergeNetwork) {
  // End-to-end: loss gradient w.r.t. an arbitrary parameter of each tower
  // and of the head matches finite differences.
  Rng rng(9);
  MergeNet net;
  for (int t = 0; t < 2; ++t) {
    Sequential& tower = net.add_tower();
    tower.emplace<Conv2D>(1, 2, 3, 1, 1, rng);
    tower.emplace<ReLU>();
    tower.emplace<MaxPool2D>(2);
    tower.emplace<Flatten>();
  }
  net.head().emplace<Dense>(2 * 2 * 4 * 4, 8, rng);
  net.head().emplace<ReLU>();
  net.head().emplace<Dense>(8, 3, rng);

  std::vector<Tensor> inputs(2, Tensor({3, 1, 8, 8}));
  inputs[0].fill_uniform(rng, 0.05f, 1.0f);
  inputs[1].fill_uniform(rng, 0.05f, 1.0f);
  const std::vector<std::int32_t> labels = {0, 1, 2};

  auto loss_fn = [&]() {
    Tensor logits, g;
    net.forward(inputs, logits, false);
    return softmax_cross_entropy(logits, labels, g);
  };

  Tensor logits;
  net.forward(inputs, logits, false);
  Tensor grad;
  softmax_cross_entropy(logits, labels, grad);
  zero_grads(net.params());
  net.backward(inputs, grad);

  int bad = 0;
  for (Param* p : net.params()) {
    const std::int64_t stride =
        std::max<std::int64_t>(1, p->value.size() / 8);
    for (std::int64_t i = 0; i < p->value.size(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + kEps;
      const double fp = loss_fn();
      p->value[i] = orig - kEps;
      const double fm = loss_fn();
      p->value[i] = orig;
      const double num = (fp - fm) / (2.0 * kEps);
      if (rel_err(num, p->grad[i]) >= 5e-2) {
        ++bad;  // ReLU/pool kink crossings — tolerate a sparse few
        EXPECT_LE(bad, 8) << p->name << "[" << i << "] num=" << num
                          << " bp=" << p->grad[i];
      }
    }
  }
}

}  // namespace
}  // namespace dnnspmv
