#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ml/crossval.hpp"

namespace dnnspmv {
namespace {

TEST(Metrics, PerfectPrediction) {
  const std::vector<std::int32_t> y = {0, 1, 2, 1, 0};
  const EvalResult r = evaluate(y, y, 3);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  for (const auto& m : r.per_class) {
    if (m.ground_truth > 0) {
      EXPECT_DOUBLE_EQ(m.recall, 1.0);
      EXPECT_DOUBLE_EQ(m.precision, 1.0);
    }
  }
}

TEST(Metrics, HandComputedPrecisionRecall) {
  // truth:  0 0 1 1 1
  // pred:   0 1 1 1 0
  const EvalResult r = evaluate({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0}, 2);
  EXPECT_DOUBLE_EQ(r.accuracy, 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(r.per_class[0].recall, 0.5);       // 1 of 2 true 0s
  EXPECT_DOUBLE_EQ(r.per_class[0].precision, 0.5);    // 1 of 2 predicted 0s
  EXPECT_DOUBLE_EQ(r.per_class[1].recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.per_class[1].precision, 2.0 / 3.0);
  EXPECT_EQ(r.per_class[0].ground_truth, 2);
  EXPECT_EQ(r.per_class[1].ground_truth, 3);
}

TEST(Metrics, ConfusionMatrixEntries) {
  const EvalResult r = evaluate({0, 0, 1}, {1, 0, 1}, 2);
  EXPECT_EQ(r.confusion[0][0], 1);
  EXPECT_EQ(r.confusion[0][1], 1);
  EXPECT_EQ(r.confusion[1][0], 0);
  EXPECT_EQ(r.confusion[1][1], 1);
}

TEST(Metrics, AbsentClassHasZeroMetrics) {
  const EvalResult r = evaluate({0, 0}, {0, 0}, 3);
  EXPECT_EQ(r.per_class[2].ground_truth, 0);
  EXPECT_DOUBLE_EQ(r.per_class[2].recall, 0.0);
  EXPECT_DOUBLE_EQ(r.per_class[2].precision, 0.0);
}

TEST(Metrics, RejectsSizeMismatch) {
  EXPECT_THROW(evaluate({0, 1}, {0}, 2), std::runtime_error);
}

TEST(Metrics, RejectsOutOfRangeLabel) {
  EXPECT_THROW(evaluate({0, 5}, {0, 0}, 2), std::runtime_error);
}

// --- cross-validation ------------------------------------------------------

std::vector<std::int32_t> skewed_labels(int n) {
  std::vector<std::int32_t> y;
  for (int i = 0; i < n; ++i) y.push_back(i % 10 == 0 ? 1 : 0);  // 10% rare
  return y;
}

TEST(CrossVal, FoldsPartitionTheDataset) {
  const auto y = skewed_labels(100);
  const auto folds = stratified_kfold(y, 5, 42);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::int32_t> all_test;
  for (const auto& f : folds) {
    for (std::int32_t i : f.test) {
      EXPECT_TRUE(all_test.insert(i).second) << "index " << i << " repeated";
    }
    EXPECT_EQ(f.train.size() + f.test.size(), y.size());
    // train ∩ test = ∅
    std::set<std::int32_t> tr(f.train.begin(), f.train.end());
    for (std::int32_t i : f.test) EXPECT_FALSE(tr.count(i));
  }
  EXPECT_EQ(all_test.size(), y.size());
}

TEST(CrossVal, StratificationKeepsRareClassInEveryFold) {
  const auto y = skewed_labels(100);
  const auto folds = stratified_kfold(y, 5, 7);
  for (const auto& f : folds) {
    int rare = 0;
    for (std::int32_t i : f.test) rare += y[static_cast<std::size_t>(i)];
    EXPECT_EQ(rare, 2);  // 10 rare / 5 folds
  }
}

TEST(CrossVal, SeedReproducible) {
  const auto y = skewed_labels(60);
  const auto a = stratified_kfold(y, 3, 9);
  const auto b = stratified_kfold(y, 3, 9);
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].test, b[f].test);
    EXPECT_EQ(a[f].train, b[f].train);
  }
}

TEST(CrossVal, RejectsTooFewSamples) {
  EXPECT_THROW(stratified_kfold({0, 1}, 5, 1), std::runtime_error);
}

}  // namespace
}  // namespace dnnspmv
