// End-to-end learning sanity: the NN stack can actually fit problems.
#include <gtest/gtest.h>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/merge_net.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"

namespace dnnspmv {
namespace {

/// Two-class toy: class 0 images bright in the left half, class 1 in the
/// right half (plus noise).
void make_toy_image(Rng& rng, Tensor& img, std::int32_t label) {
  img.fill_uniform(rng, 0.0f, 0.2f);
  const std::int64_t h = img.dim(2), w = img.dim(3);
  const std::int64_t c0 = label == 0 ? 0 : w / 2;
  for (std::int64_t y = 0; y < h; ++y)
    for (std::int64_t x = c0; x < c0 + w / 2; ++x)
      img.at4(0, 0, y, x) += 0.8f;
}

double train_toy(Optimizer& opt, MergeNet& net, Rng& rng, int steps) {
  double last_loss = 1e9;
  for (int s = 0; s < steps; ++s) {
    std::vector<Tensor> inputs(1, Tensor({8, 1, 8, 8}));
    std::vector<std::int32_t> labels(8);
    for (int b = 0; b < 8; ++b) {
      labels[static_cast<std::size_t>(b)] =
          static_cast<std::int32_t>(rng.uniform_u64(2));
      Tensor one({1, 1, 8, 8});
      make_toy_image(rng, one, labels[static_cast<std::size_t>(b)]);
      std::copy(one.data(), one.data() + 64, inputs[0].data() + b * 64);
    }
    Tensor logits, grad;
    net.forward(inputs, logits, true);
    last_loss = softmax_cross_entropy(logits, labels, grad);
    net.backward(inputs, grad);
    opt.step();
  }
  return last_loss;
}

MergeNet make_small_net(Rng& rng) {
  MergeNet net;
  Sequential& tower = net.add_tower();
  tower.emplace<Conv2D>(1, 4, 3, 1, 1, rng);
  tower.emplace<ReLU>();
  tower.emplace<MaxPool2D>(2);
  tower.emplace<Flatten>();
  net.head().emplace<Dense>(4 * 4 * 4, 16, rng);
  net.head().emplace<ReLU>();
  net.head().emplace<Dense>(16, 2, rng);
  return net;
}

TEST(Training, AdamFitsToyProblem) {
  Rng rng(42);
  MergeNet net = make_small_net(rng);
  Adam opt(net.params(), 3e-3);
  const double loss = train_toy(opt, net, rng, 120);
  EXPECT_LT(loss, 0.1);
}

TEST(Training, SgdMomentumFitsToyProblem) {
  Rng rng(43);
  MergeNet net = make_small_net(rng);
  SgdMomentum opt(net.params(), 0.05, 0.9);
  const double loss = train_toy(opt, net, rng, 200);
  EXPECT_LT(loss, 0.2);
}

TEST(Training, LossDecreasesOverall) {
  Rng rng(44);
  MergeNet net = make_small_net(rng);
  Adam opt(net.params(), 3e-3);
  const double early = train_toy(opt, net, rng, 10);
  const double late = train_toy(opt, net, rng, 100);
  EXPECT_LT(late, early);
}

TEST(Training, FrozenParamsDoNotMove) {
  Rng rng(45);
  MergeNet net = make_small_net(rng);
  net.freeze_towers();
  std::vector<float> before;
  for (Param* p : net.tower(0).params())
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      before.push_back(p->value[i]);
  Adam opt(net.params(), 3e-3);
  train_toy(opt, net, rng, 30);
  std::size_t k = 0;
  for (Param* p : net.tower(0).params())
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      EXPECT_EQ(p->value[i], before[k++]);
}

TEST(Training, HeadStillLearnsWhenTowersFrozen) {
  Rng rng(46);
  MergeNet net = make_small_net(rng);
  net.freeze_towers();
  std::vector<float> head_before;
  for (Param* p : net.head_params())
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      head_before.push_back(p->value[i]);
  Adam opt(net.params(), 3e-3);
  train_toy(opt, net, rng, 30);
  std::size_t k = 0;
  bool changed = false;
  for (Param* p : net.head_params())
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      changed |= p->value[i] != head_before[k++];
  EXPECT_TRUE(changed);
}

TEST(Training, TwoTowerNetLearnsCrossSourceRule) {
  // Label = which source has the brighter image — only learnable when both
  // towers contribute (exercises merge backprop end-to-end).
  Rng rng(47);
  MergeNet net;
  for (int t = 0; t < 2; ++t) {
    Sequential& tower = net.add_tower();
    tower.emplace<Conv2D>(1, 2, 3, 1, 1, rng);
    tower.emplace<ReLU>();
    tower.emplace<MaxPool2D>(2);
    tower.emplace<Flatten>();
  }
  net.head().emplace<Dense>(2 * 2 * 4 * 4, 8, rng);
  net.head().emplace<ReLU>();
  net.head().emplace<Dense>(8, 2, rng);
  Adam opt(net.params(), 3e-3);

  double last = 1e9;
  for (int s = 0; s < 400; ++s) {
    std::vector<Tensor> inputs(2, Tensor({8, 1, 8, 8}));
    std::vector<std::int32_t> labels(8);
    for (int b = 0; b < 8; ++b) {
      const auto y = static_cast<std::int32_t>(rng.uniform_u64(2));
      labels[static_cast<std::size_t>(b)] = y;
      for (int src = 0; src < 2; ++src) {
        const float base = (src == y) ? 0.9f : 0.1f;
        for (int i = 0; i < 64; ++i)
          inputs[static_cast<std::size_t>(src)][b * 64 + i] =
              base + static_cast<float>(rng.uniform(-0.05, 0.05));
      }
    }
    Tensor logits, grad;
    net.forward(inputs, logits, true);
    last = softmax_cross_entropy(logits, labels, grad);
    net.backward(inputs, grad);
    opt.step();
  }
  EXPECT_LT(last, 0.15);
}

TEST(Optimizer, AdamStepZeroesGradients) {
  Rng rng(48);
  Dense d(3, 3, rng);
  Adam opt(d.params(), 1e-3);
  d.params()[0]->grad.fill(1.0f);
  opt.step();
  EXPECT_FLOAT_EQ(d.params()[0]->grad.max_abs(), 0.0f);
}

TEST(Optimizer, SgdWeightDecayShrinksWeights) {
  Rng rng(49);
  Dense d(4, 4, rng);
  const float before = d.params()[0]->value.max_abs();
  SgdMomentum opt(d.params(), 0.1, 0.0, /*weight_decay=*/0.5);
  for (int i = 0; i < 20; ++i) opt.step();  // zero grads, decay only
  EXPECT_LT(d.params()[0]->value.max_abs(), before);
}

}  // namespace
}  // namespace dnnspmv
