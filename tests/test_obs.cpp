// src/obs: concurrent counter/gauge/histogram updates, span nesting and
// ordering through the per-thread rings, and exporter JSON round-trips
// (validated with a minimal JSON parser, not string matching alone).
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dnnspmv::obs {
namespace {

// Tracing state is process-global; tests that enable it clean up after
// themselves so order (and same-process reruns) never matters.
struct TracingGuard {
  TracingGuard() {
    set_enabled(false);
    clear_trace();
  }
  ~TracingGuard() {
    set_enabled(false);
    clear_trace();
  }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator/extractor for the exporter
// round-trips: validates full syntax and fetches top-level-ish numbers.
class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : p_(text.c_str()) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return *p_ == '\0';
  }

 private:
  bool value() {
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    ws();
    if (*p_ == '}') { ++p_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (*p_ != ':') return false;
      ++p_;
      ws();
      if (!value()) return false;
      ws();
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }
  bool array() {
    ++p_;  // '['
    ws();
    if (*p_ == ']') { ++p_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }
  bool string() {
    if (*p_ != '"') return false;
    ++p_;
    while (*p_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (!*p_) return false;
      }
      ++p_;
    }
    if (*p_ != '"') return false;
    ++p_;
    return true;
  }
  bool number() {
    const char* start = p_;
    char* end = nullptr;
    std::strtod(p_, &end);
    if (end == start) return false;
    p_ = end;
    return true;
  }
  bool literal(const char* lit) {
    for (; *lit; ++lit, ++p_)
      if (*p_ != *lit) return false;
    return true;
  }
  void ws() {
    while (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r') ++p_;
  }

  const char* p_;
};

// First number following `"key":` — names in these tests are unique.
double json_number_after(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  EXPECT_NE(at, std::string::npos) << "key " << key << " not in " << text;
  if (at == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

// ---------------------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPer = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) c.inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(ObsGauge, AddAndMaxUnderContention) {
  MetricsRegistry reg;
  Gauge& sum = reg.gauge("sum");
  Gauge& high = reg.gauge("high");
  constexpr int kThreads = 4;
  constexpr int kPer = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        sum.add(1.0);
        high.update_max(static_cast<double>(t * kPer + i));
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_DOUBLE_EQ(sum.value(), kThreads * kPer);
  EXPECT_DOUBLE_EQ(high.value(), kThreads * kPer - 1);
}

TEST(ObsHistogram, ConcurrentObservationsCountExactly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i)
        h.observe(static_cast<double>((t + i) % 1000));
    });
  for (auto& t : ts) t.join();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPer);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  // Every observed value is < 1000 < 1024, so the p100 edge is ≤ 2^10.
  EXPECT_LE(s.quantile(1.0), 1024.0);
  EXPECT_GT(s.quantile(1.0), s.quantile(0.0) - 1.0);
}

TEST(ObsHistogram, BucketEdgesAndQuantileShape) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("shape");
  h.observe(0.5);   // bucket 0
  h.observe(3.0);   // bucket 1 ([2,4))
  h.observe(1000);  // bucket 9 ([512,1024))
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[9], 1u);
  EXPECT_DOUBLE_EQ(s.quantile(0.01), 2.0);    // first bucket's upper edge
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1024.0);  // last occupied bucket's edge
  EXPECT_NEAR(s.mean(), (0.5 + 3.0 + 1000.0) / 3.0, 1e-9);
}

TEST(ObsRegistry, SameNameSameHandleDifferentKindThrows) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
}

TEST(ObsRegistry, SnapshotFiltersByPrefixAndResets) {
  MetricsRegistry reg;
  reg.counter("a.hits").inc(3);
  reg.counter("b.hits").inc(5);
  reg.gauge("a.depth").set(2.5);
  reg.histogram("a.lat").observe(7.0);

  const MetricsSnapshot all = reg.snapshot();
  EXPECT_EQ(all.counters.size(), 2u);
  const MetricsSnapshot only_a = reg.snapshot("a.");
  EXPECT_EQ(only_a.counters.size(), 1u);
  EXPECT_EQ(only_a.counters.at("a.hits"), 3u);
  EXPECT_EQ(only_a.gauges.at("a.depth"), 2.5);
  EXPECT_EQ(only_a.histograms.at("a.lat").count, 1u);
  EXPECT_EQ(only_a.histograms.count("b.hits"), 0u);

  reg.reset();
  EXPECT_EQ(reg.counter("a.hits").value(), 0u);
  EXPECT_EQ(reg.snapshot().counters.at("b.hits"), 0u);
}

TEST(ObsSpan, DisabledSpansEmitNothing) {
  TracingGuard guard;
  {
    Span s("should_not_appear");
  }
  EXPECT_TRUE(drain_trace_events().empty());
}

TEST(ObsSpan, NestingDepthOrderingAndContainment) {
  TracingGuard guard;
  set_enabled(true);
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
    {
      Span sibling("sibling");
    }
  }
  set_enabled(false);
  const std::vector<TraceEvent> events = drain_trace_events();
  ASSERT_EQ(events.size(), 3u);
  // Spans close innermost-first, so ring order is inner, sibling, outer.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "sibling");
  EXPECT_STREQ(events[2].name, "outer");
  const TraceEvent& inner = events[0];
  const TraceEvent& sibling = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(sibling.depth, 1u);
  EXPECT_EQ(inner.tid, outer.tid);
  // Parent interval contains both children; siblings are ordered.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, sibling.ts_us + sibling.dur_us);
  EXPECT_LE(inner.ts_us, sibling.ts_us);
}

TEST(ObsSpan, ConcurrentThreadsGetDistinctTidsAndLoseNothing) {
  TracingGuard guard;
  set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPer = 500;  // well under ring capacity per thread
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        Span s("worker_span");
      }
    });
  for (auto& t : ts) t.join();
  set_enabled(false);
  const std::vector<TraceEvent> events = drain_trace_events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPer);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(dropped_trace_events(), 0u);
}

TEST(ObsSpan, FeedsAttachedHistogram) {
  TracingGuard guard;
  MetricsRegistry reg;
  Histogram& h = reg.histogram("span_us");
  set_enabled(true);
  {
    Span s("timed", &h);
  }
  set_enabled(false);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(ObsExport, MetricsJsonIsValidAndRoundTripsValues) {
  MetricsRegistry reg;
  reg.counter("srv.requests").inc(42);
  reg.gauge("srv.cache_entries").set(17.0);
  Histogram& h = reg.histogram("srv.latency_us");
  for (int i = 0; i < 10; ++i) h.observe(100.0);

  const std::string json = metrics_to_json(reg.snapshot());
  EXPECT_TRUE(MiniJson(json).valid()) << json;
  EXPECT_EQ(json_number_after(json, "srv.requests"), 42.0);
  EXPECT_EQ(json_number_after(json, "srv.cache_entries"), 17.0);
  EXPECT_EQ(json_number_after(json, "count"), 10.0);
  EXPECT_EQ(json_number_after(json, "p50"), 128.0);  // [64,128) bucket edge

  // Empty registry must still be valid JSON.
  MetricsRegistry empty;
  EXPECT_TRUE(MiniJson(metrics_to_json(empty.snapshot())).valid());
}

TEST(ObsExport, ChromeTraceJsonIsValidTraceEventFormat) {
  TracingGuard guard;
  set_enabled(true);
  {
    Span outer("outer \"quoted\"");  // name escaping must survive
    Span inner("inner");
  }
  set_enabled(false);
  const std::vector<TraceEvent> events = drain_trace_events();
  ASSERT_EQ(events.size(), 2u);
  const std::string json = trace_to_chrome_json(events);
  EXPECT_TRUE(MiniJson(json).valid()) << json;
  // The fields chrome://tracing requires for complete events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_TRUE(MiniJson(trace_to_chrome_json({})).valid());
}

TEST(ObsExport, WriteChromeTraceFileDrains) {
  TracingGuard guard;
  set_enabled(true);
  {
    Span s("to_file");
  }
  set_enabled(false);
  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  EXPECT_EQ(write_chrome_trace_file(path), 1);
  EXPECT_TRUE(drain_trace_events().empty());  // the write consumed them
  std::ifstream is(path);
  ASSERT_TRUE(is.is_open());
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_TRUE(MiniJson(ss.str()).valid());
  EXPECT_NE(ss.str().find("to_file"), std::string::npos);
}

}  // namespace
}  // namespace dnnspmv::obs
