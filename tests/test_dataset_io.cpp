#include "io/dataset.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace dnnspmv {
namespace {

Dataset make_dataset() {
  Dataset ds;
  ds.candidates = {Format::kCoo, Format::kCsr, Format::kDia, Format::kEll};
  for (int i = 0; i < 5; ++i) {
    Sample s;
    Tensor t1({4, 4}), t2({4, 4});
    for (std::int64_t j = 0; j < 16; ++j) {
      t1[j] = static_cast<float>(i + j);
      t2[j] = static_cast<float>(i * j);
    }
    s.inputs = {t1, t2};
    s.features = {1.0 * i, 2.0 * i, 3.0};
    s.format_times = {0.1, 0.2, 0.3, 0.4};
    s.label = i % 4;
    s.gen_class = i % 3;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

TEST(DatasetIo, SaveLoadRoundTrip) {
  const Dataset ds = make_dataset();
  const std::string path = ::testing::TempDir() + "/ds_rt.bin";
  ds.save(path);
  const Dataset back = Dataset::load(path);
  ASSERT_EQ(back.candidates, ds.candidates);
  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Sample& a = ds.samples[i];
    const Sample& b = back.samples[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.gen_class, b.gen_class);
    EXPECT_EQ(a.features, b.features);
    EXPECT_EQ(a.format_times, b.format_times);
    ASSERT_EQ(a.inputs.size(), b.inputs.size());
    for (std::size_t s = 0; s < a.inputs.size(); ++s) {
      ASSERT_EQ(a.inputs[s].shape(), b.inputs[s].shape());
      for (std::int64_t j = 0; j < a.inputs[s].size(); ++j)
        EXPECT_EQ(a.inputs[s][j], b.inputs[s][j]);
    }
  }
}

TEST(DatasetIo, LabelHistogram) {
  const Dataset ds = make_dataset();  // labels 0,1,2,3,0
  const auto h = ds.label_histogram();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 2);
  EXPECT_EQ(h[1], 1);
  EXPECT_EQ(h[2], 1);
  EXPECT_EQ(h[3], 1);
}

TEST(DatasetIo, SubsetPicksIndices) {
  const Dataset ds = make_dataset();
  const Dataset sub = ds.subset({4, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.samples[0].label, ds.samples[4].label);
  EXPECT_EQ(sub.samples[1].label, ds.samples[0].label);
  EXPECT_EQ(sub.candidates, ds.candidates);
}

TEST(DatasetIo, SubsetRejectsBadIndex) {
  const Dataset ds = make_dataset();
  EXPECT_THROW(ds.subset({5}), std::runtime_error);
  EXPECT_THROW(ds.subset({-1}), std::runtime_error);
}

TEST(DatasetIo, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/ds_bad.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a dataset";
  }
  EXPECT_THROW(Dataset::load(path), std::runtime_error);
}

TEST(DatasetIo, LoadRejectsMissingFile) {
  EXPECT_THROW(Dataset::load("/nonexistent/ds.bin"), std::runtime_error);
}

}  // namespace
}  // namespace dnnspmv
