// Robustness layer of src/serve (ISSUE 5): deadlines, load shedding with
// the FallbackSelector degraded path, bounded retry, and the fault-
// injection hook. Concurrency-sensitive cases (expiry while queued,
// shutdown racing the degraded path, injected worker failures) are in the
// tsan preset's filter and must stay deterministic: every unhealthy state
// is arranged through serve/fault.hpp scripted plans, never timing luck.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gen/generators.hpp"
#include "perf/labels.hpp"
#include "serve/fault.hpp"
#include "serve/fingerprint.hpp"
#include "serve/service.hpp"

namespace dnnspmv {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// One trained selector + labelled corpus shared by every test; training is
// the expensive part, the robustness paths under test are cheap.
struct RobustPipeline {
  std::vector<CorpusEntry> corpus;
  std::unique_ptr<Platform> platform;
  std::vector<LabeledMatrix> labeled;
  FormatSelector selector;

  RobustPipeline() {
    CorpusSpec spec;
    spec.count = 80;
    spec.min_dim = 48;
    spec.max_dim = 144;
    spec.seed = 23;
    corpus = build_corpus(spec);
    platform = make_analytic_cpu(intel_xeon_params());
    labeled = collect_labels(corpus, *platform);

    SelectorOptions opts;
    opts.mode = RepMode::kHistogram;
    opts.rep_rows = 16;
    opts.rep_bins = 8;
    opts.train.epochs = 4;
    opts.train.batch = 16;
    opts.train.lr = 2e-3;
    selector = FormatSelector(opts);
    selector.fit(labeled, platform->formats());
  }
};

RobustPipeline& pipeline() {
  static RobustPipeline p;
  return p;
}

errc code_of(std::future<std::int32_t>& fut) {
  try {
    (void)fut.get();
    return errc::ok;
  } catch (const DnnspmvError& e) {
    return e.code();
  }
}

TEST(FaultInjector, ScriptedCountersFireExactlyNTimes) {
  fault::ScopedFaults guard;
  fault::Injector& inj = fault::Injector::global();
  fault::Plan plan;
  plan.drop_next = 2;
  inj.configure(fault::Site::kWorkerPop, plan);
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.decide(fault::Site::kWorkerPop).should_drop);
  EXPECT_TRUE(inj.decide(fault::Site::kWorkerPop).should_drop);
  EXPECT_FALSE(inj.decide(fault::Site::kWorkerPop).should_drop);
  // Other sites were never armed.
  EXPECT_FALSE(inj.decide(fault::Site::kForward).should_throw);
  EXPECT_EQ(inj.injected(fault::Site::kWorkerPop), 2u);
}

TEST(FaultInjector, ResetDisablesAndInjectThrowsTypedError) {
  {
    fault::ScopedFaults guard;
    fault::Plan plan;
    plan.throw_next = 1;
    fault::Injector::global().configure(fault::Site::kForward, plan);
    try {
      fault::Injector::global().inject(fault::Site::kForward);
      FAIL() << "expected injected throw";
    } catch (const DnnspmvError& e) {
      EXPECT_EQ(e.code(), errc::fault_injected);
    }
  }
  // Guard reset: disabled again, decide() is a no-op.
  EXPECT_FALSE(fault::Injector::global().enabled());
  EXPECT_FALSE(fault::Injector::global().inject(fault::Site::kForward));
}

TEST(RequestQueueTryPush, ReportsFullAndClosedWithoutConsuming) {
  RequestQueue q(1);
  PredictRequest first;
  std::future<std::int32_t> first_fut = first.result.get_future();
  EXPECT_EQ(q.try_push(std::move(first)), PushResult::kOk);

  PredictRequest second;
  second.fingerprint = 42;
  std::future<std::int32_t> second_fut = second.result.get_future();
  EXPECT_EQ(q.try_push(std::move(second)), PushResult::kFull);
  // kFull left `second` intact: its promise still delivers.
  second.result.set_value(7);
  EXPECT_EQ(second_fut.get(), 7);

  q.close();
  PredictRequest third;
  EXPECT_EQ(q.try_push(std::move(third)), PushResult::kClosed);

  std::vector<PredictRequest> drained;
  EXPECT_EQ(q.pop_batch(drained, 4), 1u);
  drained[0].result.set_value(0);
  (void)first_fut.get();
}

TEST(Fallback, RuleTierAlwaysReturnsValidCandidateIndex) {
  auto& p = pipeline();
  const FallbackSelector fb(p.selector.candidates());
  EXPECT_FALSE(fb.has_tree());
  for (const CorpusEntry& e : p.corpus) {
    const std::int32_t idx = fb.predict_index(compute_stats(e.matrix));
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<std::int32_t>(p.selector.candidates().size()));
    // predict() is the same pick, through the Format lens.
    EXPECT_EQ(fb.predict(compute_stats(e.matrix)),
              p.selector.candidates()[static_cast<std::size_t>(idx)]);
  }
}

TEST(Fallback, RuleTierRecognizesCanonicalStructures) {
  auto& p = pipeline();
  const FallbackSelector fb(p.selector.candidates());
  Rng rng(7);
  // A dense tridiagonal band is DIA's home turf.
  const Csr banded = gen_banded(128, 128, 1, 1.0, rng);
  EXPECT_EQ(fb.predict(compute_stats(banded)), Format::kDia);
  // candidate_index maps the pick back into the CNN's index space.
  EXPECT_EQ(fb.predict_index(compute_stats(banded)),
            p.selector.candidate_index(Format::kDia));
  EXPECT_EQ(p.selector.candidate_index(static_cast<Format>(99)), -1);
}

TEST(Fallback, TrainedTreeAnswersFromStatsFeatures) {
  auto& p = pipeline();
  const FallbackSelector fb =
      FallbackSelector::train(p.labeled, p.selector.candidates());
  EXPECT_TRUE(fb.has_tree());
  int agree = 0;
  for (const LabeledMatrix& lm : p.labeled) {
    const std::int32_t idx = fb.predict_index(compute_stats(*lm.matrix));
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<std::int32_t>(p.selector.candidates().size()));
    if (idx == lm.label) ++agree;
  }
  // A depth-12 CART tree fits its own training set far better than chance.
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(p.labeled.size()),
            0.6);
}

TEST(Deadline, CacheHitAnswersEvenWhenAlreadyExpired) {
  auto& p = pipeline();
  SelectionService service(p.selector);
  const Csr& a = p.corpus[0].matrix;
  const std::int32_t expected = service.predict_index(a);  // warm the cache
  // A zero deadline would expire instantly in the queue, but hits never
  // reach the queue: the cached answer is always delivered.
  std::future<std::int32_t> fut =
      service.submit({.matrix = &a, .deadline = microseconds{0}});
  EXPECT_EQ(fut.get(), expected);
  EXPECT_EQ(service.snapshot().deadline_expired, 0u);
}

TEST(Deadline, ExpiredWhileQueuedFailsWithDeadlineExceeded) {
  auto& p = pipeline();
  fault::ScopedFaults guard;
  // One worker, batch size 1: the first request pins the worker inside an
  // injected 60 ms forward delay; everything submitted meanwhile waits in
  // the queue past its own deadline.
  fault::Plan slow;
  slow.delay_next = 1;
  slow.delay_us = 60'000;
  fault::Injector::global().configure(fault::Site::kForward, slow);

  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 1;
  SelectionService service(p.selector, opts);

  std::future<std::int32_t> pinned =
      service.submit({.matrix = &p.corpus[0].matrix});
  // Give the worker time to pop the pinned request before queueing more.
  std::this_thread::sleep_for(milliseconds(10));
  std::future<std::int32_t> doomed1 = service.submit(
      {.matrix = &p.corpus[1].matrix, .deadline = milliseconds(1)});
  std::future<std::int32_t> doomed2 = service.submit(
      {.matrix = &p.corpus[2].matrix, .deadline = milliseconds(1)});
  // No deadline: served (late) once the worker frees up.
  std::future<std::int32_t> patient =
      service.submit({.matrix = &p.corpus[3].matrix});

  EXPECT_EQ(code_of(doomed1), errc::deadline_exceeded);
  EXPECT_EQ(code_of(doomed2), errc::deadline_exceeded);
  EXPECT_EQ(code_of(pinned), errc::ok);
  EXPECT_EQ(code_of(patient), errc::ok);

  const ServiceStats s = service.snapshot();
  EXPECT_EQ(s.deadline_expired, 2u);
  EXPECT_LT(s.availability(), 1.0);
  EXPECT_EQ(s.degraded, 0u);
}

TEST(Shed, WatermarkAnswersDegradedInsteadOfBlocking) {
  auto& p = pipeline();
  fault::ScopedFaults guard;
  // Pin the single worker so the queue backs up deterministically.
  fault::Plan slow;
  slow.delay_next = 1;
  slow.delay_us = 80'000;
  fault::Injector::global().configure(fault::Site::kForward, slow);

  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 1;
  opts.queue_capacity = 4;
  opts.shed_watermark = 0.5;  // shed once 2 of 4 slots are occupied
  SelectionService service(p.selector, opts);
  const FallbackSelector reference(p.selector.candidates());

  std::future<std::int32_t> pinned =
      service.submit({.matrix = &p.corpus[0].matrix});
  std::this_thread::sleep_for(milliseconds(10));
  // Fill to the watermark, then everything degrades.
  std::future<std::int32_t> q1 =
      service.submit({.matrix = &p.corpus[1].matrix});
  std::future<std::int32_t> q2 =
      service.submit({.matrix = &p.corpus[2].matrix});
  Timer shed_timer;
  std::future<std::int32_t> shed1 =
      service.submit({.matrix = &p.corpus[3].matrix});
  std::future<std::int32_t> shed2 =
      service.submit({.matrix = &p.corpus[4].matrix});
  // Degraded answers are immediate — no waiting on the pinned worker.
  EXPECT_EQ(shed1.wait_for(microseconds(0)), std::future_status::ready);
  EXPECT_EQ(shed2.wait_for(microseconds(0)), std::future_status::ready);
  EXPECT_LT(shed_timer.seconds(), 0.05);  // well under the 80 ms pin
  EXPECT_EQ(shed1.get(),
            reference.predict_index(compute_stats(p.corpus[3].matrix)));
  EXPECT_EQ(shed2.get(),
            reference.predict_index(compute_stats(p.corpus[4].matrix)));

  EXPECT_EQ(code_of(pinned), errc::ok);
  EXPECT_EQ(code_of(q1), errc::ok);
  EXPECT_EQ(code_of(q2), errc::ok);

  const ServiceStats s = service.snapshot();
  EXPECT_EQ(s.degraded, 2u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.availability(), 1.0);
  // Only the three CNN-served matrices were cached; degraded answers are
  // deliberately not (a heuristic pick must not outlive the overload).
  EXPECT_EQ(s.cache_entries, 3u);
}

TEST(Shed, FullQueueDegradesAfterBoundedRetries) {
  auto& p = pipeline();
  fault::ScopedFaults guard;
  // Script the push site itself to report "full" — no workers or queue
  // occupancy involved, so the retry accounting is exact.
  fault::Plan full;
  full.drop_next = 3;  // push attempt + 2 retries all see a full queue
  fault::Injector::global().configure(fault::Site::kQueuePush, full);

  ServiceOptions opts;
  opts.push_retries = 2;
  opts.push_backoff_us = 10;
  opts.shed_watermark = 2.0;  // disable watermark shedding; isolate retry
  SelectionService service(p.selector, opts);
  const FallbackSelector reference(p.selector.candidates());

  std::future<std::int32_t> fut =
      service.submit({.matrix = &p.corpus[5].matrix});
  EXPECT_EQ(fut.get(),
            reference.predict_index(compute_stats(p.corpus[5].matrix)));
  const ServiceStats s = service.snapshot();
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.degraded, 1u);
  EXPECT_EQ(s.shed, 0u);  // full-queue degrade, not a watermark shed

  // With the fault disarmed the same matrix goes through the CNN path.
  fault::Injector::global().reset();
  const std::int32_t cnn = service.predict_index(p.corpus[5].matrix);
  EXPECT_EQ(cnn, p.selector.predict_index(p.corpus[5].matrix));
}

TEST(FaultInjection, WorkerThrowFailsBatchWithoutLeakingPromises) {
  auto& p = pipeline();
  fault::ScopedFaults guard;
  fault::Plan boom;
  boom.throw_next = 1;
  fault::Injector::global().configure(fault::Site::kForward, boom);

  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 8;
  SelectionService service(p.selector, opts);

  std::vector<std::future<std::int32_t>> futs;
  for (int i = 0; i < 4; ++i)
    futs.push_back(
        service.submit({.matrix = &p.corpus[static_cast<std::size_t>(i)].matrix}));
  int injected = 0, ok = 0;
  for (auto& f : futs) {
    const errc c = code_of(f);
    if (c == errc::fault_injected) ++injected;
    if (c == errc::ok) ++ok;
  }
  // The scripted throw fails exactly the batch(es) it hit; every other
  // request is served. Nothing hangs, nothing reports broken_promise.
  EXPECT_GE(injected, 1);
  EXPECT_EQ(injected + ok, 4);
}

TEST(FaultInjection, DropFailsOnlyTheDroppedRequest) {
  auto& p = pipeline();
  fault::ScopedFaults guard;
  fault::Plan drop;
  drop.drop_next = 1;
  fault::Injector::global().configure(fault::Site::kWorkerPop, drop);

  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 1;  // one request per pop → the scripted drop hits one
  SelectionService service(p.selector, opts);

  std::future<std::int32_t> dropped =
      service.submit({.matrix = &p.corpus[0].matrix});
  EXPECT_EQ(code_of(dropped), errc::fault_injected);
  // Same matrix again: the drop consumed its script, this one is served
  // (and proves the drop didn't poison the cache with a bogus answer).
  std::future<std::int32_t> served =
      service.submit({.matrix = &p.corpus[0].matrix});
  EXPECT_EQ(served.get(), p.selector.predict_index(p.corpus[0].matrix));
  EXPECT_EQ(fault::Injector::global().injected(fault::Site::kWorkerPop), 1u);
}

TEST(ShutdownRace, ShutdownWhileDegradedPathActive) {
  auto& p = pipeline();
  fault::ScopedFaults guard;
  fault::Plan slow;
  slow.delay_prob = 1.0;
  slow.delay_us = 2'000;
  fault::Injector::global().configure(fault::Site::kForward, slow);

  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 2;
  opts.queue_capacity = 4;
  opts.shed_watermark = 0.5;
  SelectionService service(p.selector, opts);

  // Clients hammer submit (many of them shedding to the degraded path)
  // while shutdown lands mid-flight. Every future must resolve: a value,
  // deadline_exceeded, or service_shutdown — never a hang or a
  // broken_promise.
  std::atomic<int> unresolved{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 12; ++i) {
        const auto m = static_cast<std::size_t>((t * 12 + i) % 40);
        try {
          std::future<std::int32_t> fut = service.submit(
              {.matrix = &p.corpus[m].matrix, .deadline = milliseconds(50)});
          const errc c = code_of(fut);
          if (c != errc::ok && c != errc::deadline_exceeded &&
              c != errc::service_shutdown && c != errc::fault_injected)
            ++unresolved;
        } catch (const DnnspmvError&) {
          // submit itself may observe the shutdown — also a clean outcome
        }
      }
    });
  }
  std::this_thread::sleep_for(milliseconds(5));
  service.shutdown();
  for (auto& c : clients) c.join();
  EXPECT_EQ(unresolved.load(), 0);
  // Counters stayed coherent through the race.
  const ServiceStats s = service.snapshot();
  EXPECT_EQ(s.requests, s.cache_hits + s.cache_misses);
}

TEST(RobustMetrics, RegistryExportCarriesRobustnessCounters) {
  auto& p = pipeline();
  fault::ScopedFaults guard;
  fault::Plan full;
  full.drop_next = 1;
  fault::Injector::global().configure(fault::Site::kQueuePush, full);

  ServiceOptions opts;
  opts.push_retries = 0;
  opts.shed_watermark = 2.0;
  SelectionService service(p.selector, opts);
  std::future<std::int32_t> fut =
      service.submit({.matrix = &p.corpus[6].matrix});
  (void)fut.get();  // degraded answer

  const ServiceStats s = service.snapshot();
  const std::string& prefix = service.metrics().prefix();
  const obs::MetricsSnapshot reg =
      service.metrics().registry().snapshot(prefix);
  EXPECT_EQ(reg.counter_or(prefix + "degraded"), s.degraded);
  EXPECT_EQ(reg.counter_or(prefix + "shed"), s.shed);
  EXPECT_EQ(reg.counter_or(prefix + "retries"), s.retries);
  EXPECT_EQ(reg.counter_or(prefix + "deadline_expired"), s.deadline_expired);
  EXPECT_EQ(s.degraded, 1u);
  // The lenient accessors read absent names as their fallback.
  EXPECT_EQ(reg.counter_or(prefix + "no_such_counter", 17u), 17u);
  EXPECT_EQ(reg.gauge_or(prefix + "no_such_gauge", 2.5), 2.5);
  EXPECT_EQ(reg.histogram_or(prefix + "no_such_histogram").count, 0u);
}

}  // namespace
}  // namespace dnnspmv
