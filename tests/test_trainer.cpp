#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include "core/represent.hpp"

namespace dnnspmv {
namespace {

/// Tiny synthetic dataset: class 0 = bright source-0, class 1 = bright
/// source-1 (two 16x16 sources).
Dataset make_toy_dataset(int n, std::uint64_t seed) {
  Dataset ds;
  ds.candidates = {Format::kCoo, Format::kCsr};
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Sample s;
    s.label = static_cast<std::int32_t>(rng.uniform_u64(2));
    for (int src = 0; src < 2; ++src) {
      Tensor t({16, 16});
      const float base = (src == s.label) ? 0.9f : 0.1f;
      for (std::int64_t j = 0; j < t.size(); ++j)
        t[j] = base + static_cast<float>(rng.uniform(-0.05, 0.05));
      s.inputs.push_back(std::move(t));
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

CnnSpec toy_spec() {
  CnnSpec spec;
  spec.input_hw = {{16, 16}, {16, 16}};
  spec.num_classes = 2;
  spec.conv1_channels = 4;
  spec.conv2_channels = 4;
  spec.head_hidden = 16;
  spec.dropout = 0.0;
  return spec;
}

TEST(AssembleBatch, LateMergeLayout) {
  const Dataset ds = make_toy_dataset(5, 1);
  const auto batch = assemble_batch(ds, {0, 2, 4}, 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].shape(), (std::vector<std::int64_t>{3, 1, 16, 16}));
  // Sample 2's source 1 lands at batch position 1 of input 1.
  EXPECT_EQ(batch[1].at4(1, 0, 3, 3), ds.samples[2].inputs[1].at2(3, 3));
}

TEST(AssembleBatch, EarlyMergeStacksChannels) {
  const Dataset ds = make_toy_dataset(4, 2);
  const auto batch = assemble_batch(ds, {1, 3}, 1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].shape(), (std::vector<std::int64_t>{2, 2, 16, 16}));
  EXPECT_EQ(batch[0].at4(0, 1, 5, 5), ds.samples[1].inputs[1].at2(5, 5));
}

TEST(AssembleBatch, RejectsImpossibleFanIn) {
  const Dataset ds = make_toy_dataset(2, 3);
  EXPECT_THROW(assemble_batch(ds, {0}, 3), std::runtime_error);
}

TEST(Trainer, LearnsToyTask) {
  const Dataset ds = make_toy_dataset(64, 4);
  MergeNet net = build_cnn(toy_spec());
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch = 16;
  cfg.lr = 3e-3;
  const TrainHistory h = train_cnn(net, ds, 2, cfg);
  EXPECT_EQ(h.epoch_loss.size(), 8u);
  EXPECT_LT(h.epoch_loss.back(), h.epoch_loss.front());
  EXPECT_GT(accuracy_cnn(net, ds, 2), 0.95);
}

TEST(Trainer, EarlyMergeAlsoLearns) {
  const Dataset ds = make_toy_dataset(64, 5);
  CnnSpec spec = toy_spec();
  spec.late_merge = false;
  MergeNet net = build_cnn(spec);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch = 16;
  cfg.lr = 3e-3;
  train_cnn(net, ds, 1, cfg);
  EXPECT_GT(accuracy_cnn(net, ds, 1), 0.9);
}

TEST(Trainer, StepLossCountMatchesBatches) {
  const Dataset ds = make_toy_dataset(50, 6);
  MergeNet net = build_cnn(toy_spec());
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch = 16;
  const TrainHistory h = train_cnn(net, ds, 2, cfg);
  // ceil(50/16) = 4 steps per epoch.
  EXPECT_EQ(h.step_loss.size(), 8u);
}

TEST(Trainer, DeterministicGivenSeed) {
  const Dataset ds = make_toy_dataset(32, 7);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch = 8;
  cfg.seed = 99;
  MergeNet a = build_cnn(toy_spec());
  MergeNet b = build_cnn(toy_spec());
  const auto ha = train_cnn(a, ds, 2, cfg);
  const auto hb = train_cnn(b, ds, 2, cfg);
  ASSERT_EQ(ha.step_loss.size(), hb.step_loss.size());
  for (std::size_t i = 0; i < ha.step_loss.size(); ++i)
    EXPECT_DOUBLE_EQ(ha.step_loss[i], hb.step_loss[i]);
}

TEST(Trainer, PredictReturnsOnePerSample) {
  const Dataset ds = make_toy_dataset(23, 8);
  MergeNet net = build_cnn(toy_spec());
  const auto pred = predict_cnn(net, ds, 2, 10);  // uneven final batch
  EXPECT_EQ(pred.size(), 23u);
  for (std::int32_t p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 2);
  }
}

}  // namespace
}  // namespace dnnspmv
