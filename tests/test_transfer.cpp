#include "core/transfer.hpp"

#include <gtest/gtest.h>

namespace dnnspmv {
namespace {

Dataset make_toy(int n, std::uint64_t seed, bool flip_labels = false) {
  Dataset ds;
  ds.candidates = {Format::kCoo, Format::kCsr};
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Sample s;
    const auto cls = static_cast<std::int32_t>(rng.uniform_u64(2));
    s.label = flip_labels ? (1 - cls) : cls;
    for (int src = 0; src < 2; ++src) {
      Tensor t({16, 16});
      const float base = (src == cls) ? 0.9f : 0.1f;
      for (std::int64_t j = 0; j < t.size(); ++j)
        t[j] = base + static_cast<float>(rng.uniform(-0.05, 0.05));
      s.inputs.push_back(std::move(t));
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

CnnSpec toy_spec() {
  CnnSpec spec;
  spec.input_hw = {{16, 16}, {16, 16}};
  spec.num_classes = 2;
  spec.conv1_channels = 4;
  spec.conv2_channels = 4;
  spec.head_hidden = 16;
  spec.dropout = 0.0;
  return spec;
}

std::vector<float> snapshot(const std::vector<Param*>& ps) {
  std::vector<float> out;
  for (Param* p : ps)
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      out.push_back(p->value[i]);
  return out;
}

struct Trained {
  MergeNet source;
  Dataset source_data;
  Trained() : source(build_cnn(toy_spec())), source_data(make_toy(48, 1)) {
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batch = 16;
    train_cnn(source, source_data, 2, cfg);
  }
};

TEST(Transfer, MethodNames) {
  EXPECT_EQ(migration_method_name(MigrationMethod::kFromScratch),
            "from-scratch");
  EXPECT_EQ(migration_method_name(MigrationMethod::kTopEvolve),
            "top-evolvement");
}

TEST(Transfer, TopEvolveKeepsTowersExactly) {
  Trained t;
  const Dataset target = make_toy(32, 2, /*flip_labels=*/true);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch = 16;
  MergeNet migrated = migrate_model(toy_spec(), t.source,
                                    MigrationMethod::kTopEvolve, target, cfg);
  // Tower params identical to the source; head params changed.
  for (std::size_t tw = 0; tw < 2; ++tw) {
    const auto src = snapshot(t.source.tower(tw).params());
    const auto dst = snapshot(migrated.tower(tw).params());
    EXPECT_EQ(src, dst) << "tower " << tw << " must stay frozen";
  }
  EXPECT_NE(snapshot(t.source.head_params()),
            snapshot(migrated.head_params()));
}

TEST(Transfer, ContinuousEvolvementMovesTowers) {
  Trained t;
  const Dataset target = make_toy(32, 3, true);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch = 16;
  MergeNet migrated = migrate_model(toy_spec(), t.source,
                                    MigrationMethod::kContinuous, target, cfg);
  EXPECT_NE(snapshot(t.source.tower(0).params()),
            snapshot(migrated.tower(0).params()));
}

TEST(Transfer, FromScratchIgnoresSourceWeights) {
  Trained t;
  const Dataset empty_target = make_toy(0, 4);
  TrainConfig cfg;
  cfg.epochs = 0;
  MergeNet migrated =
      migrate_model(toy_spec(), t.source, MigrationMethod::kFromScratch,
                    empty_target, cfg);
  // With no training and fresh init, weights equal a fresh build_cnn.
  MergeNet fresh = build_cnn(toy_spec());
  EXPECT_EQ(snapshot(fresh.params()), snapshot(migrated.params()));
  EXPECT_NE(snapshot(t.source.params()), snapshot(migrated.params()));
}

TEST(Transfer, WarmStartBeatsScratchOnFewSamples) {
  // The Figure 9 effect in miniature: with target labels similar to the
  // source task and only a handful of retraining samples, the evolvement
  // methods should outperform training from scratch.
  Trained t;
  const Dataset target_train = make_toy(12, 5);   // same rule as source
  const Dataset target_test = make_toy(64, 6);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch = 8;

  MergeNet scratch = migrate_model(
      toy_spec(), t.source, MigrationMethod::kFromScratch, target_train, cfg);
  MergeNet top = migrate_model(toy_spec(), t.source,
                               MigrationMethod::kTopEvolve, target_train, cfg);
  const double acc_scratch = accuracy_cnn(scratch, target_test, 2);
  const double acc_top = accuracy_cnn(top, target_test, 2);
  EXPECT_GE(acc_top, acc_scratch);
  EXPECT_GT(acc_top, 0.75);
}

TEST(Transfer, MigratedModelIsUnfrozenAfterContinuous) {
  Trained t;
  const Dataset target = make_toy(8, 7);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch = 8;
  MergeNet migrated = migrate_model(toy_spec(), t.source,
                                    MigrationMethod::kContinuous, target, cfg);
  for (Param* p : migrated.params()) EXPECT_FALSE(p->frozen);
}

}  // namespace
}  // namespace dnnspmv
