#include "core/model_zoo.hpp"

#include <gtest/gtest.h>

namespace dnnspmv {
namespace {

CnnSpec hist_spec() {
  CnnSpec s;
  s.input_hw = {{32, 16}, {32, 16}};
  s.num_classes = 4;
  return s;
}

TEST(ModelZoo, LateMergeHasOneTowerPerSource) {
  MergeNet net = build_cnn(hist_spec());
  EXPECT_EQ(net.num_towers(), 2u);
  EXPECT_EQ(num_net_inputs(hist_spec()), 2);
}

TEST(ModelZoo, EarlyMergeHasSingleTower) {
  CnnSpec s = hist_spec();
  s.input_hw = {{32, 32}, {32, 32}};
  s.late_merge = false;
  MergeNet net = build_cnn(s);
  EXPECT_EQ(net.num_towers(), 1u);
  EXPECT_EQ(num_net_inputs(s), 1);
}

TEST(ModelZoo, EarlyMergeRejectsMismatchedShapes) {
  CnnSpec s;
  s.input_hw = {{32, 32}, {32, 16}};
  s.late_merge = false;
  EXPECT_THROW(build_cnn(s), std::runtime_error);
}

TEST(ModelZoo, LogitShapeMatchesClasses) {
  MergeNet net = build_cnn(hist_spec());
  std::vector<Tensor> inputs(2, Tensor({3, 1, 32, 16}));
  Tensor logits;
  net.forward(inputs, logits, false);
  EXPECT_EQ(logits.shape(), (std::vector<std::int64_t>{3, 4}));
}

TEST(ModelZoo, EarlyMergeForwardWorks) {
  CnnSpec s;
  s.input_hw = {{16, 16}, {16, 16}};
  s.num_classes = 6;
  s.late_merge = false;
  MergeNet net = build_cnn(s);
  std::vector<Tensor> inputs(1, Tensor({2, 2, 16, 16}));
  Tensor logits;
  net.forward(inputs, logits, false);
  EXPECT_EQ(logits.shape(), (std::vector<std::int64_t>{2, 6}));
}

TEST(ModelZoo, ThirdConvStageOnlyForLargeInputs) {
  CnnSpec small = hist_spec();
  CnnSpec big = hist_spec();
  big.input_hw = {{128, 128}, {128, 128}};
  MergeNet ns = build_cnn(small);
  MergeNet nb = build_cnn(big);
  // The 128×128 tower has one extra conv block → more layers.
  EXPECT_GT(nb.tower(0).num_layers(), ns.tower(0).num_layers());
}

TEST(ModelZoo, SeedReproducibleWeights) {
  MergeNet a = build_cnn(hist_spec());
  MergeNet b = build_cnn(hist_spec());
  const auto pa = a.params(), pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->value.size(); ++j)
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(ModelZoo, DifferentSeedsDifferentWeights) {
  CnnSpec s2 = hist_spec();
  s2.seed = 99;
  MergeNet a = build_cnn(hist_spec());
  MergeNet b = build_cnn(s2);
  bool differ = false;
  const auto pa = a.params(), pb = b.params();
  for (std::size_t i = 0; i < pa.size() && !differ; ++i)
    for (std::int64_t j = 0; j < pa[i]->value.size(); ++j)
      if (pa[i]->value[j] != pb[i]->value[j]) {
        differ = true;
        break;
      }
  EXPECT_TRUE(differ);
}

TEST(ModelZoo, RejectsTinyInputs) {
  CnnSpec s;
  s.input_hw = {{4, 4}};
  EXPECT_THROW(build_cnn(s), std::runtime_error);
}

TEST(ModelZoo, CodesAreConcatenatedTowerOutputs) {
  MergeNet net = build_cnn(hist_spec());
  std::vector<Tensor> inputs(2, Tensor({2, 1, 32, 16}));
  Rng rng(3);
  inputs[0].fill_uniform(rng, 0.0f, 1.0f);
  inputs[1].fill_uniform(rng, 0.0f, 1.0f);
  Tensor codes;
  net.codes(inputs, codes);
  EXPECT_EQ(codes.dim(0), 2);
  EXPECT_GT(codes.dim(1), 0);
  // Codes are deterministic for fixed inputs.
  Tensor codes2;
  net.codes(inputs, codes2);
  for (std::int64_t i = 0; i < codes.size(); ++i)
    EXPECT_EQ(codes[i], codes2[i]);
}

}  // namespace
}  // namespace dnnspmv
