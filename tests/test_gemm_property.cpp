// Property tests for the packed GEMM (tensor/gemm.cpp).
//
// 1. GemmProperty.*: sgemm / sgemm_at / sgemm_bt and the bias-epilogue
//    variants agree with a double-accumulating naive triple loop over
//    randomized shapes — including shapes not divisible by the register
//    tile and multi-depth-block k — for alpha/beta in {0, 1, 0.5}.
// 2. GemmProperty.ColumnPositionIndependence: a column's accumulation is
//    bit-identical wherever it lands in the tiling (whole C vs one-column
//    calls). This is the invariant the batched conv relies on.
// 3. ConvBatchStability.*: Conv2D's batched forward (one [psz, N*opix]
//    im2col + one GEMM) equals per-sample forward bitwise.
#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "nn/conv2d.hpp"
#include "tensor/tensor.hpp"

namespace dnnspmv {
namespace {

struct GemmCase {
  std::int64_t m, n, k;
};

// Shape zoo: tile-exact, every edge flavour (m%6, n%16, both), k crossing
// the 256-deep block boundary, m crossing the 64-row block boundary, and
// n crossing the 2048-column block boundary.
const std::array<GemmCase, 9> kCases = {{{1, 1, 1},
                                         {6, 16, 9},
                                         {3, 5, 7},
                                         {7, 17, 5},
                                         {13, 33, 64},
                                         {12, 128, 9},
                                         {23, 40, 300},
                                         {70, 50, 20},
                                         {64, 2100, 10}}};

const std::array<float, 3> kScales = {0.0f, 1.0f, 0.5f};

// Naive strided reference: logical A[i,p] at a[i*rs_a + p*cs_a], B[p,j] at
// b[p*rs_b + j*cs_b]. Accumulates in double so it is strictly more
// accurate than any float path under test.
std::vector<float> naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                              float alpha, const float* a, std::int64_t rs_a,
                              std::int64_t cs_a, const float* b,
                              std::int64_t rs_b, std::int64_t cs_b,
                              float beta, const std::vector<float>& c0,
                              const float* row_bias, const float* col_bias) {
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * rs_a + p * cs_a]) *
               static_cast<double>(b[p * rs_b + j * cs_b]);
      double v = static_cast<double>(alpha) * acc;
      if (beta != 0.0f)
        v += static_cast<double>(beta) *
             static_cast<double>(c0[static_cast<std::size_t>(i * n + j)]);
      if (row_bias) v += static_cast<double>(row_bias[i]);
      if (col_bias) v += static_cast<double>(col_bias[j]);
      c[static_cast<std::size_t>(i * n + j)] = static_cast<float>(v);
    }
  }
  return c;
}

void expect_close(const std::vector<float>& ref, const Tensor& got,
                  const GemmCase& cs, float alpha, float beta) {
  ASSERT_EQ(static_cast<std::int64_t>(ref.size()), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float tol = 5e-4f * (1.0f + std::fabs(ref[i]));
    ASSERT_NEAR(ref[i], got[static_cast<std::int64_t>(i)], tol)
        << "m=" << cs.m << " n=" << cs.n << " k=" << cs.k
        << " alpha=" << alpha << " beta=" << beta << " idx=" << i;
  }
}

TEST(GemmProperty, MatchesNaiveReference) {
  Rng rng(20240801);
  for (const GemmCase& cs : kCases) {
    Tensor a({cs.m, cs.k}), b({cs.k, cs.n}), c0({cs.m, cs.n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    c0.fill_uniform(rng, -1.0f, 1.0f);
    const std::vector<float> init(c0.data(), c0.data() + c0.size());
    for (float alpha : kScales) {
      for (float beta : kScales) {
        Tensor c({cs.m, cs.n});
        std::memcpy(c.data(), init.data(), init.size() * sizeof(float));
        sgemm(cs.m, cs.n, cs.k, alpha, a.data(), b.data(), beta, c.data());
        expect_close(naive_gemm(cs.m, cs.n, cs.k, alpha, a.data(), cs.k, 1,
                                b.data(), cs.n, 1, beta, init, nullptr,
                                nullptr),
                     c, cs, alpha, beta);
      }
    }
  }
}

TEST(GemmProperty, TransposedVariantsMatchNaive) {
  Rng rng(20240802);
  for (const GemmCase& cs : kCases) {
    Tensor at({cs.k, cs.m}), bt({cs.n, cs.k}), b({cs.k, cs.n});
    Tensor a({cs.m, cs.k}), c0({cs.m, cs.n});
    at.fill_uniform(rng, -1.0f, 1.0f);
    bt.fill_uniform(rng, -1.0f, 1.0f);
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    c0.fill_uniform(rng, -1.0f, 1.0f);
    const std::vector<float> init(c0.data(), c0.data() + c0.size());
    for (float alpha : kScales) {
      for (float beta : kScales) {
        Tensor c({cs.m, cs.n});
        std::memcpy(c.data(), init.data(), init.size() * sizeof(float));
        sgemm_at(cs.m, cs.n, cs.k, alpha, at.data(), b.data(), beta,
                 c.data());
        expect_close(naive_gemm(cs.m, cs.n, cs.k, alpha, at.data(), 1, cs.m,
                                b.data(), cs.n, 1, beta, init, nullptr,
                                nullptr),
                     c, cs, alpha, beta);

        std::memcpy(c.data(), init.data(), init.size() * sizeof(float));
        sgemm_bt(cs.m, cs.n, cs.k, alpha, a.data(), bt.data(), beta,
                 c.data());
        expect_close(naive_gemm(cs.m, cs.n, cs.k, alpha, a.data(), cs.k, 1,
                                bt.data(), 1, cs.k, beta, init, nullptr,
                                nullptr),
                     c, cs, alpha, beta);
      }
    }
  }
}

TEST(GemmProperty, BiasEpilogueVariantsMatchNaive) {
  Rng rng(20240803);
  for (const GemmCase& cs : kCases) {
    Tensor a({cs.m, cs.k}), b({cs.k, cs.n}), bt({cs.n, cs.k});
    Tensor rb({cs.m}), cb({cs.n}), c0({cs.m, cs.n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    bt.fill_uniform(rng, -1.0f, 1.0f);
    rb.fill_uniform(rng, -1.0f, 1.0f);
    cb.fill_uniform(rng, -1.0f, 1.0f);
    c0.fill_uniform(rng, -1.0f, 1.0f);
    const std::vector<float> init(c0.data(), c0.data() + c0.size());
    for (float beta : kScales) {
      Tensor c({cs.m, cs.n});
      std::memcpy(c.data(), init.data(), init.size() * sizeof(float));
      sgemm_row_bias(cs.m, cs.n, cs.k, 1.0f, a.data(), b.data(), beta,
                     c.data(), rb.data());
      expect_close(naive_gemm(cs.m, cs.n, cs.k, 1.0f, a.data(), cs.k, 1,
                              b.data(), cs.n, 1, beta, init, rb.data(),
                              nullptr),
                   c, cs, 1.0f, beta);

      std::memcpy(c.data(), init.data(), init.size() * sizeof(float));
      sgemm_bt_col_bias(cs.m, cs.n, cs.k, 1.0f, a.data(), bt.data(), beta,
                        c.data(), cb.data());
      expect_close(naive_gemm(cs.m, cs.n, cs.k, 1.0f, a.data(), cs.k, 1,
                              bt.data(), 1, cs.k, beta, init, nullptr,
                              cb.data()),
                   c, cs, 1.0f, beta);
    }
  }
}

// alpha == 0 or k == 0 takes the parallel epilogue-only path; it must scale
// and apply biases exactly like the naive reference.
TEST(GemmProperty, EpilogueOnlyPath) {
  Rng rng(20240804);
  const std::int64_t m = 11, n = 29, k = 13;
  Tensor a({m, k}), b({k, n}), rb({m}), c0({m, n});
  a.fill_uniform(rng, -1.0f, 1.0f);
  b.fill_uniform(rng, -1.0f, 1.0f);
  rb.fill_uniform(rng, -1.0f, 1.0f);
  c0.fill_uniform(rng, -1.0f, 1.0f);
  const std::vector<float> init(c0.data(), c0.data() + c0.size());

  Tensor c({m, n});
  std::memcpy(c.data(), init.data(), init.size() * sizeof(float));
  sgemm_row_bias(m, n, k, 0.0f, a.data(), b.data(), 0.5f, c.data(),
                 rb.data());
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      EXPECT_FLOAT_EQ(c.at2(i, j),
                      0.5f * init[static_cast<std::size_t>(i * n + j)] +
                          rb[i]);

  std::memcpy(c.data(), init.data(), init.size() * sizeof(float));
  sgemm(m, n, 0, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::int64_t i = 0; i < m * n; ++i) EXPECT_EQ(c[i], 0.0f);
}

// The load-bearing determinism property: computing C whole vs one column
// at a time gives bitwise-identical floats, i.e. a column's accumulation
// chain does not depend on where it sits in the tiling (full tile, tail
// tile, or its own single-column call).
TEST(GemmProperty, ColumnPositionIndependence) {
  Rng rng(20240805);
  const std::int64_t m = 13, n = 37, k = 70;
  Tensor a({m, k}), b({k, n});
  a.fill_uniform(rng, -1.0f, 1.0f);
  b.fill_uniform(rng, -1.0f, 1.0f);

  Tensor whole({m, n});
  sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, whole.data());

  Tensor bcol({k, 1}), ccol({m, 1});
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t p = 0; p < k; ++p) bcol[p] = b.at2(p, j);
    sgemm(m, 1, k, 1.0f, a.data(), bcol.data(), 0.0f, ccol.data());
    for (std::int64_t i = 0; i < m; ++i)
      ASSERT_EQ(whole.at2(i, j), ccol[i]) << "col " << j << " row " << i;
  }
}

// Batched conv forward (all N samples in one im2col + one GEMM) must equal
// per-sample forward bitwise — format selection decisions may not depend
// on how requests were batched by the serving tier.
TEST(ConvBatchStability, BatchedForwardEqualsPerSampleBitwise) {
  Rng rng(20240806);
  const std::int64_t N = 5, C = 3, H = 9, W = 7;
  Conv2D conv(C, 10, 3, 2, 1, rng);

  Tensor in({N, C, H, W});
  in.fill_uniform(rng, -1.0f, 1.0f);

  Tensor batched;
  conv.forward(in, batched, false);

  const auto out_shape = conv.output_shape({1, C, H, W});
  Tensor one({1, C, H, W}), out_one;
  const std::int64_t isz = C * H * W;
  for (std::int64_t s = 0; s < N; ++s) {
    std::memcpy(one.data(), in.data() + s * isz,
                static_cast<std::size_t>(isz) * sizeof(float));
    conv.forward(one, out_one, false);
    ASSERT_EQ(out_one.size(), batched.size() / N);
    const float* bslice = batched.data() + s * out_one.size();
    for (std::int64_t i = 0; i < out_one.size(); ++i)
      ASSERT_EQ(bslice[i], out_one[i]) << "sample " << s << " idx " << i;
  }
  (void)out_shape;
}

// Same forward twice through the same workspace: buffers are reused, the
// bits must not change.
TEST(ConvBatchStability, RepeatForwardIsIdempotent) {
  Rng rng(20240807);
  Conv2D conv(2, 6, 3, 1, 1, rng);
  Tensor in({4, 2, 8, 8});
  in.fill_uniform(rng, -1.0f, 1.0f);

  Tensor out1, out2;
  conv.forward(in, out1, false);
  conv.forward(in, out2, false);
  ASSERT_EQ(out1.size(), out2.size());
  for (std::int64_t i = 0; i < out1.size(); ++i)
    ASSERT_EQ(out1[i], out2[i]);
}

}  // namespace
}  // namespace dnnspmv
