// Edge cases for the sparse substrate: empty rows, degenerate shapes,
// refusal conditions, and kernel determinism.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {
namespace {

Csr diag_matrix(index_t n) {
  std::vector<Triplet> ts;
  for (index_t i = 0; i < n; ++i) ts.push_back({i, i, 1.0 + i});
  return csr_from_triplets(n, n, std::move(ts));
}

TEST(Edge, MatrixWithEmptyRowsAllFormats) {
  // Rows 1 and 3 empty.
  const Csr a =
      csr_from_triplets(5, 5, {{0, 0, 1.0}, {2, 4, 2.0}, {4, 2, 3.0}});
  std::vector<double> x = {1, 2, 3, 4, 5};
  for (std::int32_t f = 0; f < kNumFormats; ++f) {
    const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
    ASSERT_TRUE(m.has_value());
    std::vector<double> y(5, -1.0), ref(5, 0.0);
    m->spmv(x, y);
    spmv_reference(a, x, ref);
    for (int i = 0; i < 5; ++i)
      EXPECT_DOUBLE_EQ(y[i], ref[i])
          << format_name(static_cast<Format>(f)) << " row " << i;
  }
}

TEST(Edge, SingleRowMatrix) {
  const Csr a = csr_from_triplets(1, 6, {{0, 0, 1.0}, {0, 5, 2.0}});
  std::vector<double> x = {1, 1, 1, 1, 1, 3};
  for (std::int32_t f = 0; f < kNumFormats; ++f) {
    const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
    if (!m) continue;
    std::vector<double> y(1, 0.0);
    m->spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 7.0) << format_name(static_cast<Format>(f));
  }
}

TEST(Edge, SingleColumnMatrix) {
  const Csr a = csr_from_triplets(4, 1, {{0, 0, 1.0}, {3, 0, 2.0}});
  std::vector<double> x = {2.0};
  for (std::int32_t f = 0; f < kNumFormats; ++f) {
    const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
    if (!m) continue;
    std::vector<double> y(4, -1.0);
    m->spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_DOUBLE_EQ(y[3], 4.0);
  }
}

TEST(Edge, TallAndWideRectangular) {
  Rng rng(3);
  for (const auto& [r, c] : std::vector<std::pair<index_t, index_t>>{
           {100, 7}, {7, 100}}) {
    const Csr a = gen_uniform_rows(r, c, std::min<index_t>(3, c), 0, rng);
    std::vector<double> x(static_cast<std::size_t>(c), 1.0);
    for (std::int32_t f = 0; f < kNumFormats; ++f) {
      const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
      if (!m) continue;
      std::vector<double> y(static_cast<std::size_t>(r), 0.0);
      std::vector<double> ref(static_cast<std::size_t>(r), 0.0);
      m->spmv(x, y);
      spmv_reference(a, x, ref);
      for (index_t i = 0; i < r; ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-12)
            << format_name(static_cast<Format>(f)) << " " << r << "x" << c;
    }
  }
}

TEST(Edge, FullyDenseMatrix) {
  Rng rng(4);
  const Csr a = gen_uniform_rows(16, 16, 16, 0, rng);
  EXPECT_EQ(a.nnz(), 256);
  std::vector<double> x(16, 0.5), ref(16, 0.0);
  spmv_reference(a, x, ref);
  for (std::int32_t f = 0; f < kNumFormats; ++f) {
    const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
    ASSERT_TRUE(m.has_value()) << format_name(static_cast<Format>(f));
    std::vector<double> y(16, 0.0);
    m->spmv(x, y);
    for (int i = 0; i < 16; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
  }
}

TEST(Edge, DiaRefusesScatteredMatrix) {
  // One entry per distinct diagonal → ndiags*rows >> nnz.
  std::vector<Triplet> ts;
  const index_t n = 200;
  for (index_t i = 0; i < n; ++i) ts.push_back({i, (i * 37) % n, 1.0});
  const Csr a = csr_from_triplets(n, n, std::move(ts));
  EXPECT_FALSE(dia_from_csr(a).has_value());
}

TEST(Edge, DiaAcceptsPureDiagonal) {
  const Csr a = diag_matrix(64);
  const auto d = dia_from_csr(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->ndiags(), 1);
  EXPECT_EQ(d->offsets[0], 0);
}

TEST(Edge, EllRefusesSingleLongRow) {
  std::vector<Triplet> ts;
  const index_t n = 400;
  for (index_t c = 0; c < n; ++c) ts.push_back({0, c, 1.0});  // dense row 0
  for (index_t r = 1; r < n; ++r) ts.push_back({r, r, 1.0});
  const Csr a = csr_from_triplets(n, n, std::move(ts));
  EXPECT_FALSE(ell_from_csr(a).has_value());
}

TEST(Edge, ZeroNnzMatrixSafeForCooCsr) {
  const Csr a = csr_from_triplets(3, 3, {});
  EXPECT_EQ(a.nnz(), 0);
  std::vector<double> x = {1, 2, 3};
  for (Format f : {Format::kCoo, Format::kCsr, Format::kBsr, Format::kCsr5,
                   Format::kHyb}) {
    const auto m = AnyFormatMatrix::convert(a, f);
    ASSERT_TRUE(m.has_value()) << format_name(f);
    std::vector<double> y(3, 5.0);
    m->spmv(x, y);
    for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], 0.0);
  }
}

TEST(Edge, ValidateCatchesBadPtr) {
  Csr a = diag_matrix(3);
  a.ptr[1] = 5;  // exceeds nnz
  EXPECT_THROW(a.validate(), std::runtime_error);
}

TEST(Edge, ValidateCatchesUnsortedColumns) {
  Csr a;
  a.rows = 1;
  a.cols = 3;
  a.ptr = {0, 2};
  a.idx = {2, 0};  // unsorted
  a.val = {1.0, 2.0};
  EXPECT_THROW(a.validate(), std::runtime_error);
}

TEST(Edge, SpmvRejectsWrongVectorSizes) {
  const Csr a = diag_matrix(4);
  std::vector<double> x(3, 1.0), y(4, 0.0);
  EXPECT_THROW(spmv_csr(a, x, y), std::runtime_error);
  std::vector<double> x4(4, 1.0), y3(3, 0.0);
  EXPECT_THROW(spmv_csr(a, x4, y3), std::runtime_error);
}

TEST(Edge, KernelsAreDeterministicAcrossRuns) {
  Rng rng(11);
  const Csr a = gen_powerlaw(200, 200, 10.0, 1.5, rng);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (std::int32_t f = 0; f < kNumFormats; ++f) {
    const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(f));
    if (!m) continue;
    std::vector<double> y1(200, 0.0), y2(200, 0.0);
    m->spmv(x, y1);
    m->spmv(x, y2);
    EXPECT_EQ(y1, y2) << format_name(static_cast<Format>(f));
  }
}

TEST(Edge, BytesAccountingPositiveAndOrdered) {
  Rng rng(12);
  const Csr a = gen_banded(128, 128, 2, 1.0, rng);
  const auto csr = AnyFormatMatrix::convert(a, Format::kCsr);
  const auto coo = AnyFormatMatrix::convert(a, Format::kCoo);
  ASSERT_TRUE(csr && coo);
  EXPECT_GT(csr->bytes(), 0);
  // COO stores explicit row indices → strictly more bytes than CSR here.
  EXPECT_GT(coo->bytes(), csr->bytes());
}

}  // namespace
}  // namespace dnnspmv
