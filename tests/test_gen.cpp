// Generator invariants: every generator yields a valid CSR with the
// structural properties its class advertises.
#include "gen/generators.hpp"

#include <gtest/gtest.h>

#include "gen/corpus.hpp"
#include "sparse/stats.hpp"

namespace dnnspmv {
namespace {

TEST(Gen, BandedStaysWithinBand) {
  Rng rng(1);
  const Csr a = gen_banded(100, 100, 5, 0.8, rng);
  a.validate();
  const MatrixStats s = compute_stats(a);
  EXPECT_LE(s.bandwidth, 5);
  EXPECT_GT(a.nnz(), 0);
}

TEST(Gen, BandedFullFillIsCompleteBand) {
  Rng rng(2);
  const Csr a = gen_banded(50, 50, 1, 1.0, rng);
  // Tridiagonal: 3n - 2 entries.
  EXPECT_EQ(a.nnz(), 3 * 50 - 2);
}

TEST(Gen, MultidiagHasRequestedDiagonalCount) {
  Rng rng(3);
  const Csr a = gen_multidiag(128, 128, 7, 1.0, rng);
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.ndiags, 7);
  EXPECT_GT(s.diag_frac, 0.0);  // principal diagonal always included
}

TEST(Gen, UniformRowsExactWhenNoJitter) {
  Rng rng(4);
  const Csr a = gen_uniform_rows(60, 80, 7, 0, rng);
  for (index_t r = 0; r < a.rows; ++r) EXPECT_EQ(a.row_nnz(r), 7);
}

TEST(Gen, UniformRowsJitterBounded) {
  Rng rng(5);
  const Csr a = gen_uniform_rows(60, 80, 7, 2, rng);
  for (index_t r = 0; r < a.rows; ++r) {
    EXPECT_GE(a.row_nnz(r), 5);
    EXPECT_LE(a.row_nnz(r), 9);
  }
}

TEST(Gen, PowerLawIsSkewed) {
  Rng rng(6);
  const Csr a = gen_powerlaw(500, 500, 8.0, 1.4, rng);
  a.validate();
  const MatrixStats s = compute_stats(a);
  EXPECT_GT(s.max_over_mean, 3.0);  // heavy tail
  EXPECT_NEAR(s.row_nnz_mean, 8.0, 4.0);
}

TEST(Gen, BlockEntriesAlignToBlocks) {
  Rng rng(7);
  const Csr a = gen_block(64, 64, 2.0, 1.0, rng);
  const MatrixStats s = compute_stats(a);
  EXPECT_NEAR(s.bsr_fill, 1.0, 1e-9);  // inner_fill=1 → dense blocks
}

TEST(Gen, HypersparseHasFewEntries) {
  Rng rng(8);
  const Csr a = gen_hypersparse(1000, 1000, 50, rng);
  a.validate();
  EXPECT_LE(a.nnz(), 50);  // duplicates may merge
  EXPECT_GT(a.nnz(), 30);
  const MatrixStats s = compute_stats(a);
  EXPECT_GT(s.empty_rows, 900);
}

TEST(Gen, DenseRowsCreatesSkew) {
  Rng rng(9);
  const Csr a = gen_dense_rows(100, 200, 4, 5, 150, rng);
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.row_nnz_max, 150);
  EXPECT_LT(s.row_nnz_mean, 15.0);
}

TEST(Gen, RmatDimsArePowerOfTwo) {
  Rng rng(10);
  const Csr a = gen_rmat(8, 2000, 0.45, 0.22, 0.22, rng);
  EXPECT_EQ(a.rows, 256);
  EXPECT_EQ(a.cols, 256);
  a.validate();
  const MatrixStats s = compute_stats(a);
  EXPECT_GT(s.max_over_mean, 2.0);  // skewed by construction
}

TEST(Gen, GeneratorsAreSeedDeterministic) {
  Rng r1(123), r2(123);
  const Csr a = gen_powerlaw(100, 100, 6.0, 1.6, r1);
  const Csr b = gen_powerlaw(100, 100, 6.0, 1.6, r2);
  EXPECT_TRUE(csr_equal(a, b, 0.0));
}

TEST(Gen, ClassNamesAllDistinct) {
  std::set<std::string> names;
  for (std::int32_t i = 0; i < kNumGenClasses; ++i)
    names.insert(gen_class_name(static_cast<GenClass>(i)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumGenClasses));
}

TEST(Corpus, BuildsRequestedCountAllValid) {
  CorpusSpec spec;
  spec.count = 60;
  spec.min_dim = 32;
  spec.max_dim = 128;
  spec.seed = 7;
  const auto corpus = build_corpus(spec);
  ASSERT_EQ(corpus.size(), 60u);
  for (const auto& e : corpus) {
    e.matrix.validate();
    EXPECT_GE(e.matrix.rows, 1);
  }
}

TEST(Corpus, SeedReproducible) {
  CorpusSpec spec;
  spec.count = 20;
  spec.min_dim = 32;
  spec.max_dim = 64;
  const auto c1 = build_corpus(spec);
  const auto c2 = build_corpus(spec);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].gen_class, c2[i].gen_class);
    EXPECT_TRUE(csr_equal(c1[i].matrix, c2[i].matrix, 0.0));
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  CorpusSpec a, b;
  a.count = b.count = 10;
  a.min_dim = b.min_dim = 32;
  a.max_dim = b.max_dim = 64;
  a.seed = 1;
  b.seed = 2;
  const auto ca = build_corpus(a);
  const auto cb = build_corpus(b);
  int identical = 0;
  for (std::size_t i = 0; i < ca.size(); ++i)
    if (ca[i].matrix.nnz() == cb[i].matrix.nnz()) ++identical;
  EXPECT_LT(identical, 8);
}

TEST(Corpus, ContainsDerivedFraction) {
  CorpusSpec spec;
  spec.count = 100;
  spec.min_dim = 32;
  spec.max_dim = 96;
  spec.derived_frac = 0.3;
  const auto corpus = build_corpus(spec);
  std::int64_t derived = 0;
  for (const auto& e : corpus)
    if (e.gen_class == GenClass::kDerived) ++derived;
  EXPECT_NEAR(static_cast<double>(derived), 30.0, 2.0);
}

TEST(Corpus, CoversMultipleClasses) {
  CorpusSpec spec;
  spec.count = 200;
  spec.min_dim = 32;
  spec.max_dim = 128;
  const auto corpus = build_corpus(spec);
  std::set<GenClass> classes;
  for (const auto& e : corpus) classes.insert(e.gen_class);
  EXPECT_GE(classes.size(), 6u);
}

}  // namespace
}  // namespace dnnspmv
