#include "ml/dtree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dnnspmv {
namespace {

TEST(DTree, FitsLinearlySeparableDataExactly) {
  std::vector<std::vector<double>> x;
  std::vector<std::int32_t> y;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    x.push_back({v, rng.uniform(-1.0, 1.0)});
    y.push_back(v > 0.0 ? 1 : 0);
  }
  DecisionTree t;
  DTreeConfig cfg;
  cfg.min_leaf = 1;
  t.fit(x, y, cfg);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(t.predict(x[i]), y[i]);
}

TEST(DTree, XorNeedsDepthTwo) {
  std::vector<std::vector<double>> x;
  std::vector<std::int32_t> y;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-1.0, 1.0), b = rng.uniform(-1.0, 1.0);
    x.push_back({a, b});
    y.push_back((a > 0) != (b > 0) ? 1 : 0);
  }
  DecisionTree shallow, deep;
  DTreeConfig c1;
  c1.max_depth = 1;
  c1.min_leaf = 1;
  shallow.fit(x, y, c1);
  DTreeConfig c2;
  c2.max_depth = 4;
  c2.min_leaf = 1;
  deep.fit(x, y, c2);
  int ok_shallow = 0, ok_deep = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ok_shallow += shallow.predict(x[i]) == y[i];
    ok_deep += deep.predict(x[i]) == y[i];
  }
  EXPECT_LT(ok_shallow, 140);  // depth-1 stump cannot express XOR
  EXPECT_GE(ok_deep, 185);
}

TEST(DTree, MulticlassGrid) {
  std::vector<std::vector<double>> x;
  std::vector<std::int32_t> y;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0.0, 3.0);
    x.push_back({a});
    y.push_back(static_cast<std::int32_t>(a));  // 3 classes by interval
  }
  DecisionTree t;
  DTreeConfig cfg;
  cfg.min_leaf = 1;
  t.fit(x, y, cfg);
  int ok = 0;
  for (std::size_t i = 0; i < x.size(); ++i) ok += t.predict(x[i]) == y[i];
  EXPECT_GT(ok, 295);
}

TEST(DTree, RespectsMaxDepth) {
  std::vector<std::vector<double>> x;
  std::vector<std::int32_t> y;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    x.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    y.push_back(static_cast<std::int32_t>(rng.uniform_u64(2)));
  }
  DecisionTree t;
  DTreeConfig cfg;
  cfg.max_depth = 3;
  cfg.min_leaf = 1;
  t.fit(x, y, cfg);
  EXPECT_LE(t.depth(), 4);  // depth counts nodes; root at 1
}

TEST(DTree, PureLabelsGiveSingleLeaf) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}};
  std::vector<std::int32_t> y = {1, 1, 1};
  DecisionTree t;
  t.fit(x, y);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.predict(std::vector<double>{99.0}), 1);
}

TEST(DTree, ConstantFeaturesFallBackToMajority) {
  std::vector<std::vector<double>> x = {{1.0}, {1.0}, {1.0}, {1.0}};
  std::vector<std::int32_t> y = {0, 1, 1, 1};
  DecisionTree t;
  t.fit(x, y);
  EXPECT_EQ(t.predict(std::vector<double>{1.0}), 1);
}

TEST(DTree, PredictBeforeFitThrows) {
  DecisionTree t;
  EXPECT_THROW(t.predict(std::vector<double>{1.0}), std::runtime_error);
}

TEST(DTree, RejectsBadLabels) {
  DecisionTree t;
  DTreeConfig cfg;
  cfg.num_classes = 2;
  EXPECT_THROW(t.fit({{1.0}}, {5}, cfg), std::runtime_error);
}

TEST(DTree, BatchPredictMatchesScalar) {
  std::vector<std::vector<double>> x;
  std::vector<std::int32_t> y;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    x.push_back({rng.uniform(-1.0, 1.0)});
    y.push_back(x.back()[0] > 0 ? 1 : 0);
  }
  DecisionTree t;
  t.fit(x, y);
  const auto batch = t.predict(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(batch[i], t.predict(x[i]));
}

}  // namespace
}  // namespace dnnspmv
