#include "gen/augment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"

namespace dnnspmv {
namespace {

TEST(Augment, CropExtractsExactWindow) {
  const Csr a = csr_from_triplets(
      4, 4, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}, {3, 3, 4.0}});
  const Csr c = crop(a, 1, 1, 2, 2);
  c.validate();
  EXPECT_EQ(c.rows, 2);
  EXPECT_EQ(c.cols, 2);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_DOUBLE_EQ(c.val[0], 2.0);
  EXPECT_DOUBLE_EQ(c.val[1], 3.0);
}

TEST(Augment, CropRejectsOutOfBounds) {
  Rng rng(1);
  const Csr a = gen_banded(10, 10, 1, 1.0, rng);
  EXPECT_THROW(crop(a, 5, 0, 6, 5), std::runtime_error);
  EXPECT_THROW(crop(a, 0, 0, 0, 5), std::runtime_error);
}

TEST(Augment, RandomCropRespectsMinFraction) {
  Rng rng(2);
  const Csr a = gen_uniform_rows(100, 100, 5, 0, rng);
  for (int i = 0; i < 10; ++i) {
    const Csr c = random_crop(a, 0.5, rng);
    c.validate();
    EXPECT_GE(c.rows, 50);
    EXPECT_GE(c.cols, 50);
    EXPECT_LE(c.rows, 100);
  }
}

TEST(Augment, PermutePreservesNnzAndValueMultiset) {
  Rng rng(3);
  const Csr a = gen_powerlaw(50, 50, 5.0, 1.7, rng);
  const Csr p = perturb_permute(a, 10, rng);
  p.validate();
  EXPECT_EQ(p.rows, a.rows);
  EXPECT_EQ(p.cols, a.cols);
  EXPECT_EQ(p.nnz(), a.nnz());
  std::vector<double> va = a.val, vp = p.val;
  std::sort(va.begin(), va.end());
  std::sort(vp.begin(), vp.end());
  EXPECT_EQ(va, vp);
}

TEST(Augment, PermuteZeroSwapsIsIdentity) {
  Rng rng(4);
  const Csr a = gen_banded(20, 20, 2, 0.9, rng);
  const Csr p = perturb_permute(a, 0, rng);
  EXPECT_TRUE(csr_equal(a, p, 0.0));
}

TEST(Augment, BlockDiagDimsAndNnzAdd) {
  Rng rng(5);
  const Csr a = gen_uniform_rows(10, 12, 3, 0, rng);
  const Csr b = gen_uniform_rows(8, 6, 2, 0, rng);
  const Csr d = block_diag(a, b);
  d.validate();
  EXPECT_EQ(d.rows, 18);
  EXPECT_EQ(d.cols, 18);
  EXPECT_EQ(d.nnz(), a.nnz() + b.nnz());
  // B's entries shifted into the lower-right block.
  EXPECT_EQ(crop(d, 10, 12, 8, 6).nnz(), b.nnz());
  EXPECT_EQ(crop(d, 0, 12, 10, 6).nnz(), 0);
}

TEST(Augment, OverlayKeepsShapeOfFirst) {
  Rng rng(6);
  const Csr a = gen_uniform_rows(10, 10, 2, 0, rng);
  const Csr b = gen_uniform_rows(20, 20, 3, 0, rng);
  const Csr o = overlay(a, b);
  o.validate();
  EXPECT_EQ(o.rows, 10);
  EXPECT_EQ(o.cols, 10);
  EXPECT_GE(o.nnz(), a.nnz());
}

TEST(Augment, OverlaySumsCoincidentEntries) {
  const Csr a = csr_from_triplets(2, 2, {{0, 0, 1.0}});
  const Csr b = csr_from_triplets(2, 2, {{0, 0, 2.0}, {1, 1, 3.0}});
  const Csr o = overlay(a, b);
  EXPECT_EQ(o.nnz(), 2);
  EXPECT_DOUBLE_EQ(o.val[0], 3.0);
}

TEST(Augment, ScaleValuesKeepsStructure) {
  Rng rng(7);
  const Csr a = gen_banded(15, 15, 1, 1.0, rng);
  const Csr s = scale_values(a, -2.0);
  EXPECT_EQ(s.idx, a.idx);
  EXPECT_EQ(s.ptr, a.ptr);
  for (std::size_t i = 0; i < a.val.size(); ++i)
    EXPECT_DOUBLE_EQ(s.val[i], -2.0 * a.val[i]);
}

}  // namespace
}  // namespace dnnspmv
