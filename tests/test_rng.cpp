#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dnnspmv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    ++seen[static_cast<std::size_t>(v + 2)];
  }
  for (int c : seen) EXPECT_GT(c, 700);  // each value ~1000 expected
}

TEST(Rng, UniformU64Bounded) {
  Rng rng(11);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 97ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_u64(n), n);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(21), b(21);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Fork stream differs from parent stream.
  Rng c(21);
  Rng fc = c.fork();
  int same = 0;
  for (int i = 0; i < 32; ++i)
    if (fc.next_u64() == c.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, WorksWithStdShuffle) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
}  // namespace dnnspmv
