// Property tests over all storage formats: conversion round trips and SpMV
// equality against the dense reference, parameterized over a grid of
// generator classes × formats.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {
namespace {

Csr make_matrix(int gen_id, std::uint64_t seed) {
  Rng rng(seed);
  switch (gen_id) {
    case 0: return gen_banded(60, 60, 3, 0.8, rng);
    case 1: return gen_multidiag(70, 70, 5, 0.9, rng);
    case 2: return gen_uniform_rows(50, 64, 6, 1, rng);
    case 3: return gen_powerlaw(64, 80, 5.0, 1.6, rng);
    case 4: return gen_block(48, 52, 3.0, 0.95, rng);
    case 5: return gen_hypersparse(100, 90, 25, rng);
    case 6: return gen_dense_rows(60, 60, 4, 3, 40, rng);
    case 7: return gen_rmat(6, 300, 0.45, 0.22, 0.22, rng);
    default: return gen_uniform_rows(10, 10, 2, 0, rng);
  }
}

class FormatGrid
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t>> {};

TEST_P(FormatGrid, ConversionRoundTripsToSameCsr) {
  const auto [gen_id, fmt_id] = GetParam();
  const Csr a = make_matrix(gen_id, 1000 + static_cast<std::uint64_t>(gen_id));
  a.validate();
  const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(fmt_id));
  if (!m) {
    // Only DIA/ELL may refuse, and only on padding blow-up.
    const Format f = static_cast<Format>(fmt_id);
    EXPECT_TRUE(f == Format::kDia || f == Format::kEll);
    return;
  }
  const Csr back = m->to_csr();
  back.validate();
  EXPECT_TRUE(csr_equal(a, back, 0.0))
      << "round trip mismatch for " << format_name(static_cast<Format>(fmt_id));
}

TEST_P(FormatGrid, SpmvMatchesReference) {
  const auto [gen_id, fmt_id] = GetParam();
  const Csr a = make_matrix(gen_id, 2000 + static_cast<std::uint64_t>(gen_id));
  const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(fmt_id));
  if (!m) return;  // format refused — covered by the round-trip test

  Rng rng(77);
  std::vector<double> x(static_cast<std::size_t>(a.cols));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows), -99.0);
  std::vector<double> ref(static_cast<std::size_t>(a.rows), 0.0);
  m->spmv(x, y);
  spmv_reference(a, x, ref);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-10 * (1.0 + std::fabs(ref[i])))
        << "row " << i << " format "
        << format_name(static_cast<Format>(fmt_id));
}

TEST_P(FormatGrid, SpmvIsLinear) {
  // A(alpha*x + z) == alpha*A*x + A*z for every format and matrix class.
  const auto [gen_id, fmt_id] = GetParam();
  const Csr a = make_matrix(gen_id, 3000 + static_cast<std::uint64_t>(gen_id));
  const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(fmt_id));
  if (!m) return;
  Rng rng(123);
  const double alpha = 2.5;
  std::vector<double> x(static_cast<std::size_t>(a.cols));
  std::vector<double> z(static_cast<std::size_t>(a.cols));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : z) v = rng.uniform(-1.0, 1.0);
  std::vector<double> combo(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) combo[i] = alpha * x[i] + z[i];
  std::vector<double> y1(static_cast<std::size_t>(a.rows));
  std::vector<double> y2(static_cast<std::size_t>(a.rows));
  std::vector<double> y3(static_cast<std::size_t>(a.rows));
  m->spmv(combo, y1);
  m->spmv(x, y2);
  m->spmv(z, y3);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_NEAR(y1[i], alpha * y2[i] + y3[i],
                1e-9 * (1.0 + std::fabs(y1[i])));
}

TEST_P(FormatGrid, ZeroVectorGivesZero) {
  const auto [gen_id, fmt_id] = GetParam();
  const Csr a = make_matrix(gen_id, 4000 + static_cast<std::uint64_t>(gen_id));
  const auto m = AnyFormatMatrix::convert(a, static_cast<Format>(fmt_id));
  if (!m) return;
  std::vector<double> x(static_cast<std::size_t>(a.cols), 0.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows), 7.0);
  m->spmv(x, y);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllGeneratorsAllFormats, FormatGrid,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Range(std::int32_t{0}, kNumFormats)),
    [](const auto& info) {
      return "gen" + std::to_string(std::get<0>(info.param)) + "_" +
             format_name(static_cast<Format>(std::get<1>(info.param)));
    });

TEST(FormatNames, RoundTrip) {
  for (std::int32_t i = 0; i < kNumFormats; ++i) {
    const Format f = static_cast<Format>(i);
    EXPECT_EQ(format_from_name(format_name(f)), f);
  }
  EXPECT_THROW(format_from_name("NOPE"), std::runtime_error);
}

TEST(FormatSets, MatchPaperPlatforms) {
  EXPECT_EQ(cpu_formats().size(), 4u);  // SMATLib: COO CSR DIA ELL
  EXPECT_EQ(gpu_formats().size(), 6u);  // cuSPARSE+CSR5
  EXPECT_EQ(cpu_formats()[1], Format::kCsr);
  EXPECT_EQ(gpu_formats().back(), Format::kCoo);
}

TEST(Csr, FromTripletsSortsAndMergesDuplicates) {
  std::vector<Triplet> ts = {{1, 2, 1.0}, {0, 1, 2.0}, {1, 2, 3.0},
                             {1, 0, 4.0}};
  const Csr m = csr_from_triplets(2, 3, std::move(ts));
  m.validate();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.row_nnz(0), 1);
  EXPECT_EQ(m.row_nnz(1), 2);
  // Duplicate (1,2) summed to 4.0.
  EXPECT_DOUBLE_EQ(m.val.back(), 4.0);
}

TEST(Csr, FromTripletsRejectsOutOfBounds) {
  EXPECT_THROW(csr_from_triplets(2, 2, {{2, 0, 1.0}}), std::runtime_error);
  EXPECT_THROW(csr_from_triplets(2, 2, {{0, -1, 1.0}}), std::runtime_error);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  Rng rng(5);
  const Csr a = gen_powerlaw(40, 30, 4.0, 1.8, rng);
  const Csr tt = csr_transpose(csr_transpose(a));
  EXPECT_TRUE(csr_equal(a, tt, 0.0));
}

TEST(Csr, TransposeSwapsCoordinates) {
  const Csr a = csr_from_triplets(2, 3, {{0, 2, 5.0}, {1, 0, 7.0}});
  const Csr t = csr_transpose(a);
  EXPECT_EQ(t.rows, 3);
  EXPECT_EQ(t.cols, 2);
  std::vector<double> x = {1.0, 0.0};
  std::vector<double> y(3, 0.0);
  spmv_csr(t, x, y);
  EXPECT_DOUBLE_EQ(y[2], 5.0);  // (2,0) in A^T
}

TEST(Hyb, SplitsAtRequestedWidth) {
  Rng rng(6);
  const Csr a = gen_dense_rows(30, 30, 2, 2, 20, rng);
  const Hyb h = hyb_from_csr(a, 3);
  EXPECT_EQ(h.ell.width, 3);
  EXPECT_GT(h.coo.nnz(), 0);  // dense rows must overflow
  EXPECT_TRUE(csr_equal(a, csr_from_hyb(h), 0.0));
}

TEST(Hyb, HeuristicWidthCoversUniformMatrix) {
  Rng rng(7);
  const Csr a = gen_uniform_rows(40, 40, 5, 0, rng);
  const Hyb h = hyb_from_csr(a);
  EXPECT_EQ(h.coo.nnz(), 0);  // uniform rows: no overflow at p67 width
}

TEST(Bsr, BlockCountMatchesStats) {
  Rng rng(8);
  const Csr a = gen_block(40, 40, 2.0, 1.0, rng);
  const Bsr b = bsr_from_csr(a);
  EXPECT_GT(b.nblocks(), 0);
  EXPECT_NEAR(b.fill_ratio(a.nnz()), 1.0, 1e-9);  // fully dense blocks
}

TEST(Csr5, TileRowIsMonotone) {
  Rng rng(9);
  const Csr a = gen_powerlaw(100, 100, 8.0, 1.5, rng);
  const Csr5 c5 = csr5_from_csr(a, 64);
  for (std::size_t t = 1; t < c5.tile_row.size(); ++t)
    EXPECT_LE(c5.tile_row[t - 1], c5.tile_row[t]);
}

TEST(Csr5, SmallTileSizeStillCorrect) {
  Rng rng(10);
  const Csr a = gen_dense_rows(30, 30, 3, 2, 25, rng);
  const Csr5 c5 = csr5_from_csr(a, 4);  // many tiles per row
  std::vector<double> x(30, 1.0), y(30, 0.0), ref(30, 0.0);
  spmv_csr5(c5, x, y);
  spmv_reference(a, x, ref);
  for (int i = 0; i < 30; ++i) EXPECT_NEAR(y[i], ref[i], 1e-10);
}

}  // namespace
}  // namespace dnnspmv
