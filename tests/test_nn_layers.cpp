#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"

namespace dnnspmv {
namespace {

TEST(Conv2D, OutputShapeStride1Pad1PreservesHw) {
  Rng rng(1);
  Conv2D c(3, 8, 3, 1, 1, rng);
  const auto s = c.output_shape({4, 3, 17, 23});
  EXPECT_EQ(s, (std::vector<std::int64_t>{4, 8, 17, 23}));
}

TEST(Conv2D, OutputShapeStride2) {
  Rng rng(1);
  Conv2D c(1, 4, 3, 2, 1, rng);
  const auto s = c.output_shape({2, 1, 16, 16});
  EXPECT_EQ(s, (std::vector<std::int64_t>{2, 4, 8, 8}));
}

TEST(Conv2D, RejectsWrongChannelCount) {
  Rng rng(1);
  Conv2D c(3, 8, 3, 1, 1, rng);
  EXPECT_THROW(c.output_shape({1, 2, 8, 8}), std::runtime_error);
}

TEST(Conv2D, KnownConvolutionValue) {
  // All-ones 3x3 filter over an all-ones 3x3 image, no pad → 9.
  Rng rng(1);
  Conv2D c(1, 1, 3, 1, 0, rng);
  c.params()[0]->value.fill(1.0f);  // weight
  c.params()[1]->value.fill(0.5f);  // bias
  Tensor in({1, 1, 3, 3});
  in.fill(1.0f);
  Tensor out;
  c.forward(in, out, false);
  ASSERT_EQ(out.size(), 1);
  EXPECT_FLOAT_EQ(out[0], 9.5f);
}

TEST(MaxPool, PicksBlockMaxima) {
  MaxPool2D p(2);
  Tensor in({1, 1, 2, 4});
  const float vals[8] = {1, 5, 2, 0, 3, -1, 9, 4};
  for (int i = 0; i < 8; ++i) in[i] = vals[i];
  Tensor out;
  p.forward(in, out, false);
  ASSERT_EQ(out.size(), 2);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 9.0f);
}

TEST(MaxPool, BackwardRoutesToArgmaxOnly) {
  MaxPool2D p(2);
  Tensor in({1, 1, 2, 2});
  in[0] = 1;
  in[1] = 4;
  in[2] = 2;
  in[3] = 3;
  Tensor out, gin;
  p.forward(in, out, false);
  Tensor gout({1, 1, 1, 1});
  gout[0] = 7.0f;
  p.backward(in, out, gout, gin);
  EXPECT_FLOAT_EQ(gin[0], 0.0f);
  EXPECT_FLOAT_EQ(gin[1], 7.0f);
  EXPECT_FLOAT_EQ(gin[2], 0.0f);
  EXPECT_FLOAT_EQ(gin[3], 0.0f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU r;
  Tensor in({4});
  in[0] = -1;
  in[1] = 0;
  in[2] = 2;
  in[3] = -3;
  Tensor out;
  r.forward(in, out, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout d(0.5, 1);
  Tensor in({100});
  in.fill(3.0f);
  Tensor out;
  d.forward(in, out, /*training=*/false);
  for (std::int64_t i = 0; i < in.size(); ++i) EXPECT_FLOAT_EQ(out[i], 3.0f);
}

TEST(Dropout, TrainingKeepsExpectation) {
  Dropout d(0.3, 2);
  Tensor in({20000});
  in.fill(1.0f);
  Tensor out;
  d.forward(in, out, /*training=*/true);
  EXPECT_NEAR(out.sum() / static_cast<double>(out.size()), 1.0, 0.05);
  // Dropped elements are exactly zero.
  int zeros = 0;
  for (std::int64_t i = 0; i < out.size(); ++i)
    if (out[i] == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(out.size()),
              0.3, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout d(0.5, 3);
  Tensor in({1000});
  in.fill(1.0f);
  Tensor out, gin;
  d.forward(in, out, true);
  Tensor gout({1000});
  gout.fill(1.0f);
  d.backward(in, out, gout, gin);
  for (std::int64_t i = 0; i < in.size(); ++i)
    EXPECT_FLOAT_EQ(gin[i], out[i]);  // identical keep/scale pattern
}

TEST(Dense, KnownValue) {
  Rng rng(1);
  Dense d(2, 2, rng);
  // W = [[1,2],[3,4]], b = [10, 20].
  d.params()[0]->value[0] = 1;
  d.params()[0]->value[1] = 2;
  d.params()[0]->value[2] = 3;
  d.params()[0]->value[3] = 4;
  d.params()[1]->value[0] = 10;
  d.params()[1]->value[1] = 20;
  Tensor in({1, 2});
  in[0] = 1;
  in[1] = 1;
  Tensor out;
  d.forward(in, out, false);
  EXPECT_FLOAT_EQ(out[0], 13.0f);
  EXPECT_FLOAT_EQ(out[1], 27.0f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(4);
  Tensor logits({5, 7});
  logits.fill_uniform(rng, -4.0f, 4.0f);
  Tensor probs;
  softmax(logits, probs);
  for (std::int64_t b = 0; b < 5; ++b) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) s += probs.at2(b, j);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor logits({1, 3});
  logits[0] = 1000.0f;
  logits[1] = 1001.0f;
  logits[2] = 999.0f;
  Tensor probs;
  softmax(logits, probs);
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_GT(probs[0], probs[2]);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0f, 1e-5f);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits({2, 3});
  logits.fill(-30.0f);
  logits.at2(0, 1) = 30.0f;
  logits.at2(1, 2) = 30.0f;
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, {1, 2}, grad);
  EXPECT_LT(loss, 1e-5);
}

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits({1, 4});
  logits.fill(0.0f);
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, {2}, grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(Sequential, OutputShapeComposition) {
  Rng rng(5);
  Sequential seq;
  seq.emplace<Conv2D>(1, 4, 3, 1, 1, rng);
  seq.emplace<MaxPool2D>(2);
  seq.emplace<Flatten>();
  seq.emplace<Dense>(4 * 8 * 8, 10, rng);
  const auto s = seq.output_shape({2, 1, 16, 16});
  EXPECT_EQ(s, (std::vector<std::int64_t>{2, 10}));
}

TEST(Sequential, SetFrozenMarksAllParams) {
  Rng rng(6);
  Sequential seq;
  seq.emplace<Conv2D>(1, 2, 3, 1, 1, rng);
  seq.emplace<Dense>(8, 2, rng);
  seq.set_frozen(true);
  for (Param* p : seq.params()) EXPECT_TRUE(p->frozen);
  seq.set_frozen(false);
  for (Param* p : seq.params()) EXPECT_FALSE(p->frozen);
}

TEST(Serialize, RoundTripRestoresWeights) {
  Rng rng(7);
  Dense a(5, 3, rng), b(5, 3, rng);
  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());
  for (std::size_t p = 0; p < a.params().size(); ++p) {
    const Tensor& ta = a.params()[p]->value;
    const Tensor& tb = b.params()[p]->value;
    ASSERT_EQ(ta.size(), tb.size());
    for (std::int64_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(Serialize, RejectsShapeMismatch) {
  Rng rng(8);
  Dense a(5, 3, rng), b(5, 4, rng);
  std::stringstream ss;
  save_params(ss, a.params());
  EXPECT_THROW(load_params(ss, b.params()), std::runtime_error);
}

TEST(Serialize, RejectsBadMagic) {
  Rng rng(9);
  Dense a(2, 2, rng);
  std::stringstream ss("not a model file at all................");
  EXPECT_THROW(load_params(ss, a.params()), std::runtime_error);
}

TEST(Serialize, CopyParamsTransfersValues) {
  Rng rng(10);
  Dense a(4, 4, rng), b(4, 4, rng);
  copy_params(a.params(), b.params());
  for (std::size_t p = 0; p < a.params().size(); ++p)
    for (std::int64_t i = 0; i < a.params()[p]->value.size(); ++i)
      EXPECT_EQ(a.params()[p]->value[i], b.params()[p]->value[i]);
}

TEST(ParamUtils, CountAndZero) {
  Rng rng(11);
  Dense d(3, 2, rng);
  EXPECT_EQ(param_count(d.params()), 3 * 2 + 2);
  d.params()[0]->grad.fill(5.0f);
  zero_grads(d.params());
  EXPECT_FLOAT_EQ(d.params()[0]->grad.max_abs(), 0.0f);
}

}  // namespace
}  // namespace dnnspmv
