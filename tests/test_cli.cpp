#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dnnspmv {
namespace {

Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsWhenFlagAbsent) {
  Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("lr", 0.5), 0.5);
  EXPECT_EQ(cli.get_string("name", "x"), "x");
  EXPECT_TRUE(cli.get_bool("flag", true));
}

TEST(Cli, SpaceSeparatedValues) {
  Cli cli = make_cli({"--n", "7", "--lr", "0.25", "--name", "abc"});
  EXPECT_EQ(cli.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("lr", 0.0), 0.25);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
}

TEST(Cli, EqualsSeparatedValues) {
  Cli cli = make_cli({"--n=9", "--mode=hist"});
  EXPECT_EQ(cli.get_int("n", 0), 9);
  EXPECT_EQ(cli.get_string("mode", ""), "hist");
}

TEST(Cli, BareFlagIsBooleanTrue) {
  Cli cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, BoolParsesCommonSpellings) {
  EXPECT_TRUE(make_cli({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make_cli({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make_cli({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(make_cli({"--a=false"}).get_bool("a", true));
}

TEST(Cli, RejectsNonFlagArgument) {
  EXPECT_THROW(make_cli({"positional"}), std::runtime_error);
}

TEST(Cli, CheckUnusedThrowsOnTypo) {
  Cli cli = make_cli({"--epochz", "3"});
  EXPECT_THROW(cli.check_unused(), std::runtime_error);
}

TEST(Cli, CheckUnusedPassesWhenAllConsumed) {
  Cli cli = make_cli({"--epochs", "3"});
  EXPECT_EQ(cli.get_int("epochs", 0), 3);
  EXPECT_NO_THROW(cli.check_unused());
}

}  // namespace
}  // namespace dnnspmv
