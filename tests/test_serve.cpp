// src/serve: LRU cache behaviour, fingerprint stability, queue shutdown
// semantics, batched-vs-single prediction equivalence, and a multithreaded
// hammer through the full SelectionService.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "core/adaptive.hpp"
#include "obs/metrics.hpp"
#include "perf/labels.hpp"
#include "serve/fingerprint.hpp"

namespace dnnspmv {
namespace {

// One trained selector + labelled corpus shared by every test (training is
// the expensive part; predictions themselves are cheap).
struct ServePipeline {
  std::vector<CorpusEntry> corpus;
  std::unique_ptr<Platform> platform;
  FormatSelector selector;

  ServePipeline() {
    CorpusSpec spec;
    spec.count = 100;
    spec.min_dim = 48;
    spec.max_dim = 160;
    spec.seed = 17;
    corpus = build_corpus(spec);
    platform = make_analytic_cpu(intel_xeon_params());
    const auto labeled = collect_labels(corpus, *platform);

    SelectorOptions opts;
    opts.mode = RepMode::kHistogram;
    opts.rep_rows = 16;
    opts.rep_bins = 8;
    opts.train.epochs = 6;
    opts.train.batch = 16;
    opts.train.lr = 2e-3;
    selector = FormatSelector(opts);
    selector.fit(labeled, platform->formats());
  }
};

ServePipeline& pipeline() {
  static ServePipeline p;
  return p;
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruShard shard(3);
  shard.put(1, 10);
  shard.put(2, 20);
  shard.put(3, 30);
  std::int32_t v = 0;
  ASSERT_TRUE(shard.get(1, v));  // refresh 1 → LRU order is 2,3,1
  shard.put(4, 40);              // evicts 2
  EXPECT_FALSE(shard.get(2, v));
  EXPECT_TRUE(shard.get(1, v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(shard.get(3, v));
  EXPECT_TRUE(shard.get(4, v));
  EXPECT_EQ(shard.size(), 3u);
  EXPECT_EQ(shard.stats().evictions, 1u);
}

TEST(LruCache, PutRefreshesAndOverwrites) {
  LruShard shard(2);
  shard.put(1, 10);
  shard.put(2, 20);
  shard.put(1, 11);  // refresh + overwrite → LRU order is 2,1
  shard.put(3, 30);  // evicts 2
  std::int32_t v = 0;
  ASSERT_TRUE(shard.get(1, v));
  EXPECT_EQ(v, 11);
  EXPECT_FALSE(shard.get(2, v));
}

TEST(LruCache, ShardedAggregatesAndCapsCapacity) {
  ShardedLruCache cache(64, 4);
  EXPECT_EQ(cache.num_shards(), 4u);
  for (std::uint64_t k = 0; k < 200; ++k)
    cache.put(k, static_cast<std::int32_t>(k));
  // Per-shard capacity is 16, so at most 64 entries survive.
  EXPECT_LE(cache.size(), 64u);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, 200u);
  EXPECT_GE(s.evictions, 200u - 64u);
  // Shards never hold more than one entry when capacity <= shards.
  ShardedLruCache tiny(2, 8);
  EXPECT_LE(tiny.num_shards(), 2u);
}

TEST(Fingerprint, StableAcrossCopiesAndCalls) {
  auto& p = pipeline();
  const Csr& a = p.corpus[0].matrix;
  const std::uint64_t f1 = structural_fingerprint(a);
  const std::uint64_t f2 = structural_fingerprint(a);
  const Csr copy = a;
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1, structural_fingerprint(copy));
  // Matches the stats-based overload.
  EXPECT_EQ(f1, structural_fingerprint(compute_stats(a)));
}

TEST(Fingerprint, DistinguishesStructurallyDifferentMatrices) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  int n = 0;
  // Distinct (dims, nnz) combinations ⇒ fingerprints must all differ.
  for (index_t dim = 40; dim < 140; dim += 4) {
    for (index_t band = 1; band <= 2; ++band) {
      const Csr a = gen_banded(dim, dim, band, 1.0, rng);
      seen.insert(structural_fingerprint(a));
      ++n;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
}

TEST(Fingerprint, ValueChangesDoNotChangeStructuralKey) {
  Rng rng(5);
  const Csr a = gen_banded(64, 64, 2, 1.0, rng);
  Csr b = a;
  for (double& v : b.val) v *= 3.25;
  EXPECT_EQ(structural_fingerprint(a), structural_fingerprint(b));
}

TEST(RequestQueue, DrainsInFlightRequestsAfterClose) {
  RequestQueue q(8);
  std::vector<std::future<std::int32_t>> futs;
  for (int i = 0; i < 3; ++i) {
    PredictRequest r;
    r.fingerprint = static_cast<std::uint64_t>(i);
    futs.push_back(r.result.get_future());
    ASSERT_TRUE(q.push(std::move(r)));
  }
  q.close();
  // Push after close is rejected without enqueueing.
  EXPECT_FALSE(q.push(PredictRequest{}));

  // Consumers still drain what was in flight…
  std::vector<PredictRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 2), 2u);
  EXPECT_EQ(q.pop_batch(batch, 2), 1u);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].result.set_value(static_cast<std::int32_t>(i));
  // …and only then see closed-and-empty.
  EXPECT_EQ(q.pop_batch(batch, 2), 0u);
  for (std::size_t i = 0; i < futs.size(); ++i)
    EXPECT_EQ(futs[i].get(), static_cast<std::int32_t>(i));
}

TEST(RequestQueue, PopBlocksUntilPush) {
  RequestQueue q(4);
  std::vector<PredictRequest> got;
  std::thread consumer([&] { q.pop_batch(got, 4); });
  PredictRequest r;
  r.fingerprint = 7;
  ASSERT_TRUE(q.push(std::move(r)));
  consumer.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].fingerprint, 7u);
  got[0].result.set_value(0);  // don't leak a broken promise
}

TEST(PredictBatch, MatchesSinglePredictions) {
  auto& p = pipeline();
  std::vector<const Csr*> ptrs;
  std::vector<Csr> mats;
  for (int i = 0; i < 24; ++i) {
    ptrs.push_back(&p.corpus[static_cast<std::size_t>(i)].matrix);
    mats.push_back(p.corpus[static_cast<std::size_t>(i)].matrix);
  }
  const std::vector<std::int32_t> batched = p.selector.predict_index_batch(ptrs);
  const std::vector<Format> batched_fmt = p.selector.predict_batch(mats);
  ASSERT_EQ(batched.size(), ptrs.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(batched[i], p.selector.predict_index(*ptrs[i])) << "matrix " << i;
    EXPECT_EQ(batched_fmt[i], p.selector.predict(*ptrs[i])) << "matrix " << i;
  }
  EXPECT_TRUE(p.selector.predict_index_batch({}).empty());
}

TEST(SelectionService, ServesCachedAndUncachedCorrectly) {
  auto& p = pipeline();
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 8;
  SelectionService service(p.selector, opts);

  const Csr& a = p.corpus[0].matrix;
  const std::int32_t direct = p.selector.predict_index(a);
  EXPECT_EQ(service.predict_index(a), direct);  // miss → batcher
  EXPECT_EQ(service.predict_index(a), direct);  // hit → cache
  EXPECT_EQ(service.predict(a),
            p.selector.candidates()[static_cast<std::size_t>(direct)]);

  const ServiceStats s = service.snapshot();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_EQ(s.batched_samples, 1u);
  EXPECT_EQ(s.cache_entries, 1u);
  std::uint64_t lat = 0;
  for (std::uint64_t c : s.latency) lat += c;
  EXPECT_EQ(lat, 3u);  // every blocking predict recorded a latency
}

TEST(SelectionService, ShutdownAnswersInFlightThenRejects) {
  auto& p = pipeline();
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 4;
  SelectionService service(p.selector, opts);

  std::vector<std::future<std::int32_t>> futs;
  for (int i = 0; i < 6; ++i)
    futs.push_back(service.submit(
        {.matrix = &p.corpus[static_cast<std::size_t>(i)].matrix}));
  service.shutdown();  // drains: every accepted request still gets answered
  for (int i = 0; i < 6; ++i) {
    const std::int32_t idx = futs[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(idx, p.selector.predict_index(
                       p.corpus[static_cast<std::size_t>(i)].matrix));
  }
  // After shutdown, new uncached work is rejected with a typed error that
  // is still a std::runtime_error for pre-taxonomy catch sites.
  try {
    service.predict_index(p.corpus[50].matrix);
    FAIL() << "expected DnnspmvError";
  } catch (const DnnspmvError& e) {
    EXPECT_EQ(e.code(), errc::service_shutdown);
  }
  EXPECT_GE(service.snapshot().rejected, 1u);
  service.shutdown();  // idempotent
}

TEST(SelectionServiceObs, SnapshotMatchesRegistryExport) {
  auto& p = pipeline();
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 8;
  SelectionService service(p.selector, opts);

  for (int i = 0; i < 5; ++i)
    service.predict_index(p.corpus[static_cast<std::size_t>(i % 3)].matrix);

  // The typed snapshot and the registry's untyped export read the same
  // atomics, so for an idle service they must agree exactly.
  const ServiceStats s = service.snapshot();
  const std::string& prefix = service.metrics().prefix();
  const obs::MetricsSnapshot reg =
      service.metrics().registry().snapshot(prefix);

  EXPECT_EQ(reg.counters.at(prefix + "requests"), s.requests);
  EXPECT_EQ(reg.counters.at(prefix + "cache_hits"), s.cache_hits);
  EXPECT_EQ(reg.counters.at(prefix + "cache_misses"), s.cache_misses);
  EXPECT_EQ(reg.counters.at(prefix + "rejected"), s.rejected);
  EXPECT_EQ(reg.counters.at(prefix + "batches"), s.batches);
  EXPECT_EQ(reg.counters.at(prefix + "batched_samples"), s.batched_samples);
  EXPECT_EQ(static_cast<std::uint64_t>(reg.gauges.at(prefix + "max_batch")),
            s.max_batch);
  EXPECT_EQ(
      static_cast<std::uint64_t>(reg.gauges.at(prefix + "cache_entries")),
      s.cache_entries);
  const obs::Histogram::Snapshot& lat =
      reg.histograms.at(prefix + "latency_us");
  EXPECT_EQ(lat.count, s.requests);
  for (int i = 0; i < kLatencyBuckets; ++i)
    EXPECT_EQ(lat.buckets[static_cast<std::size_t>(i)],
              s.latency[static_cast<std::size_t>(i)]);
  // Queue wait was recorded for each batched (cache-miss) request.
  EXPECT_EQ(reg.histograms.at(prefix + "queue_wait_us").count,
            s.cache_misses);
  EXPECT_EQ(reg.histograms.at(prefix + "batch_size").count, s.batches);

  // A second service registers under a different prefix: no sharing.
  SelectionService other(p.selector, opts);
  EXPECT_NE(other.metrics().prefix(), prefix);
  EXPECT_EQ(other.snapshot().requests, 0u);
}

TEST(SelectionService, MultithreadedHammerMatchesDirectPredictions) {
  auto& p = pipeline();
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 16;
  opts.cache_capacity = 64;
  SelectionService service(p.selector, opts);

  constexpr int kPool = 8;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::int32_t> expected;
  for (int i = 0; i < kPool; ++i)
    expected.push_back(
        p.selector.predict_index(p.corpus[static_cast<std::size_t>(i)].matrix));
  // Warm the cache sequentially so the concurrent phase's hit rate is
  // deterministic (concurrent first-touches of the same matrix would
  // otherwise each count a miss).
  for (int i = 0; i < kPool; ++i)
    service.predict_index(p.corpus[static_cast<std::size_t>(i)].matrix);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int m = (t * 13 + i) % kPool;
        const std::int32_t got = service.predict_index(
            p.corpus[static_cast<std::size_t>(m)].matrix);
        if (got != expected[static_cast<std::size_t>(m)]) ++mismatches;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServiceStats s = service.snapshot();
  EXPECT_EQ(s.requests,
            static_cast<std::uint64_t>(kThreads * kPerThread + kPool));
  EXPECT_EQ(s.cache_hits + s.cache_misses, s.requests);
  EXPECT_EQ(s.cache_misses, static_cast<std::uint64_t>(kPool));
  // Only kPool distinct matrices → nearly everything hits after warmup.
  EXPECT_GE(s.hit_rate(), 0.9);
  EXPECT_LE(s.cache_entries, static_cast<std::uint64_t>(kPool));
}

TEST(AdaptiveSpmv, ReusesPredictionCacheAcrossConstructions) {
  auto& p = pipeline();
  PredictionCache cache(16, 2);
  const Csr& a = p.corpus[0].matrix;

  const AdaptiveSpmv first(p.selector, a, &cache);
  EXPECT_FALSE(first.cache_hit());
  const AdaptiveSpmv second(p.selector, a, &cache);
  EXPECT_TRUE(second.cache_hit());
  EXPECT_EQ(first.format(), second.format());

  // Cached construction still multiplies correctly.
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  std::vector<double> ref(static_cast<std::size_t>(a.rows), 0.0);
  second.apply(x, y);
  spmv_reference(a, x, ref);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-9);

  // Opting out of the cache never reports a hit.
  const AdaptiveSpmv uncached(p.selector, a, nullptr);
  EXPECT_FALSE(uncached.cache_hit());
  EXPECT_EQ(uncached.format(), first.format());

  // The default constructor memoizes through the shared cache.
  const AdaptiveSpmv shared1(p.selector, a);
  const AdaptiveSpmv shared2(p.selector, a);
  EXPECT_TRUE(shared2.cache_hit());
  EXPECT_EQ(shared1.format(), shared2.format());
}

TEST(ServiceMetrics, LatencyHistogramBucketsAndQuantiles) {
  ServiceMetrics m;
  m.record_latency(0.5e-6);  // bucket 0
  m.record_latency(3e-6);    // ~bucket 1
  m.record_latency(1e-3);    // ~bucket 9/10
  const ServiceStats s = m.snapshot();
  std::uint64_t total = 0;
  for (std::uint64_t c : s.latency) total += c;
  EXPECT_EQ(total, 3u);
  EXPECT_GT(s.latency_quantile(1.0), s.latency_quantile(0.01));
  EXPECT_LE(s.latency_quantile(0.01), ServiceStats::bucket_upper_seconds(0));
}

}  // namespace
}  // namespace dnnspmv
