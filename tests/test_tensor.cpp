#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace dnnspmv {
namespace {

TEST(Tensor, ResizeZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.at2(2, 3), 11.0f);
}

TEST(Tensor, ReshapeRejectsCountMismatch) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::runtime_error);
}

TEST(Tensor, At4Nchw) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, AddAndScale) {
  Tensor a({4}), b({4});
  a.fill(2.0f);
  b.fill(3.0f);
  a.add_(b);
  a.scale_(0.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a[i], 2.5f);
}

TEST(Tensor, SumAndMaxAbs) {
  Tensor t({3});
  t[0] = -4.0f;
  t[1] = 1.0f;
  t[2] = 2.0f;
  EXPECT_DOUBLE_EQ(t.sum(), -1.0);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
}

TEST(Tensor, FillNormalRoughMoments) {
  Rng rng(5);
  Tensor t({20000});
  t.fill_normal(rng, 2.0f);
  double sum = 0.0, sumsq = 0.0;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sumsq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / static_cast<double>(t.size());
  const double var = sumsq / static_cast<double>(t.size()) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

// --- GEMM reference comparisons -------------------------------------------

void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + n * 1009 + k));
  Tensor a({m, k}), b({k, n}), c({m, n}), ref({m, n});
  a.fill_uniform(rng, -1.0f, 1.0f);
  b.fill_uniform(rng, -1.0f, 1.0f);
  sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (std::int64_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-4f) << "at " << i;
}

TEST_P(GemmShapes, TransposeAMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + n + k));
  Tensor at({k, m}), b({k, n}), c({m, n}), ref({m, n});
  at.fill_uniform(rng, -1.0f, 1.0f);
  b.fill_uniform(rng, -1.0f, 1.0f);
  // Build A = at^T explicitly for the reference.
  Tensor a({m, k});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p) a.at2(i, p) = at.at2(p, i);
  sgemm_at(m, n, k, 1.0f, at.data(), b.data(), 0.0f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (std::int64_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST_P(GemmShapes, TransposeBMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 11 + k * 13));
  Tensor a({m, k}), bt({n, k}), c({m, n}), ref({m, n});
  a.fill_uniform(rng, -1.0f, 1.0f);
  bt.fill_uniform(rng, -1.0f, 1.0f);
  Tensor b({k, n});
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j) b.at2(p, j) = bt.at2(j, p);
  sgemm_bt(m, n, k, 1.0f, a.data(), bt.data(), 0.0f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (std::int64_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 65),
                      std::make_tuple(64, 1, 128),
                      std::make_tuple(1, 64, 300)));

TEST(Gemm, BetaAccumulates) {
  Tensor a({2, 2}), b({2, 2}), c({2, 2});
  a.fill(1.0f);
  b.fill(1.0f);
  c.fill(10.0f);
  sgemm(2, 2, 2, 1.0f, a.data(), b.data(), 1.0f, c.data());
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], 12.0f);
}

TEST(Gemm, AlphaScales) {
  Tensor a({2, 3}), b({3, 2}), c({2, 2});
  a.fill(1.0f);
  b.fill(1.0f);
  sgemm(2, 2, 3, 2.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], 6.0f);
}

// --- im2col ---------------------------------------------------------------

TEST(Im2col, IdentityKernelReproducesInput) {
  // 1x1 kernel, stride 1, no pad: col equals the flattened image.
  ConvGeom g{2, 3, 4, 1, 1, 1, 1, 0, 0};
  Tensor im({2 * 3 * 4});
  for (std::int64_t i = 0; i < im.size(); ++i) im[i] = static_cast<float>(i);
  Tensor col({g.patch_size() * g.out_h() * g.out_w()});
  im2col(g, im.data(), col.data());
  for (std::int64_t i = 0; i < im.size(); ++i) EXPECT_EQ(col[i], im[i]);
}

TEST(Im2col, PaddingProducesZeros) {
  ConvGeom g{1, 2, 2, 3, 3, 1, 1, 1, 1};
  Tensor im({4});
  im.fill(5.0f);
  Tensor col({g.patch_size() * g.out_h() * g.out_w()});
  im2col(g, im.data(), col.data());
  // Patch row 0 = kernel position (0,0): output pixel (0,0) reads the
  // padded (-1,-1) → 0.
  EXPECT_EQ(col[0], 0.0f);
}

TEST(Im2col, KnownSmallCase) {
  // 1 channel 3x3 image, 2x2 kernel, stride 1, no pad → 4 patches.
  ConvGeom g{1, 3, 3, 2, 2, 1, 1, 0, 0};
  Tensor im({9});
  for (std::int64_t i = 0; i < 9; ++i) im[i] = static_cast<float>(i + 1);
  Tensor col({g.patch_size() * 4});
  im2col(g, im.data(), col.data());
  // Patch element (kh=0,kw=0) across the 4 output pixels: 1,2,4,5.
  EXPECT_EQ(col[0], 1.0f);
  EXPECT_EQ(col[1], 2.0f);
  EXPECT_EQ(col[2], 4.0f);
  EXPECT_EQ(col[3], 5.0f);
  // Patch element (kh=1,kw=1): 5,6,8,9.
  EXPECT_EQ(col[12], 5.0f);
  EXPECT_EQ(col[15], 9.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property that
  // makes conv backward correct.
  ConvGeom g{2, 5, 6, 3, 3, 2, 2, 1, 1};
  const std::int64_t imsz = g.channels * g.height * g.width;
  const std::int64_t colsz = g.patch_size() * g.out_h() * g.out_w();
  Rng rng(99);
  Tensor x({imsz}), y({colsz}), cx({colsz}), iy({imsz});
  x.fill_uniform(rng, -1.0f, 1.0f);
  y.fill_uniform(rng, -1.0f, 1.0f);
  im2col(g, x.data(), cx.data());
  col2im(g, y.data(), iy.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < colsz; ++i)
    lhs += static_cast<double>(cx[i]) * y[i];
  for (std::int64_t i = 0; i < imsz; ++i)
    rhs += static_cast<double>(x[i]) * iy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace dnnspmv
