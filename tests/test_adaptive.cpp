// AdaptiveSpmv (library integration, paper §7.6/§8) and amortized
// labelling.
#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dnnspmv {
namespace {

FormatSelector tiny_selector() {
  CorpusSpec spec;
  spec.count = 80;
  spec.min_dim = 48;
  spec.max_dim = 128;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);
  SelectorOptions opts;
  opts.rep_rows = 16;
  opts.rep_bins = 8;
  opts.train.epochs = 5;
  FormatSelector sel(opts);
  sel.fit(labeled, platform->formats());
  return sel;
}

TEST(AdaptiveSpmv, MatchesReferenceSpmv) {
  const FormatSelector sel = tiny_selector();
  Rng rng(1);
  const Csr a = gen_banded(100, 100, 2, 1.0, rng);
  const AdaptiveSpmv op(sel, a);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y(100, 0.0), ref(100, 0.0);
  op.apply(x, y);
  spmv_reference(a, x, ref);
  for (int i = 0; i < 100; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST(AdaptiveSpmv, UsesSelectorsCandidateFormat) {
  const FormatSelector sel = tiny_selector();
  Rng rng(2);
  const Csr a = gen_powerlaw(80, 80, 5.0, 1.6, rng);
  const AdaptiveSpmv op(sel, a);
  const auto& cands = sel.candidates();
  const bool in_candidates =
      std::find(cands.begin(), cands.end(), op.format()) != cands.end();
  EXPECT_TRUE(in_candidates || op.fell_back());
}

TEST(AdaptiveSpmv, FallsBackToCsrWhenFormatRefuses) {
  // Scattered permutation matrix: DIA and ELL-hostile-enough via DIA.
  std::vector<Triplet> ts;
  const index_t n = 300;
  for (index_t i = 0; i < n; ++i) ts.push_back({i, (i * 37) % n, 1.0});
  const Csr a = csr_from_triplets(n, n, std::move(ts));
  const AdaptiveSpmv op(a, Format::kDia);  // DIA refuses this matrix
  EXPECT_TRUE(op.fell_back());
  EXPECT_EQ(op.format(), Format::kCsr);
  std::vector<double> x(n, 1.0), y(n, 0.0);
  op.apply(x, y);
  for (index_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], 1.0);
}

TEST(AdaptiveSpmv, ExplicitFormatConstructor) {
  Rng rng(3);
  const Csr a = gen_uniform_rows(50, 50, 4, 0, rng);
  const AdaptiveSpmv op(a, Format::kEll);
  EXPECT_EQ(op.format(), Format::kEll);
  EXPECT_FALSE(op.fell_back());
  EXPECT_EQ(op.rows(), 50);
  EXPECT_GT(op.bytes(), 0);
}

TEST(AdaptiveSpmv, RecordsOneTimeCosts) {
  const FormatSelector sel = tiny_selector();
  Rng rng(4);
  const Csr a = gen_banded(200, 200, 3, 0.9, rng);
  const AdaptiveSpmv op(sel, a);
  EXPECT_GT(op.prediction_seconds(), 0.0);
  EXPECT_GT(op.conversion_seconds(), 0.0);
}

TEST(AmortizedLabels, ConvergeToPlainLabelsWithManyIterations) {
  CorpusSpec spec;
  spec.count = 40;
  spec.min_dim = 64;
  spec.max_dim = 256;
  const auto corpus = build_corpus(spec);
  // Analytic platform: deterministic times, so any label change can only
  // come from the amortized conversion term.
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto plain = collect_labels(corpus, *platform);
  const auto amortized =
      collect_labels_amortized(corpus, *platform, 100000000);
  int agree = 0;
  for (std::size_t i = 0; i < plain.size(); ++i)
    agree += plain[i].label == amortized[i].label;
  // Conversion divided by 1e8 iterations is negligible.
  EXPECT_GE(agree, static_cast<int>(plain.size()) - 1);
}

TEST(AmortizedLabels, FewIterationsShiftAwayFromExpensiveBuilds) {
  CorpusSpec spec;
  spec.count = 40;
  spec.min_dim = 64;
  spec.max_dim = 256;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto plain = collect_labels(corpus, *platform);
  const auto amortized = collect_labels_amortized(corpus, *platform, 1);
  // With a single SpMV call, conversion dominates; every amortized time is
  // at least the plain time.
  for (std::size_t i = 0; i < plain.size(); ++i) {
    for (std::size_t f = 0; f < plain[i].format_times.size(); ++f) {
      if (!std::isfinite(plain[i].format_times[f])) continue;
      EXPECT_GE(amortized[i].format_times[f], plain[i].format_times[f]);
    }
  }
}

}  // namespace
}  // namespace dnnspmv
