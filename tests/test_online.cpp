// Online-learning loop: FeedbackCollector accounting and backpressure,
// ModelRegistry versioning + RCU hot swap under live traffic, version
// pinning of held snapshots, OnlineTrainer drift recovery, and versioned
// weight-set serialization.
#include "core/online.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/model_registry.hpp"
#include "gen/corpus.hpp"
#include "perf/labels.hpp"
#include "perf/platform.hpp"
#include "serve/feedback.hpp"
#include "serve/service.hpp"

namespace dnnspmv {
namespace {

// One corpus + platforms A/B (same candidate formats, different label
// distributions) + a selector trained on A. Shared by every test in the
// binary; training dominates the fixture cost.
struct OnlinePipeline {
  std::vector<CorpusEntry> corpus;
  std::unique_ptr<Platform> plat_a;
  std::unique_ptr<Platform> plat_b;
  std::vector<LabeledMatrix> labeled_a;
  std::vector<LabeledMatrix> labeled_b;
  FormatSelector selector;  // trained on A's labels

  OnlinePipeline() {
    CorpusSpec spec;
    spec.count = 96;
    spec.min_dim = 48;
    spec.max_dim = 160;
    spec.seed = 31;
    corpus = build_corpus(spec);
    plat_a = make_analytic_cpu(intel_xeon_params());
    plat_b = make_analytic_cpu(amd_a8_params());
    labeled_a = collect_labels(corpus, *plat_a);
    labeled_b = collect_labels(corpus, *plat_b);

    SelectorOptions opts;
    opts.mode = RepMode::kHistogram;
    opts.rep_rows = 16;
    opts.rep_bins = 8;
    opts.train.epochs = 5;
    opts.train.batch = 16;
    opts.train.lr = 2e-3;
    selector = FormatSelector(opts);
    selector.fit(labeled_a, plat_a->formats());
  }
};

OnlinePipeline& pipeline() {
  static OnlinePipeline p;
  return p;
}

double accuracy_on(const FormatSelector& sel,
                   const std::vector<LabeledMatrix>& labeled) {
  std::size_t ok = 0;
  for (const LabeledMatrix& lm : labeled)
    if (sel.predict_index(*lm.matrix) == lm.label) ++ok;
  return static_cast<double>(ok) / static_cast<double>(labeled.size());
}

FeedbackSample sample_for(const OnlinePipeline& p, std::size_t i) {
  FeedbackSample s;
  const Csr& a = p.corpus[i % p.corpus.size()].matrix;
  s.fingerprint = i;
  s.inputs = p.selector.prepare_inputs(a);
  s.format_times = p.plat_b->spmv_times(a);
  return s;
}

// ------------------------------------------------------------- feedback

TEST(Feedback, OfferGatesOncePerSampleEvery) {
  FeedbackCollector fc({.capacity = 8, .sample_every = 4, .measure_reps = 1});
  int accepted = 0;
  for (int i = 0; i < 40; ++i) accepted += fc.offer() ? 1 : 0;
  EXPECT_EQ(accepted, 10);
}

TEST(Feedback, DropsDontBlockAndEveryOutcomeIsCounted) {
  auto& p = pipeline();
  FeedbackCollector fc({.capacity = 4, .sample_every = 1, .measure_reps = 1});
  // capacity rounds to a power of two (4): publish 11, expect 4 kept.
  constexpr std::uint64_t kAttempts = 11;
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < kAttempts; ++i)
    accepted += fc.publish(sample_for(p, i)) ? 1 : 0;
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(fc.published(), accepted);
  EXPECT_EQ(fc.dropped(), kAttempts - accepted);
  EXPECT_EQ(fc.approx_depth(), 4u);

  // Drain returns publish order; the ring is reusable afterwards.
  std::vector<FeedbackSample> out;
  EXPECT_EQ(fc.drain(out, 64), 4u);
  EXPECT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].fingerprint, i);
  EXPECT_EQ(fc.approx_depth(), 0u);
  EXPECT_TRUE(fc.publish(sample_for(p, 99)));
}

TEST(Feedback, ConcurrentPublishersNeverLoseAccounting) {
  auto& p = pipeline();
  FeedbackCollector fc({.capacity = 32, .sample_every = 1,
                        .measure_reps = 1});
  constexpr int kThreads = 4;
  constexpr int kPer = 200;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<FeedbackSample> drained;
  std::atomic<bool> stop{false};
  // One consumer drains while publishers hammer — the MPSC contract.
  std::thread consumer([&] {
    while (!stop.load()) (void)fc.drain(drained, 16);
    (void)fc.drain(drained, 1u << 20);
  });
  std::vector<std::thread> pubs;
  for (int t = 0; t < kThreads; ++t) {
    pubs.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i)
        accepted += fc.publish(sample_for(
                        p, static_cast<std::size_t>(t * kPer + i)))
                        ? 1
                        : 0;
    });
  }
  for (auto& t : pubs) t.join();
  stop.store(true);
  consumer.join();
  EXPECT_EQ(fc.published(), accepted.load());
  EXPECT_EQ(fc.published() + fc.dropped(),
            static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(drained.size(), accepted.load());
}

// ------------------------------------------------------------- registry

TEST(Registry, PublishStampsMonotonicVersionsAndValidates) {
  auto& p = pipeline();
  ModelRegistry reg(p.selector.clone());
  EXPECT_EQ(reg.version(), 1u);
  EXPECT_EQ(reg.current()->model_version(), 1u);
  EXPECT_EQ(reg.published_count(), 0u);

  EXPECT_EQ(reg.publish(p.selector.clone()), 2u);
  EXPECT_EQ(reg.version(), 2u);
  EXPECT_EQ(reg.current()->model_version(), 2u);
  EXPECT_EQ(reg.published_count(), 1u);

  // Untrained models are rejected.
  EXPECT_THROW(reg.publish(FormatSelector{}), DnnspmvError);
  // Incompatible representation geometry is rejected: serving layers pin
  // rep builders and cache keys across swaps.
  SelectorOptions other;
  other.mode = RepMode::kHistogram;
  other.rep_rows = 8;  // != fixture's 16
  other.rep_bins = 8;
  other.train.epochs = 1;
  FormatSelector small(other);
  small.fit(p.labeled_a, p.plat_a->formats());
  EXPECT_THROW(reg.publish(std::move(small)), DnnspmvError);
  EXPECT_EQ(reg.version(), 2u);  // failed publishes change nothing
}

TEST(Registry, QuantizationChangeIsRejectedAndQuantizedClonesServe) {
  auto& p = pipeline();
  const SelectorOptions& o = p.selector.options();
  const Dataset calib =
      build_dataset(p.labeled_a, p.plat_a->formats(), o.mode, o.rep_rows,
                    o.rep_bins, o.rep_sample_nnz);
  FormatSelector quant = p.selector.clone();
  quant.quantize(calib);
  ASSERT_TRUE(quant.quantized());

  // A quantized registry rejects an fp32 publish: the serving fleet's
  // cold-miss budget is part of the contract, like the rep geometry.
  ModelRegistry reg(quant.clone());
  EXPECT_THROW(reg.publish(p.selector.clone()), DnnspmvError);
  EXPECT_EQ(reg.publish(quant.clone()), 2u);

  // Subscriptions clone the int8 inference path along with the weights.
  ModelSubscription sub(reg);
  const std::shared_ptr<const FormatSelector> snap = sub.model();
  ASSERT_TRUE(snap->quantized());
  const Csr& a = p.corpus[0].matrix;
  EXPECT_EQ(snap->predict_index(a), quant.predict_index(a));

  // And the reverse direction: an fp32 registry rejects a quantized model.
  ModelRegistry reg32(p.selector.clone());
  EXPECT_THROW(reg32.publish(std::move(quant)), DnnspmvError);
}

TEST(Registry, HeldSnapshotsPinTheirVersionAcrossSwaps) {
  auto& p = pipeline();
  ModelRegistry reg(p.selector.clone());
  ModelSubscription sub(reg);
  EXPECT_FALSE(sub.stale());

  const std::shared_ptr<const FormatSelector> pinned = sub.model();
  EXPECT_EQ(pinned->model_version(), 1u);

  reg.publish(p.selector.clone());
  EXPECT_TRUE(sub.stale());
  // The held snapshot is untouched by the publish — an in-flight batch
  // keeps serving version 1 — while the next model() adopts version 2.
  EXPECT_EQ(pinned->model_version(), 1u);
  const Csr& a = p.corpus[0].matrix;
  EXPECT_EQ(pinned->predict_index(a), reg.current()->predict_index(a));
  EXPECT_EQ(sub.model()->model_version(), 2u);
  EXPECT_FALSE(sub.stale());
  EXPECT_EQ(sub.swaps(), 1u);
}

TEST(Registry, SwapUnderLoadServesEveryRequestAndSurfacesSwaps) {
  auto& p = pipeline();
  ModelRegistry reg(p.selector.clone());
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.cache_capacity = 2;  // ~all misses: keep the CNN path busy
  SelectionService svc(reg, opts);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) {
      reg.publish(reg.current()->clone());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 40; ++i) {
        const std::size_t m = static_cast<std::size_t>(c * 40 + i) %
                              p.corpus.size();
        const std::int32_t idx = svc.predict_index(p.corpus[m].matrix);
        if (idx < 0 ||
            idx >= static_cast<std::int32_t>(svc.candidates().size()))
          ++bad;
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true);
  publisher.join();

  EXPECT_EQ(bad.load(), 0);
  const ServiceStats s = svc.snapshot();
  EXPECT_EQ(s.requests, 80u);
  EXPECT_GT(reg.version(), 1u);
  // The service observed at least one hot swap and reports the version it
  // serves; answers kept flowing throughout (no failed futures above).
  EXPECT_GT(s.model_swaps, 0u);
  EXPECT_GT(s.model_version, 1u);
}

// ------------------------------------------------------------- trainer

TEST(Online, TrainerGatesOnMinBatchThenPublishes) {
  auto& p = pipeline();
  ModelRegistry reg(p.selector.clone());
  FeedbackCollector fc({.capacity = 128, .sample_every = 1,
                        .measure_reps = 1});
  OnlineTrainerOptions topts;
  topts.min_batch = 8;
  topts.train.epochs = 1;
  OnlineTrainer trainer(reg, fc, topts);

  // Below min_batch: the round drains but must not publish.
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(fc.publish(sample_for(p, i)));
  EXPECT_FALSE(trainer.train_once());
  EXPECT_EQ(reg.version(), 1u);
  EXPECT_EQ(trainer.consumed(), 4u);

  // Replay accumulates across rounds; crossing min_batch publishes v2.
  for (std::size_t i = 4; i < 10; ++i)
    ASSERT_TRUE(fc.publish(sample_for(p, i)));
  EXPECT_TRUE(trainer.train_once());
  EXPECT_EQ(reg.version(), 2u);
  EXPECT_EQ(trainer.published(), 1u);

  // No fresh samples -> no churn: versions only move on new evidence.
  EXPECT_FALSE(trainer.train_once());
  EXPECT_EQ(reg.version(), 2u);
}

TEST(Online, RecoversFromLabelDriftWithinFiveVersions) {
  auto& p = pipeline();
  ModelRegistry reg(p.selector.clone());
  FeedbackCollector fc({.capacity = 256, .sample_every = 1,
                        .measure_reps = 1});
  OnlineTrainerOptions topts;
  topts.min_batch = 32;
  topts.replay_capacity = 256;
  OnlineTrainer trainer(reg, fc, topts);

  // A model trained fresh on B is the recovery target.
  FormatSelector fresh(p.selector.options());
  fresh.fit(p.labeled_b, p.plat_b->formats());
  const double fresh_acc = accuracy_on(fresh, p.labeled_b);

  double acc = accuracy_on(*reg.current(), p.labeled_b);
  int versions = 0;
  std::size_t cursor = 0;
  while (acc < fresh_acc - 0.01 && versions < 5) {
    // One "slice of served traffic": measured-on-B feedback samples.
    for (int i = 0; i < 48; ++i)
      (void)fc.publish(sample_for(p, cursor++));
    ASSERT_TRUE(trainer.train_once());
    ++versions;
    acc = accuracy_on(*reg.current(), p.labeled_b);
  }
  EXPECT_GE(acc, fresh_acc - 0.01)
      << "stuck at " << acc << " vs fresh " << fresh_acc << " after "
      << versions << " versions";
  EXPECT_EQ(reg.version(), 1u + static_cast<std::uint64_t>(versions));
}

// -------------------------------------------------------- serialization

TEST(Serialize, WeightSetsCarryTheirPublishedVersion) {
  auto& p = pipeline();
  ModelRegistry reg(p.selector.clone());
  reg.publish(p.selector.clone());
  reg.publish(p.selector.clone());
  ASSERT_EQ(reg.current()->model_version(), 3u);

  const std::string path = "test_online_weights.bin";
  reg.current()->save(path);
  const FormatSelector loaded = FormatSelector::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.model_version(), 3u);
  EXPECT_EQ(loaded.candidates(), reg.candidates());
  const Csr& a = p.corpus[0].matrix;
  EXPECT_EQ(loaded.predict_index(a), reg.current()->predict_index(a));
}

}  // namespace
}  // namespace dnnspmv
