// Cross-cutting property sweeps (TEST_P): corpus validity over spec
// ranges, representation invariants over (mode × size), and k-fold
// partition properties over k.
#include <gtest/gtest.h>

#include <set>

#include "core/represent.hpp"
#include "gen/corpus.hpp"
#include "ml/crossval.hpp"

namespace dnnspmv {
namespace {

// --- corpus sweeps ----------------------------------------------------------

class CorpusSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CorpusSweep, EveryMatrixValidAndInBounds) {
  const auto [count, max_dim] = GetParam();
  CorpusSpec spec;
  spec.count = count;
  spec.min_dim = 32;
  spec.max_dim = static_cast<index_t>(max_dim);
  spec.seed = static_cast<std::uint64_t>(count * 31 + max_dim);
  const auto corpus = build_corpus(spec);
  ASSERT_EQ(corpus.size(), static_cast<std::size_t>(count));
  for (const auto& e : corpus) {
    e.matrix.validate();
    // block_diag derivations may double a dimension; nothing beyond that.
    EXPECT_LE(e.matrix.rows, 2 * spec.max_dim);
    EXPECT_LE(e.matrix.cols, 2 * spec.max_dim);
    EXPECT_GE(e.matrix.rows, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CorpusSweep,
                         ::testing::Combine(::testing::Values(10, 40),
                                            ::testing::Values(64, 256,
                                                              1024)));

// --- representation sweeps --------------------------------------------------

class RepSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RepSweep, InputsAreUnitRangeAndRightShape) {
  const auto [mode_id, size] = GetParam();
  const auto mode = static_cast<RepMode>(mode_id);
  Rng rng(static_cast<std::uint64_t>(mode_id * 100 + size));
  const Csr a = gen_powerlaw(200, 150, 6.0, 1.6, rng);
  const std::int64_t bins = size / 2;
  const auto inputs = make_inputs(a, mode, size, bins);
  ASSERT_EQ(static_cast<int>(inputs.size()), rep_num_sources(mode));
  for (const Tensor& t : inputs) {
    ASSERT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.dim(0), size);
    EXPECT_EQ(t.dim(1), mode == RepMode::kHistogram ? bins : size);
    double mass = 0.0;
    for (std::int64_t i = 0; i < t.size(); ++i) {
      EXPECT_GE(t[i], 0.0f);
      EXPECT_LE(t[i], 1.0f);
      mass += t[i];
    }
    EXPECT_GT(mass, 0.0) << "non-empty matrix must leave a trace";
  }
}

INSTANTIATE_TEST_SUITE_P(ModesAndSizes, RepSweep,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(16, 32, 64)));

TEST_P(RepSweep, DeterministicForSameMatrix) {
  const auto [mode_id, size] = GetParam();
  const auto mode = static_cast<RepMode>(mode_id);
  Rng rng(7);
  const Csr a = gen_banded(128, 128, 3, 0.9, rng);
  const auto in1 = make_inputs(a, mode, size, size / 2);
  const auto in2 = make_inputs(a, mode, size, size / 2);
  ASSERT_EQ(in1.size(), in2.size());
  for (std::size_t s = 0; s < in1.size(); ++s)
    for (std::int64_t i = 0; i < in1[s].size(); ++i)
      EXPECT_EQ(in1[s][i], in2[s][i]);
}

// --- cross-validation sweeps ------------------------------------------------

class KfoldSweep : public ::testing::TestWithParam<int> {};

TEST_P(KfoldSweep, PartitionAndStratification) {
  const int k = GetParam();
  std::vector<std::int32_t> labels;
  Rng rng(static_cast<std::uint64_t>(k));
  for (int i = 0; i < 210; ++i)
    labels.push_back(static_cast<std::int32_t>(rng.uniform_u64(3)));
  const auto folds = stratified_kfold(labels, k, 5);
  ASSERT_EQ(folds.size(), static_cast<std::size_t>(k));
  std::set<std::int32_t> all;
  for (const auto& f : folds) {
    for (std::int32_t i : f.test) EXPECT_TRUE(all.insert(i).second);
    EXPECT_EQ(f.train.size() + f.test.size(), labels.size());
  }
  EXPECT_EQ(all.size(), labels.size());
  // Each class appears in every fold's test set (210 >> 3k).
  for (const auto& f : folds) {
    std::set<std::int32_t> classes;
    for (std::int32_t i : f.test)
      classes.insert(labels[static_cast<std::size_t>(i)]);
    EXPECT_EQ(classes.size(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KfoldSweep, ::testing::Values(2, 3, 5, 7));

}  // namespace
}  // namespace dnnspmv
