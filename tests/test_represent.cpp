// Representation tests, including the paper's worked examples from §4
// (Figures 4–5 and the Algorithm 1 walk-through).
#include "core/represent.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"

namespace dnnspmv {
namespace {

TEST(Binary, MarksOccupiedBlocks) {
  // 8x8 with nonzeros confined to the top-left 2x2 and bottom-right 2x2.
  const Csr a = csr_from_triplets(8, 8, {{0, 1, 1.0}, {7, 6, 2.0}});
  const Tensor b = binary_rep(a, 4);
  EXPECT_FLOAT_EQ(b.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.at2(3, 3), 1.0f);
  float total = 0.0f;
  for (std::int64_t i = 0; i < b.size(); ++i) total += b[i];
  EXPECT_FLOAT_EQ(total, 2.0f);
}

TEST(Binary, ScalingLosesIrregularity) {
  // The Figure 4 failure mode: an *irregular* wavy diagonal down-samples to
  // the same binary image as a *perfect* diagonal.
  std::vector<Triplet> wavy, perfect;
  for (index_t i = 0; i < 8; ++i) {
    perfect.push_back({i, i, 1.0});
    // Wavy: odd rows shift one column left — stays inside the same 2x2
    // down-sampling block as the diagonal, so binary cannot see it.
    wavy.push_back({i, i - (i % 2), 1.0});
  }
  const Tensor bw = binary_rep(csr_from_triplets(8, 8, wavy), 4);
  const Tensor bp = binary_rep(csr_from_triplets(8, 8, perfect), 4);
  for (std::int64_t i = 0; i < bw.size(); ++i)
    EXPECT_EQ(bw[i], bp[i]) << "binary reps should collide (paper Fig. 4)";
  // ...but the distance histogram separates them (distance 1 vs 0 entries
  // land in different bins once bins are finer than the block size).
  const Tensor hw =
      row_histogram_raw(csr_from_triplets(8, 8, wavy), 4, 8);
  const Tensor hp =
      row_histogram_raw(csr_from_triplets(8, 8, perfect), 4, 8);
  bool differ = false;
  for (std::int64_t i = 0; i < hw.size(); ++i) differ |= hw[i] != hp[i];
  EXPECT_TRUE(differ) << "histogram must keep what scaling lost";
}

TEST(Density, ExactBlockRatios) {
  // 2 nonzeros in one 2x2 block of an 8x8 matrix → density 0.5 (Fig. 5a).
  const Csr a = csr_from_triplets(8, 8, {{0, 0, 1.0}, {1, 1, 1.0}});
  const Tensor d = density_rep(a, 4);
  EXPECT_FLOAT_EQ(d.at2(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(d.at2(1, 1), 0.0f);
}

TEST(Density, FullBlockIsOne) {
  const Csr a = csr_from_triplets(
      4, 4, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  const Tensor d = density_rep(a, 2);
  EXPECT_FLOAT_EQ(d.at2(0, 0), 1.0f);
}

TEST(Density, NonDivisibleDimsStayInUnitRange) {
  Rng rng(1);
  const Csr a = gen_powerlaw(37, 23, 4.0, 1.6, rng);
  const Tensor d = density_rep(a, 8);
  for (std::int64_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d[i], 0.0f);
    EXPECT_LE(d[i], 1.0f);
  }
}

TEST(Histogram, PaperAlgorithm1WalkThrough) {
  // Paper §4: rows 6–7 of an 8×8 matrix; row 6 has one nonzero at distance
  // 1, row 7 has nonzeros at distances 4 and 1. With r=4, BINS=4 the bottom
  // histogram row must be [2, 0, 1, 0].
  const Csr a = csr_from_triplets(
      8, 8, {{6, 5, 23.0}, {7, 3, 17.0}, {7, 6, 11.0}});
  const Tensor h = row_histogram_raw(a, 4, 4);
  EXPECT_FLOAT_EQ(h.at2(3, 0), 2.0f);
  EXPECT_FLOAT_EQ(h.at2(3, 1), 0.0f);
  EXPECT_FLOAT_EQ(h.at2(3, 2), 1.0f);
  EXPECT_FLOAT_EQ(h.at2(3, 3), 0.0f);
  // Rows 0-2 of the histogram see no entries.
  for (std::int64_t r = 0; r < 3; ++r)
    for (std::int64_t b = 0; b < 4; ++b) EXPECT_FLOAT_EQ(h.at2(r, b), 0.0f);
}

TEST(Histogram, TotalMassEqualsNnz) {
  Rng rng(2);
  const Csr a = gen_powerlaw(100, 80, 6.0, 1.5, rng);
  const Tensor h = row_histogram_raw(a, 16, 8);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(a.nnz()));
  const Tensor hc = col_histogram_raw(a, 16, 8);
  EXPECT_DOUBLE_EQ(hc.sum(), static_cast<double>(a.nnz()));
}

TEST(Histogram, DiagonalMatrixFillsBinZeroOnly) {
  std::vector<Triplet> ts;
  for (index_t i = 0; i < 32; ++i) ts.push_back({i, i, 1.0});
  const Tensor h = row_histogram_raw(csr_from_triplets(32, 32, ts), 8, 8);
  for (std::int64_t r = 0; r < 8; ++r) {
    EXPECT_FLOAT_EQ(h.at2(r, 0), 4.0f);
    for (std::int64_t b = 1; b < 8; ++b) EXPECT_FLOAT_EQ(h.at2(r, b), 0.0f);
  }
}

TEST(Histogram, AntiDiagonalLandsInHighBins) {
  std::vector<Triplet> ts;
  for (index_t i = 0; i < 32; ++i) ts.push_back({i, 31 - i, 1.0});
  const Tensor h = row_histogram_raw(csr_from_triplets(32, 32, ts), 4, 4);
  // Corners of the anti-diagonal sit at distance ~31 → top bin.
  EXPECT_GT(h.at2(0, 3), 0.0f);
  EXPECT_GT(h.at2(3, 3), 0.0f);
}

TEST(Histogram, ColumnHistogramIsRowHistogramOfTranspose) {
  Rng rng(3);
  const Csr a = gen_powerlaw(60, 60, 5.0, 1.6, rng);
  const Tensor hc = col_histogram_raw(a, 8, 8);
  const Tensor hrt = row_histogram_raw(csr_transpose(a), 8, 8);
  ASSERT_EQ(hc.shape(), hrt.shape());
  for (std::int64_t i = 0; i < hc.size(); ++i) EXPECT_EQ(hc[i], hrt[i]);
}

TEST(Histogram, NormalizeMapsMaxToOne) {
  Tensor h({2, 2});
  h[0] = 4.0f;
  h[3] = 1.0f;
  const Tensor n = normalize_histogram(h);
  EXPECT_FLOAT_EQ(n[0], 1.0f);  // the max always lands on 1
  // Counts are log-compressed before the divide (dynamic-range control).
  EXPECT_FLOAT_EQ(n[3],
                  static_cast<float>(std::log1p(1.0) / std::log1p(4.0)));
}

TEST(Histogram, DensityScaleKeepsAbsoluteScale) {
  // Two matrices with the same *pattern* but different densities must get
  // different density-scaled histograms (the divide-by-max rule would make
  // them identical — exactly the information loss DESIGN.md §5 calls out).
  Tensor sparse_h({2, 2}), dense_h({2, 2});
  sparse_h[0] = 8.0f;   // 8 nonzeros over ...
  dense_h[0] = 64.0f;   // ... vs 64, same cell
  const Tensor a = density_scale_histogram(sparse_h, 16);
  const Tensor b = density_scale_histogram(dense_h, 16);
  EXPECT_GT(b[0], a[0]);
  EXPECT_GT(a[0], 0.0f);
  EXPECT_LE(b[0], 1.0f);
}

TEST(Histogram, DensityScaleClipsAtOne) {
  Tensor h({1, 1});
  h[0] = 1e6f;
  const Tensor n = density_scale_histogram(h, 4);
  EXPECT_FLOAT_EQ(n[0], 1.0f);
}

TEST(Histogram, NormalizeZeroTensorStaysZero) {
  Tensor h({3, 3});
  const Tensor n = normalize_histogram(h);
  EXPECT_FLOAT_EQ(n.max_abs(), 0.0f);
}

TEST(MakeInputs, SourceCountsPerMode) {
  Rng rng(4);
  const Csr a = gen_uniform_rows(40, 40, 4, 0, rng);
  EXPECT_EQ(make_inputs(a, RepMode::kBinary, 16, 8).size(), 1u);
  EXPECT_EQ(make_inputs(a, RepMode::kBinaryDensity, 16, 8).size(), 2u);
  EXPECT_EQ(make_inputs(a, RepMode::kHistogram, 16, 8).size(), 2u);
  EXPECT_EQ(rep_num_sources(RepMode::kBinary), 1);
  EXPECT_EQ(rep_num_sources(RepMode::kHistogram), 2);
}

TEST(MakeInputs, ShapesFollowSpec) {
  Rng rng(5);
  const Csr a = gen_uniform_rows(50, 70, 4, 0, rng);
  const auto hist = make_inputs(a, RepMode::kHistogram, 32, 10);
  EXPECT_EQ(hist[0].shape(), (std::vector<std::int64_t>{32, 10}));
  const auto bd = make_inputs(a, RepMode::kBinaryDensity, 24, 0);
  EXPECT_EQ(bd[0].shape(), (std::vector<std::int64_t>{24, 24}));
  EXPECT_EQ(bd[1].shape(), (std::vector<std::int64_t>{24, 24}));
}

TEST(MakeInputs, ValuesInUnitInterval) {
  Rng rng(6);
  const Csr a = gen_dense_rows(64, 64, 3, 4, 50, rng);
  for (const RepMode m : {RepMode::kBinary, RepMode::kBinaryDensity,
                          RepMode::kHistogram}) {
    for (const Tensor& t : make_inputs(a, m, 16, 8)) {
      for (std::int64_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], 0.0f);
        EXPECT_LE(t[i], 1.0f);
      }
    }
  }
}

TEST(MakeInputs, SmallerMatrixThanRepresentationIsSafe) {
  Rng rng(7);
  const Csr a = gen_banded(5, 5, 1, 1.0, rng);  // 5x5 into 16x16 rep
  const auto reps = make_inputs(a, RepMode::kBinaryDensity, 16, 8);
  EXPECT_EQ(reps[0].shape(), (std::vector<std::int64_t>{16, 16}));
  EXPECT_GT(reps[0].sum(), 0.0);
}

}  // namespace
}  // namespace dnnspmv
