// serve/router: hash-ring shard balance, affinity planning, the
// fingerprint-reuse submit path, hedged re-dispatch (first-wins,
// exactly-once), straggler tail-latency recovery, and shutdown draining.
#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "perf/labels.hpp"
#include "serve/fingerprint.hpp"

namespace dnnspmv {
namespace {

// One trained selector + corpus shared by every test in this binary
// (training dominates the cost; router construction clones are cheap).
struct RouterPipeline {
  std::vector<CorpusEntry> corpus;
  std::unique_ptr<Platform> platform;
  FormatSelector selector;

  RouterPipeline() {
    CorpusSpec spec;
    spec.count = 80;
    spec.min_dim = 48;
    spec.max_dim = 160;
    spec.seed = 23;
    corpus = build_corpus(spec);
    platform = make_analytic_cpu(intel_xeon_params());
    const auto labeled = collect_labels(corpus, *platform);

    SelectorOptions opts;
    opts.mode = RepMode::kHistogram;
    opts.rep_rows = 16;
    opts.rep_bins = 8;
    opts.train.epochs = 5;
    opts.train.batch = 16;
    opts.train.lr = 2e-3;
    selector = FormatSelector(opts);
    selector.fit(labeled, platform->formats());
  }
};

RouterPipeline& pipeline() {
  static RouterPipeline p;
  return p;
}

// --------------------------------------------------------------- affinity

TEST(Affinity, ParseCpulistHandlesRangesSinglesAndJunk) {
  EXPECT_EQ(affinity::parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(affinity::parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(affinity::parse_cpulist("2,2,1"), (std::vector<int>{1, 2}));
  EXPECT_TRUE(affinity::parse_cpulist("").empty());
  // Malformed chunks are skipped, valid ones survive.
  EXPECT_EQ(affinity::parse_cpulist("x,3-1,4"), (std::vector<int>{4}));
}

TEST(Affinity, TopologyIsNeverEmptyAndPlansCoverEveryGroup) {
  const affinity::CpuTopology topo = affinity::detect_topology();
  ASSERT_GE(topo.num_nodes(), 1);
  ASSERT_GE(topo.num_cpus(), 1);
  for (const auto& node : topo.node_cpus) EXPECT_FALSE(node.empty());

  for (int groups : {1, 2, 4, 8, 64}) {
    const auto plan = affinity::plan_groups(topo, groups);
    ASSERT_EQ(static_cast<int>(plan.size()), groups);
    for (const auto& g : plan) {
      EXPECT_FALSE(g.cpus.empty());
      EXPECT_GE(g.node, 0);
      EXPECT_LT(g.node, topo.num_nodes());
    }
  }
  // With at least as many CPUs as groups, the groups are disjoint.
  const int n = topo.num_cpus();
  const auto plan = affinity::plan_groups(topo, std::max(1, n));
  std::set<int> seen;
  std::size_t total = 0;
  for (const auto& g : plan) {
    seen.insert(g.cpus.begin(), g.cpus.end());
    total += g.cpus.size();
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(Affinity, PinCurrentThreadIsBestEffort) {
  const affinity::CpuTopology topo = affinity::detect_topology();
  EXPECT_FALSE(affinity::pin_current_thread({}));
  // Pinning to a real allowed CPU must succeed on Linux; the thread should
  // then report running on it.
  const int cpu = topo.node_cpus[0][0];
#if defined(__linux__)
  EXPECT_TRUE(affinity::pin_current_thread({cpu}));
  EXPECT_EQ(affinity::current_cpu(), cpu);
#else
  (void)cpu;
#endif
}

// --------------------------------------------------------------- HashRing

TEST(RouterRing, BalancesShardsAcrossRandomFingerprints) {
  const int replicas = 4;
  const int kKeys = 10000;
  HashRing ring(replicas);
  Rng rng(7);
  std::vector<int> hits(replicas, 0);
  for (int i = 0; i < kKeys; ++i) {
    const int r = ring.primary(rng.next_u64());
    ASSERT_GE(r, 0);
    ASSERT_LT(r, replicas);
    ++hits[r];
  }
  // Chi-square goodness of fit against the uniform expectation. With 3
  // degrees of freedom the 99.9th percentile is 16.27; vnode placement is
  // deterministic, so this either always passes or the ring is skewed.
  const double expected = static_cast<double>(kKeys) / replicas;
  double chi2 = 0.0;
  for (int r = 0; r < replicas; ++r) {
    const double d = hits[r] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 16.27) << "shard hits: " << hits[0] << "," << hits[1]
                         << "," << hits[2] << "," << hits[3];
  for (int r = 0; r < replicas; ++r) EXPECT_GT(hits[r], 0);
}

TEST(RouterRing, SiblingIsDistinctStableAndDeterministic) {
  HashRing ring(3);
  HashRing twin(3);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t fp = rng.next_u64();
    const int p = ring.primary(fp);
    const int s = ring.sibling(fp);
    EXPECT_NE(p, s);
    // Same fingerprint, same answer — across calls and across rings built
    // with the same shape (clients and router must agree).
    EXPECT_EQ(p, ring.primary(fp));
    EXPECT_EQ(p, twin.primary(fp));
    EXPECT_EQ(s, twin.sibling(fp));
  }
  // Degenerate single-replica ring: sibling falls back to the primary.
  HashRing solo(1);
  EXPECT_EQ(solo.primary(42u), 0);
  EXPECT_EQ(solo.sibling(42u), 0);
}

// ------------------------------------------------- service router hooks

TEST(RouterService, SubmitFingerprintedSkipsRehashAndRetainsInputs) {
  auto& p = pipeline();
  SelectionService svc(p.selector);
  const Csr& a = p.corpus[0].matrix;
  const MatrixStats st = compute_stats(a);
  const std::uint64_t fp = structural_fingerprint(st);

  std::vector<Tensor> retained;
  auto fut = svc.submit(
      {.matrix = &a, .stats = st, .fingerprint = fp, .retain_inputs = &retained});
  const std::int32_t idx = fut.get();
  EXPECT_EQ(idx, p.selector.predict_index(a));
  // Miss path: the enqueued CNN inputs were copied out for a hedge.
  EXPECT_FALSE(retained.empty());
  ServiceStats s = svc.snapshot();
  EXPECT_EQ(s.fp_reused, 1u);

  // Second submit of the same key is a cache hit: answered inline, nothing
  // retained, and the callback fires with the cache source.
  retained.clear();
  std::atomic<int> done_calls{0};
  AnswerSource seen_src = AnswerSource::kError;
  auto fut2 = svc.submit(
      {.matrix = &a,
       .stats = st,
       .fingerprint = fp,
       .done =
           [&](std::int32_t got, AnswerSource src, std::exception_ptr err) {
             ++done_calls;
             seen_src = src;
             EXPECT_EQ(got, idx);
             EXPECT_FALSE(err);
           },
       .retain_inputs = &retained});
  EXPECT_EQ(fut2.get(), idx);
  EXPECT_TRUE(retained.empty());
  EXPECT_EQ(done_calls.load(), 1);
  EXPECT_EQ(seen_src, AnswerSource::kCache);
  s = svc.snapshot();
  EXPECT_EQ(s.fp_reused, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
}

TEST(RouterService, SubmitPreparedServesCachesAndFiresCallback) {
  auto& p = pipeline();
  SelectionService svc(p.selector);
  const Csr& a = p.corpus[1].matrix;
  const MatrixStats st = compute_stats(a);
  const std::uint64_t fp = structural_fingerprint(st);
  const std::int32_t want = p.selector.predict_index(a);

  std::atomic<int> done_calls{0};
  auto fut = svc.submit(
      {.stats = st,
       .fingerprint = fp,
       .inputs = p.selector.prepare_inputs(a),
       .done =
           [&](std::int32_t got, AnswerSource src, std::exception_ptr err) {
             ++done_calls;
             EXPECT_EQ(got, want);
             EXPECT_EQ(src, AnswerSource::kCnn);
             EXPECT_FALSE(err);
           }});
  EXPECT_EQ(fut.get(), want);
  // The future resolves alongside the callback, not after it — wait for
  // the callback before asserting it fired.
  for (int spin = 0; spin < 2000 && done_calls.load() == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(done_calls.load(), 1);
  // The answer landed in this replica's cache under the handed-in key.
  EXPECT_EQ(svc.submit({.matrix = &a}).get(), want);
  EXPECT_EQ(svc.snapshot().cache_hits, 1u);
}

// ----------------------------------------------------------------- router

TEST(Router, MatchesDirectPredictionsAndAggregatesStats) {
  auto& p = pipeline();
  RouterOptions opts;
  opts.replicas = 3;
  opts.service.num_workers = 1;
  ReplicaRouter router(p.selector, opts);
  ASSERT_EQ(router.num_replicas(), 3u);
  ASSERT_EQ(router.candidates(), p.selector.candidates());

  const int kN = 24;
  for (int i = 0; i < kN; ++i) {
    const Csr& a = p.corpus[static_cast<std::size_t>(i)].matrix;
    EXPECT_EQ(router.predict_index(a), p.selector.predict_index(a));
  }
  // Same keys again: served from the replicas' caches, same answers.
  for (int i = 0; i < kN; ++i) {
    const Csr& a = p.corpus[static_cast<std::size_t>(i)].matrix;
    EXPECT_EQ(router.predict(a), p.selector.predict(a));
  }

  const RouterStats s = router.snapshot();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(2 * kN));
  EXPECT_EQ(s.errors, 0u);
  EXPECT_DOUBLE_EQ(s.availability(), 1.0);
  EXPECT_GE(s.total_hits(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.total_fp_reused(), s.requests + s.hedges);
  EXPECT_EQ(s.replica.size(), 3u);
  // The ring spread the keys: more than one replica saw traffic.
  int active = 0;
  for (const ServiceStats& r : s.replica)
    if (r.cache_hits + r.cache_misses > 0) ++active;
  EXPECT_GE(active, 2);
}

TEST(Router, PlacementCoversReplicasAndCacheIsDivided) {
  auto& p = pipeline();
  RouterOptions opts;
  opts.replicas = 2;
  opts.service.cache_capacity = 1024;
  ReplicaRouter router(p.selector, opts);
  ASSERT_EQ(router.placement().size(), 2u);
  for (const affinity::CpuGroup& g : router.placement())
    EXPECT_FALSE(g.cpus.empty());
  EXPECT_EQ(router.replica(0).options().cache_capacity, 512u);
  EXPECT_EQ(router.replica(0).options().pin_cpus,
            router.placement()[0].cpus);
  EXPECT_EQ(router.replica(1).options().pin_cpus,
            router.placement()[1].cpus);

  RouterOptions whole = opts;
  whole.divide_cache = false;
  whole.pin_workers = false;
  ReplicaRouter undivided(p.selector, whole);
  EXPECT_TRUE(undivided.placement().empty());
  EXPECT_EQ(undivided.replica(0).options().cache_capacity, 1024u);
}

TEST(RouterHedge, ResolvesExactlyOnceUnderForcedRace) {
  auto& p = pipeline();
  // Both replicas drag every forward by 2 ms, so no primary can answer
  // before the 1 µs hedge budget: every miss is hedged and both replicas
  // race to resolve it — the strongest exactly-once workout available.
  fault::Injector slow_all;
  fault::Plan drag;
  drag.delay_prob = 1.0;
  drag.delay_us = 2'000;
  slow_all.configure(fault::Site::kForward, drag);

  RouterOptions opts;
  opts.replicas = 2;
  opts.hedge_fixed_us = 1;  // hedge virtually every miss: a forced race
  opts.service.num_workers = 1;
  opts.pin_workers = false;
  opts.injectors = {&slow_all, &slow_all};
  ReplicaRouter router(p.selector, opts);

  const int kN = 20;
  std::vector<std::future<std::int32_t>> futs;
  futs.reserve(kN);
  for (int i = 0; i < kN; ++i)
    futs.push_back(router.submit(p.corpus[static_cast<std::size_t>(i)].matrix));
  for (int i = 0; i < kN; ++i) {
    // get() on a promise that was resolved twice would have aborted the
    // process long before this; each future yields exactly one answer.
    const std::int32_t idx = futs[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(idx, p.selector.predict_index(
                       p.corpus[static_cast<std::size_t>(i)].matrix));
  }
  router.shutdown();
  const RouterStats s = router.snapshot();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.errors, 0u);
  EXPECT_GT(s.hedges, 0u);
  EXPECT_LE(s.hedge_won, s.hedges);
  EXPECT_EQ(s.hedge_budget_us, 1);
}

TEST(Router, StragglerHedgingCutsTailLatency) {
  auto& p = pipeline();

  // Replica 0 becomes a scripted straggler: every CNN forward on it sleeps
  // 60 ms. Keys whose primary is replica 0 only resolve quickly if the
  // hedge re-dispatches them to healthy replica 1.
  fault::Plan slow;
  slow.delay_prob = 1.0;
  slow.delay_us = 60000;

  auto run = [&](bool hedge) {
    fault::Injector straggler;
    straggler.configure(fault::Site::kForward, slow);
    RouterOptions opts;
    opts.replicas = 2;
    opts.hedge = hedge;
    opts.hedge_fixed_us = 2000;
    opts.service.num_workers = 1;
    opts.pin_workers = false;
    opts.injectors = {&straggler, nullptr};
    ReplicaRouter router(p.selector, opts);

    std::vector<double> lat_us;
    for (int i = 0; i < 40; ++i) {
      const Csr& a = p.corpus[static_cast<std::size_t>(i)].matrix;
      Timer t;
      (void)router.predict_index(a);
      lat_us.push_back(t.seconds() * 1e6);
    }
    router.shutdown();
    const RouterStats s = router.snapshot();
    EXPECT_EQ(s.errors, 0u);
    EXPECT_DOUBLE_EQ(s.availability(), 1.0);
    if (hedge) {
      EXPECT_GT(s.hedge_won, 0u);
    }
    std::sort(lat_us.begin(), lat_us.end());
    return lat_us[static_cast<std::size_t>(
        std::floor(0.99 * (lat_us.size() - 1)))];
  };

  const double p99_hedged = run(true);
  const double p99_plain = run(false);
  // Without hedging some request waited out the full injected delay; with
  // it the sibling answered first. The margin must survive sanitizer
  // slowdown and parallel-ctest contention on small hosts, so it proves
  // the mechanism (tail well under the injected delay) without gating on
  // exact scheduler behaviour.
  EXPECT_GE(p99_plain, 60000.0);
  EXPECT_LT(p99_hedged, 0.8 * p99_plain)
      << "hedged p99 " << p99_hedged << "us vs plain " << p99_plain << "us";
}

TEST(Router, ShutdownDrainsInFlightAndRejectsAfter) {
  auto& p = pipeline();
  RouterOptions opts;
  opts.replicas = 2;
  opts.hedge_fixed_us = 500;
  opts.service.num_workers = 1;
  opts.pin_workers = false;
  ReplicaRouter router(p.selector, opts);

  std::vector<std::future<std::int32_t>> futs;
  for (int i = 0; i < 12; ++i)
    futs.push_back(router.submit(p.corpus[static_cast<std::size_t>(i)].matrix));
  router.shutdown();
  // Every in-flight request resolved — with an answer, never a hang.
  for (auto& f : futs) EXPECT_NO_THROW((void)f.get());

  auto late = router.submit(p.corpus[0].matrix);
  bool threw = false;
  try {
    (void)late.get();
  } catch (const DnnspmvError& e) {
    threw = true;
    EXPECT_EQ(e.code(), errc::service_shutdown);
  }
  EXPECT_TRUE(threw) << "submit after shutdown must fail";
  router.shutdown();  // idempotent
}

}  // namespace
}  // namespace dnnspmv
