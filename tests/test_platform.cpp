// Cost-model sanity: each analytic platform must rank formats the way the
// literature (and the paper's Tables 2–3) says real machines do.
#include "perf/platform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "perf/labels.hpp"

namespace dnnspmv {
namespace {

std::int32_t cpu_best(const Platform& p, const Csr& a) {
  return best_format_index(p.spmv_times(a));
}

Format fmt_of(const Platform& p, const Csr& a) {
  return p.formats()[static_cast<std::size_t>(cpu_best(p, a))];
}

TEST(CpuModel, DiaWinsOnDenseBands) {
  const auto p = make_analytic_cpu(intel_xeon_params());
  Rng rng(1);
  int dia_wins = 0;
  for (int i = 0; i < 10; ++i) {
    const Csr a = gen_multidiag(512, 512, 5, 1.0, rng);
    if (fmt_of(*p, a) == Format::kDia) ++dia_wins;
  }
  EXPECT_GE(dia_wins, 8);
}

TEST(CpuModel, CsrOrCooWinsOnPowerLaw) {
  // Mildly skewed power-law rows: CSR usually wins; heavy tails can tip the
  // static-partition makespan so far that COO's nnz-balanced kernel takes
  // over. DIA/ELL never fit this shape.
  const auto p = make_analytic_cpu(intel_xeon_params());
  Rng rng(2);
  int csr_wins = 0;
  for (int i = 0; i < 10; ++i) {
    const Csr a = gen_powerlaw(512, 512, 8.0, 2.5, rng);
    const Format f = fmt_of(*p, a);
    EXPECT_TRUE(f == Format::kCsr || f == Format::kCoo)
        << format_name(f) << " won a power-law matrix";
    if (f == Format::kCsr) ++csr_wins;
  }
  EXPECT_GE(csr_wins, 6);
}

TEST(CpuModel, CooWinsOnHypersparse) {
  const auto p = make_analytic_cpu(intel_xeon_params());
  Rng rng(3);
  int coo_wins = 0;
  for (int i = 0; i < 10; ++i) {
    const Csr a = gen_hypersparse(4096, 4096, 200, rng);
    if (fmt_of(*p, a) == Format::kCoo) ++coo_wins;
  }
  EXPECT_GE(coo_wins, 8);
}

TEST(CpuModel, EllCompetitiveOnUniformRows) {
  const auto p = make_analytic_cpu(intel_xeon_params());
  Rng rng(4);
  int ell_wins = 0;
  for (int i = 0; i < 20; ++i) {
    const Csr a = gen_uniform_rows(512, 512, 12, 0, rng);
    if (fmt_of(*p, a) == Format::kEll) ++ell_wins;
  }
  EXPECT_GE(ell_wins, 10);  // perfectly uniform rows: ELL should often win
}

TEST(CpuModel, InfeasibleFormatsGetInfinity) {
  const auto p = make_analytic_cpu(intel_xeon_params());
  std::vector<Triplet> ts;
  const index_t n = 300;
  for (index_t i = 0; i < n; ++i) ts.push_back({i, (i * 53) % n, 1.0});
  ts.push_back({0, 1, 1.0});
  for (index_t c = 2; c < 200; ++c) ts.push_back({0, c, 1.0});  // long row 0
  const Csr a = csr_from_triplets(n, n, std::move(ts));
  const auto t = p->spmv_times(a);
  EXPECT_TRUE(std::isinf(t[2]));  // DIA refused (scattered diagonals)
  EXPECT_TRUE(std::isinf(t[3]));  // ELL refused (one dense row)
  EXPECT_TRUE(std::isfinite(t[0]));
  EXPECT_TRUE(std::isfinite(t[1]));
}

TEST(CpuModel, DeterministicTimes) {
  const auto p = make_analytic_cpu(intel_xeon_params());
  Rng rng(5);
  const Csr a = gen_powerlaw(256, 256, 6.0, 1.6, rng);
  EXPECT_EQ(p->spmv_times(a), p->spmv_times(a));
}

TEST(CpuModel, IntelAndAmdDisagreeSometimes) {
  // The entire premise of the §6 migration study: labels differ across
  // machines, but not completely.
  const auto intel = make_analytic_cpu(intel_xeon_params());
  const auto amd = make_analytic_cpu(amd_a8_params());
  Rng rng(6);
  int differ = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    Csr a;
    switch (i % 3) {
      case 0: a = gen_multidiag(512, 512, 6, 0.75, rng); break;
      case 1: a = gen_uniform_rows(512, 512, 10, 1, rng); break;
      default: a = gen_powerlaw(512, 512, 6.0, 1.7, rng); break;
    }
    if (cpu_best(*intel, a) != cpu_best(*amd, a)) ++differ;
  }
  EXPECT_GT(differ, 2);       // some labels flip across machines...
  EXPECT_LT(differ, n - 10);  // ...but most carry over
}

TEST(GpuModel, CooNeverWins) {
  // Paper Table 3: "format COO never wins on GPU".
  const auto p = make_analytic_gpu(titan_x_params());
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    Csr a;
    switch (i % 5) {
      case 0: a = gen_banded(256, 256, 3, 0.9, rng); break;
      case 1: a = gen_uniform_rows(256, 256, 8, 0, rng); break;
      case 2: a = gen_powerlaw(256, 256, 6.0, 1.5, rng); break;
      case 3: a = gen_block(256, 256, 3.0, 1.0, rng); break;
      default: a = gen_hypersparse(256, 256, 40, rng); break;
    }
    EXPECT_NE(fmt_of(*p, a), Format::kCoo) << "iteration " << i;
  }
}

TEST(GpuModel, BsrWinsOnBlockMatrices) {
  const auto p = make_analytic_gpu(titan_x_params());
  Rng rng(8);
  int bsr_wins = 0;
  for (int i = 0; i < 10; ++i) {
    const Csr a = gen_block(512, 512, 4.0, 1.0, rng);
    if (fmt_of(*p, a) == Format::kBsr) ++bsr_wins;
  }
  EXPECT_GE(bsr_wins, 7);
}

TEST(GpuModel, Csr5BeatsCsrOnHighSkew) {
  const auto p = make_analytic_gpu(titan_x_params());
  Rng rng(9);
  int csr5_faster = 0;
  for (int i = 0; i < 10; ++i) {
    const Csr a = gen_dense_rows(1024, 1024, 4, 6, 700, rng);
    const auto t = p->spmv_times(a);
    // gpu_formats(): CSR=0, ..., CSR5=4.
    if (t[4] < t[0]) ++csr5_faster;
  }
  EXPECT_GE(csr5_faster, 8);
}

TEST(GpuModel, EllWinsOnUniformRows) {
  const auto p = make_analytic_gpu(titan_x_params());
  Rng rng(10);
  int ell_wins = 0;
  for (int i = 0; i < 10; ++i) {
    const Csr a = gen_uniform_rows(1024, 1024, 16, 0, rng);
    if (fmt_of(*p, a) == Format::kEll) ++ell_wins;
  }
  EXPECT_GE(ell_wins, 6);
}

TEST(MeasuredPlatform, TimesRealKernels) {
  const auto p = make_measured(cpu_formats(), /*reps=*/2);
  Rng rng(11);
  const Csr a = gen_banded(256, 256, 2, 1.0, rng);
  const auto t = p->spmv_times(a);
  ASSERT_EQ(t.size(), 4u);
  for (double v : t) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
}

TEST(MeasuredPlatform, ReportsInfinityForRefusedFormats) {
  const auto p = make_measured({Format::kDia}, 1);
  std::vector<Triplet> ts;
  const index_t n = 300;
  for (index_t i = 0; i < n; ++i) ts.push_back({i, (i * 53) % n, 1.0});
  const Csr a = csr_from_triplets(n, n, std::move(ts));
  EXPECT_TRUE(std::isinf(p->spmv_times(a)[0]));
}

TEST(MachineParams, MatchTable1) {
  EXPECT_NEAR(intel_xeon_params().bandwidth_gbps, 103.0, 1e-9);
  EXPECT_EQ(intel_xeon_params().cores, 24);
  EXPECT_NEAR(amd_a8_params().bandwidth_gbps, 25.6, 1e-9);
  EXPECT_EQ(amd_a8_params().cores, 4);
  EXPECT_NEAR(titan_x_params().bandwidth_gbps, 168.0, 1e-9);
}

}  // namespace
}  // namespace dnnspmv
