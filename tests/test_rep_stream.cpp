// StreamingRepBuilder held against the exact builders (its reference
// oracle), plus the serve-side RepBufferPool and the rep_build metric:
//  * bitwise equality with make_inputs whenever sampling is off or the
//    matrix fits the sample budget (all three RepModes);
//  * deterministic same-seed sampling;
//  * bounded deviation of sampled histograms from exact ones;
//  * SIMD and scalar binning agree bitwise;
//  * arena-backed steady state stops allocating after the first build;
//  * selection parity end to end: a trained selector picks (almost) the
//    same formats from sampled representations as from exact ones;
//  * the service recycles input buffers and reports serve<N>.rep_build_us.
#include "core/rep_stream.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/selector.hpp"
#include "gen/corpus.hpp"
#include "gen/generators.hpp"
#include "serve/rep_pool.hpp"
#include "serve/service.hpp"

namespace dnnspmv {
namespace {

// Bitwise tensor-set equality (shape + exact float bit patterns).
void expect_bitwise_equal(const std::vector<Tensor>& a,
                          const std::vector<Tensor>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].shape(), b[i].shape()) << what << " source " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          static_cast<std::size_t>(a[i].size()) *
                              sizeof(float)),
              0)
        << what << " source " << i << " differs bitwise";
  }
}

std::vector<Csr> small_zoo() {
  Rng rng(77);
  std::vector<Csr> zoo;
  zoo.push_back(gen_banded(64, 64, 3, 1.0, rng));
  zoo.push_back(gen_multidiag(96, 96, 5, 0.8, rng));
  zoo.push_back(gen_powerlaw(128, 96, 4.0, 2.1, rng));
  zoo.push_back(gen_uniform_rows(80, 120, 6, 2, rng));
  zoo.push_back(gen_hypersparse(200, 200, 37, rng));
  zoo.push_back(csr_from_triplets(8, 8, {}));  // empty matrix edge
  return zoo;
}

const RepMode kAllModes[] = {RepMode::kBinary, RepMode::kBinaryDensity,
                             RepMode::kHistogram};

TEST(RepStream, BitwiseEqualsExactBuildersAllModes) {
  // Every small matrix fits the default budget, so the streaming build
  // must reproduce make_inputs exactly — not approximately.
  for (const Csr& a : small_zoo()) {
    for (RepMode mode : kAllModes) {
      const StreamingRepBuilder b({mode, 16, 8});
      ASSERT_FALSE(b.will_sample(a.nnz()));
      expect_bitwise_equal(b.build(a), make_inputs(a, mode, 16, 8),
                           rep_mode_name(mode));
    }
  }
}

TEST(RepStream, SamplingDisabledIsExactOnLargeMatrices) {
  Rng rng(5);
  const Csr a = gen_uniform_rows(2048, 2048, 32, 4, rng);  // ~64k nnz
  for (RepMode mode : kAllModes) {
    const StreamingRepBuilder b({mode, 32, 16, /*sample_nnz=*/0});
    ASSERT_FALSE(b.will_sample(a.nnz()));
    expect_bitwise_equal(b.build(a), make_inputs(a, mode, 32, 16),
                         rep_mode_name(mode));
  }
}

TEST(RepStream, SameSeedSampledBuildIsDeterministic) {
  Rng rng(9);
  const Csr a = gen_powerlaw(4096, 4096, 16.0, 2.0, rng);
  const StreamingRepBuilder b({RepMode::kHistogram, 32, 16, 1 << 12});
  ASSERT_TRUE(b.will_sample(a.nnz()));
  expect_bitwise_equal(b.build(a), b.build(a), "repeat build");
  // The seed is a pure function of the structural identity, so a separate
  // builder instance samples identically (train/serve bit-identity).
  const StreamingRepBuilder b2({RepMode::kHistogram, 32, 16, 1 << 12});
  expect_bitwise_equal(b.build(a), b2.build(a), "separate builder");
}

TEST(RepStream, SampledHistogramDeviationBounded) {
  // A 1/16 sample of a large matrix must land close to the exact
  // histogram (cells are density-scaled into [0,1]; observed deviation at
  // this fraction is worst ~0.26 / mean ~0.04, bounds leave ~50% slack).
  Rng rng(13);
  const Csr dense = gen_uniform_rows(2048, 2048, 32, 4, rng);
  const Csr skewed = gen_powerlaw(4096, 4096, 24.0, 1.9, rng);
  for (const Csr* a : {&dense, &skewed}) {
    const StreamingRepBuilder exact({RepMode::kHistogram, 32, 16, 0});
    const StreamingRepBuilder sampled({RepMode::kHistogram, 32, 16,
                                       a->nnz() / 16});
    ASSERT_TRUE(sampled.will_sample(a->nnz()));
    const auto e = exact.build(*a);
    const auto s = sampled.build(*a);
    double total = 0.0, worst = 0.0;
    std::int64_t n = 0;
    for (std::size_t i = 0; i < e.size(); ++i) {
      for (std::int64_t j = 0; j < e[i].size(); ++j) {
        const double d = std::abs(double(e[i][j]) - double(s[i][j]));
        total += d;
        worst = std::max(worst, d);
        ++n;
      }
    }
    EXPECT_LT(worst, 0.35);
    EXPECT_LT(total / static_cast<double>(n), 0.06);
  }
}

TEST(RepStream, SimdMatchesScalarBitwise) {
  Rng rng(21);
  const Csr wide = gen_uniform_rows(1500, 3000, 24, 4, rng);
  const Csr band = gen_banded(2500, 2500, 9, 0.9, rng);
  for (const Csr* a : {&wide, &band}) {
    for (RepMode mode : kAllModes) {
      for (std::int64_t budget : {std::int64_t{0}, std::int64_t{1} << 12}) {
        RepStreamOptions simd_on{mode, 32, 16, budget, /*use_simd=*/true};
        RepStreamOptions simd_off = simd_on;
        simd_off.use_simd = false;
        expect_bitwise_equal(StreamingRepBuilder(simd_on).build(*a),
                             StreamingRepBuilder(simd_off).build(*a),
                             rep_mode_name(mode) + " budget " +
                                 std::to_string(budget));
      }
    }
  }
}

TEST(RepStream, ArenaSteadyStateStopsGrowing) {
  Rng rng(31);
  const Csr a = gen_multidiag(512, 512, 7, 0.9, rng);
  const Csr b = gen_powerlaw(640, 640, 8.0, 2.2, rng);
  const StreamingRepBuilder builder({RepMode::kHistogram, 32, 16});
  TensorArena arena;
  std::vector<Tensor> out;
  builder.build_into(a, arena, out);
  builder.build_into(b, arena, out);
  const std::size_t warm = arena.bytes_held();
  ASSERT_GT(warm, 0u);
  const float* p0 = out[0].data();
  const float* p1 = out[1].data();
  for (int i = 0; i < 10; ++i)
    builder.build_into(i % 2 ? a : b, arena, out);
  EXPECT_EQ(arena.bytes_held(), warm)
      << "warm builds must not grow the arena";
  EXPECT_EQ(out[0].data(), p0) << "warm builds must reuse output storage";
  EXPECT_EQ(out[1].data(), p1);
}

TEST(RepStream, TrainAndServeRepresentationsMatch) {
  // build_dataset (train time) and the selector's rep_builder (serve time)
  // must produce the same tensors for the same matrix and knobs.
  CorpusSpec spec;
  spec.count = 12;
  spec.min_dim = 48;
  spec.max_dim = 160;
  spec.seed = 3;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);
  const Dataset ds = build_dataset(labeled, platform->formats(),
                                   RepMode::kHistogram, 16, 8, 1 << 10);
  const StreamingRepBuilder serve_side(
      {RepMode::kHistogram, 16, 8, 1 << 10});
  for (std::size_t i = 0; i < labeled.size(); ++i)
    expect_bitwise_equal(ds.samples[i].inputs,
                         serve_side.build(*labeled[i].matrix),
                         "corpus matrix " + std::to_string(i));
}

TEST(RepStream, SelectionParityBetweenSampledAndExactInputs) {
  // End to end: train a selector, then feed it exact and sampled
  // representations of matrices big enough to trigger sampling. The picks
  // must agree almost everywhere (ISSUE gate: <= 1pt accuracy delta).
  CorpusSpec spec;
  spec.count = 100;
  spec.min_dim = 48;
  spec.max_dim = 192;
  spec.seed = 11;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);

  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.rep_rows = 16;
  opts.rep_bins = 8;
  opts.train.epochs = 8;
  opts.train.batch = 16;
  opts.train.lr = 2e-3;
  FormatSelector sel(opts);
  sel.fit(labeled, platform->formats());

  const StreamingRepBuilder exact({RepMode::kHistogram, 16, 8, 0});
  const StreamingRepBuilder sampled({RepMode::kHistogram, 16, 8, 1 << 14});
  Rng rng(47);
  int agree = 0, total = 0;
  for (int i = 0; i < 24; ++i) {
    const Csr a = i % 2 ? gen_powerlaw(2048, 2048, 20.0, 2.0 + 0.01 * i, rng)
                        : gen_uniform_rows(1600 + 32 * i, 1600, 24, 4, rng);
    ASSERT_TRUE(sampled.will_sample(a.nnz()));
    const auto pe = sel.predict_prepared({exact.build(a)})[0];
    const auto ps = sel.predict_prepared({sampled.build(a)})[0];
    agree += pe == ps;
    ++total;
  }
  // <= 1 disagreement in 24 keeps the accuracy delta within a point on
  // any split where the exact pick was right.
  EXPECT_GE(agree, total - 1)
      << "sampled representations flipped " << (total - agree) << "/"
      << total << " predictions";
}

TEST(RepPool, RecyclesUpToCapacity) {
  RepBufferPool pool(2);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(pool.acquire().empty());  // dry pool: fresh empty set

  std::vector<Tensor> bufs;
  bufs.emplace_back(std::vector<std::int64_t>{4, 4});
  const float* data = bufs[0].data();
  pool.release(std::move(bufs));
  EXPECT_EQ(pool.size(), 1u);

  std::vector<Tensor> back = pool.acquire();
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].data(), data) << "acquire must hand back the same "
                                     "storage that was released";
  EXPECT_EQ(pool.size(), 0u);

  for (int i = 0; i < 5; ++i) {
    std::vector<Tensor> v;
    v.emplace_back(std::vector<std::int64_t>{2, 2});
    pool.release(std::move(v));
  }
  EXPECT_EQ(pool.size(), 2u) << "cap must bound pooled sets";
  pool.release({});  // empty release is a no-op
  EXPECT_EQ(pool.size(), 2u);
}

TEST(RepPool, ServiceRecyclesMissBuffersAndReportsRepBuild) {
  CorpusSpec spec;
  spec.count = 40;
  spec.min_dim = 48;
  spec.max_dim = 128;
  spec.seed = 23;
  const auto corpus = build_corpus(spec);
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const auto labeled = collect_labels(corpus, *platform);
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.rep_rows = 16;
  opts.rep_bins = 8;
  opts.train.epochs = 4;
  opts.train.batch = 16;
  FormatSelector sel(opts);
  sel.fit(labeled, platform->formats());

  ServiceOptions sopts;
  sopts.num_workers = 2;
  {
    SelectionService service(sel, sopts);
    for (const auto& entry : corpus) (void)service.predict(entry.matrix);
    const ServiceStats stats = service.snapshot();
    // Every miss built its inputs through the streaming builder and timed
    // the build into serve<N>.rep_build_us.
    EXPECT_EQ(stats.rep_build.count, stats.cache_misses);
    EXPECT_GT(stats.rep_build.count, 0u);
    // The registry export carries the same histogram.
    const auto reg = service.metrics().registry().snapshot(
        service.metrics().prefix());
    EXPECT_EQ(reg.histogram_or(service.metrics().prefix() + "rep_build_us")
                  .count,
              stats.rep_build.count);
    // Workers released the served buffers back to the pool.
    EXPECT_GT(service.rep_pool().size(), 0u);
    // A warm repeat (cache cleared path not taken — hits skip the pool) of
    // distinct matrices keeps recycling: pool never exceeds its cap.
    EXPECT_LE(service.rep_pool().size(), service.rep_pool().capacity());
  }
}

}  // namespace
}  // namespace dnnspmv
