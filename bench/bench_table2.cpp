// Table 2 reproduction: prediction quality on the Intel CPU platform.
//
// Compares four models under k-fold cross-validation on the same labelled
// corpus: CNN+Binary, CNN+Binary+Density, CNN+Histogram (all late-merging),
// and the SMAT-style decision tree. Paper overall accuracies: 0.88 / 0.90 /
// 0.93 / 0.85 — the shape to reproduce is DT < Binary < Binary+Density <
// Histogram.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(cli);
  // "analytic" = Intel-Xeon cost model (default); "measured" = this
  // library's real kernels timed on the host.
  const std::string platform_kind = cli.get_string("platform", "analytic");
  cli.check_unused();

  std::printf("=== Table 2: prediction quality on the Intel CPU platform ===\n");
  std::printf("corpus n=%lld dims [%d, %d] reps %lldx%lld (hist %lldx%lld) "
              "folds=%d epochs=%d\n\n",
              static_cast<long long>(cfg.n), cfg.min_dim, cfg.max_dim,
              static_cast<long long>(cfg.size),
              static_cast<long long>(cfg.size),
              static_cast<long long>(cfg.size),
              static_cast<long long>(cfg.bins), cfg.folds, cfg.epochs);

  const auto platform = platform_kind == "measured"
                            ? make_measured(cpu_formats(), 5)
                            : make_analytic_cpu(intel_xeon_params());
  std::printf("label source: %s\n", platform->name().c_str());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  const auto& formats = platform->formats();
  const int k = static_cast<int>(formats.size());

  struct Variant {
    const char* name;
    RepMode mode;
    double paper_acc;
  };
  const Variant variants[] = {
      {"CNN+Binary", RepMode::kBinary, 0.88},
      {"CNN+Binary+Density", RepMode::kBinaryDensity, 0.90},
      {"CNN+Histogram", RepMode::kHistogram, 0.93},
  };

  std::vector<double> ours;
  for (const Variant& v : variants) {
    const Dataset ds =
        build_dataset(lc.labeled, formats, v.mode, cfg.size,
                      v.mode == RepMode::kHistogram ? cfg.bins : cfg.size);
    const CvResult cv = crossval_cnn(ds, v.mode, /*late_merge=*/true, cfg);
    const EvalResult r = evaluate(cv.truth, cv.pred, k);
    print_quality_table(v.name, formats, r);
    ours.push_back(r.accuracy);
    std::printf("\n");
  }

  // DT baseline (features are representation-independent; reuse any ds).
  const Dataset ds = build_dataset(lc.labeled, formats, RepMode::kHistogram,
                                   cfg.size, cfg.bins);
  const CvResult dt = crossval_dt(ds, cfg);
  const EvalResult rdt = evaluate(dt.truth, dt.pred, k);
  print_quality_table("DT (SMAT-style baseline)", formats, rdt);
  std::printf("\n--- paper vs ours (overall accuracy) ---\n");
  for (std::size_t i = 0; i < 3; ++i)
    print_vs_paper(variants[i].name, variants[i].paper_acc, ours[i]);
  print_vs_paper("DT", 0.85, rdt.accuracy);

  // Majority-class share: any useful model must clear it by a margin.
  const auto hist = ds.label_histogram();
  const double majority =
      static_cast<double>(*std::max_element(hist.begin(), hist.end())) /
      static_cast<double>(ds.size());
  std::printf("\nmajority-class share: %.3f\n", majority);
  std::printf(
      "\nnote: in this reproduction the DT baseline sees the exact scalar\n"
      "statistics the label-generating cost model is built from — a\n"
      "structural privilege real machines do not grant it (the paper's DT\n"
      "reached only 0.85 on measured labels). See EXPERIMENTS.md.\n");

  const bool shape_holds = ours[2] >= ours[0] - 0.01 &&   // hist >= binary
                           ours[2] > majority + 0.05 &&   // CNN is informative
                           rdt.accuracy > majority + 0.05;
  std::printf("\nshape check (Histogram >= Binary; both models beat the "
              "majority class): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
