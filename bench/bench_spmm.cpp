// SpMM workload bench (DESIGN.md §14): DLMC-style pruned-weight corpus,
// measured SpMM labels at K dense columns, and the op-aware selector head
// against the static baselines. Reports
//   * SpMV-vs-SpMM winner divergence — how often the two ops disagree on
//     the best format for the same matrix (the reason the op-aware head
//     exists; must be nonzero on any real host),
//   * aggregate SpMM time of: oracle, the SpMM head, the SpMV head's picks
//     (an op-unaware deployment), and always-CSR.
// Emits BENCH_spmm.json; exit status is the CI gate (selector beats
// always-CSR in aggregate AND divergence is nonzero).
//
// Flags: --n <matrices> (default 180), --k <dense cols> (default 32),
//        --reps <r> (default 3), --epochs <e> (default 25),
//        --seed <u64> (default 42), --cache <path> (binary corpus cache,
//        empty = rebuild every run), --json <path>.
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/dlmc.hpp"
#include "perf/labels.hpp"
#include "perf/platform.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 180);
  const index_t k = static_cast<index_t>(cli.get_int("k", 32));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int epochs = static_cast<int>(cli.get_int("epochs", 25));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string cache = cli.get_string("cache", "");
  const std::string json_path = cli.get_string("json", "BENCH_spmm.json");
  cli.check_unused();

  // Corpus: the binary cache lets CI reuse the generated slice across runs
  // (actions/cache keyed on the generator sources). A stale cache with the
  // wrong size — someone changed --n — is rebuilt, not trusted.
  std::vector<CorpusEntry> corpus;
  if (!cache.empty() && load_corpus(cache, &corpus) &&
      static_cast<std::int64_t>(corpus.size()) == n) {
    std::printf("loaded %zu cached DLMC matrices from %s\n", corpus.size(),
                cache.c_str());
  } else {
    DlmcSpec spec;
    spec.count = n;
    spec.seed = seed;
    corpus = build_dlmc_corpus(spec);
    std::printf("generated %zu DLMC matrices (densities 2%%..50%%)\n",
                corpus.size());
    if (!cache.empty() && save_corpus(cache, corpus))
      std::printf("cached corpus to %s\n", cache.c_str());
  }

  // DIA is excluded: pruned weights have no diagonal structure, so it only
  // burns conversion attempts. This is the GPU library's set (DESIGN.md §2).
  const std::vector<Format>& formats = gpu_formats();

  std::printf("labelling SpMV (measured, %d reps)...\n", reps);
  const std::unique_ptr<Platform> host = make_measured(formats, reps);
  const std::vector<LabeledMatrix> spmv_labeled =
      collect_labels(corpus, *host);
  std::printf("labelling SpMM at K=%d (measured, %d reps)...\n",
              static_cast<int>(k), reps);
  const std::vector<LabeledMatrix> spmm_labeled =
      collect_labels_spmm(corpus, formats, k, reps);

  // Winner divergence: same matrix, different op, different best format.
  std::int64_t diverged = 0;
  std::vector<std::int64_t> spmv_wins(formats.size(), 0);
  std::vector<std::int64_t> spmm_wins(formats.size(), 0);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (spmv_labeled[i].label != spmm_labeled[i].label) ++diverged;
    ++spmv_wins[static_cast<std::size_t>(spmv_labeled[i].label)];
    ++spmm_wins[static_cast<std::size_t>(spmm_labeled[i].label)];
  }
  const double divergence_rate =
      static_cast<double>(diverged) / static_cast<double>(corpus.size());
  std::printf("\n=== winner distribution (SpMV vs SpMM, same matrices) ===\n");
  for (std::size_t f = 0; f < formats.size(); ++f)
    std::printf("  %-5s  spmv %4lld   spmm %4lld\n",
                format_name(formats[f]).c_str(),
                static_cast<long long>(spmv_wins[f]),
                static_cast<long long>(spmm_wins[f]));
  std::printf("divergence: %lld/%zu matrices (%.1f%%) change winner with "
              "the op\n",
              static_cast<long long>(diverged), corpus.size(),
              100.0 * divergence_rate);

  // Both heads, one selector: the SpMV head defines geometry, the SpMM
  // head rides along (core/selector.hpp).
  SelectorOptions opts;
  opts.spmm_cols = k;
  opts.train.epochs = epochs;
  opts.train.seed = seed;
  FormatSelector selector(opts);
  std::printf("\ntraining SpMV head (%d epochs)...\n", epochs);
  selector.fit(spmv_labeled, formats);
  std::printf("training SpMM head (%d epochs)...\n", epochs);
  selector.fit_spmm(spmm_labeled);

  std::vector<const Csr*> mats;
  mats.reserve(corpus.size());
  for (const CorpusEntry& e : corpus) mats.push_back(&e.matrix);
  const std::vector<std::int32_t> pick_spmm =
      selector.predict_index_batch(mats, SpOp::kSpmm);
  const std::vector<std::int32_t> pick_spmv =
      selector.predict_index_batch(mats, SpOp::kSpmv);

  // Aggregate SpMM cost of each policy, charged from the measured label
  // times. A pick the matrix refuses (inf) falls back to CSR, which every
  // matrix supports — same as a deployment would.
  const auto csr_idx = static_cast<std::size_t>(
      selector.candidate_index(Format::kCsr));
  const auto charge = [&](const std::vector<double>& times,
                          std::int32_t pick) {
    const double t = times[static_cast<std::size_t>(pick)];
    return std::isfinite(t) ? t : times[csr_idx];
  };
  double t_oracle = 0, t_selector = 0, t_spmv_head = 0, t_csr = 0;
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::vector<double>& times = spmm_labeled[i].format_times;
    t_oracle += times[static_cast<std::size_t>(spmm_labeled[i].label)];
    t_selector += charge(times, pick_spmm[i]);
    t_spmv_head += charge(times, pick_spmv[i]);
    t_csr += times[csr_idx];
    if (pick_spmm[i] == spmm_labeled[i].label) ++correct;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(corpus.size());

  std::printf("\n=== aggregate SpMM time, %zu matrices at K=%d ===\n\n",
              corpus.size(), static_cast<int>(k));
  std::printf("  %-22s %12.1f us  (lower bound)\n", "oracle",
              t_oracle * 1e6);
  std::printf("  %-22s %12.1f us  (accuracy %.1f%%)\n", "selector SpMM head",
              t_selector * 1e6, 100.0 * accuracy);
  std::printf("  %-22s %12.1f us  (op-unaware deployment)\n",
              "selector SpMV head", t_spmv_head * 1e6);
  std::printf("  %-22s %12.1f us\n", "always CSR", t_csr * 1e6);
  std::printf("\nselector vs always-CSR: %.2fx\n", t_csr / t_selector);
  std::printf("selector vs SpMV-head picks: %.2fx\n",
              t_spmv_head / t_selector);

  const bool pass = t_selector < t_csr && diverged > 0;

  JsonWriter w;
  w.begin_object();
  w.field("bench", "spmm");
  w.field("n", static_cast<std::int64_t>(corpus.size()));
  w.field("k", static_cast<std::int64_t>(k));
  w.field("reps", reps);
  w.begin_array("formats");
  for (Format f : formats) {
    w.begin_object();
    w.field("name", format_name(f));
    w.end_object();
  }
  w.end_array();
  w.begin_object("divergence");
  w.field("count", static_cast<std::int64_t>(diverged));
  w.field("rate", divergence_rate);
  w.end_object();
  w.begin_object("totals_us");
  w.field("oracle", t_oracle * 1e6);
  w.field("selector_spmm_head", t_selector * 1e6);
  w.field("selector_spmv_head", t_spmv_head * 1e6);
  w.field("always_csr", t_csr * 1e6);
  w.end_object();
  w.field("selector_accuracy", accuracy);
  w.field("speedup_vs_csr", t_csr / t_selector);
  w.field("speedup_vs_spmv_head", t_spmv_head / t_selector);
  w.field("pass", pass);
  w.end_object();
  if (w.write_file(json_path))
    std::printf("wrote %s\n", json_path.c_str());

  std::printf("gate (selector < always-CSR, divergence > 0): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
