// Kernel-level microbenchmarks (google-benchmark): per-format SpMV
// throughput across the corpus's structural classes — the substrate behind
// Figure 1 and all label collection.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {
namespace {

Csr class_matrix(int gen_id, index_t n) {
  Rng rng(static_cast<std::uint64_t>(gen_id) * 1000 + n);
  switch (gen_id) {
    case 0: return gen_banded(n, n, 4, 0.9, rng);
    case 1: return gen_uniform_rows(n, n, 12, 0, rng);
    case 2: return gen_powerlaw(n, n, 12.0, 1.5, rng);
    case 3: return gen_block(n, n, 3.0, 1.0, rng);
    default: return gen_hypersparse(n, n, n / 4, rng);
  }
}

const char* class_name(int gen_id) {
  switch (gen_id) {
    case 0: return "banded";
    case 1: return "uniform";
    case 2: return "powerlaw";
    case 3: return "block";
    default: return "hypersparse";
  }
}

void BM_Spmv(benchmark::State& state) {
  const int gen_id = static_cast<int>(state.range(0));
  const auto fmt = static_cast<Format>(state.range(1));
  const auto n = static_cast<index_t>(state.range(2));
  const Csr a = class_matrix(gen_id, n);
  const auto m = AnyFormatMatrix::convert(a, fmt);
  if (!m) {
    state.SkipWithError("format refused this matrix (padding blow-up)");
    return;
  }
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  for (auto _ : state) {
    m->spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
  state.SetLabel(std::string(class_name(gen_id)) + "/" + format_name(fmt));
}

void RegisterAll() {
  for (int gen_id = 0; gen_id < 5; ++gen_id) {
    for (std::int32_t f = 0; f < kNumFormats; ++f) {
      auto* b = benchmark::RegisterBenchmark("BM_Spmv", BM_Spmv);
      b->Args({gen_id, f, 2048});
    }
  }
  // CSR scaling curve.
  for (index_t n : {256, 1024, 4096}) {
    auto* b = benchmark::RegisterBenchmark("BM_Spmv", BM_Spmv);
    b->Args({2, static_cast<std::int32_t>(Format::kCsr), n});
  }
}

}  // namespace
}  // namespace dnnspmv

int main(int argc, char** argv) {
  dnnspmv::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
