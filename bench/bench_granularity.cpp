// §4/§7 granularity study: prediction accuracy vs representation size.
//
// The paper reports that binary/density representations need 128x128 to
// reach their best accuracy while histograms already work well at 128x50 —
// i.e. histograms carry more information per cell and their size can be
// smaller. We sweep the representation size on a single train/test split
// and report accuracy per (mode, size).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const std::int64_t max_size = cli.get_int("max-size", 64);
  cli.check_unused();

  std::printf("=== Granularity: accuracy vs representation size ===\n");
  std::printf("corpus n=%lld dims [%d, %d] epochs=%d\n\n",
              static_cast<long long>(cfg.n), cfg.min_dim, cfg.max_dim,
              cfg.epochs);

  const auto platform = make_analytic_cpu(intel_xeon_params());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  const auto& formats = platform->formats();

  std::vector<std::int64_t> sizes;
  for (std::int64_t s = 16; s <= max_size; s *= 2) sizes.push_back(s);

  std::printf("  %-8s %16s %16s\n", "size", "CNN+Binary", "CNN+Histogram");
  double hist_small = 0.0, bin_small = 0.0, hist_big = 0.0, bin_big = 0.0;
  for (std::int64_t s : sizes) {
    BenchConfig c = cfg;
    c.size = s;
    c.bins = std::max<std::int64_t>(8, s / 2);  // paper: bins < size works
    c.folds = 2;

    const Dataset dbin =
        build_dataset(lc.labeled, formats, RepMode::kBinary, s, s);
    const CvResult rb = crossval_cnn(dbin, RepMode::kBinary, true, c);
    const double acc_bin =
        evaluate(rb.truth, rb.pred, static_cast<int>(formats.size()))
            .accuracy;

    const Dataset dh =
        build_dataset(lc.labeled, formats, RepMode::kHistogram, s, c.bins);
    const CvResult rh = crossval_cnn(dh, RepMode::kHistogram, true, c);
    const double acc_hist =
        evaluate(rh.truth, rh.pred, static_cast<int>(formats.size()))
            .accuracy;

    std::printf("  %-8lld %16.3f %16.3f\n", static_cast<long long>(s),
                acc_bin, acc_hist);
    if (s == sizes.front()) {
      bin_small = acc_bin;
      hist_small = acc_hist;
    }
    if (s == sizes.back()) {
      bin_big = acc_bin;
      hist_big = acc_hist;
    }
  }

  std::printf("\npaper shape: histograms reach near-peak accuracy at small\n"
              "sizes; binary needs larger representations to catch up.\n");
  std::printf("ours: hist %.3f->%.3f, binary %.3f->%.3f as size grows\n",
              hist_small, hist_big, bin_small, bin_big);
  const bool shape_holds = hist_small >= bin_small - 0.02;
  std::printf("\nshape check (small histograms >= small binary): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
