// Serving-layer throughput: SelectionService vs. the single-thread,
// batch-size-1 baseline.
//
// Workload: a pool of distinct matrices queried repeatedly (Zipf-free
// uniform repetition — every request picks a pool matrix at random), the
// shape of an iterative-solver fleet re-deciding formats. The baseline
// runs FormatSelector::predict per request on one thread with no cache.
// The service adds the fingerprint LRU in front and micro-batched forwards
// behind, so repeated structures skip inference and concurrent misses
// coalesce.
//
// Acceptance (ISSUE 1): service throughput ≥ 3× baseline and ≥ 90% cache
// hits on the repeated workload.
//
// Flags (besides the shared ones; small defaults keep this quick):
//   --pool <p>      distinct matrices in the workload     (default 48)
//   --requests <r>  total prediction requests per run     (default 1500)
//   --threads <t>   comma list of client-thread counts    (default: powers
//                   of two up to hardware_concurrency — closed-loop client
//                   counts past the core count measure scheduler contention,
//                   not the service; see the sweep note below)
//   --batch <b>     comma list of max_batch values        (default 1,8,32)
//   --overload <0|1>  run the overload scenario            (default 1)
//   --replicas <r>  comma list of ReplicaRouter sizes for the scaling
//                   sweep (default 1,2,4,8; 0 disables the sweep)
//   --straggler <0|1>  run the straggler/hedging scenario  (default 1)
//   --online-drift <0|1>  run ONLY the online-learning drift scenario and
//                   write BENCH_online.json (default 0; see below)
//   --json <path>   machine-readable results              (default BENCH_serve.json)
//   --trace <path>  chrome://tracing dump of the traced run (default: off)
//
// Thread-sweep note (ISSUE 8): earlier BENCH_serve.json runs showed 1
// client thread beating 4 (25.4k vs 18.0k req/s). That was not the
// service regressing under concurrency — the bench host has one hardware
// thread, so 4 closed-loop clients + 2 workers oversubscribed a single
// core and the sweep measured context-switch thrash (p99 256µs → 4096µs
// while hit rate stayed 97%+). Two fixes: the default sweep now stops at
// hardware_concurrency (explicit --threads still sweeps anything), and
// RequestQueue gates its condvar notifies on the parked-waiter count so a
// push no longer pays a futex wake (and on a saturated box, a preemption)
// when every worker is already runnable.
//
// Online-drift scenario (ISSUE 8): a selector trained on platform A's
// labels serves traffic whose feedback probe measures platform B (same
// candidate formats, different argmin distribution — the paper's §6
// cross-platform migration, arriving as live drift). The closed loop is
// FeedbackCollector → OnlineTrainer::train_once → ModelRegistry.publish →
// subscriber hot-swap. Gates, written to BENCH_online.json:
//   accept_drift_recovery    — within ≤5 published versions, accuracy on
//                              B-labeled data is within 1pt of a selector
//                              freshly trained on B;
//   accept_drift_availability— every request answered during the drift
//                              run (swaps never drop or fail traffic);
//   accept_swap_overhead_1pct— steady-state cached throughput with a
//                              publisher hammering new versions is within
//                              1% of the no-publish baseline (best-of-5,
//                              after a discarded warm-up pair).
//
// After the sweep, the best configuration is re-run with span tracing on
// to measure the observability overhead (ISSUE 3 budget: <5%); BENCH_serve
// .json carries throughput, p50/p99 latency, hit rate, and that overhead.
//
// Overload scenario (ISSUE 5): a tiny queue, one worker slowed by the
// fault-injection hook, and open-loop submitters firing fresh (uncached)
// matrices with per-request deadlines. The robustness layer must keep the
// service predictable while unhealthy: availability stays 100% (every
// request answered — from the CNN or the degraded FallbackSelector path,
// never a timeout or a hang), no client waits past its deadline, and the
// shed/degraded work is visible in the metrics. Gated in BENCH_serve.json
// as accept_overload_availability.
//
// Scaling sweep (ISSUE 6): a ReplicaRouter at 1→2→4→8 replicas serving an
// all-miss workload (every request a distinct matrix, hedging off), so
// throughput tracks the number of independent inference lanes. Gated as
// accept_scaling_2_5x — ≥ 2.5× at 4 replicas, applied only on hosts with
// at least 8 hardware threads (a single-core runner records the sweep but
// cannot exhibit parallel speedup; the JSON carries scaling_gate_applied).
//
// Straggler scenario (ISSUE 6): two replicas, replica 0 handed a private
// armed injector that drags every CNN forward by 5 ms. With hedging the
// router re-dispatches slow requests to the healthy sibling, so tail
// latency must drop vs. the same router with hedging off while
// availability holds at 100%. Gated as accept_straggler_p99.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/online.hpp"
#include "gen/corpus.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/fault.hpp"
#include "serve/feedback.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"

namespace dnnspmv::bench {
namespace {

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    try {
      const int v = std::stoi(tok);
      DNNSPMV_CHECK_MSG(v > 0, "list entries must be positive");
      out.push_back(v);
    } catch (const std::logic_error&) {
      DNNSPMV_CHECK_MSG(false, "expected comma-separated positive ints, got '"
                                   << s << "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  DNNSPMV_CHECK_MSG(!out.empty(), "empty int list");
  return out;
}

struct Workload {
  std::vector<Csr> pool;
  std::vector<std::size_t> order;  // request i asks for pool[order[i]]
};

Workload make_workload(const std::vector<CorpusEntry>& corpus,
                       std::size_t pool_size, std::size_t requests,
                       std::uint64_t seed) {
  Workload w;
  pool_size = std::min(pool_size, corpus.size());
  for (std::size_t i = 0; i < pool_size; ++i)
    w.pool.push_back(corpus[i].matrix);
  Rng rng(seed);
  w.order.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i)
    w.order.push_back(rng.uniform_u64(pool_size));
  return w;
}

double run_baseline(const FormatSelector& sel, const Workload& w) {
  Timer t;
  for (std::size_t m : w.order) (void)sel.predict_index(w.pool[m]);
  return static_cast<double>(w.order.size()) / t.seconds();
}

struct ServiceRun {
  double throughput = 0.0;
  ServiceStats stats;
};

ServiceRun run_service(const FormatSelector& sel, const Workload& w,
                       int threads, std::size_t max_batch) {
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_batch = max_batch;
  opts.cache_capacity = 4096;
  SelectionService service(sel, opts);

  Timer t;
  std::vector<std::thread> clients;
  const std::size_t per =
      (w.order.size() + static_cast<std::size_t>(threads) - 1) /
      static_cast<std::size_t>(threads);
  for (int c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t lo = static_cast<std::size_t>(c) * per;
      const std::size_t hi = std::min(w.order.size(), lo + per);
      for (std::size_t i = lo; i < hi; ++i)
        (void)service.predict_index(w.pool[w.order[i]]);
    });
  }
  for (auto& c : clients) c.join();
  ServiceRun run;
  run.throughput = static_cast<double>(w.order.size()) / t.seconds();
  run.stats = service.snapshot();
  return run;
}

struct OverloadResult {
  std::size_t submitted = 0;
  std::size_t answered = 0;          // got a prediction (CNN or degraded)
  std::size_t deadline_failures = 0; // deadline_exceeded
  std::size_t other_failures = 0;    // anything else (must stay 0)
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  ServiceStats stats;

  double availability() const {
    return submitted == 0
               ? 1.0
               : static_cast<double>(answered) /
                     static_cast<double>(submitted);
  }
};

// Saturates a deliberately under-provisioned service (tiny queue, one
// worker slowed by fault injection) with distinct matrices — every request
// is a cache miss, so nothing shields the queue. The robustness layer is
// what must keep every client answered and bounded.
OverloadResult run_overload(const FormatSelector& sel,
                            const std::vector<CorpusEntry>& corpus,
                            std::chrono::milliseconds deadline) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 4;
  opts.queue_capacity = 16;
  opts.shed_watermark = 0.5;
  opts.push_retries = 2;
  opts.push_backoff_us = 50;
  SelectionService service(sel, opts);

  fault::Plan slow;   // every forward drags: the CNN path is saturated
  slow.delay_prob = 1.0;
  slow.delay_us = 3'000;
  fault::ScopedFaults faults(fault::Site::kForward, slow);

  // Closed-loop clients: in-flight requests ≈ kClients, so overload needs
  // more clients than the shed threshold (queue_capacity × watermark = 8).
  constexpr int kClients = 16;
  const std::size_t per = corpus.size() / kClients;
  OverloadResult r;
  r.submitted = per * kClients;
  std::vector<std::vector<double>> lat_ms(kClients);
  std::atomic<std::size_t> answered{0}, deadline_failures{0},
      other_failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      lat_ms[static_cast<std::size_t>(c)].reserve(per);
      for (std::size_t i = 0; i < per; ++i) {
        const Csr& a =
            corpus[static_cast<std::size_t>(c) * per + i].matrix;
        Timer t;
        try {
          (void)service.predict_index(a, deadline);
          ++answered;
        } catch (const DnnspmvError& e) {
          if (e.code() == errc::deadline_exceeded)
            ++deadline_failures;
          else
            ++other_failures;
        }
        lat_ms[static_cast<std::size_t>(c)].push_back(t.seconds() * 1e3);
      }
    });
  }
  for (auto& c : clients) c.join();

  std::vector<double> all;
  all.reserve(r.submitted);
  for (const auto& v : lat_ms) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const auto at = [&](double q) {
    if (all.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(all.size() - 1));
    return all[idx];
  };
  r.answered = answered.load();
  r.deadline_failures = deadline_failures.load();
  r.other_failures = other_failures.load();
  r.p50_ms = at(0.50);
  r.p99_ms = at(0.99);
  r.max_ms = all.empty() ? 0.0 : all.back();
  r.stats = service.snapshot();
  return r;
}

struct ScalingRun {
  double req_s = 0.0;
  RouterStats stats;
};

// All-miss closed-loop workload through a ReplicaRouter: every request is
// a distinct matrix, hedging is off, shedding is disabled, each replica
// runs one worker — throughput measures parallel inference lanes, nothing
// else.
ScalingRun run_scaling(const FormatSelector& sel,
                       const std::vector<CorpusEntry>& corpus, int replicas) {
  RouterOptions opts;
  opts.replicas = replicas;
  opts.hedge = false;
  opts.service.num_workers = 1;
  opts.service.queue_capacity = 512;
  opts.service.shed_watermark = 2.0;  // never shed: measure inference
  ReplicaRouter router(sel, opts);

  const int clients = std::max(2, 2 * replicas);
  std::atomic<std::size_t> next{0};
  Timer t;
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= corpus.size()) return;
        (void)router.predict_index(corpus[i].matrix);
      }
    });
  }
  for (auto& c : pool) c.join();
  ScalingRun r;
  r.req_s = static_cast<double>(corpus.size()) / t.seconds();
  router.shutdown();
  r.stats = router.snapshot();
  return r;
}

struct StragglerRun {
  double p50_us = 0.0;
  double p99_us = 0.0;
  RouterStats stats;
};

// Two replicas, replica 0 scripted slow (every forward +5 ms via a private
// injector), all-miss sequential workload. With hedging on, keys whose
// primary is the straggler get re-dispatched to the healthy sibling after
// the fixed budget; with it off they wait out the full delay.
StragglerRun run_straggler(const FormatSelector& sel,
                           const std::vector<CorpusEntry>& corpus,
                           std::size_t requests, bool hedge) {
  fault::Injector straggler;
  fault::Plan slow;
  slow.delay_prob = 1.0;
  slow.delay_us = 5'000;
  straggler.configure(fault::Site::kForward, slow);

  RouterOptions opts;
  opts.replicas = 2;
  opts.hedge = hedge;
  opts.hedge_fixed_us = 1'000;
  opts.service.num_workers = 1;
  opts.service.shed_watermark = 2.0;
  opts.injectors = {&straggler, nullptr};
  ReplicaRouter router(sel, opts);

  requests = std::min(requests, corpus.size());
  std::vector<double> lat_us;
  lat_us.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    Timer t;
    (void)router.predict_index(corpus[i].matrix);
    lat_us.push_back(t.seconds() * 1e6);
  }
  router.shutdown();
  StragglerRun r;
  r.stats = router.snapshot();
  std::sort(lat_us.begin(), lat_us.end());
  const auto at = [&](double q) {
    return lat_us[static_cast<std::size_t>(
        q * static_cast<double>(lat_us.size() - 1))];
  };
  r.p50_us = at(0.50);
  r.p99_us = at(0.99);
  return r;
}

// Fraction of `labeled` whose measured-argmin label the selector hits.
double selector_accuracy(const FormatSelector& sel,
                         const std::vector<LabeledMatrix>& labeled) {
  std::size_t ok = 0;
  for (const LabeledMatrix& lm : labeled)
    if (sel.predict_index(*lm.matrix) == lm.label) ++ok;
  return labeled.empty() ? 0.0
                         : static_cast<double>(ok) /
                               static_cast<double>(labeled.size());
}

// Steady-state throughput of a registry-backed service, optionally with a
// publisher re-publishing the model on a fixed cadence. The workload is
// mostly cache hits plus a trickle of never-seen matrices (one per 200
// requests) — the misses matter: a parked worker only adopts a published
// version when a miss wakes it, and adoption is what makes swaps cost
// anything (one O(#params) clone, plus the version-keyed cache entries of
// the hot pool re-predicting under the new version). An all-hit workload
// would price swaps at zero by construction; all-miss would price the CNN,
// not the swap. The with/without-publisher pair on the same workload
// isolates the swap machinery.
double run_swap_throughput(ModelRegistry& registry, const Workload& w,
                           const std::vector<Csr>& fresh_stream,
                           int churn_period_ms) {
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 8;
  opts.cache_capacity = 4096;
  SelectionService service(registry, opts);
  for (const Csr& m : w.pool) (void)service.predict_index(m);  // warm cache

  std::atomic<bool> stop{false};
  std::thread publisher;
  if (churn_period_ms > 0) {
    publisher = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        registry.publish(registry.current()->clone());
        for (int waited = 0;
             waited < churn_period_ms && !stop.load(std::memory_order_relaxed);
             waited += 5)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  std::size_t fresh_i = 0;
  std::size_t served = 0;
  Timer t;
  for (std::size_t i = 0; i < w.order.size(); ++i) {
    if (i % 200 == 199 && fresh_i < fresh_stream.size()) {
      (void)service.predict_index(fresh_stream[fresh_i++]);
      ++served;
    }
    (void)service.predict_index(w.pool[w.order[i]]);
    ++served;
  }
  const double req_s = static_cast<double>(served) / t.seconds();
  stop.store(true, std::memory_order_relaxed);
  if (publisher.joinable()) publisher.join();
  return req_s;
}

int run_online_drift(BenchConfig cfg, const std::string& json_path) {
  std::printf("== bench_serve --online-drift: feedback -> trainer -> "
              "registry -> hot swap ==\n");
  cfg.min_dim = 48;
  cfg.max_dim = 256;

  // Platform A trains the boot model; platform B is what the feedback
  // probe measures — same candidate formats, drifted label distribution.
  const auto plat_a = make_analytic_cpu(intel_xeon_params());
  const auto plat_b = make_analytic_cpu(amd_a8_params());
  const LabeledCorpus on_a = make_labeled_corpus(cfg, *plat_a);
  const LabeledCorpus on_b = make_labeled_corpus(cfg, *plat_b);
  DNNSPMV_CHECK(plat_a->formats() == plat_b->formats());

  SelectorOptions sopts;
  sopts.mode = RepMode::kHistogram;
  sopts.rep_rows = cfg.size;
  sopts.rep_bins = cfg.bins;
  sopts.train.epochs = std::min(cfg.epochs, 8);
  FormatSelector boot(sopts);
  boot.fit(on_a.labeled, plat_a->formats());

  // The recovery target: the same architecture trained from scratch on
  // B's labels — what an offline redeploy would ship.
  FormatSelector fresh(sopts);
  fresh.fit(on_b.labeled, plat_b->formats());
  const double fresh_acc = selector_accuracy(fresh, on_b.labeled);
  const double drift_share = [&] {
    std::size_t moved = 0;
    for (std::size_t i = 0; i < on_a.labeled.size(); ++i)
      moved += on_a.labeled[i].label != on_b.labeled[i].label;
    return static_cast<double>(moved) /
           static_cast<double>(on_a.labeled.size());
  }();

  ModelRegistry registry(boot.clone());
  FeedbackCollector feedback({.capacity = 1024, .sample_every = 1,
                              .measure_reps = 1});
  ServiceOptions so;
  so.num_workers = 2;
  so.feedback = &feedback;
  // Probe platform B analytically instead of timing this host's kernels:
  // the drifted label distribution is scripted, so the bench is
  // deterministic and runs in CI smoke time.
  so.feedback_probe = [&](const Csr& a) { return plat_b->spmv_times(a); };
  SelectionService service(registry, so);

  OnlineTrainerOptions topts;
  topts.min_batch = 32;
  topts.replay_capacity = 512;
  OnlineTrainer trainer(registry, feedback, topts);

  const double boot_acc = selector_accuracy(*registry.current(), on_b.labeled);
  std::printf("label drift A->B: %.0f%% of corpus; accuracy on B: "
              "boot %.1f%% fresh %.1f%%\n",
              100.0 * drift_share, 100.0 * boot_acc, 100.0 * fresh_acc);

  // Serve the corpus in slices of distinct matrices (all misses → every
  // request is feedback-eligible), stepping one deterministic training
  // round per slice. Recovery = within 1pt of the fresh model, within 5
  // published versions.
  constexpr int kMaxVersions = 5;
  constexpr std::size_t kSlice = 48;
  std::size_t submitted = 0, answered = 0, cursor = 0;
  double acc = boot_acc;
  int versions = 0;
  bool recovered = acc >= fresh_acc - 0.01;
  JsonWriter json;
  json.begin_object();
  json.field("bench", "online_drift");
  json.field("corpus", static_cast<std::int64_t>(on_b.labeled.size()));
  json.field("label_drift_share", drift_share);
  json.field("boot_accuracy_on_b", boot_acc);
  json.field("fresh_accuracy_on_b", fresh_acc);
  json.begin_array("versions");
  // Rounds are bounded independently of versions: once the corpus wraps,
  // slices are all cache hits, produce no feedback, and publish nothing —
  // without the bound a non-recovering model would spin here forever.
  for (int round = 0; !recovered && versions < kMaxVersions &&
                      round < 2 * kMaxVersions;
       ++round) {
    for (std::size_t i = 0; i < kSlice; ++i) {
      const Csr& a = on_b.corpus[cursor % on_b.corpus.size()].matrix;
      ++cursor;
      ++submitted;
      try {
        (void)service.predict_index(a);
        ++answered;
      } catch (const DnnspmvError&) {
        // counted against availability below
      }
    }
    if (!trainer.train_once()) continue;  // slice was all cache hits
    ++versions;
    acc = selector_accuracy(*registry.current(), on_b.labeled);
    recovered = acc >= fresh_acc - 0.01;
    std::printf("version %llu (round %d): accuracy on B %.1f%% "
                "(fresh %.1f%%, consumed %llu samples)\n",
                static_cast<unsigned long long>(registry.version()),
                versions, 100.0 * acc, 100.0 * fresh_acc,
                static_cast<unsigned long long>(trainer.consumed()));
    json.begin_object();
    json.field("version",
               static_cast<std::int64_t>(registry.version()));
    json.field("accuracy_on_b", acc);
    json.end_object();
  }
  json.end_array();
  const double availability =
      submitted == 0 ? 1.0
                     : static_cast<double>(answered) /
                           static_cast<double>(submitted);

  // Hot-swap price at steady state: the same mostly-hit workload with a
  // publisher landing a new version every 2 s (an aggressive cadence for
  // an online fine-tune loop — rounds are gated on fresh feedback, which
  // warm caches starve) vs. no publishes at all. A discarded warm-up pair
  // then interleaved best-of-5: at a 1% gate, best-of-3 still loses to
  // scheduler noise on a busy single-core host (~1.5% run-to-run swings).
  // The fresh-matrix trickle keeps workers adopting (see
  // run_swap_throughput).
  const Workload w = make_workload(on_b.corpus, 48, 100'000, cfg.seed);
  const std::vector<Csr> fresh_stream = [&] {
    CorpusSpec fs;
    fs.count = static_cast<std::int64_t>(w.order.size() / 200);
    fs.min_dim = 48;
    fs.max_dim = 160;
    fs.seed = cfg.seed + 1;
    std::vector<Csr> out;
    for (CorpusEntry& e : build_corpus(fs))
      out.push_back(std::move(e.matrix));
    return out;
  }();
  double quiet = 0.0, churn = 0.0;
  run_swap_throughput(registry, w, fresh_stream, 0);     // warm-up, discarded
  run_swap_throughput(registry, w, fresh_stream, 2000);  // warm-up, discarded
  for (int i = 0; i < 5; ++i) {
    quiet = std::max(quiet,
                     run_swap_throughput(registry, w, fresh_stream, 0));
    churn = std::max(churn,
                     run_swap_throughput(registry, w, fresh_stream, 2000));
  }
  const double overhead_pct = 100.0 * (1.0 - churn / quiet);
  const std::uint64_t churn_versions = registry.version();

  const bool met_recovery = recovered && versions <= kMaxVersions;
  const bool met_availability = availability >= 1.0;
  const bool met_overhead = overhead_pct < 1.0;
  std::printf("\nrecovered: %s (%.1f%% vs fresh %.1f%%, %d version(s), "
              "%zu requests, availability %.1f%%)\n",
              recovered ? "yes" : "NO", 100.0 * acc, 100.0 * fresh_acc,
              versions, submitted, 100.0 * availability);
  std::printf("hot-swap overhead: %.0f req/s quiet, %.0f req/s with "
              "publish-every-2s churn (%.2f%%, %llu versions published)\n",
              quiet, churn, overhead_pct,
              static_cast<unsigned long long>(churn_versions));

  json.field("final_accuracy_on_b", acc);
  json.field("versions_to_recover", versions);
  json.field("requests", static_cast<std::int64_t>(submitted));
  json.field("availability", availability);
  json.field("samples_consumed", trainer.consumed());
  json.field("quiet_req_s", quiet);
  json.field("churn_req_s", churn);
  json.field("swap_overhead_pct", overhead_pct);
  json.field("churn_versions_published",
             static_cast<std::int64_t>(churn_versions));
  json.field("accept_drift_recovery", met_recovery);
  json.field("accept_drift_availability", met_availability);
  json.field("accept_swap_overhead_1pct", met_overhead);
  json.end_object();
  if (json.write_file(json_path))
    std::printf("wrote %s\n", json_path.c_str());
  std::printf("\nacceptance: drift recovery <= %d versions within 1pt: %s; "
              "availability 100%%: %s; swap overhead < 1%%: %s\n",
              kMaxVersions, met_recovery ? "PASS" : "FAIL",
              met_availability ? "PASS" : "FAIL",
              met_overhead ? "PASS" : "FAIL");
  return met_recovery && met_availability && met_overhead ? 0 : 1;
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  if (cfg.n == 900) cfg.n = 160;  // shrink the shared default: training is
                                  // only setup here, serving is the subject
  const bool online_drift = cli.get_int("online-drift", 0) != 0;
  if (online_drift) {
    const std::string online_json =
        cli.get_string("json", "BENCH_online.json");
    cli.check_unused();
    return run_online_drift(cfg, online_json);
  }
  const auto pool_size = static_cast<std::size_t>(cli.get_int("pool", 48));
  const auto requests =
      static_cast<std::size_t>(cli.get_int("requests", 1500));
  // Default sweep stops at the host's core count: closed-loop clients are
  // CPU-bound request generators, so counts past hardware_concurrency
  // only measure oversubscription (see the header note). An explicit
  // --threads list is swept verbatim.
  const std::string default_threads = [] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::string s;
    for (unsigned t = 1; t <= hw && t <= 8; t *= 2)
      s += (s.empty() ? "" : ",") + std::to_string(t);
    return s;
  }();
  const std::vector<int> threads =
      parse_int_list(cli.get_string("threads", default_threads));
  const std::vector<int> batches =
      parse_int_list(cli.get_string("batch", "1,8,32"));
  const bool overload = cli.get_int("overload", 1) != 0;
  const std::string replicas_arg = cli.get_string("replicas", "1,2,4,8");
  const std::vector<int> replica_counts =
      replicas_arg == "0" ? std::vector<int>{} : parse_int_list(replicas_arg);
  const bool straggler = cli.get_int("straggler", 1) != 0;
  const std::string json_path = cli.get_string("json", "BENCH_serve.json");
  const std::string trace_path = cli.get_string("trace", "");
  cli.check_unused();

  std::printf("== bench_serve: SelectionService throughput ==\n");
  cfg.min_dim = 48;
  cfg.max_dim = 256;
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);

  SelectorOptions sopts;
  sopts.mode = RepMode::kHistogram;
  sopts.rep_rows = cfg.size;
  sopts.rep_bins = cfg.bins;
  sopts.train.epochs = std::min(cfg.epochs, 8);
  FormatSelector sel(sopts);
  sel.fit(lc.labeled, platform->formats());

  const Workload w = make_workload(lc.corpus, pool_size, requests, cfg.seed);
  std::printf("corpus=%zu pool=%zu requests=%zu\n", lc.corpus.size(),
              w.pool.size(), w.order.size());

  const double base = run_baseline(sel, w);
  std::printf("\nbaseline (1 thread, batch=1, no cache): %.0f req/s\n", base);

  std::printf("\n%8s %8s %12s %9s %9s %10s %10s %10s %10s\n", "threads",
              "batch", "req/s", "vs base", "hit rate", "mean batch",
              "p50 lat", "p95 lat", "rep p50");
  bool met_throughput = false, met_hits = false;
  JsonWriter json;
  json.begin_object();
  json.field("bench", "serve");
  json.field("pool", static_cast<std::int64_t>(w.pool.size()));
  json.field("requests", static_cast<std::int64_t>(w.order.size()));
  json.field("baseline_req_s", base);
  json.begin_array("sweep");
  int best_threads = threads.front(), best_batch = batches.front();
  double best_req_s = 0.0;
  for (int t : threads) {
    for (int b : batches) {
      const ServiceRun r =
          run_service(sel, w, t, static_cast<std::size_t>(b));
      std::printf(
          "%8d %8d %12.0f %8.1fx %8.1f%% %10.2f %9.0fus %9.0fus %9.0fus\n",
          t, b, r.throughput, r.throughput / base,
          100.0 * r.stats.hit_rate(), r.stats.mean_batch(),
          1e6 * r.stats.latency_quantile(0.50),
          1e6 * r.stats.latency_quantile(0.95),
          r.stats.rep_build.quantile(0.50));
      met_throughput |= r.throughput >= 3.0 * base;
      met_hits |= r.stats.hit_rate() >= 0.9;
      if (r.throughput > best_req_s) {
        best_req_s = r.throughput;
        best_threads = t;
        best_batch = b;
      }
      // Every serving number below comes from the obs registry: stats is
      // ServiceMetrics::snapshot(), a typed view of the service's
      // "serve<N>." instruments.
      json.begin_object();
      json.field("threads", t);
      json.field("batch", b);
      json.field("req_s", r.throughput);
      json.field("vs_baseline", r.throughput / base);
      json.field("hit_rate", r.stats.hit_rate());
      json.field("mean_batch", r.stats.mean_batch());
      json.field("p50_latency_us", 1e6 * r.stats.latency_quantile(0.50));
      json.field("p99_latency_us", 1e6 * r.stats.latency_quantile(0.99));
      // Miss-path representation build (serve<N>.rep_build_us): one sample
      // per cache miss, so count tracks misses and the quantiles isolate
      // the streaming builder's share of miss latency.
      json.field("rep_build_p50_us", r.stats.rep_build.quantile(0.50));
      json.field("rep_build_p99_us", r.stats.rep_build.quantile(0.99));
      json.field("rep_build_mean_us", r.stats.rep_build.mean());
      json.field("rep_build_count",
                 static_cast<std::int64_t>(r.stats.rep_build.count));
      json.end_object();
    }
  }
  json.end_array();

  // Observability overhead: re-run the best configuration with span
  // tracing on and off, best-of-3 each to shrug off scheduler noise.
  auto best_of = [&](int reps) {
    double best = 0.0;
    for (int i = 0; i < reps; ++i)
      best = std::max(best, run_service(sel, w, best_threads,
                                        static_cast<std::size_t>(best_batch))
                                .throughput);
    return best;
  };
  const double untraced = best_of(3);
  obs::clear_trace();
  obs::set_enabled(true);
  const double traced = best_of(3);
  obs::set_enabled(false);
  const double overhead_pct = 100.0 * (1.0 - traced / untraced);
  const bool met_overhead = overhead_pct < 5.0;
  std::printf("\ntracing overhead at %d threads, batch %d: "
              "%.0f req/s off, %.0f req/s on (%.2f%%)\n",
              best_threads, best_batch, untraced, traced, overhead_pct);
  if (!trace_path.empty()) {
    const std::int64_t n_events = obs::write_chrome_trace_file(trace_path);
    std::printf("wrote %lld trace events to %s (%llu dropped)\n",
                static_cast<long long>(n_events),
                trace_path.c_str(),
                static_cast<unsigned long long>(obs::dropped_trace_events()));
  } else {
    obs::clear_trace();  // don't hold ring memory for an unwanted dump
  }

  json.begin_object("traced");
  json.field("threads", best_threads);
  json.field("batch", best_batch);
  json.field("untraced_req_s", untraced);
  json.field("traced_req_s", traced);
  json.field("overhead_pct", overhead_pct);
  json.end_object();
  // Overload scenario: availability must hold at 100% with the degraded
  // path soaking up what the saturated CNN path cannot serve in time.
  bool met_overload = true;
  if (overload) {
    const auto deadline = std::chrono::milliseconds(250);
    const OverloadResult o = run_overload(sel, lc.corpus, deadline);
    met_overload = o.availability() >= 1.0 && o.other_failures == 0 &&
                   o.stats.degraded > 0 &&
                   o.max_ms < 1e3 * 0.25 * 2;  // nobody blocked past ~2x deadline
    std::printf("\noverload (1 slow worker, queue 16, deadline 250ms): "
                "%zu submitted, %zu answered (%.1f%%), %zu deadline-failed; "
                "degraded=%llu shed=%llu retries=%llu; "
                "p50 %.1fms p99 %.1fms max %.1fms\n",
                o.submitted, o.answered, 100.0 * o.availability(),
                o.deadline_failures,
                static_cast<unsigned long long>(o.stats.degraded),
                static_cast<unsigned long long>(o.stats.shed),
                static_cast<unsigned long long>(o.stats.retries),
                o.p50_ms, o.p99_ms, o.max_ms);
    json.begin_object("overload");
    json.field("submitted", static_cast<std::int64_t>(o.submitted));
    json.field("answered", static_cast<std::int64_t>(o.answered));
    json.field("deadline_failures",
               static_cast<std::int64_t>(o.deadline_failures));
    json.field("availability", o.availability());
    json.field("degraded", static_cast<std::int64_t>(o.stats.degraded));
    json.field("shed", static_cast<std::int64_t>(o.stats.shed));
    json.field("retries", static_cast<std::int64_t>(o.stats.retries));
    json.field("deadline_expired",
               static_cast<std::int64_t>(o.stats.deadline_expired));
    json.field("p50_ms", o.p50_ms);
    json.field("p99_ms", o.p99_ms);
    json.field("max_ms", o.max_ms);
    json.end_object();
  }
  // Scaling sweep: router throughput per replica count on the all-miss
  // workload. The 2.5× gate only binds on hosts that can actually run 4
  // replicas' lanes in parallel.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool scaling_gate_applied = hw_threads >= 8;
  bool met_scaling = true;
  if (!replica_counts.empty()) {
    std::printf("\nscaling sweep (all-miss, hedging off, %u hw threads):\n",
                hw_threads);
    std::printf("%9s %12s %9s\n", "replicas", "req/s", "speedup");
    json.begin_array("scaling");
    double base_req_s = 0.0;
    for (int r : replica_counts) {
      const ScalingRun sr = run_scaling(sel, lc.corpus, r);
      if (base_req_s == 0.0) base_req_s = sr.req_s;
      const double speedup = sr.req_s / base_req_s;
      std::printf("%9d %12.0f %8.2fx\n", r, sr.req_s, speedup);
      if (scaling_gate_applied && r == 4) met_scaling = speedup >= 2.5;
      json.begin_object();
      json.field("replicas", r);
      json.field("req_s", sr.req_s);
      json.field("speedup_vs_1", speedup);
      json.field("availability", sr.stats.availability());
      json.field("fp_reused",
                 static_cast<std::int64_t>(sr.stats.total_fp_reused()));
      json.end_object();
    }
    json.end_array();
    json.field("hw_threads", static_cast<std::int64_t>(hw_threads));
    json.field("scaling_gate_applied", scaling_gate_applied);
  }

  // Straggler scenario: hedging must beat the same router with hedging
  // off on tail latency, at full availability, while one replica drags.
  bool met_straggler = true;
  if (straggler) {
    const std::size_t n_straggler = std::min<std::size_t>(64, lc.corpus.size());
    const StragglerRun on = run_straggler(sel, lc.corpus, n_straggler, true);
    const StragglerRun off = run_straggler(sel, lc.corpus, n_straggler, false);
    met_straggler = on.p99_us < off.p99_us &&
                    on.stats.availability() >= 1.0 &&
                    off.stats.availability() >= 1.0 && on.stats.hedge_won > 0;
    std::printf("\nstraggler (2 replicas, replica 0 +5ms/forward): "
                "hedged p50 %.0fus p99 %.0fus (hedges=%llu won=%llu) | "
                "unhedged p50 %.0fus p99 %.0fus\n",
                on.p50_us, on.p99_us,
                static_cast<unsigned long long>(on.stats.hedges),
                static_cast<unsigned long long>(on.stats.hedge_won),
                off.p50_us, off.p99_us);
    json.begin_object("straggler");
    json.field("requests", static_cast<std::int64_t>(n_straggler));
    json.field("hedged_p50_us", on.p50_us);
    json.field("hedged_p99_us", on.p99_us);
    json.field("unhedged_p50_us", off.p50_us);
    json.field("unhedged_p99_us", off.p99_us);
    json.field("hedges", static_cast<std::int64_t>(on.stats.hedges));
    json.field("hedge_won", static_cast<std::int64_t>(on.stats.hedge_won));
    json.field("misrouted", static_cast<std::int64_t>(on.stats.misrouted));
    json.field("availability", on.stats.availability());
    json.end_object();
  }

  json.field("accept_throughput_3x", met_throughput);
  json.field("accept_hit_rate_90", met_hits);
  json.field("accept_trace_overhead_5pct", met_overhead);
  json.field("accept_overload_availability", met_overload);
  json.field("accept_scaling_2_5x", met_scaling);
  json.field("accept_straggler_p99", met_straggler);
  json.end_object();
  if (json.write_file(json_path))
    std::printf("wrote %s\n", json_path.c_str());

  std::printf("\nacceptance: throughput >= 3x baseline: %s; "
              "hit rate >= 90%%: %s; tracing overhead < 5%%: %s; "
              "overload availability 100%%: %s; "
              "scaling >= 2.5x @4 replicas: %s; straggler p99 win: %s\n",
              met_throughput ? "PASS" : "FAIL", met_hits ? "PASS" : "FAIL",
              met_overhead ? "PASS" : "FAIL", met_overload ? "PASS" : "FAIL",
              replica_counts.empty()
                  ? "SKIP"
                  : (scaling_gate_applied ? (met_scaling ? "PASS" : "FAIL")
                                          : "SKIP (few cores)"),
              straggler ? (met_straggler ? "PASS" : "FAIL") : "SKIP");
  return met_throughput && met_hits && met_overhead && met_overload &&
                 met_scaling && met_straggler
             ? 0
             : 1;
}

}  // namespace
}  // namespace dnnspmv::bench

int main(int argc, char** argv) { return dnnspmv::bench::run(argc, argv); }
