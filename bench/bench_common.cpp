#include "bench_common.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdio>

#include "common/timer.hpp"
#include "tensor/gemm.hpp"

namespace dnnspmv::bench {

BenchConfig parse_common(Cli& cli) {
  BenchConfig cfg;
  cfg.n = cli.get_int("n", cfg.n);
  cfg.min_dim = static_cast<index_t>(cli.get_int("min-dim", cfg.min_dim));
  cfg.max_dim = static_cast<index_t>(cli.get_int("max-dim", cfg.max_dim));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.size = cli.get_int("size", cfg.size);
  cfg.bins = cli.get_int("bins", cfg.bins);
  cfg.epochs = static_cast<int>(cli.get_int("epochs", cfg.epochs));
  cfg.folds = static_cast<int>(cli.get_int("folds", cfg.folds));
  cfg.verbose = cli.get_bool("verbose", false);
  return cfg;
}

LabeledCorpus make_labeled_corpus(const BenchConfig& cfg,
                                  const Platform& platform) {
  CorpusSpec spec;
  spec.count = cfg.n;
  spec.min_dim = cfg.min_dim;
  spec.max_dim = cfg.max_dim;
  spec.seed = cfg.seed;
  LabeledCorpus lc;
  lc.corpus = build_corpus(spec);
  lc.labeled = collect_labels(lc.corpus, platform);
  return lc;
}

namespace {

TrainConfig train_config(const BenchConfig& cfg) {
  TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.batch = 32;
  tc.lr = 2e-3;
  tc.seed = cfg.seed + 1;
  tc.verbose = cfg.verbose;
  return tc;
}

CnnSpec cnn_spec(const Dataset& data, RepMode mode, bool late_merge,
                 const BenchConfig& cfg) {
  CnnSpec spec;
  const int nsources = rep_num_sources(mode);
  for (int s = 0; s < nsources; ++s) {
    if (mode == RepMode::kHistogram)
      spec.input_hw.push_back({cfg.size, cfg.bins});
    else
      spec.input_hw.push_back({cfg.size, cfg.size});
  }
  spec.num_classes = static_cast<int>(data.candidates.size());
  spec.late_merge = late_merge;
  spec.seed = cfg.seed + 7;
  return spec;
}

}  // namespace

std::vector<std::int32_t> run_cnn(const Dataset& train, const Dataset& test,
                                  RepMode mode, bool late_merge,
                                  const BenchConfig& cfg,
                                  TrainHistory* history) {
  const CnnSpec spec = cnn_spec(train, mode, late_merge, cfg);
  MergeNet net = build_cnn(spec);
  const TrainHistory h =
      train_cnn(net, train, num_net_inputs(spec), train_config(cfg));
  if (history) *history = h;
  return predict_cnn(net, test, num_net_inputs(spec));
}

std::vector<std::int32_t> run_dt(const Dataset& train, const Dataset& test) {
  std::vector<std::vector<double>> x;
  std::vector<std::int32_t> y;
  for (const Sample& s : train.samples) {
    x.push_back(s.features);
    y.push_back(s.label);
  }
  DecisionTree tree;
  DTreeConfig cfg;
  cfg.num_classes = static_cast<int>(train.candidates.size());
  tree.fit(x, y, cfg);
  std::vector<std::int32_t> pred;
  pred.reserve(test.samples.size());
  for (const Sample& s : test.samples) pred.push_back(tree.predict(s.features));
  return pred;
}

namespace {

std::vector<std::int32_t> labels_of(const Dataset& ds) {
  std::vector<std::int32_t> y;
  y.reserve(ds.samples.size());
  for (const Sample& s : ds.samples) y.push_back(s.label);
  return y;
}

template <typename RunFold>
CvResult crossval(const Dataset& ds, int folds, std::uint64_t seed,
                  RunFold&& run_fold) {
  const auto y = labels_of(ds);
  CvResult out;
  for (const FoldSplit& split : stratified_kfold(y, folds, seed)) {
    const Dataset train = ds.subset(split.train);
    const Dataset test = ds.subset(split.test);
    const auto pred = run_fold(train, test);
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      out.index.push_back(split.test[i]);
      out.truth.push_back(y[static_cast<std::size_t>(split.test[i])]);
      out.pred.push_back(pred[i]);
    }
  }
  return out;
}

}  // namespace

CvResult crossval_cnn(const Dataset& ds, RepMode mode, bool late_merge,
                      const BenchConfig& cfg) {
  return crossval(ds, cfg.folds, cfg.seed + 13,
                  [&](const Dataset& train, const Dataset& test) {
                    return run_cnn(train, test, mode, late_merge, cfg);
                  });
}

CvResult crossval_dt(const Dataset& ds, const BenchConfig& cfg) {
  return crossval(ds, cfg.folds, cfg.seed + 13,
                  [&](const Dataset& train, const Dataset& test) {
                    return run_dt(train, test);
                  });
}

void print_quality_table(const std::string& title,
                         const std::vector<Format>& formats,
                         const EvalResult& result) {
  std::printf("  %s\n", title.c_str());
  std::printf("    %-6s %12s %8s %10s\n", "Format", "GroundTruth", "Recall",
              "Precision");
  for (std::size_t f = 0; f < formats.size(); ++f) {
    const ClassMetrics& m = result.per_class[f];
    if (m.ground_truth == 0) {
      std::printf("    %-6s %12lld %8s %10s\n",
                  format_name(formats[f]).c_str(),
                  static_cast<long long>(m.ground_truth), "-", "-");
    } else {
      std::printf("    %-6s %12lld %8.2f %10.2f\n",
                  format_name(formats[f]).c_str(),
                  static_cast<long long>(m.ground_truth), m.recall,
                  m.precision);
    }
  }
  std::printf("    Overall accuracy: %.3f\n", result.accuracy);
}

void print_vs_paper(const std::string& metric, double paper, double ours) {
  std::printf("  %-52s paper=%.3f ours=%.3f\n", metric.c_str(), paper, ours);
}

namespace {

// Verbatim copy of the seed's sgemm (scalar blocked loop, serial beta
// scaling) — the "before" of the packed-kernel speedup numbers. Kept here
// so the comparison survives the library kernel evolving further.
void seed_sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                const float* a, const float* b, float beta, float* c) {
  constexpr std::int64_t kBlockK = 256;
  constexpr std::int64_t kBlockN = 512;
  if (beta != 1.0f) {
    if (beta == 0.0f)
      std::fill(c, c + m * n, 0.0f);
    else
      for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k, k0 + kBlockK);
      for (std::int64_t n0 = 0; n0 < n; n0 += kBlockN) {
        const std::int64_t n1 = std::min(n, n0 + kBlockN);
        for (std::int64_t p = k0; p < k1; ++p) {
          const float av = alpha * a[i * k + p];
          if (av == 0.0f) continue;
          const float* brow = b + p * n;
          for (std::int64_t j = n0; j < n1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

}  // namespace

std::vector<GemmShapeResult> bench_gemm_shapes(
    const std::vector<std::array<std::int64_t, 3>>& shapes, int reps) {
  const int prev_threads = omp_get_max_threads();
  omp_set_num_threads(1);  // single-thread kernel throughput
  Rng rng(1234);
  std::vector<GemmShapeResult> out;
  for (const auto& [m, n, k] : shapes) {
    Tensor a({m, k}), b({k, n}), c({m, n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) * static_cast<double>(k);
    const double t_seed = time_kernel(
        [&] { seed_sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data()); },
        1, reps);
    const double t_packed = time_kernel(
        [&] { sgemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data()); }, 1,
        reps);
    out.push_back({m, n, k, flops / t_seed * 1e-9, flops / t_packed * 1e-9,
                   t_seed / t_packed});
  }
  omp_set_num_threads(prev_threads);
  return out;
}

std::vector<std::array<std::int64_t, 3>> merge_net_gemm_shapes() {
  // Default selector CNN on the 32×16 histogram representation, batch 32:
  //   conv1: [12, 32*512, 9]    (1→12 ch, 3×3, 32×16 input)
  //   conv2: [24, 32*32, 108]   (12→24 ch, 3×3 s2, 16×8 input)
  //   head:  [32, 96, 384] and [32, 4, 96]
  // plus the ISSUE-2 reference conv shape 32×16384×75.
  return {{12, 16384, 9},
          {24, 1024, 108},
          {32, 96, 384},
          {32, 16384, 75}};
}

}  // namespace dnnspmv::bench

namespace dnnspmv::bench {
namespace {

void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

void JsonWriter::prefix(std::string_view name) {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
    has_items_.back() = true;
  }
  if (!name.empty()) {
    json_escape(out_, name);
    out_ += ": ";
  }
}

JsonWriter& JsonWriter::begin_object(std::string_view name) {
  prefix(name);
  out_ += '{';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = !has_items_.empty() && has_items_.back();
  has_items_.pop_back();
  if (had) {
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
  }
  out_ += '}';
  if (has_items_.empty()) out_ += '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view name) {
  prefix(name);
  out_ += '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = !has_items_.empty() && has_items_.back();
  has_items_.pop_back();
  if (had) {
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::string_view v) {
  prefix(name);
  json_escape(out_, v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, double v) {
  prefix(name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::int64_t v) {
  prefix(name);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::uint64_t v) {
  prefix(name);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, bool v) {
  prefix(name);
  out_ += v ? "true" : "false";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
  return std::fclose(f) == 0 && n == out_.size();
}

}  // namespace dnnspmv::bench
