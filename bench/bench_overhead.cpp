// §7.6 reproduction: runtime overhead of prediction, in units of one CSR
// SpMV iteration on the same matrix (measured with this library's real
// kernels on the host).
//
// Paper (CPU): CNN rep-building 0.96x + inference 0.13x = 1.09x total;
// DT feature extraction 3.4x + tree walk 0.0085x = 3.4x total. Format
// conversion costs "a number of SpMV iterations" — we measure those too.
//
// Also compares the exact representation pipeline (make_inputs) against
// the streaming sampled builder on the miss path and enforces its gates:
// >= 5x faster rep build on matrices large enough that sampling engages,
// zero steady-state heap allocations in the warm build loop (counted by
// the operator-new hook below), and at most 1pt of selection-accuracy
// loss versus the exact representations.
//
// Also emits BENCH_infer.json (--json <path>): single-thread GFLOP/s of the
// packed GEMM on the MergeNet layer shapes plus the measured end-to-end
// per-matrix inference latency, as machine-readable trajectory points.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/rep_stream.hpp"
#include "sparse/spmv.hpp"
#include "tensor/arena.hpp"

// Process-wide allocation counter for the zero-steady-state gate. The
// replacement operators are global (this is the binary's only TU defining
// them), count only while armed, and otherwise just forward to malloc/free
// — timing runs with the counter disarmed are unaffected.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  // Paper-scale ratios need paper-scale matrices: one SpMV iteration must
  // cost ~milliseconds for "0.96x of an iteration" to be meaningful, so
  // the overhead corpus uses much larger dimensions than the training
  // benches default to.
  cfg.n = cli.get_int("overhead-n", 40);
  cfg.min_dim = static_cast<index_t>(cli.get_int("overhead-min-dim", 4096));
  cfg.max_dim = static_cast<index_t>(cli.get_int("overhead-max-dim", 16384));
  const std::string json_path = cli.get_string("json", "BENCH_infer.json");
  // Int8 cold-miss section (DESIGN.md §13): times the quantized forward
  // against the fp32 forward on the same prepared representations and
  // gates >= 2x latency reduction at <= 1pt selection-accuracy drop.
  const bool quantize = cli.get_bool("quantize", true);
  cli.check_unused();

  std::printf("=== §7.6: prediction overhead vs one CSR SpMV iteration ===\n");
  std::printf("matrices n=%lld dims [%d, %d] reps hist %lldx%lld\n\n",
              static_cast<long long>(cfg.n), cfg.min_dim, cfg.max_dim,
              static_cast<long long>(cfg.size),
              static_cast<long long>(cfg.bins));

  // Train a small selector so inference timing uses a real model.
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.rep_rows = cfg.size;
  opts.rep_bins = cfg.bins;
  // The overhead corpus is paper-scale but synthetic-sparse (tens of
  // thousands of nnz, not millions), so the serve default budget of 32768
  // would leave sampling disengaged on most of it. Budget down so the
  // bench exercises the same sampling ratios a production-size matrix
  // sees against the 32768 default; fit() trains on the same budget, so
  // train- and serve-time representations still match bit-for-bit.
  opts.rep_sample_nnz = 4096;
  opts.train.epochs = std::max(2, cfg.epochs / 3);
  FormatSelector sel(opts);
  sel.fit(lc.labeled, platform->formats());
  FormatSelector qsel = sel.clone();
  if (quantize) {
    const Dataset calib =
        build_dataset(lc.labeled, platform->formats(), opts.mode, cfg.size,
                      cfg.bins, opts.rep_sample_nnz);
    qsel.quantize(calib);
  }

  double sum_rep = 0.0, sum_inf = 0.0, sum_feat = 0.0, sum_tree = 0.0;
  double sum_rep_s = 0.0, sum_inf_s = 0.0;  // absolute seconds per matrix
  double sum_stream = 0.0, sum_stream_s = 0.0;  // streaming rep build
  // Large-matrix split: the >=5x gate applies where sampling engages
  // (nnz above the budget); below it the streaming builder is exact by
  // contract and only saves allocations.
  double sum_rep_large_s = 0.0, sum_stream_large_s = 0.0;
  std::int64_t large = 0;
  std::int64_t rep_agree = 0;         // exact vs streamed prediction picks
  std::int64_t exact_correct = 0;     // exact-rep picks matching the label
  std::int64_t stream_correct = 0;    // streamed-rep picks matching it
  std::uint64_t steady_allocs = 0;  // heap allocs in warm build loops
  // Int8 section: forward-only latency (the model-inference step of the
  // cold miss; representation building is shared by both paths) and picks.
  double sum_fwd_s = 0.0, sum_qfwd_s = 0.0;
  std::int64_t q_correct = 0, q_agree = 0;
  std::vector<double> conv_sums(cpu_formats().size(), 0.0);
  std::int64_t measured = 0;

  // The serve-tier miss path: the selector's own streaming builder driven
  // through the arena-backed build_into, buffers reused across matrices.
  const StreamingRepBuilder& builder = sel.rep_builder();
  TensorArena rep_arena;
  std::vector<Tensor> rep_out;

  DecisionTree tree;
  {
    std::vector<std::vector<double>> x;
    std::vector<std::int32_t> y;
    for (const auto& lm : lc.labeled) {
      x.push_back(extract_features(*lm.matrix));
      y.push_back(lm.label);
    }
    tree.fit(x, y);
  }

  for (std::size_t mi = 0; mi < lc.corpus.size(); ++mi) {
    const auto& e = lc.corpus[mi];
    const Csr& a = e.matrix;
    if (a.nnz() == 0) continue;
    std::vector<double> xv(static_cast<std::size_t>(a.cols), 1.0);
    std::vector<double> yv(static_cast<std::size_t>(a.rows), 0.0);
    const double t_spmv = time_kernel([&] { spmv_csr(a, xv, yv); }, 1, 3);
    if (t_spmv <= 0.0) continue;

    const double t_rep = time_kernel(
        [&] { make_inputs(a, RepMode::kHistogram, cfg.size, cfg.bins); }, 0,
        2);
    const double t_stream = time_kernel(
        [&] { builder.build_into(a, rep_arena, rep_out); }, 1, 2);
    // Zero-steady-state gate: the warm-up above saw this geometry, so
    // further builds must not touch the heap at all.
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 3; ++i) builder.build_into(a, rep_arena, rep_out);
    g_count_allocs.store(false);
    steady_allocs += g_alloc_count.load();
    // Selection quality: picks from exact vs sampled representations,
    // each scored against the measured-fastest format. Agreement is
    // informational; the gate below is on the accuracy delta, since a
    // near-tie flip that lands on an equally good format is not a
    // regression.
    const std::int32_t pick_exact = sel.predict_prepared(
        {make_inputs(a, RepMode::kHistogram, cfg.size, cfg.bins)})[0];
    const std::vector<std::vector<Tensor>> prepared = {builder.build(a)};
    const std::int32_t pick_stream = sel.predict_prepared(prepared)[0];
    rep_agree += pick_exact == pick_stream;
    if (quantize) {
      const std::int32_t pick_q = qsel.predict_prepared(prepared)[0];
      q_correct += pick_q == lc.labeled[mi].label;
      q_agree += pick_q == pick_stream;
      sum_fwd_s += time_kernel([&] { sel.predict_prepared(prepared); }, 1, 3);
      sum_qfwd_s +=
          time_kernel([&] { qsel.predict_prepared(prepared); }, 1, 3);
    }
    exact_correct += pick_exact == lc.labeled[mi].label;
    stream_correct += pick_stream == lc.labeled[mi].label;
    const double t_inf = time_kernel([&] { sel.predict_index(a); }, 0, 2);
    std::vector<double> feats;
    const double t_feat =
        time_kernel([&] { feats = extract_features(a); }, 0, 2);
    const double t_tree = time_kernel([&] { tree.predict(feats); }, 0, 5);

    sum_rep += t_rep / t_spmv;
    sum_inf += t_inf / t_spmv;
    sum_rep_s += t_rep;
    sum_inf_s += t_inf;
    sum_stream += t_stream / t_spmv;
    sum_stream_s += t_stream;
    if (builder.will_sample(a.nnz())) {
      sum_rep_large_s += t_rep;
      sum_stream_large_s += t_stream;
      ++large;
    }
    sum_feat += t_feat / t_spmv;
    sum_tree += t_tree / t_spmv;
    for (std::size_t f = 0; f < cpu_formats().size(); ++f) {
      const double t_conv = time_kernel(
          [&] { AnyFormatMatrix::convert(a, cpu_formats()[f]); }, 0, 1);
      conv_sums[f] += t_conv / t_spmv;
    }
    ++measured;
  }

  const double inv = 1.0 / static_cast<double>(measured);
  std::printf("measured on %lld matrices (unit: CSR SpMV iterations)\n\n",
              static_cast<long long>(measured));
  std::printf("  %-34s %10s %10s\n", "step", "paper", "ours");
  std::printf("  %-34s %10.2f %10.2f\n", "CNN step1: representation", 0.96,
              sum_rep * inv);
  std::printf("  %-34s %10s %10.2f\n", "CNN step1 (streaming sampled)", "-",
              sum_stream * inv);
  std::printf("  %-34s %10.2f %10.2f\n", "CNN step2: model inference", 0.13,
              sum_inf * inv);
  std::printf("  %-34s %10.2f %10.2f\n", "CNN total", 1.09,
              (sum_rep + sum_inf) * inv);
  std::printf("  %-34s %10.2f %10.2f\n", "DT step1: feature extraction", 3.4,
              sum_feat * inv);
  std::printf("  %-34s %10.4f %10.4f\n", "DT step2: tree walk", 0.0085,
              sum_tree * inv);
  std::printf("\n  format conversion cost (SpMV iterations):\n");
  for (std::size_t f = 0; f < cpu_formats().size(); ++f)
    std::printf("    CSR -> %-5s %10.1f\n",
                format_name(cpu_formats()[f]).c_str(), conv_sums[f] * inv);

  // Machine-readable trajectory point: packed-GEMM throughput on the
  // MergeNet layer shapes + the measured per-matrix inference latency.
  const std::vector<GemmShapeResult> gemm =
      bench_gemm_shapes(merge_net_gemm_shapes(), 3);
  std::printf("\n  packed GEMM on MergeNet shapes (single thread):\n");
  for (const GemmShapeResult& r : gemm)
    std::printf("    %lldx%lldx%lld  %7.2f GFLOP/s  (%.2fx over seed)\n",
                static_cast<long long>(r.m), static_cast<long long>(r.n),
                static_cast<long long>(r.k), r.packed_gflops, r.speedup);
  JsonWriter json;
  json.begin_object();
  json.field("bench", "infer");
  json.begin_array("gemm_shapes");
  for (const GemmShapeResult& r : gemm) {
    json.begin_object();
    json.field("m", r.m);
    json.field("n", r.n);
    json.field("k", r.k);
    json.field("seed_gflops", r.seed_gflops);
    json.field("packed_gflops", r.packed_gflops);
    json.field("speedup", r.speedup);
    json.end_object();
  }
  json.end_array();
  const double rep_speedup =
      sum_stream_large_s > 0.0 ? sum_rep_large_s / sum_stream_large_s : 0.0;
  const double rep_speedup_all =
      sum_stream_s > 0.0 ? sum_rep_s / sum_stream_s : 0.0;
  const double agreement =
      static_cast<double>(rep_agree) / static_cast<double>(measured);
  const double acc_exact =
      static_cast<double>(exact_correct) / static_cast<double>(measured);
  const double acc_stream =
      static_cast<double>(stream_correct) / static_cast<double>(measured);
  json.field("matrices_measured", measured);
  json.field("per_matrix_inference_latency_s", sum_inf_s * inv);
  json.field("per_matrix_representation_latency_s", sum_rep_s * inv);
  json.field("per_matrix_rep_stream_latency_s", sum_stream_s * inv);
  json.field("inference_spmv_iters", sum_inf * inv);
  json.field("representation_spmv_iters", sum_rep * inv);
  json.field("rep_stream_spmv_iters", sum_stream * inv);
  json.field("rep_speedup", rep_speedup);
  json.field("rep_speedup_all", rep_speedup_all);
  json.field("rep_sampled_matrices", large);
  json.field("rep_steady_state_allocs", steady_allocs);
  json.field("rep_agreement", agreement);
  json.field("rep_accuracy_exact", acc_exact);
  json.field("rep_accuracy_stream", acc_stream);
  const double q_speedup = sum_qfwd_s > 0.0 ? sum_fwd_s / sum_qfwd_s : 0.0;
  const double acc_q =
      static_cast<double>(q_correct) / static_cast<double>(measured);
  const double q_agreement =
      static_cast<double>(q_agree) / static_cast<double>(measured);
  json.field("quantized", quantize);
  if (quantize) {
    std::printf("\n  int8 cold-miss forward (single matrix, same reps):\n");
    std::printf("    fp32 %8.1f us   int8 %8.1f us   speedup %.2fx\n",
                sum_fwd_s * inv * 1e6, sum_qfwd_s * inv * 1e6, q_speedup);
    std::printf("    accuracy fp32 %.3f  int8 %.3f  agreement %.3f\n",
                acc_stream, acc_q, q_agreement);
    json.field("fp32_forward_latency_s", sum_fwd_s * inv);
    json.field("int8_forward_latency_s", sum_qfwd_s * inv);
    json.field("int8_speedup", q_speedup);
    json.field("int8_accuracy", acc_q);
    json.field("int8_agreement", q_agreement);
  }
  json.end_object();
  if (json.write_file(json_path))
    std::printf("  wrote %s\n", json_path.c_str());

  // Shape: DT feature extraction costs more than CNN representation
  // building, and both prediction paths are O(few SpMV iterations).
  const bool shape_holds =
      sum_feat > sum_rep && sum_tree * inv < 0.5;
  std::printf("\nshape check (DT features cost > CNN rep; tree walk cheap): %s\n",
              shape_holds ? "PASS" : "FAIL");
  // Streaming-builder gates: on large matrices (nnz above the sampling
  // budget) the sampled single-pass build must be >= 5x the exact
  // pipeline, allocate nothing once warm across the whole corpus, and
  // cost at most 1pt of selection accuracy vs the exact representations
  // (at smoke scale 1pt is below one matrix, so the tolerance floors at
  // one pick). A corpus with no large matrix cannot witness the speedup
  // claim, so it fails rather than passing vacuously.
  const double acc_tol = std::max(0.01, 1.0 / static_cast<double>(measured));
  const bool rep_gates = large > 0 && rep_speedup >= 5.0 &&
                         steady_allocs == 0 &&
                         acc_stream >= acc_exact - acc_tol;
  std::printf(
      "rep gates (speedup %.1fx >= 5x on %lld sampled matrices, %.1fx "
      "overall; steady-state allocs %llu == 0; accuracy %.3f sampled vs "
      "%.3f exact, agreement %.3f): %s\n",
      rep_speedup, static_cast<long long>(large), rep_speedup_all,
      static_cast<unsigned long long>(steady_allocs), acc_stream, acc_exact,
      agreement, rep_gates ? "PASS" : "FAIL");
  // Int8 gates (DESIGN.md §13): the quantized forward must at least halve
  // the cold-miss model-inference latency while giving up no more than 1pt
  // of selection accuracy against the fp32 forward on the same
  // representations (floored at one pick, like the streaming gate).
  bool quant_gates = true;
  if (quantize) {
    quant_gates = q_speedup >= 2.0 && acc_q >= acc_stream - acc_tol;
    std::printf(
        "int8 gates (forward speedup %.2fx >= 2x; accuracy %.3f int8 vs "
        "%.3f fp32, agreement %.3f): %s\n",
        q_speedup, acc_q, acc_stream, q_agreement,
        quant_gates ? "PASS" : "FAIL");
  }
  return shape_holds && rep_gates && quant_gates ? 0 : 1;
}
