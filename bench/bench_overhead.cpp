// §7.6 reproduction: runtime overhead of prediction, in units of one CSR
// SpMV iteration on the same matrix (measured with this library's real
// kernels on the host).
//
// Paper (CPU): CNN rep-building 0.96x + inference 0.13x = 1.09x total;
// DT feature extraction 3.4x + tree walk 0.0085x = 3.4x total. Format
// conversion costs "a number of SpMV iterations" — we measure those too.
//
// Also emits BENCH_infer.json (--json <path>): single-thread GFLOP/s of the
// packed GEMM on the MergeNet layer shapes plus the measured end-to-end
// per-matrix inference latency, as machine-readable trajectory points.
#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "sparse/spmv.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  // Paper-scale ratios need paper-scale matrices: one SpMV iteration must
  // cost ~milliseconds for "0.96x of an iteration" to be meaningful, so
  // the overhead corpus uses much larger dimensions than the training
  // benches default to.
  cfg.n = cli.get_int("overhead-n", 40);
  cfg.min_dim = static_cast<index_t>(cli.get_int("overhead-min-dim", 4096));
  cfg.max_dim = static_cast<index_t>(cli.get_int("overhead-max-dim", 16384));
  const std::string json_path = cli.get_string("json", "BENCH_infer.json");
  cli.check_unused();

  std::printf("=== §7.6: prediction overhead vs one CSR SpMV iteration ===\n");
  std::printf("matrices n=%lld dims [%d, %d] reps hist %lldx%lld\n\n",
              static_cast<long long>(cfg.n), cfg.min_dim, cfg.max_dim,
              static_cast<long long>(cfg.size),
              static_cast<long long>(cfg.bins));

  // Train a small selector so inference timing uses a real model.
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.rep_rows = cfg.size;
  opts.rep_bins = cfg.bins;
  opts.train.epochs = std::max(2, cfg.epochs / 3);
  FormatSelector sel(opts);
  sel.fit(lc.labeled, platform->formats());

  double sum_rep = 0.0, sum_inf = 0.0, sum_feat = 0.0, sum_tree = 0.0;
  double sum_rep_s = 0.0, sum_inf_s = 0.0;  // absolute seconds per matrix
  std::vector<double> conv_sums(cpu_formats().size(), 0.0);
  std::int64_t measured = 0;

  DecisionTree tree;
  {
    std::vector<std::vector<double>> x;
    std::vector<std::int32_t> y;
    for (const auto& lm : lc.labeled) {
      x.push_back(extract_features(*lm.matrix));
      y.push_back(lm.label);
    }
    tree.fit(x, y);
  }

  for (const auto& e : lc.corpus) {
    const Csr& a = e.matrix;
    if (a.nnz() == 0) continue;
    std::vector<double> xv(static_cast<std::size_t>(a.cols), 1.0);
    std::vector<double> yv(static_cast<std::size_t>(a.rows), 0.0);
    const double t_spmv = time_kernel([&] { spmv_csr(a, xv, yv); }, 1, 3);
    if (t_spmv <= 0.0) continue;

    const double t_rep = time_kernel(
        [&] { make_inputs(a, RepMode::kHistogram, cfg.size, cfg.bins); }, 0,
        2);
    const double t_inf = time_kernel([&] { sel.predict_index(a); }, 0, 2);
    std::vector<double> feats;
    const double t_feat =
        time_kernel([&] { feats = extract_features(a); }, 0, 2);
    const double t_tree = time_kernel([&] { tree.predict(feats); }, 0, 5);

    sum_rep += t_rep / t_spmv;
    sum_inf += t_inf / t_spmv;
    sum_rep_s += t_rep;
    sum_inf_s += t_inf;
    sum_feat += t_feat / t_spmv;
    sum_tree += t_tree / t_spmv;
    for (std::size_t f = 0; f < cpu_formats().size(); ++f) {
      const double t_conv = time_kernel(
          [&] { AnyFormatMatrix::convert(a, cpu_formats()[f]); }, 0, 1);
      conv_sums[f] += t_conv / t_spmv;
    }
    ++measured;
  }

  const double inv = 1.0 / static_cast<double>(measured);
  std::printf("measured on %lld matrices (unit: CSR SpMV iterations)\n\n",
              static_cast<long long>(measured));
  std::printf("  %-34s %10s %10s\n", "step", "paper", "ours");
  std::printf("  %-34s %10.2f %10.2f\n", "CNN step1: representation", 0.96,
              sum_rep * inv);
  std::printf("  %-34s %10.2f %10.2f\n", "CNN step2: model inference", 0.13,
              sum_inf * inv);
  std::printf("  %-34s %10.2f %10.2f\n", "CNN total", 1.09,
              (sum_rep + sum_inf) * inv);
  std::printf("  %-34s %10.2f %10.2f\n", "DT step1: feature extraction", 3.4,
              sum_feat * inv);
  std::printf("  %-34s %10.4f %10.4f\n", "DT step2: tree walk", 0.0085,
              sum_tree * inv);
  std::printf("\n  format conversion cost (SpMV iterations):\n");
  for (std::size_t f = 0; f < cpu_formats().size(); ++f)
    std::printf("    CSR -> %-5s %10.1f\n",
                format_name(cpu_formats()[f]).c_str(), conv_sums[f] * inv);

  // Machine-readable trajectory point: packed-GEMM throughput on the
  // MergeNet layer shapes + the measured per-matrix inference latency.
  const std::vector<GemmShapeResult> gemm =
      bench_gemm_shapes(merge_net_gemm_shapes(), 3);
  std::printf("\n  packed GEMM on MergeNet shapes (single thread):\n");
  for (const GemmShapeResult& r : gemm)
    std::printf("    %lldx%lldx%lld  %7.2f GFLOP/s  (%.2fx over seed)\n",
                static_cast<long long>(r.m), static_cast<long long>(r.n),
                static_cast<long long>(r.k), r.packed_gflops, r.speedup);
  JsonWriter json;
  json.begin_object();
  json.field("bench", "infer");
  json.begin_array("gemm_shapes");
  for (const GemmShapeResult& r : gemm) {
    json.begin_object();
    json.field("m", r.m);
    json.field("n", r.n);
    json.field("k", r.k);
    json.field("seed_gflops", r.seed_gflops);
    json.field("packed_gflops", r.packed_gflops);
    json.field("speedup", r.speedup);
    json.end_object();
  }
  json.end_array();
  json.field("matrices_measured", measured);
  json.field("per_matrix_inference_latency_s", sum_inf_s * inv);
  json.field("per_matrix_representation_latency_s", sum_rep_s * inv);
  json.field("inference_spmv_iters", sum_inf * inv);
  json.field("representation_spmv_iters", sum_rep * inv);
  json.end_object();
  if (json.write_file(json_path))
    std::printf("  wrote %s\n", json_path.c_str());

  // Shape: DT feature extraction costs more than CNN representation
  // building, and both prediction paths are O(few SpMV iterations).
  const bool shape_holds =
      sum_feat > sum_rep && sum_tree * inv < 0.5;
  std::printf("\nshape check (DT features cost > CNN rep; tree walk cheap): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
