// Figure 8 reproduction: SpMV speedup of CNN-selected formats over
// DT-selected formats, on the matrices where the two models disagree.
//
// Paper: CNN helps on 86% of the disagreement matrices, 1.73x average and
// 5.2x max speedup. Also reported in §7.3: CNN over always-CSR gives 2.23x
// average / 14.9x max on CPU.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

namespace {

double time_of(const Sample& s, std::int32_t fmt_idx) {
  return s.format_times[static_cast<std::size_t>(fmt_idx)];
}

/// Speedup of choosing `a` over choosing `b` for sample s (time_b/time_a).
double speedup(const Sample& s, std::int32_t a, std::int32_t b) {
  const double ta = time_of(s, a);
  const double tb = time_of(s, b);
  if (!std::isfinite(ta)) return 0.0;  // picked an infeasible format
  if (!std::isfinite(tb)) return 10.0; // other model picked infeasible
  return tb / ta;
}

void print_distribution(const std::vector<double>& sp) {
  // Figure 8 style: bucket the speedups and print percentage bars.
  const double edges[] = {0.4, 0.8, 1.0, 1.3, 1.7, 2.1, 2.5,
                          2.9, 3.3, 3.7, 4.1, 4.5, 4.9, 5.3, 5.7};
  const int nb = static_cast<int>(std::size(edges));
  std::vector<int> counts(static_cast<std::size_t>(nb + 1), 0);
  for (double v : sp) {
    int b = 0;
    while (b < nb && v >= edges[b]) ++b;
    ++counts[static_cast<std::size_t>(b)];
  }
  std::printf("    %-12s %8s\n", "speedup", "share");
  for (int b = 0; b <= nb; ++b) {
    const double lo = b == 0 ? 0.0 : edges[b - 1];
    const double pct = sp.empty()
                           ? 0.0
                           : 100.0 * counts[static_cast<std::size_t>(b)] /
                                 static_cast<double>(sp.size());
    char label[32];
    if (b == nb)
      std::snprintf(label, sizeof(label), ">=%.1f", edges[nb - 1]);
    else
      std::snprintf(label, sizeof(label), "%.1f-%.1f", lo, edges[b]);
    std::printf("    %-12s %7.1f%% ", label, pct);
    for (int i = 0; i < static_cast<int>(pct / 2.0); ++i) std::printf("#");
    std::printf("\n");
  }
}

struct SpeedupSummary {
  double mean = 0.0, max = 0.0, frac_ge_1 = 0.0;
};

SpeedupSummary summarize(const std::vector<double>& sp) {
  SpeedupSummary s;
  if (sp.empty()) return s;
  double sum = 0.0;
  int ge1 = 0;
  for (double v : sp) {
    sum += v;
    s.max = std::max(s.max, v);
    if (v >= 1.0) ++ge1;
  }
  s.mean = sum / static_cast<double>(sp.size());
  s.frac_ge_1 = static_cast<double>(ge1) / static_cast<double>(sp.size());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(cli);
  cli.check_unused();

  std::printf("=== Figure 8: SpMV speedups, CNN-selected vs DT-selected ===\n");
  std::printf("corpus n=%lld dims [%d, %d]\n\n",
              static_cast<long long>(cfg.n), cfg.min_dim, cfg.max_dim);

  const auto platform = make_analytic_cpu(intel_xeon_params());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  const auto& formats = platform->formats();
  const Dataset ds = build_dataset(lc.labeled, formats, RepMode::kHistogram,
                                   cfg.size, cfg.bins);

  const CvResult cnn = crossval_cnn(ds, RepMode::kHistogram, true, cfg);
  const CvResult dt = crossval_dt(ds, cfg);

  // Align by sample index (same folds, same order — both use seed+13).
  std::vector<std::int32_t> dt_pred_by_index(ds.size(), 0);
  for (std::size_t i = 0; i < dt.index.size(); ++i)
    dt_pred_by_index[static_cast<std::size_t>(dt.index[i])] = dt.pred[i];

  std::vector<double> sp_vs_dt, sp_vs_csr;
  const auto csr_idx = static_cast<std::int32_t>(
      std::find(formats.begin(), formats.end(), Format::kCsr) -
      formats.begin());
  for (std::size_t i = 0; i < cnn.index.size(); ++i) {
    const Sample& s =
        ds.samples[static_cast<std::size_t>(cnn.index[i])];
    const std::int32_t dp =
        dt_pred_by_index[static_cast<std::size_t>(cnn.index[i])];
    if (cnn.pred[i] != dp) sp_vs_dt.push_back(speedup(s, cnn.pred[i], dp));
    sp_vs_csr.push_back(speedup(s, cnn.pred[i], csr_idx));
  }

  std::printf("disagreement matrices: %zu of %zu\n\n", sp_vs_dt.size(),
              cnn.index.size());
  std::printf("  speedup distribution over disagreement set (Figure 8):\n");
  print_distribution(sp_vs_dt);

  const SpeedupSummary d = summarize(sp_vs_dt);
  const SpeedupSummary c = summarize(sp_vs_csr);
  std::printf("\n--- paper vs ours ---\n");
  print_vs_paper("CNN-over-DT mean speedup (disagreements)", 1.73, d.mean);
  print_vs_paper("CNN-over-DT max speedup", 5.2, d.max);
  print_vs_paper("fraction of disagreements with speedup>=1", 0.86,
                 d.frac_ge_1);
  print_vs_paper("CNN-over-always-CSR mean speedup (all)", 2.23, c.mean);
  print_vs_paper("CNN-over-always-CSR max speedup", 14.9, c.max);

  // The always-CSR comparison is the robust half of the paper's claim: a
  // trained selector rectifies default-format choices. The CNN-vs-DT half
  // depends on the DT's accuracy, which our simulated labels inflate (see
  // bench_table2's note and EXPERIMENTS.md).
  const bool shape_holds = c.mean > 1.0 && d.mean > 0.7;
  std::printf("\nshape check (selector beats always-CSR; CNN-vs-DT ratio "
              "reported): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
