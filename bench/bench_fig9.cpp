// Figure 9 reproduction: cross-architecture model migration.
//
// A CNN+Histogram model trained on the Intel-like platform is migrated to
// the AMD-like platform (whose labels differ for a sizeable fraction of the
// corpus). For increasing amounts of target-platform retraining data we
// compare: train-from-scratch, continuous evolvement (fine-tune all), and
// top evolvement (frozen towers, retrain head). Paper: both transfer
// methods dominate from-scratch at small retraining sizes; top evolvement
// learns fastest, continuous wins slightly with abundant data.
#include <cstdio>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  cli.check_unused();

  std::printf("=== Figure 9: migrating the CNN from Intel to AMD ===\n");
  const MachineParams src_mp = intel_xeon_params();
  const MachineParams dst_mp = amd_a8_params();
  std::printf("source %s (%.0f GB/s, %d cores) -> target %s (%.1f GB/s, %d cores)\n",
              src_mp.name.c_str(), src_mp.bandwidth_gbps, src_mp.cores,
              dst_mp.name.c_str(), dst_mp.bandwidth_gbps, dst_mp.cores);

  const auto intel = make_analytic_cpu(src_mp);
  const auto amd = make_analytic_cpu(dst_mp);

  CorpusSpec spec;
  spec.count = cfg.n;
  spec.min_dim = cfg.min_dim;
  spec.max_dim = cfg.max_dim;
  spec.seed = cfg.seed;
  const auto corpus = build_corpus(spec);
  const auto src_labeled = collect_labels(corpus, *intel);
  const auto dst_labeled = collect_labels(corpus, *amd);

  std::int64_t moved = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i)
    if (src_labeled[i].label != dst_labeled[i].label) ++moved;
  std::printf("labels that differ across machines: %lld / %lld (%.1f%%)\n\n",
              static_cast<long long>(moved),
              static_cast<long long>(corpus.size()),
              100.0 * static_cast<double>(moved) /
                  static_cast<double>(corpus.size()));

  const auto& formats = intel->formats();
  const Dataset src_ds = build_dataset(src_labeled, formats,
                                       RepMode::kHistogram, cfg.size,
                                       cfg.bins);
  const Dataset dst_ds = build_dataset(dst_labeled, formats,
                                       RepMode::kHistogram, cfg.size,
                                       cfg.bins);

  // Source model trained on the full Intel-labelled corpus.
  SelectorOptions opts;
  opts.mode = RepMode::kHistogram;
  opts.rep_rows = cfg.size;
  opts.rep_bins = cfg.bins;
  opts.train.epochs = cfg.epochs;
  opts.train.batch = 32;
  opts.train.lr = 2e-3;
  opts.train.seed = cfg.seed + 7;
  FormatSelector source(opts);
  source.fit(src_ds);

  // Hold out a fixed target test set; sweep the retraining size over the
  // remainder.
  const auto folds = stratified_kfold(
      [&] {
        std::vector<std::int32_t> y;
        for (const Sample& s : dst_ds.samples) y.push_back(s.label);
        return y;
      }(),
      4, cfg.seed + 99);
  const Dataset dst_test = dst_ds.subset(folds[0].test);
  const std::vector<std::int32_t>& pool = folds[0].train;

  TrainConfig retrain;
  retrain.epochs = cfg.epochs;
  retrain.batch = 16;
  retrain.lr = 1.5e-3;
  retrain.seed = cfg.seed + 23;

  const MigrationMethod methods[] = {MigrationMethod::kFromScratch,
                                     MigrationMethod::kContinuous,
                                     MigrationMethod::kTopEvolve};

  std::printf("  %-10s %14s %18s %12s\n", "retrain_n", "from-scratch",
              "continuous", "top-evolve");

  std::vector<std::int64_t> sizes;
  const auto pool_n = static_cast<std::int64_t>(pool.size());
  for (std::int64_t s = 0; s <= pool_n;
       s += std::max<std::int64_t>(1, pool_n / 6))
    sizes.push_back(s);

  const std::int64_t small = sizes.size() > 1 ? sizes[1] : 0;
  double best_top_small = 0.0, best_scratch_small = 0.0;
  for (std::int64_t n : sizes) {
    std::vector<std::int32_t> subset(pool.begin(), pool.begin() + n);
    const Dataset target_train = dst_ds.subset(subset);
    std::printf("  %-10lld", static_cast<long long>(n));
    for (MigrationMethod m : methods) {
      FormatSelector migrated = source.migrate(m, target_train, retrain);
      const double acc = accuracy_cnn(migrated.net(), dst_test, 2);
      std::printf(" %14.3f", acc);
      if (n == small) {
        if (m == MigrationMethod::kTopEvolve) best_top_small = acc;
        if (m == MigrationMethod::kFromScratch) best_scratch_small = acc;
      }
    }
    std::printf("\n");
  }

  std::printf("\n--- paper vs ours ---\n");
  std::printf("  paper: transfer methods reach ~0.9 accuracy with ~1/4 of\n"
              "  the data from-scratch needs; at the smallest retrain size\n"
              "  ours: top-evolve=%.3f vs from-scratch=%.3f\n",
              best_top_small, best_scratch_small);
  const bool shape_holds = best_top_small >= best_scratch_small;
  std::printf("\nshape check (warm start >= scratch at small sizes): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
