// Shared plumbing for the table/figure reproduction binaries.
//
// Every bench builds the same kind of pipeline: corpus → platform labels →
// datasets per representation → models → metrics, printed next to the
// paper's numbers. Flags shared by all benches:
//   --n <count>        corpus size          (default 900)
//   --min-dim/--max-dim  matrix dimensions  (defaults 128 / 1024)
//   --seed <u64>       corpus seed          (default 42)
//   --size <s>         representation rows  (default 32)
//   --bins <b>         histogram bins       (default 16)
//   --epochs <e>       CNN training epochs  (default 10)
//   --folds <k>        cross-validation folds (default 3; paper used 5)
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/selector.hpp"
#include "ml/crossval.hpp"
#include "ml/dtree.hpp"
#include "ml/metrics.hpp"

namespace dnnspmv::bench {

struct BenchConfig {
  std::int64_t n = 900;
  index_t min_dim = 128;
  index_t max_dim = 1024;
  std::uint64_t seed = 42;
  std::int64_t size = 32;
  std::int64_t bins = 16;
  int epochs = 30;
  int folds = 3;
  bool verbose = false;
};

/// Parses the shared flags; bench-specific flags should be read from `cli`
/// before calling check_unused().
BenchConfig parse_common(Cli& cli);

/// Corpus + labels for a platform.
struct LabeledCorpus {
  std::vector<CorpusEntry> corpus;
  std::vector<LabeledMatrix> labeled;
};

LabeledCorpus make_labeled_corpus(const BenchConfig& cfg,
                                  const Platform& platform);

/// Trains the CNN on `train` and returns test-set predictions.
std::vector<std::int32_t> run_cnn(const Dataset& train, const Dataset& test,
                                  RepMode mode, bool late_merge,
                                  const BenchConfig& cfg,
                                  TrainHistory* history = nullptr);

/// Trains the DT baseline on `train` features and predicts `test`.
std::vector<std::int32_t> run_dt(const Dataset& train, const Dataset& test);

/// k-fold CV of a model family over a dataset; returns pooled predictions
/// aligned with ds.samples plus the truth vector.
struct CvResult {
  std::vector<std::int32_t> index;  // sample index into the source dataset
  std::vector<std::int32_t> truth;
  std::vector<std::int32_t> pred;
};

CvResult crossval_cnn(const Dataset& ds, RepMode mode, bool late_merge,
                      const BenchConfig& cfg);
CvResult crossval_dt(const Dataset& ds, const BenchConfig& cfg);

/// Prints a Table 2/3-style block: ground truth, recall, precision per
/// format plus the overall accuracy.
void print_quality_table(const std::string& title,
                         const std::vector<Format>& formats,
                         const EvalResult& result);

/// "paper=X ours=Y" one-liner.
void print_vs_paper(const std::string& metric, double paper, double ours);

/// Single-thread GEMM throughput of the packed kernel vs a copy of the
/// seed's naive blocked kernel, per {m, n, k} shape. Shared by bench_gemm
/// (full sweep) and bench_overhead (MergeNet shapes for BENCH_infer.json).
struct GemmShapeResult {
  std::int64_t m, n, k;
  double seed_gflops;
  double packed_gflops;
  double speedup;  // packed / seed
};

std::vector<GemmShapeResult> bench_gemm_shapes(
    const std::vector<std::array<std::int64_t, 3>>& shapes, int reps);

/// The conv/dense GEMM shapes of the default MergeNet on the histogram
/// representation (batch 32), plus the ISSUE-2 reference shape 32×16384×75.
std::vector<std::array<std::int64_t, 3>> merge_net_gemm_shapes();

/// Minimal streaming writer for the BENCH_*.json artifacts: handles
/// nesting, commas, and indentation so benches stop hand-rolling fprintf
/// JSON. Values are emitted as they arrive; str() is the document so far.
class JsonWriter {
 public:
  /// `name` keys the child in an enclosing object; pass nothing for the
  /// root or for elements of an array.
  JsonWriter& begin_object(std::string_view name = {});
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view name = {});
  JsonWriter& end_array();

  JsonWriter& field(std::string_view name, std::string_view v);
  JsonWriter& field(std::string_view name, const char* v) {
    return field(name, std::string_view(v));
  }
  JsonWriter& field(std::string_view name, double v);
  JsonWriter& field(std::string_view name, std::int64_t v);
  JsonWriter& field(std::string_view name, std::uint64_t v);
  JsonWriter& field(std::string_view name, int v) {
    return field(name, static_cast<std::int64_t>(v));
  }
  JsonWriter& field(std::string_view name, bool v);

  const std::string& str() const { return out_; }
  bool write_file(const std::string& path) const;

 private:
  void prefix(std::string_view name);
  std::string out_;
  std::vector<bool> has_items_;  // one per open scope: comma needed?
};

}  // namespace dnnspmv::bench
