// Figure 11 reproduction: training-loss convergence of the late-merging vs
// early-merging CNN structures on the same data.
//
// Paper: the late-merging structure's cross-entropy drops faster, converges
// lower (~0.1 vs ~0.4 after 10k steps), and is steadier. We train both twin
// structures on identical binary+density inputs (equal shapes, so both
// structures apply) and print the loss series.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

namespace {

double mean_tail(const std::vector<double>& v, std::size_t k) {
  if (v.empty()) return 0.0;
  const std::size_t n = std::min(k, v.size());
  double s = 0.0;
  for (std::size_t i = v.size() - n; i < v.size(); ++i) s += v[i];
  return s / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  cfg.epochs = static_cast<int>(cli.get_int("fig11-epochs", cfg.epochs * 2));
  cli.check_unused();

  std::printf("=== Figure 11: late-merging vs early-merging convergence ===\n");
  std::printf("corpus n=%lld reps %lldx%lld (binary+density) epochs=%d\n\n",
              static_cast<long long>(cfg.n), static_cast<long long>(cfg.size),
              static_cast<long long>(cfg.size), cfg.epochs);

  const auto platform = make_analytic_cpu(intel_xeon_params());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  const Dataset ds = build_dataset(lc.labeled, platform->formats(),
                                   RepMode::kBinaryDensity, cfg.size,
                                   cfg.size);

  TrainHistory late, early;
  run_cnn(ds, ds, RepMode::kBinaryDensity, /*late_merge=*/true, cfg, &late);
  run_cnn(ds, ds, RepMode::kBinaryDensity, /*late_merge=*/false, cfg, &early);

  std::printf("  %-8s %12s %12s\n", "step", "late-merge", "early-merge");
  const std::size_t steps =
      std::min(late.step_loss.size(), early.step_loss.size());
  const std::size_t stride = std::max<std::size_t>(1, steps / 24);
  for (std::size_t s = 0; s < steps; s += stride)
    std::printf("  %-8zu %12.4f %12.4f\n", s, late.step_loss[s],
                early.step_loss[s]);

  const double late_final = mean_tail(late.step_loss, 10);
  const double early_final = mean_tail(early.step_loss, 10);
  std::printf("\n--- paper vs ours (final training loss) ---\n");
  print_vs_paper("late-merging final loss", 0.10, late_final);
  print_vs_paper("early-merging final loss", 0.40, early_final);

  // Steadiness: variance of the last quarter of the loss series.
  auto tail_var = [](const std::vector<double>& v) {
    const std::size_t n = v.size() / 4;
    if (n < 2) return 0.0;
    double mean = 0.0;
    for (std::size_t i = v.size() - n; i < v.size(); ++i) mean += v[i];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = v.size() - n; i < v.size(); ++i)
      var += (v[i] - mean) * (v[i] - mean);
    return var / static_cast<double>(n);
  };
  std::printf("  tail loss variance: late=%.5f early=%.5f\n",
              tail_var(late.step_loss), tail_var(early.step_loss));

  const bool shape_holds = late_final <= early_final;
  std::printf("\nshape check (late-merging converges lower): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
