// Table 3 reproduction: prediction quality on the GPU platform
// (cuSPARSE + CSR5 format set, labels from the TITAN-X-like cost model).
//
// Paper: CNN+Histogram 0.90 vs DT 0.83 overall, COO never the winner.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const BenchConfig cfg = parse_common(cli);
  cli.check_unused();

  std::printf("=== Table 3: prediction quality on the GPU platform ===\n");
  const MachineParams mp = titan_x_params();
  std::printf("platform %s: %.0f GB/s, %d CUDA cores, %.2f GHz\n",
              mp.name.c_str(), mp.bandwidth_gbps, mp.cores, mp.freq_ghz);
  std::printf("corpus n=%lld dims [%d, %d] hist %lldx%lld folds=%d epochs=%d\n\n",
              static_cast<long long>(cfg.n), cfg.min_dim, cfg.max_dim,
              static_cast<long long>(cfg.size),
              static_cast<long long>(cfg.bins), cfg.folds, cfg.epochs);

  const auto platform = make_analytic_gpu(mp);
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  const auto& formats = platform->formats();
  const int k = static_cast<int>(formats.size());

  const Dataset ds = build_dataset(lc.labeled, formats, RepMode::kHistogram,
                                   cfg.size, cfg.bins);

  // COO must never win (paper Table 3, last row).
  const auto hist = ds.label_histogram();
  const std::size_t coo_idx = formats.size() - 1;  // gpu_formats ends in COO
  std::printf("COO ground-truth count (paper: 0): %lld\n\n",
              static_cast<long long>(hist[coo_idx]));

  const CvResult cnn = crossval_cnn(ds, RepMode::kHistogram, true, cfg);
  const EvalResult rcnn = evaluate(cnn.truth, cnn.pred, k);
  print_quality_table("CNN+Histogram", formats, rcnn);
  std::printf("\n");

  const CvResult dt = crossval_dt(ds, cfg);
  const EvalResult rdt = evaluate(dt.truth, dt.pred, k);
  print_quality_table("DT (SMAT-style baseline)", formats, rdt);

  std::printf("\n--- paper vs ours (overall accuracy) ---\n");
  print_vs_paper("CNN+Histogram", 0.90, rcnn.accuracy);
  print_vs_paper("DT", 0.83, rdt.accuracy);

  const double majority =
      static_cast<double>(*std::max_element(hist.begin(), hist.end())) /
      static_cast<double>(ds.size());
  std::printf("\nmajority-class share: %.3f\n", majority);
  std::printf("(on the CNN-vs-DT ordering see bench_table2's note and "
              "EXPERIMENTS.md)\n");

  const bool shape_holds = hist[coo_idx] == 0 &&
                           rcnn.accuracy > majority + 0.05 &&
                           rdt.accuracy > majority + 0.05;
  std::printf("\nshape check (COO never wins; both models beat the majority "
              "class): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
