// Ablations over the design choices DESIGN.md §5 calls out:
//
//  1. label source honesty — a model trained to predict the *generator
//     class* would be trivially accurate; the real task (time-derived
//     labels) must be strictly harder.
//  2. noise sensitivity — how much of the residual CNN error is explained
//     by the measurement-jitter label noise near format crossovers.
//  3. histogram bins — linear distance bins (Algorithm 1) vs a coarser
//     bin count.
#include <cstdio>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  cli.check_unused();

  std::printf("=== Ablations (DESIGN.md §5) ===\n\n");
  const auto platform = make_analytic_cpu(intel_xeon_params());
  const LabeledCorpus lc = make_labeled_corpus(cfg, *platform);
  const auto& formats = platform->formats();
  const int k = static_cast<int>(formats.size());

  // --- 1. class-label leak check -----------------------------------------
  {
    std::int64_t class_equals_label = 0;
    for (std::size_t i = 0; i < lc.labeled.size(); ++i) {
      // Would "banded => DIA, uniform => ELL, hypersparse => COO, else
      // CSR" match the timed label? If it mostly would, the task leaks.
      std::int32_t guess = 1;  // CSR
      switch (lc.corpus[i].gen_class) {
        case GenClass::kBanded:
        case GenClass::kMultiDiag: guess = 2; break;  // DIA
        case GenClass::kUniformRows: guess = 3; break;  // ELL
        case GenClass::kHypersparse: guess = 0; break;  // COO
        default: guess = 1; break;
      }
      if (guess == lc.labeled[i].label) ++class_equals_label;
    }
    const double oracle = static_cast<double>(class_equals_label) /
                          static_cast<double>(lc.labeled.size());
    std::printf("1. class-rule oracle accuracy: %.3f\n", oracle);
    std::printf("   (must be well below 1.0 — labels derive from time, not\n"
                "   from the generator class; crossovers flip the winner)\n\n");
  }

  // --- 2. label-noise ceiling ---------------------------------------------
  {
    // Relabel with a different noise seed: the fraction of labels that flip
    // bounds the accuracy any model can reach on this corpus.
    MachineParams alt = intel_xeon_params();
    alt.noise_seed += 1000;
    const auto alt_platform = make_analytic_cpu(alt);
    const auto relabeled = collect_labels(lc.corpus, *alt_platform);
    std::int64_t stable = 0;
    for (std::size_t i = 0; i < relabeled.size(); ++i)
      if (relabeled[i].label == lc.labeled[i].label) ++stable;
    const double ceiling = static_cast<double>(stable) /
                           static_cast<double>(relabeled.size());
    std::printf("2. label stability across measurement noise: %.3f\n", ceiling);
    std::printf("   (upper bound on any selector's accuracy — the paper's\n"
                "   93%% sits below the same kind of ceiling)\n\n");
  }

  // --- 3. histogram bin-count ablation -------------------------------------
  {
    std::printf("3. histogram bin-count ablation (size fixed at %lld):\n",
                static_cast<long long>(cfg.size));
    std::printf("   %-8s %10s\n", "bins", "accuracy");
    BenchConfig c = cfg;
    c.folds = 2;
    for (std::int64_t bins : {8LL, 16LL, 32LL}) {
      const Dataset ds = build_dataset(lc.labeled, formats,
                                       RepMode::kHistogram, cfg.size, bins);
      c.bins = bins;
      const CvResult cv = crossval_cnn(ds, RepMode::kHistogram, true, c);
      std::printf("   %-8lld %10.3f\n", static_cast<long long>(bins),
                  evaluate(cv.truth, cv.pred, k).accuracy);
    }
  }

  std::printf("\ndone.\n");
  return 0;
}
