// GEMM micro-benchmark: packed/register-blocked kernel (tensor/gemm.cpp)
// vs the seed's naive blocked loop, single thread, on the MergeNet layer
// shapes plus square sweeps. Emits BENCH_gemm.json with GFLOP/s per shape
// so the bench trajectory has machine-readable data points.
//
// Flags: --reps <r> (default 7), --json <path> (default BENCH_gemm.json).
#include <cstdio>

#include "bench_common.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 7));
  const std::string json_path = cli.get_string("json", "BENCH_gemm.json");
  cli.check_unused();

  std::vector<std::array<std::int64_t, 3>> shapes = merge_net_gemm_shapes();
  shapes.push_back({128, 128, 128});
  shapes.push_back({256, 256, 256});
  shapes.push_back({512, 512, 512});
  shapes.push_back({96, 4096, 192});

  std::printf("=== packed GEMM vs seed kernel (single thread) ===\n\n");
  std::printf("  %6s %6s %6s %12s %12s %9s\n", "m", "n", "k", "seed GF/s",
              "packed GF/s", "speedup");
  const std::vector<GemmShapeResult> results =
      bench_gemm_shapes(shapes, reps);
  double min_speedup_merge = 1e30;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GemmShapeResult& r = results[i];
    std::printf("  %6lld %6lld %6lld %12.2f %12.2f %8.2fx\n",
                static_cast<long long>(r.m), static_cast<long long>(r.n),
                static_cast<long long>(r.k), r.seed_gflops, r.packed_gflops,
                r.speedup);
    if (i < merge_net_gemm_shapes().size())
      min_speedup_merge = std::min(min_speedup_merge, r.speedup);
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"gemm\",\n  \"shapes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const GemmShapeResult& r = results[i];
      std::fprintf(f,
                   "    {\"m\": %lld, \"n\": %lld, \"k\": %lld, "
                   "\"seed_gflops\": %.3f, \"packed_gflops\": %.3f, "
                   "\"speedup\": %.3f}%s\n",
                   static_cast<long long>(r.m), static_cast<long long>(r.n),
                   static_cast<long long>(r.k), r.seed_gflops,
                   r.packed_gflops, r.speedup,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"min_mergenet_speedup\": %.3f\n}\n",
                 min_speedup_merge);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // ISSUE 2 acceptance: ≥3× single-thread speedup on MergeNet shapes.
  std::printf("min MergeNet-shape speedup: %.2fx (target 3x): %s\n",
              min_speedup_merge,
              min_speedup_merge >= 3.0 ? "PASS" : "FAIL");
  return min_speedup_merge >= 3.0 ? 0 : 1;
}
