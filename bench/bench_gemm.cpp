// GEMM micro-benchmark: packed/register-blocked kernel (tensor/gemm.cpp)
// vs the seed's naive blocked loop, single thread, on the MergeNet layer
// shapes plus square sweeps, with an informational int8 section comparing
// the quantized qgemm_u7 kernel against packed fp32 on the same shapes.
// Emits BENCH_gemm.json with GFLOP/s per shape so the bench trajectory has
// machine-readable data points.
//
// Flags: --reps <r> (default 7), --json <path> (default BENCH_gemm.json).
#include <cstdio>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "tensor/gemm.hpp"

using namespace dnnspmv;
using namespace dnnspmv::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 7));
  const std::string json_path = cli.get_string("json", "BENCH_gemm.json");
  cli.check_unused();

  std::vector<std::array<std::int64_t, 3>> shapes = merge_net_gemm_shapes();
  shapes.push_back({128, 128, 128});
  shapes.push_back({256, 256, 256});
  shapes.push_back({512, 512, 512});
  shapes.push_back({96, 4096, 192});

  std::printf("=== packed GEMM vs seed kernel (single thread) ===\n\n");
  std::printf("  %6s %6s %6s %12s %12s %9s\n", "m", "n", "k", "seed GF/s",
              "packed GF/s", "speedup");
  const std::vector<GemmShapeResult> results =
      bench_gemm_shapes(shapes, reps);
  double min_speedup_merge = 1e30;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GemmShapeResult& r = results[i];
    std::printf("  %6lld %6lld %6lld %12.2f %12.2f %8.2fx\n",
                static_cast<long long>(r.m), static_cast<long long>(r.n),
                static_cast<long long>(r.k), r.seed_gflops, r.packed_gflops,
                r.speedup);
    if (i < merge_net_gemm_shapes().size())
      min_speedup_merge = std::min(min_speedup_merge, r.speedup);
  }

  // Int8 section (informational, no gate): the quantized qgemm_u7 kernel
  // (DESIGN.md §13) on the same shapes plus the n == 1 cold-miss head
  // shape, which exercises the GEMV twin packing. "vs fp32" is the packed
  // fp32 kernel's time on the same shape divided by the int8 time.
  std::vector<std::array<std::int64_t, 3>> qshapes = shapes;
  qshapes.push_back({96, 1, 384});  // dense head at serve batch 1
  std::printf("\n=== int8 qgemm vs packed fp32 (informational) ===\n\n");
  std::printf("  %6s %6s %6s %12s %12s %9s\n", "m", "n", "k", "fp32 GF/s",
              "int8 GOP/s", "vs fp32");
  struct QShapeResult {
    std::int64_t m, n, k;
    double fp32_gflops, int8_gops, speedup;
  };
  std::vector<QShapeResult> qresults;
  Rng rng(99);
  for (const auto& [m, n, k] : qshapes) {
    std::vector<std::int8_t> w(static_cast<std::size_t>(m * k));
    std::vector<std::uint8_t> x(static_cast<std::size_t>(k * n));
    std::vector<float> scale(static_cast<std::size_t>(m));
    std::vector<float> bias(static_cast<std::size_t>(m));
    std::vector<float> cq(static_cast<std::size_t>(m * n));
    std::vector<float> af(static_cast<std::size_t>(m * k));
    std::vector<float> bf(static_cast<std::size_t>(k * n));
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 127));
    for (std::int64_t i = 0; i < m; ++i) {
      scale[i] = static_cast<float>(rng.uniform(1e-3, 1e-2));
      bias[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
    }
    for (auto& v : af) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : bf) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const QGemmWeights qw = qgemm_pack_weights(m, k, w.data());
    const double ops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(n) * static_cast<double>(k);
    const double t_q = time_kernel(
        [&] {
          qgemm_u7(qw, n, x.data(), n, 1, scale.data(), bias.data(), true,
                   cq.data(), n);
        },
        1, reps);
    const double t_f = time_kernel(
        [&] { sgemm(m, n, k, 1.0f, af.data(), bf.data(), 0.0f, cq.data()); },
        1, reps);
    qresults.push_back({m, n, k, ops / t_f * 1e-9, ops / t_q * 1e-9,
                        t_f / t_q});
    std::printf("  %6lld %6lld %6lld %12.2f %12.2f %8.2fx\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), ops / t_f * 1e-9, ops / t_q * 1e-9,
                t_f / t_q);
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"gemm\",\n  \"shapes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const GemmShapeResult& r = results[i];
      std::fprintf(f,
                   "    {\"m\": %lld, \"n\": %lld, \"k\": %lld, "
                   "\"seed_gflops\": %.3f, \"packed_gflops\": %.3f, "
                   "\"speedup\": %.3f}%s\n",
                   static_cast<long long>(r.m), static_cast<long long>(r.n),
                   static_cast<long long>(r.k), r.seed_gflops,
                   r.packed_gflops, r.speedup,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"int8_shapes\": [\n");
    for (std::size_t i = 0; i < qresults.size(); ++i) {
      const QShapeResult& r = qresults[i];
      std::fprintf(f,
                   "    {\"m\": %lld, \"n\": %lld, \"k\": %lld, "
                   "\"fp32_gflops\": %.3f, \"int8_gops\": %.3f, "
                   "\"vs_fp32\": %.3f}%s\n",
                   static_cast<long long>(r.m), static_cast<long long>(r.n),
                   static_cast<long long>(r.k), r.fp32_gflops, r.int8_gops,
                   r.speedup, i + 1 < qresults.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"min_mergenet_speedup\": %.3f\n}\n",
                 min_speedup_merge);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // ISSUE 2 acceptance: ≥3× single-thread speedup on MergeNet shapes.
  std::printf("min MergeNet-shape speedup: %.2fx (target 3x): %s\n",
              min_speedup_merge,
              min_speedup_merge >= 3.0 ? "PASS" : "FAIL");
  return min_speedup_merge >= 3.0 ? 0 : 1;
}
