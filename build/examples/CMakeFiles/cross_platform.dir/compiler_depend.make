# Empty compiler generated dependencies file for cross_platform.
# This may be replaced when dependencies are built.
