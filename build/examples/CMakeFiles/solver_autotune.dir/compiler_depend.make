# Empty compiler generated dependencies file for solver_autotune.
# This may be replaced when dependencies are built.
