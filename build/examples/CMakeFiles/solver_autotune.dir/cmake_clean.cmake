file(REMOVE_RECURSE
  "CMakeFiles/solver_autotune.dir/solver_autotune.cpp.o"
  "CMakeFiles/solver_autotune.dir/solver_autotune.cpp.o.d"
  "solver_autotune"
  "solver_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
