file(REMOVE_RECURSE
  "../bench/bench_spmv_kernels"
  "../bench/bench_spmv_kernels.pdb"
  "CMakeFiles/bench_spmv_kernels.dir/bench_spmv_kernels.cpp.o"
  "CMakeFiles/bench_spmv_kernels.dir/bench_spmv_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmv_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
