# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn_gradcheck[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_nn_training[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_formats[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_edge[1]_include.cmake")
include("/root/repo/build/tests/test_mmio[1]_include.cmake")
include("/root/repo/build/tests/test_dataset_io[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_augment[1]_include.cmake")
include("/root/repo/build/tests/test_stats_features[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_labels[1]_include.cmake")
include("/root/repo/build/tests/test_dtree[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_represent[1]_include.cmake")
include("/root/repo/build/tests/test_model_zoo[1]_include.cmake")
include("/root/repo/build/tests/test_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_selector[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
