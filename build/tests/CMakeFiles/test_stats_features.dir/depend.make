# Empty dependencies file for test_stats_features.
# This may be replaced when dependencies are built.
