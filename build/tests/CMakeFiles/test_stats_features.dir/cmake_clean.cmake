file(REMOVE_RECURSE
  "CMakeFiles/test_stats_features.dir/test_stats_features.cpp.o"
  "CMakeFiles/test_stats_features.dir/test_stats_features.cpp.o.d"
  "test_stats_features"
  "test_stats_features.pdb"
  "test_stats_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
