file(REMOVE_RECURSE
  "CMakeFiles/test_represent.dir/test_represent.cpp.o"
  "CMakeFiles/test_represent.dir/test_represent.cpp.o.d"
  "test_represent"
  "test_represent.pdb"
  "test_represent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_represent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
