# Empty dependencies file for test_represent.
# This may be replaced when dependencies are built.
