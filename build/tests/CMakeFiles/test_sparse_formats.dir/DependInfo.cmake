
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sparse_formats.cpp" "tests/CMakeFiles/test_sparse_formats.dir/test_sparse_formats.cpp.o" "gcc" "tests/CMakeFiles/test_sparse_formats.dir/test_sparse_formats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dnnspmv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dnnspmv_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/dnnspmv_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dnnspmv_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dnnspmv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/dnnspmv_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dnnspmv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dnnspmv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dnnspmv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
