# Empty dependencies file for test_sparse_edge.
# This may be replaced when dependencies are built.
