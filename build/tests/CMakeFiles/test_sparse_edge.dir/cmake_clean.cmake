file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_edge.dir/test_sparse_edge.cpp.o"
  "CMakeFiles/test_sparse_edge.dir/test_sparse_edge.cpp.o.d"
  "test_sparse_edge"
  "test_sparse_edge.pdb"
  "test_sparse_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
