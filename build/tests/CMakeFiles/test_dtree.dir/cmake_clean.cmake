file(REMOVE_RECURSE
  "CMakeFiles/test_dtree.dir/test_dtree.cpp.o"
  "CMakeFiles/test_dtree.dir/test_dtree.cpp.o.d"
  "test_dtree"
  "test_dtree.pdb"
  "test_dtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
