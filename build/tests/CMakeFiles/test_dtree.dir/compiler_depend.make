# Empty compiler generated dependencies file for test_dtree.
# This may be replaced when dependencies are built.
