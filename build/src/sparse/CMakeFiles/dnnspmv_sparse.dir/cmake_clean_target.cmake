file(REMOVE_RECURSE
  "libdnnspmv_sparse.a"
)
