# Empty compiler generated dependencies file for dnnspmv_sparse.
# This may be replaced when dependencies are built.
