file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_sparse.dir/bsr.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/bsr.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/coo.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/csr.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/csr5.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/csr5.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/dia.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/dia.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/ell.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/ell.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/format.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/format.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/hyb.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/hyb.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/spmv.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/spmv.cpp.o.d"
  "CMakeFiles/dnnspmv_sparse.dir/stats.cpp.o"
  "CMakeFiles/dnnspmv_sparse.dir/stats.cpp.o.d"
  "libdnnspmv_sparse.a"
  "libdnnspmv_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
