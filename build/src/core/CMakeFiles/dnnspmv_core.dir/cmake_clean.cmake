file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_core.dir/adaptive.cpp.o"
  "CMakeFiles/dnnspmv_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/dnnspmv_core.dir/model_zoo.cpp.o"
  "CMakeFiles/dnnspmv_core.dir/model_zoo.cpp.o.d"
  "CMakeFiles/dnnspmv_core.dir/represent.cpp.o"
  "CMakeFiles/dnnspmv_core.dir/represent.cpp.o.d"
  "CMakeFiles/dnnspmv_core.dir/selector.cpp.o"
  "CMakeFiles/dnnspmv_core.dir/selector.cpp.o.d"
  "CMakeFiles/dnnspmv_core.dir/trainer.cpp.o"
  "CMakeFiles/dnnspmv_core.dir/trainer.cpp.o.d"
  "CMakeFiles/dnnspmv_core.dir/transfer.cpp.o"
  "CMakeFiles/dnnspmv_core.dir/transfer.cpp.o.d"
  "libdnnspmv_core.a"
  "libdnnspmv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
