# Empty compiler generated dependencies file for dnnspmv_core.
# This may be replaced when dependencies are built.
