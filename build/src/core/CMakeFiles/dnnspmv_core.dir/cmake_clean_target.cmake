file(REMOVE_RECURSE
  "libdnnspmv_core.a"
)
