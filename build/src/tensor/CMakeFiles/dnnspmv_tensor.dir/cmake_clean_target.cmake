file(REMOVE_RECURSE
  "libdnnspmv_tensor.a"
)
