# Empty dependencies file for dnnspmv_tensor.
# This may be replaced when dependencies are built.
