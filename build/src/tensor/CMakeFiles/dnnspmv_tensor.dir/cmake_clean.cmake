file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_tensor.dir/gemm.cpp.o"
  "CMakeFiles/dnnspmv_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/dnnspmv_tensor.dir/im2col.cpp.o"
  "CMakeFiles/dnnspmv_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/dnnspmv_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dnnspmv_tensor.dir/tensor.cpp.o.d"
  "libdnnspmv_tensor.a"
  "libdnnspmv_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
