# Empty dependencies file for dnnspmv_ml.
# This may be replaced when dependencies are built.
