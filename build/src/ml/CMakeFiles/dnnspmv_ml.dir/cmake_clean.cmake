file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_ml.dir/crossval.cpp.o"
  "CMakeFiles/dnnspmv_ml.dir/crossval.cpp.o.d"
  "CMakeFiles/dnnspmv_ml.dir/dtree.cpp.o"
  "CMakeFiles/dnnspmv_ml.dir/dtree.cpp.o.d"
  "CMakeFiles/dnnspmv_ml.dir/features.cpp.o"
  "CMakeFiles/dnnspmv_ml.dir/features.cpp.o.d"
  "CMakeFiles/dnnspmv_ml.dir/metrics.cpp.o"
  "CMakeFiles/dnnspmv_ml.dir/metrics.cpp.o.d"
  "libdnnspmv_ml.a"
  "libdnnspmv_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
