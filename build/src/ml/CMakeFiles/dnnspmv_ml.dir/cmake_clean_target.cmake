file(REMOVE_RECURSE
  "libdnnspmv_ml.a"
)
