# Empty dependencies file for dnnspmv_io.
# This may be replaced when dependencies are built.
