
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/dataset.cpp" "src/io/CMakeFiles/dnnspmv_io.dir/dataset.cpp.o" "gcc" "src/io/CMakeFiles/dnnspmv_io.dir/dataset.cpp.o.d"
  "/root/repo/src/io/mmio.cpp" "src/io/CMakeFiles/dnnspmv_io.dir/mmio.cpp.o" "gcc" "src/io/CMakeFiles/dnnspmv_io.dir/mmio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/dnnspmv_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dnnspmv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dnnspmv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
