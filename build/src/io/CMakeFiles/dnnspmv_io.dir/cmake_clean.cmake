file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_io.dir/dataset.cpp.o"
  "CMakeFiles/dnnspmv_io.dir/dataset.cpp.o.d"
  "CMakeFiles/dnnspmv_io.dir/mmio.cpp.o"
  "CMakeFiles/dnnspmv_io.dir/mmio.cpp.o.d"
  "libdnnspmv_io.a"
  "libdnnspmv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
