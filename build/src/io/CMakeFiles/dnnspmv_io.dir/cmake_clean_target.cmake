file(REMOVE_RECURSE
  "libdnnspmv_io.a"
)
