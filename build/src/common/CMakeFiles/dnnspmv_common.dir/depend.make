# Empty dependencies file for dnnspmv_common.
# This may be replaced when dependencies are built.
