file(REMOVE_RECURSE
  "libdnnspmv_common.a"
)
