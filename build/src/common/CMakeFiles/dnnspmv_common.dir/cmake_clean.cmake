file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_common.dir/cli.cpp.o"
  "CMakeFiles/dnnspmv_common.dir/cli.cpp.o.d"
  "CMakeFiles/dnnspmv_common.dir/rng.cpp.o"
  "CMakeFiles/dnnspmv_common.dir/rng.cpp.o.d"
  "CMakeFiles/dnnspmv_common.dir/timer.cpp.o"
  "CMakeFiles/dnnspmv_common.dir/timer.cpp.o.d"
  "libdnnspmv_common.a"
  "libdnnspmv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
