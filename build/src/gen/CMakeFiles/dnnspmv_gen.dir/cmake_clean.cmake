file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_gen.dir/augment.cpp.o"
  "CMakeFiles/dnnspmv_gen.dir/augment.cpp.o.d"
  "CMakeFiles/dnnspmv_gen.dir/corpus.cpp.o"
  "CMakeFiles/dnnspmv_gen.dir/corpus.cpp.o.d"
  "CMakeFiles/dnnspmv_gen.dir/generators.cpp.o"
  "CMakeFiles/dnnspmv_gen.dir/generators.cpp.o.d"
  "libdnnspmv_gen.a"
  "libdnnspmv_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
