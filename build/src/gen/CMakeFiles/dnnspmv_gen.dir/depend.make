# Empty dependencies file for dnnspmv_gen.
# This may be replaced when dependencies are built.
