file(REMOVE_RECURSE
  "libdnnspmv_gen.a"
)
