# Empty dependencies file for dnnspmv_perf.
# This may be replaced when dependencies are built.
