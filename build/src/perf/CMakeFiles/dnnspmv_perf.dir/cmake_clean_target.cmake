file(REMOVE_RECURSE
  "libdnnspmv_perf.a"
)
