file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_perf.dir/labels.cpp.o"
  "CMakeFiles/dnnspmv_perf.dir/labels.cpp.o.d"
  "CMakeFiles/dnnspmv_perf.dir/platform.cpp.o"
  "CMakeFiles/dnnspmv_perf.dir/platform.cpp.o.d"
  "libdnnspmv_perf.a"
  "libdnnspmv_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
