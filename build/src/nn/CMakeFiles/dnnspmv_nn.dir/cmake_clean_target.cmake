file(REMOVE_RECURSE
  "libdnnspmv_nn.a"
)
