file(REMOVE_RECURSE
  "CMakeFiles/dnnspmv_nn.dir/activation.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/activation.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/conv2d.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/dense.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/dense.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/dropout.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/flatten.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/layer.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/layer.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/loss.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/loss.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/merge_net.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/merge_net.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/optimizer.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/pool.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/pool.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/sequential.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/dnnspmv_nn.dir/serialize.cpp.o"
  "CMakeFiles/dnnspmv_nn.dir/serialize.cpp.o.d"
  "libdnnspmv_nn.a"
  "libdnnspmv_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnnspmv_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
