# Empty compiler generated dependencies file for dnnspmv_nn.
# This may be replaced when dependencies are built.
