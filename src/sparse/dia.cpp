#include "sparse/dia.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace dnnspmv {

std::optional<Dia> dia_from_csr(const Csr& a, double max_fill) {
  std::vector<index_t> offsets;
  {
    std::vector<bool> seen(static_cast<std::size_t>(a.rows) + a.cols, false);
    for (index_t r = 0; r < a.rows; ++r)
      for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
        seen[static_cast<std::size_t>(a.idx[j] - r + a.rows - 1)] = true;
    for (std::size_t k = 0; k < seen.size(); ++k)
      if (seen[k])
        offsets.push_back(static_cast<index_t>(static_cast<std::int64_t>(k) -
                                               a.rows + 1));
  }
  const double padded = static_cast<double>(offsets.size()) * a.rows;
  if (a.nnz() > 0 && padded > max_fill * static_cast<double>(a.nnz()))
    return std::nullopt;

  Dia m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.offsets = std::move(offsets);
  m.data.assign(m.offsets.size() * static_cast<std::size_t>(a.rows), 0.0);
  // offset -> slot index; offsets are sorted so binary search suffices.
  for (index_t r = 0; r < a.rows; ++r) {
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j) {
      const index_t off = a.idx[j] - r;
      const auto it =
          std::lower_bound(m.offsets.begin(), m.offsets.end(), off);
      const std::size_t d = static_cast<std::size_t>(it - m.offsets.begin());
      m.data[d * a.rows + r] = a.val[j];
    }
  }
  return m;
}

Csr csr_from_dia(const Dia& a) {
  std::vector<Triplet> ts;
  for (std::size_t d = 0; d < a.offsets.size(); ++d) {
    const index_t off = a.offsets[d];
    for (index_t r = 0; r < a.rows; ++r) {
      const index_t c = r + off;
      if (c < 0 || c >= a.cols) continue;
      const double v = a.data[d * a.rows + r];
      if (v != 0.0) ts.push_back({r, c, v});
    }
  }
  return csr_from_triplets(a.rows, a.cols, std::move(ts));
}

void spmv_dia(const Dia& a, std::span<const double> x, std::span<double> y) {
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  std::fill(y.begin(), y.end(), 0.0);
  const double* xv = x.data();
  double* yv = y.data();
  // Parallelize over rows (the y index) so threads never collide; each
  // diagonal contributes a contiguous streaming access to x.
  for (std::size_t d = 0; d < a.offsets.size(); ++d) {
    const index_t off = a.offsets[d];
    const index_t istart = std::max<index_t>(0, -off);
    const index_t iend =
        std::min<index_t>(a.rows, a.cols - off);  // exclusive
    const double* diag = a.data.data() + d * a.rows;
#pragma omp parallel for schedule(static)
    for (index_t i = istart; i < iend; ++i) yv[i] += diag[i] * xv[i + off];
  }
}

}  // namespace dnnspmv
