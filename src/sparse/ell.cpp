#include "sparse/ell.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnnspmv {

std::optional<Ell> ell_from_csr(const Csr& a, double max_fill) {
  std::int64_t width = 0;
  for (index_t r = 0; r < a.rows; ++r)
    width = std::max(width, a.row_nnz(r));
  const double padded = static_cast<double>(width) * a.rows;
  if (a.nnz() > 0 && padded > max_fill * static_cast<double>(a.nnz()))
    return std::nullopt;

  Ell m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.width = static_cast<index_t>(width);
  m.col.assign(static_cast<std::size_t>(width) * a.rows, -1);
  m.data.assign(static_cast<std::size_t>(width) * a.rows, 0.0);
  for (index_t r = 0; r < a.rows; ++r) {
    std::int64_t w = 0;
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j, ++w) {
      m.col[static_cast<std::size_t>(w) * a.rows + r] = a.idx[j];
      m.data[static_cast<std::size_t>(w) * a.rows + r] = a.val[j];
    }
  }
  return m;
}

Csr csr_from_ell(const Ell& a) {
  std::vector<Triplet> ts;
  for (index_t r = 0; r < a.rows; ++r) {
    for (index_t w = 0; w < a.width; ++w) {
      const index_t c = a.col[static_cast<std::size_t>(w) * a.rows + r];
      if (c < 0) continue;
      ts.push_back({r, c, a.data[static_cast<std::size_t>(w) * a.rows + r]});
    }
  }
  return csr_from_triplets(a.rows, a.cols, std::move(ts));
}

void spmv_ell(const Ell& a, std::span<const double> x, std::span<double> y) {
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  const double* xv = x.data();
  double* yv = y.data();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows; ++i) {
    double acc = 0.0;
    for (index_t w = 0; w < a.width; ++w) {
      const index_t c = a.col[static_cast<std::size_t>(w) * a.rows + i];
      if (c >= 0) acc += a.data[static_cast<std::size_t>(w) * a.rows + i] *
                         xv[c];
    }
    yv[i] = acc;
  }
}

}  // namespace dnnspmv
