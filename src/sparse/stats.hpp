// Structural statistics of a sparse matrix.
//
// These feed (a) the hand-crafted feature vector of the decision-tree
// baseline (SMAT-style, paper §7.1) and (b) the analytic platform cost
// models. Computed in one pass over the CSR structure.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace dnnspmv {

struct MatrixStats {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;
  double density = 0.0;          // nnz / (rows*cols)

  // Row-length distribution.
  double row_nnz_mean = 0.0;
  double row_nnz_sd = 0.0;
  double row_nnz_cv = 0.0;       // sd / mean
  std::int64_t row_nnz_min = 0;
  std::int64_t row_nnz_max = 0;
  double max_over_mean = 0.0;    // imbalance: max / mean row length
  std::int64_t empty_rows = 0;

  // Diagonal structure.
  std::int64_t ndiags = 0;       // populated diagonals
  double dia_fill = 0.0;         // nnz / (ndiags*rows): 1 = dense diagonals
  double diag_frac = 0.0;        // fraction of nnz on the principal diagonal
  double mean_dist = 0.0;        // mean |col-row| normalized by max dim
  std::int64_t bandwidth = 0;    // max |col-row|

  // Format-specific padding.
  double ell_fill = 0.0;         // nnz / (rows*max_row_nnz): 1 = uniform rows
  double bsr_fill = 0.0;         // nnz / (nblocks*16) with 4x4 blocks
  std::int64_t bsr_blocks = 0;

  // Column-access locality: mean index gap between neighbours in a row,
  // normalized by cols (0 = perfectly clustered, →1 = scattered).
  double col_gap = 0.0;

  // HYB decomposition at the cuSPARSE-like heuristic width (67th
  // percentile of row lengths, >=1): exact overflow count into the COO
  // tail.
  std::int64_t hyb_width = 1;
  std::int64_t hyb_tail = 0;
};

MatrixStats compute_stats(const Csr& a);

/// Every field of `s` flattened to doubles in declaration order. The single
/// source of truth for code that consumes the stats as a vector — the
/// structural fingerprint (src/serve/fingerprint.hpp) hashes exactly this.
std::vector<double> stats_vector(const MatrixStats& s);

}  // namespace dnnspmv
