// Sparse storage format identifiers and the format sets each platform's
// library supports (paper §7.1: SMATLib on CPU → COO/CSR/DIA/ELL;
// cuSPARSE+CSR5 on GPU → COO/CSR/ELL/HYB/BSR/CSR5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnnspmv {

enum class Format : std::int32_t {
  kCoo = 0,
  kCsr = 1,
  kDia = 2,
  kEll = 3,
  kHyb = 4,
  kBsr = 5,
  kCsr5 = 6,
};

constexpr std::int32_t kNumFormats = 7;

std::string format_name(Format f);
Format format_from_name(const std::string& name);

/// Sparse operations the library serves. Format winners differ between
/// them (SpMM amortizes index traffic over K dense columns, so padded
/// formats win more often), which is why the selector, labels, and serve
/// cache keys are all op-scoped.
enum class SpOp : std::int32_t {
  kSpmv = 0,  // y[M]   = A * x        (the paper's original workload)
  kSpmm = 1,  // Y[MxK] = A * X[NxK]   (sparse @ dense, row-major X/Y)
};

constexpr std::int32_t kNumOps = 2;

std::string op_name(SpOp op);
SpOp op_from_name(const std::string& name);

/// Formats selectable on the CPU platforms (SMATLib set).
const std::vector<Format>& cpu_formats();

/// Formats selectable on the GPU platform (cuSPARSE + CSR5 set).
const std::vector<Format>& gpu_formats();

}  // namespace dnnspmv
