#include "sparse/coo.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"

namespace dnnspmv {

Coo coo_from_csr(const Csr& a) {
  Coo m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.row.reserve(a.idx.size());
  m.col = a.idx;
  m.val = a.val;
  for (index_t r = 0; r < a.rows; ++r)
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      m.row.push_back(r);
  return m;
}

Csr csr_from_coo(const Coo& a) {
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(a.nnz()));
  for (std::int64_t i = 0; i < a.nnz(); ++i)
    ts.push_back({a.row[i], a.col[i], a.val[i]});
  return csr_from_triplets(a.rows, a.cols, std::move(ts));
}

void spmv_coo(const Coo& a, std::span<const double> x, std::span<double> y) {
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  std::fill(y.begin(), y.end(), 0.0);
  const std::int64_t nnz = a.nnz();
  const index_t* rp = a.row.data();
  const index_t* cp = a.col.data();
  const double* vp = a.val.data();
  const double* xv = x.data();
  double* yv = y.data();

#pragma omp parallel
  {
#ifdef _OPENMP
    const int nt = omp_get_num_threads();
    const int tid = omp_get_thread_num();
#else
    const int nt = 1;
    const int tid = 0;
#endif
    const std::int64_t chunk = (nnz + nt - 1) / nt;
    const std::int64_t lo = std::min<std::int64_t>(nnz, tid * chunk);
    const std::int64_t hi = std::min<std::int64_t>(nnz, lo + chunk);
    std::int64_t i = lo;
    // Leading partial row: may be shared with the previous chunk.
    if (i < hi) {
      const index_t r0 = rp[i];
      double acc = 0.0;
      for (; i < hi && rp[i] == r0; ++i) acc += vp[i] * xv[cp[i]];
#pragma omp atomic
      yv[r0] += acc;
    }
    // Interior rows are exclusively owned.
    while (i < hi) {
      const index_t r = rp[i];
      double acc = 0.0;
      for (; i < hi && rp[i] == r; ++i) acc += vp[i] * xv[cp[i]];
      if (i < hi) {
        yv[r] = acc;  // row completed inside this chunk
      } else {
        // Trailing row may continue into the next chunk.
#pragma omp atomic
        yv[r] += acc;
      }
    }
  }
}

}  // namespace dnnspmv
