#include "sparse/spmv.hpp"

#include <array>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dnnspmv {
namespace {

// Per-format span names and duration histograms (µs). Only consulted
// when obs tracing is enabled; the histograms are registered lazily on
// the first traced multiply.
const char* spmv_span_name(Format f) {
  switch (f) {
    case Format::kCoo: return "spmv.coo";
    case Format::kCsr: return "spmv.csr";
    case Format::kDia: return "spmv.dia";
    case Format::kEll: return "spmv.ell";
    case Format::kHyb: return "spmv.hyb";
    case Format::kBsr: return "spmv.bsr";
    case Format::kCsr5: return "spmv.csr5";
  }
  return "spmv.unknown";
}

obs::Histogram& spmv_hist(Format f) {
  static std::array<obs::Histogram*, kNumFormats> hists = [] {
    std::array<obs::Histogram*, kNumFormats> h{};
    for (std::int32_t i = 0; i < kNumFormats; ++i)
      h[static_cast<std::size_t>(i)] = &obs::MetricsRegistry::global()
          .histogram(std::string(spmv_span_name(static_cast<Format>(i))) +
                     "_us");
    return h;
  }();
  return *hists[static_cast<std::size_t>(f)];
}

}  // namespace

std::optional<AnyFormatMatrix> AnyFormatMatrix::convert(const Csr& a,
                                                        Format f) {
  AnyFormatMatrix m;
  m.format_ = f;
  m.rows_ = a.rows;
  m.cols_ = a.cols;
  switch (f) {
    case Format::kCoo:
      m.storage_ = coo_from_csr(a);
      return m;
    case Format::kCsr:
      m.storage_ = a;
      return m;
    case Format::kDia: {
      auto d = dia_from_csr(a);
      if (!d) return std::nullopt;
      m.storage_ = std::move(*d);
      return m;
    }
    case Format::kEll: {
      auto e = ell_from_csr(a);
      if (!e) return std::nullopt;
      m.storage_ = std::move(*e);
      return m;
    }
    case Format::kHyb:
      m.storage_ = hyb_from_csr(a);
      return m;
    case Format::kBsr:
      m.storage_ = bsr_from_csr(a);
      return m;
    case Format::kCsr5:
      m.storage_ = csr5_from_csr(a);
      return m;
  }
  DNNSPMV_CHECK_MSG(false, "invalid format");
}

std::int64_t AnyFormatMatrix::bytes() const {
  return std::visit([](const auto& s) { return s.bytes(); }, storage_);
}

void AnyFormatMatrix::spmv(std::span<const double> x,
                           std::span<double> y) const {
  // One relaxed load + branch when tracing is off (inside Span); the
  // histogram lookup is two loads after first use.
  obs::Span span(spmv_span_name(format_), &spmv_hist(format_));
  std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Coo>) spmv_coo(s, x, y);
        else if constexpr (std::is_same_v<T, Csr>) spmv_csr(s, x, y);
        else if constexpr (std::is_same_v<T, Dia>) spmv_dia(s, x, y);
        else if constexpr (std::is_same_v<T, Ell>) spmv_ell(s, x, y);
        else if constexpr (std::is_same_v<T, Hyb>) spmv_hyb(s, x, y);
        else if constexpr (std::is_same_v<T, Bsr>) spmv_bsr(s, x, y);
        else spmv_csr5(s, x, y);
      },
      storage_);
}

Csr AnyFormatMatrix::to_csr() const {
  return std::visit(
      [](const auto& s) -> Csr {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Coo>) return csr_from_coo(s);
        else if constexpr (std::is_same_v<T, Csr>) return s;
        else if constexpr (std::is_same_v<T, Dia>) return csr_from_dia(s);
        else if constexpr (std::is_same_v<T, Ell>) return csr_from_ell(s);
        else if constexpr (std::is_same_v<T, Hyb>) return csr_from_hyb(s);
        else if constexpr (std::is_same_v<T, Bsr>) return csr_from_bsr(s);
        else return csr_from_csr5(s);
      },
      storage_);
}

}  // namespace dnnspmv
