#include "sparse/spmv.hpp"

#include "common/error.hpp"

namespace dnnspmv {

std::optional<AnyFormatMatrix> AnyFormatMatrix::convert(const Csr& a,
                                                        Format f) {
  AnyFormatMatrix m;
  m.format_ = f;
  m.rows_ = a.rows;
  m.cols_ = a.cols;
  switch (f) {
    case Format::kCoo:
      m.storage_ = coo_from_csr(a);
      return m;
    case Format::kCsr:
      m.storage_ = a;
      return m;
    case Format::kDia: {
      auto d = dia_from_csr(a);
      if (!d) return std::nullopt;
      m.storage_ = std::move(*d);
      return m;
    }
    case Format::kEll: {
      auto e = ell_from_csr(a);
      if (!e) return std::nullopt;
      m.storage_ = std::move(*e);
      return m;
    }
    case Format::kHyb:
      m.storage_ = hyb_from_csr(a);
      return m;
    case Format::kBsr:
      m.storage_ = bsr_from_csr(a);
      return m;
    case Format::kCsr5:
      m.storage_ = csr5_from_csr(a);
      return m;
  }
  DNNSPMV_CHECK_MSG(false, "invalid format");
}

std::int64_t AnyFormatMatrix::bytes() const {
  return std::visit([](const auto& s) { return s.bytes(); }, storage_);
}

void AnyFormatMatrix::spmv(std::span<const double> x,
                           std::span<double> y) const {
  std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Coo>) spmv_coo(s, x, y);
        else if constexpr (std::is_same_v<T, Csr>) spmv_csr(s, x, y);
        else if constexpr (std::is_same_v<T, Dia>) spmv_dia(s, x, y);
        else if constexpr (std::is_same_v<T, Ell>) spmv_ell(s, x, y);
        else if constexpr (std::is_same_v<T, Hyb>) spmv_hyb(s, x, y);
        else if constexpr (std::is_same_v<T, Bsr>) spmv_bsr(s, x, y);
        else spmv_csr5(s, x, y);
      },
      storage_);
}

Csr AnyFormatMatrix::to_csr() const {
  return std::visit(
      [](const auto& s) -> Csr {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Coo>) return csr_from_coo(s);
        else if constexpr (std::is_same_v<T, Csr>) return s;
        else if constexpr (std::is_same_v<T, Dia>) return csr_from_dia(s);
        else if constexpr (std::is_same_v<T, Ell>) return csr_from_ell(s);
        else if constexpr (std::is_same_v<T, Hyb>) return csr_from_hyb(s);
        else if constexpr (std::is_same_v<T, Bsr>) return csr_from_bsr(s);
        else return csr_from_csr5(s);
      },
      storage_);
}

}  // namespace dnnspmv
