// Diagonal format: one dense array per populated diagonal (paper Figure 1).
//
// data is stored diagonal-major: data[d * rows + i] = A(i, i + offset[d])
// (zero-padded where the diagonal leaves the matrix). Conversion fails —
// returns nullopt — when the padded footprint would exceed `max_fill`
// times the nnz footprint, mirroring real libraries that refuse DIA for
// matrices with too many scattered diagonals.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dnnspmv {

struct Dia {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> offsets;  // sorted, diagonal = col - row
  std::vector<double> data;      // offsets.size() * rows

  std::int64_t ndiags() const {
    return static_cast<std::int64_t>(offsets.size());
  }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data.size() * sizeof(double) +
                                     offsets.size() * sizeof(index_t));
  }
};

/// Default padded-footprint cap: padded elements / nnz.
constexpr double kDiaMaxFill = 20.0;

std::optional<Dia> dia_from_csr(const Csr& a, double max_fill = kDiaMaxFill);
Csr csr_from_dia(const Dia& a);

void spmv_dia(const Dia& a, std::span<const double> x, std::span<double> y);

}  // namespace dnnspmv
