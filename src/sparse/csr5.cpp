#include "sparse/csr5.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnnspmv {

Csr5 csr5_from_csr(const Csr& a, index_t tile) {
  DNNSPMV_CHECK(tile > 0);
  Csr5 m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.tile = tile;
  m.ptr = a.ptr;
  m.idx = a.idx;
  m.val = a.val;
  const std::int64_t ntiles = (a.nnz() + tile - 1) / tile;
  m.tile_row.reserve(static_cast<std::size_t>(ntiles));
  for (std::int64_t t = 0; t < ntiles; ++t) {
    const std::int64_t first_nnz = t * tile;
    // First row whose range contains first_nnz: upper_bound on ptr.
    const auto it = std::upper_bound(a.ptr.begin(), a.ptr.end(), first_nnz);
    m.tile_row.push_back(
        static_cast<index_t>(it - a.ptr.begin()) - 1);
  }
  return m;
}

Csr csr_from_csr5(const Csr5& a) {
  Csr m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.ptr = a.ptr;
  m.idx = a.idx;
  m.val = a.val;
  return m;
}

void spmv_csr5(const Csr5& a, std::span<const double> x, std::span<double> y) {
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  std::fill(y.begin(), y.end(), 0.0);
  const std::int64_t ntiles = a.num_tiles();
  const std::int64_t nnz = a.nnz();
  const double* xv = x.data();
  const index_t* idx = a.idx.data();
  const double* val = a.val.data();
  const std::int64_t* ptr = a.ptr.data();
  double* yv = y.data();

#pragma omp parallel for schedule(static)
  for (std::int64_t t = 0; t < ntiles; ++t) {
    const std::int64_t lo = t * a.tile;
    const std::int64_t hi = std::min(nnz, lo + a.tile);
    index_t r = a.tile_row[static_cast<std::size_t>(t)];
    std::int64_t j = lo;
    while (j < hi) {
      const std::int64_t row_end = std::min(hi, ptr[r + 1]);
      double acc = 0.0;
      for (; j < row_end; ++j) acc += val[j] * xv[idx[j]];
      const bool row_complete_here = (lo <= ptr[r] && row_end == ptr[r + 1]);
      if (row_complete_here) {
        yv[r] = acc;  // this tile owns the whole row
      } else if (acc != 0.0 || ptr[r] < lo || ptr[r + 1] > hi) {
#pragma omp atomic
        yv[r] += acc;  // partial row shared with a neighbouring tile
      }
      ++r;
    }
  }
}

}  // namespace dnnspmv
