#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dnnspmv {

void Csr::validate() const {
  DNNSPMV_CHECK(rows >= 0 && cols >= 0);
  DNNSPMV_CHECK_MSG(ptr.size() == static_cast<std::size_t>(rows) + 1,
                    "ptr size " << ptr.size() << " != rows+1");
  DNNSPMV_CHECK(ptr.front() == 0);
  DNNSPMV_CHECK(ptr.back() == nnz());
  DNNSPMV_CHECK(idx.size() == val.size());
  for (index_t r = 0; r < rows; ++r) {
    DNNSPMV_CHECK_MSG(ptr[r] <= ptr[r + 1], "ptr not monotone at row " << r);
    for (std::int64_t j = ptr[r]; j < ptr[r + 1]; ++j) {
      DNNSPMV_CHECK_MSG(idx[j] >= 0 && idx[j] < cols,
                        "column " << idx[j] << " out of range in row " << r);
      if (j > ptr[r])
        DNNSPMV_CHECK_MSG(idx[j] > idx[j - 1],
                          "unsorted/duplicate column in row " << r);
    }
  }
}

std::int64_t Csr::bytes() const {
  return static_cast<std::int64_t>(val.size() * sizeof(double) +
                                   idx.size() * sizeof(index_t) +
                                   ptr.size() * sizeof(std::int64_t));
}

Csr csr_from_triplets(index_t rows, index_t cols,
                      std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    DNNSPMV_CHECK_MSG(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                      "triplet (" << t.row << ',' << t.col
                                  << ") out of bounds " << rows << 'x'
                                  << cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  Csr m;
  m.rows = rows;
  m.cols = cols;
  m.ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.idx.reserve(triplets.size());
  m.val.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    const Triplet& t = triplets[i];
    if (!m.idx.empty() && i > 0 && triplets[i - 1].row == t.row &&
        triplets[i - 1].col == t.col) {
      m.val.back() += t.val;  // merge duplicates
    } else {
      m.idx.push_back(t.col);
      m.val.push_back(t.val);
      ++m.ptr[t.row + 1];
    }
  }
  for (index_t r = 0; r < rows; ++r) m.ptr[r + 1] += m.ptr[r];
  return m;
}

void spmv_csr(const Csr& a, std::span<const double> x, std::span<double> y) {
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  const std::int64_t* ptr = a.ptr.data();
  const index_t* idx = a.idx.data();
  const double* val = a.val.data();
  const double* xv = x.data();
  double* yv = y.data();
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < a.rows; ++i) {
    double acc = 0.0;
    for (std::int64_t j = ptr[i]; j < ptr[i + 1]; ++j)
      acc += val[j] * xv[idx[j]];
    yv[i] = acc;
  }
}

void spmv_reference(const Csr& a, std::span<const double> x,
                    std::span<double> y) {
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  for (index_t i = 0; i < a.rows; ++i) {
    double acc = 0.0;
    for (std::int64_t j = a.ptr[i]; j < a.ptr[i + 1]; ++j)
      acc += a.val[j] * x[static_cast<std::size_t>(a.idx[j])];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

bool csr_equal(const Csr& a, const Csr& b, double tol) {
  if (a.rows != b.rows || a.cols != b.cols || a.nnz() != b.nnz()) return false;
  if (a.ptr != b.ptr || a.idx != b.idx) return false;
  for (std::size_t i = 0; i < a.val.size(); ++i)
    if (std::fabs(a.val[i] - b.val[i]) > tol) return false;
  return true;
}

Csr csr_transpose(const Csr& a) {
  Csr t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  t.idx.resize(a.idx.size());
  t.val.resize(a.val.size());
  for (index_t c : a.idx) ++t.ptr[c + 1];
  for (index_t c = 0; c < a.cols; ++c) t.ptr[c + 1] += t.ptr[c];
  std::vector<std::int64_t> cursor(t.ptr.begin(), t.ptr.end() - 1);
  for (index_t r = 0; r < a.rows; ++r) {
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j) {
      const std::int64_t dst = cursor[a.idx[j]]++;
      t.idx[dst] = r;
      t.val[dst] = a.val[j];
    }
  }
  return t;
}

}  // namespace dnnspmv
