// Format-specific SpMM kernels: Y[M×K] = A · X, with X (cols×K) and
// Y (rows×K) dense and row-major (the GNN/DNN serving layout — each
// sparse row gathers contiguous K-wide panels of X).
//
// Every kernel mirrors its SpMV sibling's traversal and accumulation
// order exactly, so at K = 1 the result is bitwise identical to the
// corresponding spmv_* call — the property test_spmm pins down. The
// OpenMP decomposition is the same as SpMV's too (rows for CSR/ELL/DIA/
// BSR, nnz chunks for COO, tiles for CSR5), which keeps the relative
// format ranking comparable across the two ops while the K-fold reuse of
// index traffic shifts the crossover points (what makes op-aware
// selection worth a second label set).
#pragma once

#include <span>

#include "sparse/bsr.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr5.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hyb.hpp"

namespace dnnspmv {

/// Dense reference Y = A·X without the format machinery (test oracle).
void spmm_reference(const Csr& a, std::span<const double> x,
                    std::span<double> y, index_t k);

void spmm_csr(const Csr& a, std::span<const double> x, std::span<double> y,
              index_t k);
void spmm_coo(const Coo& a, std::span<const double> x, std::span<double> y,
              index_t k);
void spmm_dia(const Dia& a, std::span<const double> x, std::span<double> y,
              index_t k);
void spmm_ell(const Ell& a, std::span<const double> x, std::span<double> y,
              index_t k);
void spmm_hyb(const Hyb& a, std::span<const double> x, std::span<double> y,
              index_t k);
void spmm_bsr(const Bsr& a, std::span<const double> x, std::span<double> y,
              index_t k);
void spmm_csr5(const Csr5& a, std::span<const double> x, std::span<double> y,
               index_t k);

}  // namespace dnnspmv
