#include "sparse/format.hpp"

#include "common/error.hpp"

namespace dnnspmv {

std::string format_name(Format f) {
  switch (f) {
    case Format::kCoo: return "COO";
    case Format::kCsr: return "CSR";
    case Format::kDia: return "DIA";
    case Format::kEll: return "ELL";
    case Format::kHyb: return "HYB";
    case Format::kBsr: return "BSR";
    case Format::kCsr5: return "CSR5";
  }
  DNNSPMV_CHECK_MSG(false, "invalid format id");
}

Format format_from_name(const std::string& name) {
  for (std::int32_t i = 0; i < kNumFormats; ++i) {
    const auto f = static_cast<Format>(i);
    if (format_name(f) == name) return f;
  }
  DNNSPMV_CHECK_MSG(false, "unknown format name: " << name);
}

std::string op_name(SpOp op) {
  switch (op) {
    case SpOp::kSpmv: return "spmv";
    case SpOp::kSpmm: return "spmm";
  }
  DNNSPMV_CHECK_MSG(false, "invalid op id");
}

SpOp op_from_name(const std::string& name) {
  for (std::int32_t i = 0; i < kNumOps; ++i) {
    const auto op = static_cast<SpOp>(i);
    if (op_name(op) == name) return op;
  }
  DNNSPMV_CHECK_MSG(false, "unknown op name: " << name);
}

const std::vector<Format>& cpu_formats() {
  static const std::vector<Format> kSet = {Format::kCoo, Format::kCsr,
                                           Format::kDia, Format::kEll};
  return kSet;
}

const std::vector<Format>& gpu_formats() {
  static const std::vector<Format> kSet = {Format::kCsr, Format::kEll,
                                           Format::kHyb, Format::kBsr,
                                           Format::kCsr5, Format::kCoo};
  return kSet;
}

}  // namespace dnnspmv
