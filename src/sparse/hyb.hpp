// Hybrid format (cuSPARSE-style): a regular ELL slab holding the "typical"
// leading nonzeros per row plus a COO overflow for the irregular tail.
#pragma once

#include <span>

#include "sparse/coo.hpp"
#include "sparse/ell.hpp"

namespace dnnspmv {

struct Hyb {
  Ell ell;  // width chosen so most nonzeros land here
  Coo coo;  // overflow entries

  std::int64_t nnz() const { return csr_from_ell(ell).nnz() + coo.nnz(); }
  std::int64_t bytes() const { return ell.bytes() + coo.bytes(); }
};

/// Splits at `width` nonzeros per row; width<=0 picks the cuSPARSE-like
/// heuristic (smallest w covering rows such that at most 1/3 of rows
/// overflow, clamped to >=1).
Hyb hyb_from_csr(const Csr& a, index_t width = 0);

Csr csr_from_hyb(const Hyb& a);

void spmv_hyb(const Hyb& a, std::span<const double> x, std::span<double> y);

}  // namespace dnnspmv
