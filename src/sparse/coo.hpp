// Coordinate format: explicit (row, col, val) arrays sorted by row, col.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dnnspmv {

struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row;  // sorted by (row, col)
  std::vector<index_t> col;
  std::vector<double> val;

  std::int64_t nnz() const { return static_cast<std::int64_t>(val.size()); }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(val.size() * sizeof(double) +
                                     (row.size() + col.size()) *
                                         sizeof(index_t));
  }
};

Coo coo_from_csr(const Csr& a);
Csr csr_from_coo(const Coo& a);

/// y = A*x. Parallel over nnz chunks; rows that straddle a chunk boundary
/// are combined with atomics, interior rows are owned by one thread.
void spmv_coo(const Coo& a, std::span<const double> x, std::span<double> y);

}  // namespace dnnspmv
