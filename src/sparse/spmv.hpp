// Format-generic SpMV: holds a matrix converted into any supported format
// and dispatches the matching kernel. This is the "SpMV library" surface
// the selector targets (paper §7.1).
#pragma once

#include <optional>
#include <variant>

#include "sparse/bsr.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr5.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/format.hpp"
#include "sparse/hyb.hpp"

namespace dnnspmv {

/// A matrix stored in one concrete format.
class AnyFormatMatrix {
 public:
  /// Converts `a` into `f`. Returns nullopt when the format refuses the
  /// matrix (DIA/ELL padding blow-up).
  static std::optional<AnyFormatMatrix> convert(const Csr& a, Format f);

  Format format() const { return format_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  /// Storage footprint of this representation in bytes.
  std::int64_t bytes() const;

  /// y = A*x with the format's kernel.
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Y[rows×k] = A·X[cols×k] (row-major panels) with the format's SpMM
  /// kernel. At k = 1 this is bitwise identical to spmv().
  void spmm(std::span<const double> x, std::span<double> y, index_t k) const;

  /// Back-conversion (for round-trip testing).
  Csr to_csr() const;

 private:
  AnyFormatMatrix() = default;

  Format format_ = Format::kCsr;
  index_t rows_ = 0, cols_ = 0;
  std::variant<Coo, Csr, Dia, Ell, Hyb, Bsr, Csr5> storage_;
};

}  // namespace dnnspmv
