#include "sparse/hyb.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnnspmv {

Hyb hyb_from_csr(const Csr& a, index_t width) {
  if (width <= 0) {
    // Histogram of row lengths; pick the smallest width such that at most a
    // third of the rows still overflow.
    std::vector<std::int64_t> lens;
    lens.reserve(static_cast<std::size_t>(a.rows));
    for (index_t r = 0; r < a.rows; ++r) lens.push_back(a.row_nnz(r));
    std::vector<std::int64_t> sorted = lens;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t q = sorted.empty()
                              ? 0
                              : (sorted.size() * 2) / 3;  // 67th percentile
    width = sorted.empty() ? 1
                           : std::max<index_t>(
                                 1, static_cast<index_t>(sorted[q]));
  }

  Hyb m;
  m.ell.rows = a.rows;
  m.ell.cols = a.cols;
  m.ell.width = width;
  m.ell.col.assign(static_cast<std::size_t>(width) * a.rows, -1);
  m.ell.data.assign(static_cast<std::size_t>(width) * a.rows, 0.0);
  m.coo.rows = a.rows;
  m.coo.cols = a.cols;
  for (index_t r = 0; r < a.rows; ++r) {
    std::int64_t w = 0;
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j, ++w) {
      if (w < width) {
        m.ell.col[static_cast<std::size_t>(w) * a.rows + r] = a.idx[j];
        m.ell.data[static_cast<std::size_t>(w) * a.rows + r] = a.val[j];
      } else {
        m.coo.row.push_back(r);
        m.coo.col.push_back(a.idx[j]);
        m.coo.val.push_back(a.val[j]);
      }
    }
  }
  return m;
}

Csr csr_from_hyb(const Hyb& a) {
  std::vector<Triplet> ts;
  const Csr ell_part = csr_from_ell(a.ell);
  for (index_t r = 0; r < ell_part.rows; ++r)
    for (std::int64_t j = ell_part.ptr[r]; j < ell_part.ptr[r + 1]; ++j)
      ts.push_back({r, ell_part.idx[j], ell_part.val[j]});
  for (std::int64_t i = 0; i < a.coo.nnz(); ++i)
    ts.push_back({a.coo.row[i], a.coo.col[i], a.coo.val[i]});
  return csr_from_triplets(a.ell.rows, a.ell.cols, std::move(ts));
}

void spmv_hyb(const Hyb& a, std::span<const double> x, std::span<double> y) {
  spmv_ell(a.ell, x, y);  // writes y
  if (a.coo.nnz() == 0) return;
  // Accumulate overflow on top of the ELL result.
  const index_t* rp = a.coo.row.data();
  const index_t* cp = a.coo.col.data();
  const double* vp = a.coo.val.data();
  const double* xv = x.data();
  double* yv = y.data();
  const std::int64_t nnz = a.coo.nnz();
  for (std::int64_t i = 0; i < nnz; ++i) yv[rp[i]] += vp[i] * xv[cp[i]];
}

}  // namespace dnnspmv
