#include "sparse/spmm.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {
namespace {

void check_shapes(index_t rows, index_t cols, std::span<const double> x,
                  std::span<double> y, index_t k) {
  DNNSPMV_CHECK(k >= 1);
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(cols) *
                                static_cast<std::size_t>(k));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(rows) *
                                static_cast<std::size_t>(k));
}

const char* spmm_span_name(Format f) {
  switch (f) {
    case Format::kCoo: return "spmm.coo";
    case Format::kCsr: return "spmm.csr";
    case Format::kDia: return "spmm.dia";
    case Format::kEll: return "spmm.ell";
    case Format::kHyb: return "spmm.hyb";
    case Format::kBsr: return "spmm.bsr";
    case Format::kCsr5: return "spmm.csr5";
  }
  return "spmm.unknown";
}

obs::Histogram& spmm_hist(Format f) {
  static std::array<obs::Histogram*, kNumFormats> hists = [] {
    std::array<obs::Histogram*, kNumFormats> h{};
    for (std::int32_t i = 0; i < kNumFormats; ++i)
      h[static_cast<std::size_t>(i)] = &obs::MetricsRegistry::global()
          .histogram(std::string(spmm_span_name(static_cast<Format>(i))) +
                     "_us");
    return h;
  }();
  return *hists[static_cast<std::size_t>(f)];
}

}  // namespace

void spmm_reference(const Csr& a, std::span<const double> x,
                    std::span<double> y, index_t k) {
  check_shapes(a.rows, a.cols, x, y, k);
  for (index_t i = 0; i < a.rows; ++i) {
    double* yr = y.data() + static_cast<std::size_t>(i) * k;
    std::fill(yr, yr + k, 0.0);
    for (std::int64_t j = a.ptr[i]; j < a.ptr[i + 1]; ++j) {
      const double v = a.val[static_cast<std::size_t>(j)];
      const double* xr =
          x.data() + static_cast<std::size_t>(a.idx[j]) * k;
      for (index_t c = 0; c < k; ++c) yr[c] += v * xr[c];
    }
  }
}

void spmm_csr(const Csr& a, std::span<const double> x, std::span<double> y,
              index_t k) {
  check_shapes(a.rows, a.cols, x, y, k);
  const std::int64_t* ptr = a.ptr.data();
  const index_t* idx = a.idx.data();
  const double* val = a.val.data();
  const double* xv = x.data();
  double* yv = y.data();
#pragma omp parallel
  {
    // Per-thread accumulator row: the same val[j] * x[idx[j]] sequence as
    // spmv_csr, widened to K lanes, so K = 1 is bitwise SpMV.
    std::vector<double> acc(static_cast<std::size_t>(k));
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < a.rows; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (std::int64_t j = ptr[i]; j < ptr[i + 1]; ++j) {
        const double v = val[j];
        const double* xr = xv + static_cast<std::size_t>(idx[j]) * k;
        for (index_t c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] +=
            v * xr[c];
      }
      std::copy(acc.begin(), acc.end(),
                yv + static_cast<std::size_t>(i) * k);
    }
  }
}

void spmm_coo(const Coo& a, std::span<const double> x, std::span<double> y,
              index_t k) {
  check_shapes(a.rows, a.cols, x, y, k);
  std::fill(y.begin(), y.end(), 0.0);
  const std::int64_t nnz = a.nnz();
  const index_t* rp = a.row.data();
  const index_t* cp = a.col.data();
  const double* vp = a.val.data();
  const double* xv = x.data();
  double* yv = y.data();

#pragma omp parallel
  {
#ifdef _OPENMP
    const int nt = omp_get_num_threads();
    const int tid = omp_get_thread_num();
#else
    const int nt = 1;
    const int tid = 0;
#endif
    const std::int64_t chunk = (nnz + nt - 1) / nt;
    const std::int64_t lo = std::min<std::int64_t>(nnz, tid * chunk);
    const std::int64_t hi = std::min<std::int64_t>(nnz, lo + chunk);
    std::vector<double> acc(static_cast<std::size_t>(k));
    const auto accumulate = [&](std::int64_t j) {
      const double v = vp[j];
      const double* xr = xv + static_cast<std::size_t>(cp[j]) * k;
      for (index_t c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] +=
          v * xr[c];
    };
    std::int64_t i = lo;
    // Leading partial row: may be shared with the previous chunk.
    if (i < hi) {
      const index_t r0 = rp[i];
      std::fill(acc.begin(), acc.end(), 0.0);
      for (; i < hi && rp[i] == r0; ++i) accumulate(i);
      double* yr = yv + static_cast<std::size_t>(r0) * k;
      for (index_t c = 0; c < k; ++c) {
#pragma omp atomic
        yr[c] += acc[static_cast<std::size_t>(c)];
      }
    }
    // Interior rows are exclusively owned.
    while (i < hi) {
      const index_t r = rp[i];
      std::fill(acc.begin(), acc.end(), 0.0);
      for (; i < hi && rp[i] == r; ++i) accumulate(i);
      double* yr = yv + static_cast<std::size_t>(r) * k;
      if (i < hi) {
        std::copy(acc.begin(), acc.end(), yr);  // row completed here
      } else {
        // Trailing row may continue into the next chunk.
        for (index_t c = 0; c < k; ++c) {
#pragma omp atomic
          yr[c] += acc[static_cast<std::size_t>(c)];
        }
      }
    }
  }
}

void spmm_dia(const Dia& a, std::span<const double> x, std::span<double> y,
              index_t k) {
  check_shapes(a.rows, a.cols, x, y, k);
  std::fill(y.begin(), y.end(), 0.0);
  const double* xv = x.data();
  double* yv = y.data();
  for (std::size_t d = 0; d < a.offsets.size(); ++d) {
    const index_t off = a.offsets[d];
    const index_t istart = std::max<index_t>(0, -off);
    const index_t iend = std::min<index_t>(a.rows, a.cols - off);
    const double* diag = a.data.data() + d * a.rows;
#pragma omp parallel for schedule(static)
    for (index_t i = istart; i < iend; ++i) {
      const double v = diag[i];
      const double* xr = xv + static_cast<std::size_t>(i + off) * k;
      double* yr = yv + static_cast<std::size_t>(i) * k;
      for (index_t c = 0; c < k; ++c) yr[c] += v * xr[c];
    }
  }
}

void spmm_ell(const Ell& a, std::span<const double> x, std::span<double> y,
              index_t k) {
  check_shapes(a.rows, a.cols, x, y, k);
  const double* xv = x.data();
  double* yv = y.data();
#pragma omp parallel
  {
    std::vector<double> acc(static_cast<std::size_t>(k));
#pragma omp for schedule(static)
    for (index_t i = 0; i < a.rows; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (index_t w = 0; w < a.width; ++w) {
        const index_t c0 = a.col[static_cast<std::size_t>(w) * a.rows + i];
        if (c0 < 0) continue;
        const double v = a.data[static_cast<std::size_t>(w) * a.rows + i];
        const double* xr = xv + static_cast<std::size_t>(c0) * k;
        for (index_t c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] +=
            v * xr[c];
      }
      std::copy(acc.begin(), acc.end(),
                yv + static_cast<std::size_t>(i) * k);
    }
  }
}

void spmm_hyb(const Hyb& a, std::span<const double> x, std::span<double> y,
              index_t k) {
  spmm_ell(a.ell, x, y, k);  // writes y
  if (a.coo.nnz() == 0) return;
  // Accumulate overflow on top of the ELL result (serial, like SpMV).
  const index_t* rp = a.coo.row.data();
  const index_t* cp = a.coo.col.data();
  const double* vp = a.coo.val.data();
  const double* xv = x.data();
  double* yv = y.data();
  const std::int64_t nnz = a.coo.nnz();
  for (std::int64_t i = 0; i < nnz; ++i) {
    const double v = vp[i];
    const double* xr = xv + static_cast<std::size_t>(cp[i]) * k;
    double* yr = yv + static_cast<std::size_t>(rp[i]) * k;
    for (index_t c = 0; c < k; ++c) yr[c] += v * xr[c];
  }
}

void spmm_bsr(const Bsr& a, std::span<const double> x, std::span<double> y,
              index_t k) {
  check_shapes(a.rows, a.cols, x, y, k);
  const double* xv = x.data();
  double* yv = y.data();
  static constexpr double kZeroRow[1] = {0.0};  // never read beyond [0]
  (void)kZeroRow;
#pragma omp parallel
  {
    std::vector<double> acc(static_cast<std::size_t>(kBsrBlock) * k);
    std::vector<double> xpad(static_cast<std::size_t>(k), 0.0);
#pragma omp for schedule(dynamic, 16)
    for (index_t br = 0; br < a.brows; ++br) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (std::int64_t b = a.ptr[br]; b < a.ptr[br + 1]; ++b) {
        const index_t c0 = a.idx[b] * kBsrBlock;
        const double* blk = a.data.data() + b * kBsrBlock * kBsrBlock;
        // Same (block, i, j) accumulation order as spmv_bsr; columns past
        // the logical padding read a zero row, like xl[j] = 0 there.
        const double* xrows[kBsrBlock];
        for (index_t j = 0; j < kBsrBlock; ++j)
          xrows[j] = (c0 + j < a.cols)
                         ? xv + static_cast<std::size_t>(c0 + j) * k
                         : xpad.data();
        for (index_t i = 0; i < kBsrBlock; ++i)
          for (index_t j = 0; j < kBsrBlock; ++j) {
            const double v = blk[i * kBsrBlock + j];
            double* ar = acc.data() + static_cast<std::size_t>(i) * k;
            const double* xr = xrows[j];
            for (index_t c = 0; c < k; ++c) ar[c] += v * xr[c];
          }
      }
      const index_t r0 = br * kBsrBlock;
      for (index_t i = 0; i < kBsrBlock && r0 + i < a.rows; ++i)
        std::copy(acc.data() + static_cast<std::size_t>(i) * k,
                  acc.data() + static_cast<std::size_t>(i + 1) * k,
                  yv + static_cast<std::size_t>(r0 + i) * k);
    }
  }
}

void spmm_csr5(const Csr5& a, std::span<const double> x, std::span<double> y,
               index_t k) {
  check_shapes(a.rows, a.cols, x, y, k);
  std::fill(y.begin(), y.end(), 0.0);
  const std::int64_t ntiles = a.num_tiles();
  const std::int64_t nnz = a.nnz();
  const double* xv = x.data();
  const index_t* idx = a.idx.data();
  const double* val = a.val.data();
  const std::int64_t* ptr = a.ptr.data();
  double* yv = y.data();

#pragma omp parallel
  {
    std::vector<double> acc(static_cast<std::size_t>(k));
#pragma omp for schedule(static)
    for (std::int64_t t = 0; t < ntiles; ++t) {
      const std::int64_t lo = t * a.tile;
      const std::int64_t hi = std::min(nnz, lo + a.tile);
      index_t r = a.tile_row[static_cast<std::size_t>(t)];
      std::int64_t j = lo;
      while (j < hi) {
        const std::int64_t row_end = std::min(hi, ptr[r + 1]);
        std::fill(acc.begin(), acc.end(), 0.0);
        for (; j < row_end; ++j) {
          const double v = val[j];
          const double* xr = xv + static_cast<std::size_t>(idx[j]) * k;
          for (index_t c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] +=
              v * xr[c];
        }
        const bool row_complete_here =
            (lo <= ptr[r] && row_end == ptr[r + 1]);
        double* yr = yv + static_cast<std::size_t>(r) * k;
        if (row_complete_here) {
          std::copy(acc.begin(), acc.end(), yr);  // tile owns the row
        } else {
          // Partial row shared with a neighbouring tile. (When the row is
          // not complete here it necessarily straddles the tile boundary,
          // so the SpMV kernel's acc != 0 shortcut never fires — the
          // atomic add is unconditional there too.)
          for (index_t c = 0; c < k; ++c) {
#pragma omp atomic
            yr[c] += acc[static_cast<std::size_t>(c)];
          }
        }
        ++r;
      }
    }
  }
}

void AnyFormatMatrix::spmm(std::span<const double> x, std::span<double> y,
                           index_t k) const {
  obs::Span span(spmm_span_name(format_), &spmm_hist(format_));
  std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Coo>) spmm_coo(s, x, y, k);
        else if constexpr (std::is_same_v<T, Csr>) spmm_csr(s, x, y, k);
        else if constexpr (std::is_same_v<T, Dia>) spmm_dia(s, x, y, k);
        else if constexpr (std::is_same_v<T, Ell>) spmm_ell(s, x, y, k);
        else if constexpr (std::is_same_v<T, Hyb>) spmm_hyb(s, x, y, k);
        else if constexpr (std::is_same_v<T, Bsr>) spmm_bsr(s, x, y, k);
        else spmm_csr5(s, x, y, k);
      },
      storage_);
}

}  // namespace dnnspmv
