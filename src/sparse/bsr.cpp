#include "sparse/bsr.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace dnnspmv {

Bsr bsr_from_csr(const Csr& a) {
  Bsr m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.brows = (a.rows + kBsrBlock - 1) / kBsrBlock;
  m.bcols = (a.cols + kBsrBlock - 1) / kBsrBlock;
  m.ptr.assign(static_cast<std::size_t>(m.brows) + 1, 0);

  // Pass 1: per block-row, the set of populated block columns.
  for (index_t br = 0; br < m.brows; ++br) {
    std::map<index_t, std::array<double, 16>> blocks;
    const index_t r0 = br * kBsrBlock;
    const index_t r1 = std::min<index_t>(a.rows, r0 + kBsrBlock);
    for (index_t r = r0; r < r1; ++r) {
      for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j) {
        const index_t bc = a.idx[j] / kBsrBlock;
        auto [it, inserted] = blocks.try_emplace(bc);
        if (inserted) it->second.fill(0.0);
        it->second[static_cast<std::size_t>((r - r0) * kBsrBlock +
                                            (a.idx[j] - bc * kBsrBlock))] =
            a.val[j];
      }
    }
    m.ptr[br + 1] = m.ptr[br] + static_cast<std::int64_t>(blocks.size());
    for (const auto& [bc, blk] : blocks) {
      m.idx.push_back(bc);
      m.data.insert(m.data.end(), blk.begin(), blk.end());
    }
  }
  return m;
}

Csr csr_from_bsr(const Bsr& a) {
  std::vector<Triplet> ts;
  for (index_t br = 0; br < a.brows; ++br) {
    for (std::int64_t b = a.ptr[br]; b < a.ptr[br + 1]; ++b) {
      const index_t bc = a.idx[b];
      const double* blk = a.data.data() + b * kBsrBlock * kBsrBlock;
      for (index_t i = 0; i < kBsrBlock; ++i) {
        const index_t r = br * kBsrBlock + i;
        if (r >= a.rows) break;
        for (index_t j = 0; j < kBsrBlock; ++j) {
          const index_t c = bc * kBsrBlock + j;
          if (c >= a.cols) break;
          const double v = blk[i * kBsrBlock + j];
          if (v != 0.0) ts.push_back({r, c, v});
        }
      }
    }
  }
  return csr_from_triplets(a.rows, a.cols, std::move(ts));
}

void spmv_bsr(const Bsr& a, std::span<const double> x, std::span<double> y) {
  DNNSPMV_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  DNNSPMV_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  const double* xv = x.data();
  double* yv = y.data();
#pragma omp parallel for schedule(dynamic, 16)
  for (index_t br = 0; br < a.brows; ++br) {
    double acc[kBsrBlock] = {0.0, 0.0, 0.0, 0.0};
    for (std::int64_t b = a.ptr[br]; b < a.ptr[br + 1]; ++b) {
      const index_t c0 = a.idx[b] * kBsrBlock;
      const double* blk = a.data.data() + b * kBsrBlock * kBsrBlock;
      double xl[kBsrBlock];
      for (index_t j = 0; j < kBsrBlock; ++j)
        xl[j] = (c0 + j < a.cols) ? xv[c0 + j] : 0.0;
      for (index_t i = 0; i < kBsrBlock; ++i)
        for (index_t j = 0; j < kBsrBlock; ++j)
          acc[i] += blk[i * kBsrBlock + j] * xl[j];
    }
    const index_t r0 = br * kBsrBlock;
    for (index_t i = 0; i < kBsrBlock && r0 + i < a.rows; ++i)
      yv[r0 + i] = acc[i];
  }
}

}  // namespace dnnspmv
