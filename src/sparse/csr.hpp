// Compressed Sparse Row — the canonical in-memory representation.
//
// Every other format converts from Csr; generators and I/O produce Csr.
// Indices within a row are kept sorted and duplicate-free (validate()
// enforces this), which conversions rely on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dnnspmv {

using index_t = std::int32_t;

struct Triplet {
  index_t row;
  index_t col;
  double val;
};

struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<std::int64_t> ptr;  // size rows+1
  std::vector<index_t> idx;       // size nnz, sorted within each row
  std::vector<double> val;        // size nnz

  std::int64_t nnz() const { return static_cast<std::int64_t>(idx.size()); }

  std::int64_t row_nnz(index_t r) const { return ptr[r + 1] - ptr[r]; }

  /// Throws if the structure is inconsistent (bad ptr, unsorted or
  /// out-of-range columns, duplicates).
  void validate() const;

  /// Storage footprint in bytes (values + indices + row pointers).
  std::int64_t bytes() const;
};

/// Builds a Csr from unordered triplets; duplicates are summed.
Csr csr_from_triplets(index_t rows, index_t cols,
                      std::vector<Triplet> triplets);

/// y = A*x. x.size() == cols, y.size() == rows. OpenMP over rows.
void spmv_csr(const Csr& a, std::span<const double> x, std::span<double> y);

/// Dense reference y = A*x computed without the format machinery (test oracle).
void spmv_reference(const Csr& a, std::span<const double> x,
                    std::span<double> y);

/// Structural + value equality.
bool csr_equal(const Csr& a, const Csr& b, double tol = 0.0);

/// A^T as a new Csr.
Csr csr_transpose(const Csr& a);

}  // namespace dnnspmv
