// Block Sparse Row with fixed 4×4 blocks (the paper's GPU BSR setting,
// §7.2 footnote). Rows/cols are padded up to a multiple of the block size
// logically; physical vectors x/y keep the original lengths.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dnnspmv {

constexpr index_t kBsrBlock = 4;

struct Bsr {
  index_t rows = 0;   // original dims
  index_t cols = 0;
  index_t brows = 0;  // block-row count
  index_t bcols = 0;
  std::vector<std::int64_t> ptr;  // brows+1
  std::vector<index_t> idx;       // block-column indices
  std::vector<double> data;       // nblocks * 16, row-major within block

  std::int64_t nblocks() const {
    return static_cast<std::int64_t>(idx.size());
  }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data.size() * sizeof(double) +
                                     idx.size() * sizeof(index_t) +
                                     ptr.size() * sizeof(std::int64_t));
  }
  /// Fraction of stored block slots that hold actual nonzeros.
  double fill_ratio(std::int64_t nnz) const {
    return nblocks() == 0 ? 1.0
                          : static_cast<double>(nnz) /
                                static_cast<double>(nblocks() * kBsrBlock *
                                                    kBsrBlock);
  }
};

Bsr bsr_from_csr(const Csr& a);
Csr csr_from_bsr(const Bsr& a);

void spmv_bsr(const Bsr& a, std::span<const double> x, std::span<double> y);

}  // namespace dnnspmv
