#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

namespace dnnspmv {

MatrixStats compute_stats(const Csr& a) {
  MatrixStats s;
  s.rows = a.rows;
  s.cols = a.cols;
  s.nnz = a.nnz();
  if (a.rows == 0 || a.cols == 0) return s;
  s.density = static_cast<double>(s.nnz) /
              (static_cast<double>(a.rows) * static_cast<double>(a.cols));

  // Row-length distribution.
  double sum = 0.0, sumsq = 0.0;
  s.row_nnz_min = s.nnz;
  for (index_t r = 0; r < a.rows; ++r) {
    const std::int64_t len = a.row_nnz(r);
    sum += static_cast<double>(len);
    sumsq += static_cast<double>(len) * static_cast<double>(len);
    s.row_nnz_min = std::min(s.row_nnz_min, len);
    s.row_nnz_max = std::max(s.row_nnz_max, len);
    if (len == 0) ++s.empty_rows;
  }
  s.row_nnz_mean = sum / static_cast<double>(a.rows);
  const double var =
      std::max(0.0, sumsq / static_cast<double>(a.rows) -
                        s.row_nnz_mean * s.row_nnz_mean);
  s.row_nnz_sd = std::sqrt(var);
  s.row_nnz_cv = s.row_nnz_mean > 0 ? s.row_nnz_sd / s.row_nnz_mean : 0.0;
  s.max_over_mean = s.row_nnz_mean > 0
                        ? static_cast<double>(s.row_nnz_max) / s.row_nnz_mean
                        : 0.0;

  // Diagonal structure + locality.
  std::vector<bool> diag_seen(static_cast<std::size_t>(a.rows) + a.cols,
                              false);
  std::int64_t on_diag = 0;
  double dist_sum = 0.0;
  double gap_sum = 0.0;
  std::int64_t gap_count = 0;
  const double max_dim = static_cast<double>(std::max(a.rows, a.cols));
  for (index_t r = 0; r < a.rows; ++r) {
    index_t prev = -1;
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j) {
      const index_t c = a.idx[j];
      const std::int64_t d = static_cast<std::int64_t>(c) - r;
      diag_seen[static_cast<std::size_t>(d + a.rows - 1)] = true;
      if (d == 0) ++on_diag;
      dist_sum += static_cast<double>(std::llabs(d));
      s.bandwidth = std::max<std::int64_t>(s.bandwidth, std::llabs(d));
      if (prev >= 0) {
        gap_sum += static_cast<double>(c - prev);
        ++gap_count;
      }
      prev = c;
    }
  }
  for (bool b : diag_seen) s.ndiags += b ? 1 : 0;
  s.dia_fill = s.ndiags > 0 ? static_cast<double>(s.nnz) /
                                  (static_cast<double>(s.ndiags) *
                                   static_cast<double>(a.rows))
                            : 0.0;
  s.diag_frac =
      s.nnz > 0 ? static_cast<double>(on_diag) / static_cast<double>(s.nnz)
                : 0.0;
  s.mean_dist = s.nnz > 0 ? dist_sum / static_cast<double>(s.nnz) / max_dim
                          : 0.0;
  s.col_gap = gap_count > 0 ? gap_sum / static_cast<double>(gap_count) /
                                  static_cast<double>(a.cols)
                            : 0.0;

  s.ell_fill = (s.row_nnz_max > 0)
                   ? static_cast<double>(s.nnz) /
                         (static_cast<double>(a.rows) *
                          static_cast<double>(s.row_nnz_max))
                   : 0.0;

  // BSR 4x4 block census without materializing blocks: count distinct
  // (row/4, col/4) pairs per block-row stripe.
  const index_t brows = (a.rows + 3) / 4;
  std::int64_t nblocks = 0;
  std::unordered_set<index_t> cols_in_stripe;
  for (index_t br = 0; br < brows; ++br) {
    cols_in_stripe.clear();
    const index_t r0 = br * 4;
    const index_t r1 = std::min<index_t>(a.rows, r0 + 4);
    for (index_t r = r0; r < r1; ++r)
      for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
        cols_in_stripe.insert(a.idx[j] / 4);
    nblocks += static_cast<std::int64_t>(cols_in_stripe.size());
  }
  s.bsr_blocks = nblocks;
  s.bsr_fill = nblocks > 0 ? static_cast<double>(s.nnz) /
                                 (static_cast<double>(nblocks) * 16.0)
                           : 0.0;

  // HYB split at the 67th-percentile row length (matches hyb_from_csr).
  {
    std::vector<std::int64_t> lens;
    lens.reserve(static_cast<std::size_t>(a.rows));
    for (index_t r = 0; r < a.rows; ++r) lens.push_back(a.row_nnz(r));
    std::sort(lens.begin(), lens.end());
    const std::size_t q = (lens.size() * 2) / 3;
    s.hyb_width = std::max<std::int64_t>(1, lens[q]);
    for (std::int64_t len : lens)
      s.hyb_tail += std::max<std::int64_t>(0, len - s.hyb_width);
  }
  return s;
}

std::vector<double> stats_vector(const MatrixStats& s) {
  return {
      static_cast<double>(s.rows),
      static_cast<double>(s.cols),
      static_cast<double>(s.nnz),
      s.density,
      s.row_nnz_mean,
      s.row_nnz_sd,
      s.row_nnz_cv,
      static_cast<double>(s.row_nnz_min),
      static_cast<double>(s.row_nnz_max),
      s.max_over_mean,
      static_cast<double>(s.empty_rows),
      static_cast<double>(s.ndiags),
      s.dia_fill,
      s.diag_frac,
      s.mean_dist,
      static_cast<double>(s.bandwidth),
      s.ell_fill,
      s.bsr_fill,
      static_cast<double>(s.bsr_blocks),
      s.col_gap,
      static_cast<double>(s.hyb_width),
      static_cast<double>(s.hyb_tail),
  };
}

}  // namespace dnnspmv
