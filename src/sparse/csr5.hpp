// CSR5-lite: a tile-based, nonzero-balanced layout in the spirit of
// Liu & Vinter's CSR5 (ICS'15).
//
// Nonzeros are cut into fixed-size tiles; each tile records the row range it
// touches, so SpMV work is perfectly balanced over nonzeros regardless of
// the row-length distribution (the property that makes CSR5 win on highly
// irregular matrices). We keep the segmented-sum execution but skip the
// original's bit-flag/transposed-tile packing micro-optimizations — see
// DESIGN.md §6.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dnnspmv {

struct Csr5 {
  index_t rows = 0;
  index_t cols = 0;
  index_t tile = 0;                   // nonzeros per tile (last may be short)
  std::vector<std::int64_t> ptr;      // CSR row pointer (kept for row lookup)
  std::vector<index_t> idx;           // column indices, CSR order
  std::vector<double> val;
  std::vector<index_t> tile_row;      // first row touched by each tile

  std::int64_t nnz() const { return static_cast<std::int64_t>(idx.size()); }
  std::int64_t num_tiles() const {
    return static_cast<std::int64_t>(tile_row.size());
  }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(val.size() * sizeof(double) +
                                     idx.size() * sizeof(index_t) +
                                     ptr.size() * sizeof(std::int64_t) +
                                     tile_row.size() * sizeof(index_t));
  }
};

Csr5 csr5_from_csr(const Csr& a, index_t tile = 256);
Csr csr_from_csr5(const Csr5& a);

void spmv_csr5(const Csr5& a, std::span<const double> x, std::span<double> y);

}  // namespace dnnspmv
