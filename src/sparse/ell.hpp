// ELLPACK format: fixed-width rows, column-major storage for vectorized /
// coalesced access. Conversion fails when padding would exceed `max_fill`
// times the nnz footprint (a long densest row makes ELL hopeless).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dnnspmv {

struct Ell {
  index_t rows = 0;
  index_t cols = 0;
  index_t width = 0;              // max nonzeros per row
  std::vector<index_t> col;       // width*rows, column-major: col[w*rows+i]
  std::vector<double> data;       // same layout; padding has col=-1, data=0

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data.size() * sizeof(double) +
                                     col.size() * sizeof(index_t));
  }
};

constexpr double kEllMaxFill = 10.0;

std::optional<Ell> ell_from_csr(const Csr& a, double max_fill = kEllMaxFill);
Csr csr_from_ell(const Ell& a);

void spmv_ell(const Ell& a, std::span<const double> x, std::span<double> y);

}  // namespace dnnspmv
