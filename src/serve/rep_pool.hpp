// Recycled CNN-input buffers for the miss path.
//
// A cache miss materializes one std::vector<Tensor> of representations in
// the client thread, hands it through the request queue to a worker, and
// historically dropped it after the forward pass — a fresh set of heap
// allocations per miss. RepBufferPool closes the loop: submitters acquire
// a recycled buffer set (tensors keep their capacity from previous
// requests, so the streaming builder's ensure2() re-shapes without
// touching the heap), and the Batcher releases the set back here once the
// batch has been assembled. At steady state the pool supplies every miss
// and the rep build allocates nothing.
//
// The pool is deliberately tiny and boring: a mutex-guarded stack with a
// capacity cap. Releases beyond the cap free the buffers instead of
// pooling them, which bounds memory when foreign buffers flow in (the
// router's hedge path hands Request::inputs buffers this pool never
// issued).
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace dnnspmv {

class RepBufferPool {
 public:
  /// `cap` bounds how many buffer sets the pool will hold (excess releases
  /// are freed). 0 disables pooling entirely — acquire always returns a
  /// fresh empty set and release always frees.
  explicit RepBufferPool(std::size_t cap);

  /// A recycled buffer set, or an empty one when the pool is dry. The
  /// tensors inside (if any) hold stale shapes and contents; producers
  /// must ensure2() + overwrite, which the streaming builder does.
  std::vector<Tensor> acquire();

  /// Returns a buffer set for reuse (freed if the pool is at capacity).
  void release(std::vector<Tensor>&& bufs);

  /// Buffer sets currently pooled (diagnostics/tests).
  std::size_t size() const;

  std::size_t capacity() const { return cap_; }

 private:
  const std::size_t cap_;
  mutable std::mutex mu_;
  std::vector<std::vector<Tensor>> pool_;
};

}  // namespace dnnspmv
