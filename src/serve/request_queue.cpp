#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnnspmv {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  DNNSPMV_CHECK_MSG(capacity > 0, "request queue capacity must be positive");
}

bool RequestQueue::push(PredictRequest&& r) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || q_.size() < capacity_; });
  if (closed_) return false;
  q_.push_back(std::move(r));
  approx_size_.store(q_.size(), std::memory_order_relaxed);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

PushResult RequestQueue::try_push(PredictRequest&& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (q_.size() >= capacity_) return PushResult::kFull;
    q_.push_back(std::move(r));
    approx_size_.store(q_.size(), std::memory_order_relaxed);
  }
  not_empty_.notify_one();
  return PushResult::kOk;
}

std::size_t RequestQueue::pop_batch(std::vector<PredictRequest>& out,
                                    std::size_t max_batch) {
  DNNSPMV_CHECK(max_batch > 0);
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !q_.empty(); });
  const std::size_t n = std::min(max_batch, q_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  approx_size_.store(q_.size(), std::memory_order_relaxed);
  lock.unlock();
  if (n > 0) not_full_.notify_all();
  return n;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

}  // namespace dnnspmv
