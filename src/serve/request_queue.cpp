#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnnspmv {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  DNNSPMV_CHECK_MSG(capacity > 0, "request queue capacity must be positive");
}

bool RequestQueue::push(PredictRequest&& r) {
  std::unique_lock<std::mutex> lock(mu_);
  ++full_waiters_;
  not_full_.wait(lock, [this] { return closed_ || q_.size() < capacity_; });
  --full_waiters_;
  if (closed_) return false;
  q_.push_back(std::move(r));
  approx_size_.store(q_.size(), std::memory_order_relaxed);
  // Waiter-gated wakeup: only pay the notify (a futex syscall on Linux)
  // when a worker is actually parked. Reading the count under the lock is
  // race-free — a worker can only *start* waiting while holding mu_, and
  // any worker that locks after our unlock sees the non-empty queue in its
  // predicate and never sleeps. On an oversubscribed host (closed-loop
  // clients + workers > cores) the unconditional notify was a per-request
  // context-switch storm: every push preempted the producer to wake a
  // worker that was already runnable.
  const bool wake = empty_waiters_ > 0;
  lock.unlock();
  if (wake) not_empty_.notify_one();
  return true;
}

PushResult RequestQueue::try_push(PredictRequest&& r) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (q_.size() >= capacity_) return PushResult::kFull;
    q_.push_back(std::move(r));
    approx_size_.store(q_.size(), std::memory_order_relaxed);
    wake = empty_waiters_ > 0;
  }
  if (wake) not_empty_.notify_one();
  return PushResult::kOk;
}

std::size_t RequestQueue::pop_batch(std::vector<PredictRequest>& out,
                                    std::size_t max_batch) {
  DNNSPMV_CHECK(max_batch > 0);
  std::unique_lock<std::mutex> lock(mu_);
  ++empty_waiters_;
  not_empty_.wait(lock, [this] { return closed_ || !q_.empty(); });
  --empty_waiters_;
  const std::size_t n = std::min(max_batch, q_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  approx_size_.store(q_.size(), std::memory_order_relaxed);
  const bool wake = n > 0 && full_waiters_ > 0;
  lock.unlock();
  if (wake) not_full_.notify_all();
  return n;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

}  // namespace dnnspmv
