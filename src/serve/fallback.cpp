#include "serve/fallback.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ml/features.hpp"
#include "perf/labels.hpp"

namespace dnnspmv {

FallbackSelector::FallbackSelector(std::vector<Format> candidates)
    : candidates_(std::move(candidates)) {
  DNNSPMV_CHECK_ERRC(!candidates_.empty(), errc::invalid_argument,
                     "FallbackSelector needs at least one candidate format");
}

FallbackSelector FallbackSelector::train(
    const std::vector<LabeledMatrix>& labeled,
    const std::vector<Format>& candidates, const DTreeConfig& cfg) {
  FallbackSelector out(candidates);
  DNNSPMV_CHECK_ERRC(!labeled.empty(), errc::invalid_argument,
                     "FallbackSelector::train needs labelled matrices");
  std::vector<std::vector<double>> x;
  std::vector<std::int32_t> y;
  x.reserve(labeled.size());
  y.reserve(labeled.size());
  for (const LabeledMatrix& lm : labeled) {
    x.push_back(extract_features(*lm.matrix));
    y.push_back(lm.label);
  }
  DTreeConfig tree_cfg = cfg;
  if (tree_cfg.num_classes == 0)
    tree_cfg.num_classes = static_cast<int>(candidates.size());
  out.tree_.fit(x, y, tree_cfg);
  return out;
}

std::int32_t FallbackSelector::index_or_default(Format f) const {
  const auto find = [&](Format want) -> std::int32_t {
    const auto it = std::find(candidates_.begin(), candidates_.end(), want);
    return it == candidates_.end()
               ? -1
               : static_cast<std::int32_t>(it - candidates_.begin());
  };
  std::int32_t idx = find(f);
  if (idx < 0) idx = find(Format::kCsr);
  return idx < 0 ? 0 : idx;
}

std::int32_t FallbackSelector::rule_index(const MatrixStats& s) const {
  // Classic structural folklore, cheapest-to-strongest signal first. The
  // thresholds are intentionally conservative: when no structure stands
  // out, CSR is the safe general-purpose answer.
  if (s.ndiags > 0 && s.ndiags <= 12 && s.dia_fill >= 0.5)
    return index_or_default(Format::kDia);
  if (s.row_nnz_cv <= 0.4 && s.ell_fill >= 0.7)
    return index_or_default(Format::kEll);
  if (s.max_over_mean >= 10.0) {
    // Heavy row imbalance: HYB splits the fat rows off when available,
    // otherwise COO avoids ELL/CSR-style row-parallel imbalance.
    const std::int32_t hyb = index_or_default(Format::kHyb);
    if (candidates_[static_cast<std::size_t>(hyb)] == Format::kHyb) return hyb;
    return index_or_default(Format::kCoo);
  }
  return index_or_default(Format::kCsr);
}

std::int32_t FallbackSelector::predict_index(const MatrixStats& s) const {
  DNNSPMV_CHECK_ERRC(!candidates_.empty(), errc::not_trained,
                     "FallbackSelector has no candidates");
  if (tree_.trained()) {
    const std::int32_t idx = tree_.predict(extract_features(s));
    if (idx >= 0 && idx < static_cast<std::int32_t>(candidates_.size()))
      return idx;
    // A malformed tree answer degrades once more, to the rule tier.
  }
  return rule_index(s);
}

Format FallbackSelector::predict(const MatrixStats& s) const {
  return candidates_[static_cast<std::size_t>(predict_index(s))];
}

}  // namespace dnnspmv
