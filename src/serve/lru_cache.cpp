#include "serve/lru_cache.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace dnnspmv {

LruShard::LruShard(std::size_t capacity) : capacity_(capacity) {
  DNNSPMV_CHECK_MSG(capacity > 0, "LRU shard capacity must be positive");
}

bool LruShard::get(std::uint64_t key, std::int32_t& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  out = it->second->second;
  ++hits_;
  return true;
}

void LruShard::put(std::uint64_t key, std::int32_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = value;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (order_.size() >= capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
  }
  order_.emplace_front(key, value);
  index_[key] = order_.begin();
  ++insertions_;
}

std::size_t LruShard::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_.size();
}

CacheStats LruShard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = order_.size();
  return s;
}

void LruShard::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  index_.clear();
}

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards) {
  DNNSPMV_CHECK_MSG(capacity > 0 && shards > 0,
                    "cache capacity and shard count must be positive");
  shards = std::min(shards, capacity);
  const std::size_t per_shard = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<LruShard>(per_shard));
}

LruShard& ShardedLruCache::shard_for(std::uint64_t key) {
  // Re-mix so shard selection does not reuse the same low bits an
  // unordered_map bucket index would.
  return *shards_[splitmix64(key) % shards_.size()];
}

bool ShardedLruCache::get(std::uint64_t key, std::int32_t& out) {
  return shard_for(key).get(key, out);
}

void ShardedLruCache::put(std::uint64_t key, std::int32_t value) {
  shard_for(key).put(key, value);
}

std::size_t ShardedLruCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->size();
  return n;
}

CacheStats ShardedLruCache::stats() const {
  CacheStats total;
  for (const auto& s : shards_) {
    const CacheStats c = s->stats();
    total.hits += c.hits;
    total.misses += c.misses;
    total.insertions += c.insertions;
    total.evictions += c.evictions;
    total.entries += c.entries;
  }
  return total;
}

void ShardedLruCache::clear() {
  for (auto& s : shards_) s->clear();
}

}  // namespace dnnspmv
