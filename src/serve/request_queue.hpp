// Bounded MPMC queue of prediction requests.
//
// Client threads push prepared requests (representations already built, so
// the expensive per-matrix work parallelizes across clients); batch workers
// pop up to max_batch requests at once, which is what turns queue pressure
// into inference batches: under load a worker drains a full micro-batch per
// wakeup, when idle it serves singles at minimum latency.
//
// push() blocks while the queue is full (backpressure, bounded memory);
// try_push() reports kFull instead of blocking, which is what the service's
// bounded-retry/load-shedding admission control is built on. close()
// initiates shutdown: subsequent pushes fail fast, poppers drain whatever
// is queued and then get 0. In-flight requests are therefore always
// answered, never dropped — though requests whose deadline passed while
// queued are failed (not served) when a worker pops them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <vector>

#include "sparse/format.hpp"
#include "tensor/tensor.hpp"

namespace dnnspmv {

/// Which path of the service produced an answer. Carried by the completion
/// callback so a routing tier can count cache wins on a hedged sibling
/// (misrouted keys) without re-deriving the path from metrics deltas.
enum class AnswerSource : std::int8_t {
  kCache = 0,  // fingerprint LRU hit, answered inline
  kCnn,        // batched forward pass through the model
  kDegraded,   // FallbackSelector (shed or retry-budget exhausted)
  kError,      // failed: deadline, shutdown, injected or real fault
};

/// Completion hook for one request, invoked exactly once on whatever thread
/// resolves it (the submitter for hits/degraded/rejected answers, a batch
/// worker otherwise) — the push-model complement of the returned future,
/// which is what lets ReplicaRouter race a hedged re-dispatch against the
/// primary without polling futures. Exactly one of the two final arguments
/// is meaningful: `err` is null on success, `idx` is -1 on failure.
/// Callbacks must not throw and must not block the resolving thread.
using DoneCallback =
    std::function<void(std::int32_t idx, AnswerSource src,
                       std::exception_ptr err)>;

/// One queued prediction. `inputs` are the CNN representations of the
/// matrix (built by the client thread); `result` delivers the predicted
/// candidate index back to the waiting client. `enqueued_at_us` (obs
/// timebase) is stamped by the submitter so workers can report queue wait;
/// -1 means unstamped (now_us() legitimately returns 0 at its epoch).
struct PredictRequest {
  std::uint64_t fingerprint = 0;  // already op-scoped by the submitter
  // Which selector head answers this request. Workers partition each
  // micro-batch by op (one forward pass per head present in the batch).
  SpOp op = SpOp::kSpmv;
  std::vector<Tensor> inputs;
  std::promise<std::int32_t> result;
  // Optional completion hook, fired right after `result` is satisfied.
  DoneCallback done;
  std::int64_t enqueued_at_us = -1;
  // Absolute expiry in the obs::now_us timebase; -1 = no deadline. Workers
  // fail expired requests with errc::deadline_exceeded at dequeue instead
  // of spending a forward pass on an answer nobody is waiting for.
  std::int64_t deadline_us = -1;
};

/// Fires `r.done` exactly once (the callback is consumed) and swallows
/// anything it throws — a misbehaving hook must not take down a worker.
inline void invoke_done(PredictRequest& r, std::int32_t idx, AnswerSource src,
                        const std::exception_ptr& err) {
  if (!r.done) return;
  DoneCallback cb = std::move(r.done);
  r.done = nullptr;
  try {
    cb(idx, src, err);
  } catch (...) {
    // Completion hooks are documented no-throw; drop anything that leaks.
  }
}

enum class PushResult { kOk, kFull, kClosed };

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while full. Returns false (without enqueueing) once closed.
  bool push(PredictRequest&& r);

  /// Non-blocking push. On kFull/kClosed `r` is left intact (not moved
  /// from), so the caller can retry, shed, or fail it.
  PushResult try_push(PredictRequest&& r);

  /// Pops 1..max_batch requests into `out` (appended). Blocks until at
  /// least one request is available or the queue is closed and drained;
  /// returns the number popped (0 only on closed-and-empty).
  std::size_t pop_batch(std::vector<PredictRequest>& out,
                        std::size_t max_batch);

  /// Stops accepting pushes and wakes all waiters. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;
  /// Lock-free occupancy mirror (updated under the lock, read relaxed) —
  /// what the service's admission control and queue-depth gauge poll on
  /// every miss without touching the queue mutex. May lag size() by an
  /// in-flight push/pop; admission decisions tolerate that slack.
  std::size_t approx_size() const {
    return approx_size_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  // Parked-thread counts (guarded by mu_) that gate the notify calls:
  // nobody waiting → no syscall. See push() for the correctness argument.
  std::size_t empty_waiters_ = 0;
  std::size_t full_waiters_ = 0;
  std::deque<PredictRequest> q_;
  std::atomic<std::size_t> approx_size_{0};
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dnnspmv
