// Bounded MPMC queue of prediction requests.
//
// Client threads push prepared requests (representations already built, so
// the expensive per-matrix work parallelizes across clients); batch workers
// pop up to max_batch requests at once, which is what turns queue pressure
// into inference batches: under load a worker drains a full micro-batch per
// wakeup, when idle it serves singles at minimum latency.
//
// push() blocks while the queue is full (backpressure, bounded memory);
// try_push() reports kFull instead of blocking, which is what the service's
// bounded-retry/load-shedding admission control is built on. close()
// initiates shutdown: subsequent pushes fail fast, poppers drain whatever
// is queued and then get 0. In-flight requests are therefore always
// answered, never dropped — though requests whose deadline passed while
// queued are failed (not served) when a worker pops them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace dnnspmv {

/// One queued prediction. `inputs` are the CNN representations of the
/// matrix (built by the client thread); `result` delivers the predicted
/// candidate index back to the waiting client. `enqueued_at_us` (obs
/// timebase) is stamped by the submitter so workers can report queue wait;
/// -1 means unstamped (now_us() legitimately returns 0 at its epoch).
struct PredictRequest {
  std::uint64_t fingerprint = 0;
  std::vector<Tensor> inputs;
  std::promise<std::int32_t> result;
  std::int64_t enqueued_at_us = -1;
  // Absolute expiry in the obs::now_us timebase; -1 = no deadline. Workers
  // fail expired requests with errc::deadline_exceeded at dequeue instead
  // of spending a forward pass on an answer nobody is waiting for.
  std::int64_t deadline_us = -1;
};

enum class PushResult { kOk, kFull, kClosed };

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while full. Returns false (without enqueueing) once closed.
  bool push(PredictRequest&& r);

  /// Non-blocking push. On kFull/kClosed `r` is left intact (not moved
  /// from), so the caller can retry, shed, or fail it.
  PushResult try_push(PredictRequest&& r);

  /// Pops 1..max_batch requests into `out` (appended). Blocks until at
  /// least one request is available or the queue is closed and drained;
  /// returns the number popped (0 only on closed-and-empty).
  std::size_t pop_batch(std::vector<PredictRequest>& out,
                        std::size_t max_batch);

  /// Stops accepting pushes and wakes all waiters. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;
  /// Lock-free occupancy mirror (updated under the lock, read relaxed) —
  /// what the service's admission control and queue-depth gauge poll on
  /// every miss without touching the queue mutex. May lag size() by an
  /// in-flight push/pop; admission decisions tolerate that slack.
  std::size_t approx_size() const {
    return approx_size_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PredictRequest> q_;
  std::atomic<std::size_t> approx_size_{0};
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dnnspmv
