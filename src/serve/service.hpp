// SelectionService — concurrent, batched, caching format selection.
//
// The serving layer over a trained FormatSelector (ROADMAP: production-
// scale traffic). Request flow:
//
//   client thread                      worker threads (Batcher)
//   ─────────────                      ────────────────────────
//   fingerprint(matrix)
//   cache lookup ── hit ─→ answer
//        │ miss
//   build CNN inputs
//   push PredictRequest ─→ [bounded MPMC queue] ─→ pop ≤ max_batch
//   wait on future                       one batched forward pass
//        ↑                               fulfill promises, fill cache,
//        └───────────── answer ──────────record metrics
//
// Fingerprinting and representation-building run in the client thread, so
// that per-request work scales with the number of clients; only the CNN
// forward funnels through the workers, where queue pressure coalesces into
// micro-batches. Repeated matrices are answered from the sharded LRU cache
// without touching the queue at all.
//
// Thread safety: predict()/predict_index()/submit()/snapshot() may be
// called concurrently from any number of threads. shutdown() (or
// destruction) drains in-flight requests before returning; requests that
// arrive afterwards fail with DnnspmvError(errc::service_shutdown).
//
// Observability: every stage is instrumented through src/obs — counters
// and latency/queue-wait/batch-size histograms in the metrics registry
// under this service's prefix (see metrics()), and, when obs::set_enabled
// is on, trace spans for fingerprint / cache probe / representation
// building / forward / fulfill that export to chrome://tracing.
#pragma once

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/selector.hpp"
#include "serve/batcher.hpp"

namespace dnnspmv {

struct ServiceOptions {
  int num_workers = 2;            // batch-inference worker threads
  std::size_t max_batch = 16;     // micro-batch coalescing limit
  std::size_t queue_capacity = 256;
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
};

class SelectionService {
 public:
  /// `selector` must be trained and must outlive the service.
  explicit SelectionService(const FormatSelector& selector,
                            ServiceOptions opts = {});
  ~SelectionService();

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  /// Blocking predict; the end-to-end latency lands in the histogram.
  Format predict(const Csr& a);
  std::int32_t predict_index(const Csr& a);

  /// Fire-and-wait-later: a cache hit yields an already-ready future, a
  /// miss enqueues. The request carries the matrix's CNN representations
  /// (built here, in the calling thread), so the caller may drop `a` as
  /// soon as submit returns.
  std::future<std::int32_t> submit(const Csr& a);

  /// Closes the queue, drains in-flight requests, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Counters + latency histogram; cheap, callable any time.
  ServiceStats snapshot() const;

  /// The obs-registry view behind snapshot(): metrics().registry()
  /// .snapshot(metrics().prefix()) exports the same numbers untyped,
  /// alongside whatever else the process reports.
  const ServiceMetrics& metrics() const { return metrics_; }

  const std::vector<Format>& candidates() const {
    return selector_.candidates();
  }
  const ServiceOptions& options() const { return opts_; }

 private:
  const FormatSelector& selector_;
  ServiceOptions opts_;
  PredictionCache cache_;
  RequestQueue queue_;
  ServiceMetrics metrics_;
  Batcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dnnspmv
