// SelectionService — concurrent, batched, caching format selection.
//
// The serving layer over a trained FormatSelector (ROADMAP: production-
// scale traffic). Request flow:
//
//   client thread                      worker threads (Batcher)
//   ─────────────                      ────────────────────────
//   fingerprint(matrix)
//   cache lookup ── hit ─→ answer
//        │ miss
//   admission ── shed ─→ degraded answer (FallbackSelector, no queue)
//        │ admit
//   build CNN inputs
//   push PredictRequest ─→ [bounded MPMC queue] ─→ pop ≤ max_batch
//   (bounded retry+backoff      │                  drop expired requests
//    when transiently full;     │                  (deadline_exceeded)
//    degraded after budget)     ↓
//   wait on future                       one batched forward pass
//        ↑                               fulfill promises, fill cache,
//        └───────────── answer ──────────record metrics
//
// Fingerprinting and representation-building run in the client thread, so
// that per-request work scales with the number of clients; only the CNN
// forward funnels through the workers, where queue pressure coalesces into
// micro-batches. Repeated matrices are answered from the sharded LRU cache
// without touching the queue at all.
//
// Robustness (the "predictable when unhealthy" layer):
//   * Deadlines — submit() takes an optional per-request deadline. A
//     request that expires while queued is failed with
//     errc::deadline_exceeded at dequeue instead of being served; cache
//     hits and degraded answers are immediate and never expire.
//   * Load shedding — when queue occupancy crosses
//     shed_watermark × queue_capacity, new misses skip representation
//     building and the CNN entirely and are answered by the
//     FallbackSelector (a stats-features heuristic / decision tree, see
//     serve/fallback.hpp). Clients get a slightly weaker prediction now
//     instead of blocking; the `degraded`/`shed` counters record it.
//   * Bounded retry — a transiently full queue is retried push_retries
//     times with doubling backoff (push_backoff_us base); if the queue is
//     still full the request degrades rather than blocks.
//   * Fault injection — serve/fault.hpp sites are consulted on the push
//     and worker paths, so all of the above is deterministically testable.
//     (An injected *throw* at kQueuePush propagates to the submitter.)
//
// Failure semantics per request: exactly one of
//   value            — cache hit, CNN answer, or degraded (fallback) answer
//   deadline_exceeded— expired while queued
//   service_shutdown — submitted after shutdown()
//   fault_injected   — failed by an armed fault-injection site
//   (other)          — a real forward-pass failure, forwarded verbatim
//
// Router hooks (serve/router.hpp): submit_fingerprinted() accepts the
// stats+fingerprint a ReplicaRouter already computed to pick this replica
// (one O(nnz) pass per request instead of two), optionally retains a copy
// of the enqueued CNN inputs for hedged re-dispatch, and fires an optional
// DoneCallback exactly once when the request resolves; submit_prepared()
// is the hedge's re-dispatch entry (inputs already built, no matrix
// needed). ServiceOptions::pin_cpus pins the worker pool to a core/NUMA
// group and ServiceOptions::injector scopes fault injection per replica.
//
// Thread safety: predict()/predict_index()/submit()/snapshot() may be
// called concurrently from any number of threads. shutdown() (or
// destruction) drains in-flight requests before returning; requests that
// arrive afterwards fail with DnnspmvError(errc::service_shutdown).
//
// Observability: every stage is instrumented through src/obs — counters
// and latency/queue-wait/batch-size histograms in the metrics registry
// under this service's prefix (see metrics()), including the robustness
// counters (deadline_expired, shed, degraded, retries, queue_depth), and,
// when obs::set_enabled is on, trace spans for fingerprint / cache probe /
// representation building / degraded answers / forward / fulfill.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/selector.hpp"
#include "serve/batcher.hpp"
#include "serve/fallback.hpp"
#include "serve/fault.hpp"
#include "serve/rep_pool.hpp"

namespace dnnspmv {

struct ServiceOptions {
  int num_workers = 2;            // batch-inference worker threads
  std::size_t max_batch = 16;     // micro-batch coalescing limit
  std::size_t queue_capacity = 256;
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;

  // Worker placement: CPU ids the worker pool pins to at start-up (empty =
  // leave threads to the scheduler). Set by ReplicaRouter from its NUMA
  // plan (serve/affinity.hpp); pinning is best-effort.
  std::vector<int> pin_cpus;

  // Fault-injection scope: the injector this service's sites consult
  // (null = the process-global fault::Injector::global()). A router bench
  // or test hands one replica a private armed injector to script a
  // straggler while its siblings stay healthy. Must outlive the service.
  fault::Injector* injector = nullptr;

  // Robustness knobs. shed_watermark is a fraction of queue_capacity:
  // misses arriving above it are answered degraded instead of queued
  // (> 1.0 disables admission-control shedding; a full queue still
  // degrades after the retry budget). push_retries/push_backoff_us bound
  // how long a submitter courts a transiently full queue: attempt, sleep
  // backoff, double it, at most push_retries times.
  double shed_watermark = 0.9;
  int push_retries = 3;
  std::int64_t push_backoff_us = 50;
  // Degraded-path selector; unset → rule-tier fallback over the
  // selector's candidates. A trained one (FallbackSelector::train) must
  // use the same candidate list as the FormatSelector.
  std::optional<FallbackSelector> fallback;
};

class SelectionService {
 public:
  /// `selector` must be trained and must outlive the service.
  explicit SelectionService(const FormatSelector& selector,
                            ServiceOptions opts = {});
  ~SelectionService();

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  /// Blocking predict; the end-to-end latency lands in the histogram.
  /// With a deadline, throws DnnspmvError(errc::deadline_exceeded) if the
  /// request expired queued (see class comment for the full semantics).
  Format predict(const Csr& a,
                 std::optional<std::chrono::microseconds> deadline =
                     std::nullopt);
  std::int32_t predict_index(const Csr& a,
                             std::optional<std::chrono::microseconds>
                                 deadline = std::nullopt);

  /// Fire-and-wait-later: a cache hit or degraded answer yields an
  /// already-ready future, a miss enqueues. The request carries the
  /// matrix's CNN representations (built here, in the calling thread), so
  /// the caller may drop `a` as soon as submit returns. `deadline` is
  /// relative to now; expired requests fail at dequeue with
  /// errc::deadline_exceeded.
  std::future<std::int32_t> submit(const Csr& a,
                                   std::optional<std::chrono::microseconds>
                                       deadline = std::nullopt);

  /// Router-path submit: the caller already computed `st` and `fp` (to pick
  /// this replica off the hash ring), so this overload skips the O(nnz)
  /// stats pass submit() would repeat — counted in the `fp_reused` metric.
  /// `done` (optional) fires exactly once when the request resolves, on
  /// whatever thread resolves it, alongside the returned future. If
  /// `retain_inputs` is non-null and the request reaches the queue (cache
  /// miss, admitted), it receives a copy of the CNN inputs actually
  /// enqueued — what a router keeps for a later hedged re-dispatch; it is
  /// left empty on every inline path (hit / degraded / rejected).
  std::future<std::int32_t> submit_fingerprinted(
      const Csr& a, const MatrixStats& st, std::uint64_t fp,
      std::optional<std::chrono::microseconds> deadline = std::nullopt,
      DoneCallback done = nullptr, std::vector<Tensor>* retain_inputs = nullptr);

  /// Re-dispatch submit: the CNN inputs are already built (a hedge re-uses
  /// the copy retained by submit_fingerprinted), so the matrix itself is no
  /// longer needed. Still probes this replica's cache first — a hedged key
  /// can be cache-warm on the sibling — and still sheds to the degraded
  /// path above the watermark. `st` feeds the FallbackSelector on that
  /// path. Also counted in `fp_reused`.
  std::future<std::int32_t> submit_prepared(
      const MatrixStats& st, std::uint64_t fp, std::vector<Tensor> inputs,
      std::optional<std::chrono::microseconds> deadline = std::nullopt,
      DoneCallback done = nullptr);

  /// Closes the queue, drains in-flight requests, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Counters + latency histogram; cheap, callable any time.
  ServiceStats snapshot() const;

  /// The obs-registry view behind snapshot(): metrics().registry()
  /// .snapshot(metrics().prefix()) exports the same numbers untyped,
  /// alongside whatever else the process reports.
  const ServiceMetrics& metrics() const { return metrics_; }

  /// The degraded-path selector answering shed requests.
  const FallbackSelector& fallback() const { return fallback_; }

  const std::vector<Format>& candidates() const {
    return selector_.candidates();
  }
  const ServiceOptions& options() const { return opts_; }

  /// Approximate queue occupancy (the admission-control mirror) — what a
  /// router polls for its per-replica depth gauges.
  std::size_t queue_depth() const { return queue_.approx_size(); }

  /// The recycled CNN-input buffer pool behind the miss path (tests assert
  /// its steady-state behaviour through this).
  const RepBufferPool& rep_pool() const { return rep_pool_; }

 private:
  /// Immediate fallback answer for a shed miss (stats already computed).
  /// Consumes `done` (fires it with the degraded answer) when set.
  std::future<std::int32_t> answer_degraded(const MatrixStats& st,
                                            bool by_watermark,
                                            DoneCallback done);

  /// Cache probe → shed check shared by every submit flavour. Returns an
  /// engaged future when the request resolved inline (hit or shed).
  std::optional<std::future<std::int32_t>> answer_inline(
      const MatrixStats& st, std::uint64_t fp, DoneCallback& done);

  /// Bounded-retry enqueue of a fully-built request (common tail of every
  /// submit flavour). Falls back to the degraded path when the queue stays
  /// full and fails the request when the queue is closed.
  std::future<std::int32_t> enqueue(PredictRequest&& req,
                                    const MatrixStats& st,
                                    std::optional<std::chrono::microseconds>
                                        deadline);

  const FormatSelector& selector_;
  ServiceOptions opts_;
  FallbackSelector fallback_;
  std::size_t shed_threshold_;  // queue occupancy that triggers shedding
  fault::Injector* injector_;   // opts_.injector or the global instance
  PredictionCache cache_;
  RequestQueue queue_;
  ServiceMetrics metrics_;
  RepBufferPool rep_pool_;  // must precede batcher_ (the batcher recycles
                            // served input buffers into it)
  Batcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dnnspmv
