// SelectionService — concurrent, batched, caching format selection.
//
// The serving layer over a trained FormatSelector (ROADMAP: production-
// scale traffic). Request flow:
//
//   client thread                      worker threads (Batcher)
//   ─────────────                      ────────────────────────
//   fingerprint(matrix)
//   cache lookup ── hit ─→ answer
//        │ miss
//   admission ── shed ─→ degraded answer (FallbackSelector, no queue)
//        │ admit
//   build CNN inputs
//   push PredictRequest ─→ [bounded MPMC queue] ─→ pop ≤ max_batch
//   (bounded retry+backoff      │                  drop expired requests
//    when transiently full;     │                  (deadline_exceeded)
//    degraded after budget)     ↓
//   wait on future                       one batched forward pass
//        ↑                               fulfill promises, fill cache,
//        └───────────── answer ──────────record metrics
//
// Fingerprinting and representation-building run in the client thread, so
// that per-request work scales with the number of clients; only the CNN
// forward funnels through the workers, where queue pressure coalesces into
// micro-batches. Repeated matrices are answered from the sharded LRU cache
// without touching the queue at all.
//
// Robustness (the "predictable when unhealthy" layer):
//   * Deadlines — submit() takes an optional per-request deadline. A
//     request that expires while queued is failed with
//     errc::deadline_exceeded at dequeue instead of being served; cache
//     hits and degraded answers are immediate and never expire.
//   * Load shedding — when queue occupancy crosses
//     shed_watermark × queue_capacity, new misses skip representation
//     building and the CNN entirely and are answered by the
//     FallbackSelector (a stats-features heuristic / decision tree, see
//     serve/fallback.hpp). Clients get a slightly weaker prediction now
//     instead of blocking; the `degraded`/`shed` counters record it.
//   * Bounded retry — a transiently full queue is retried push_retries
//     times with doubling backoff (push_backoff_us base); if the queue is
//     still full the request degrades rather than blocks.
//   * Fault injection — serve/fault.hpp sites are consulted on the push
//     and worker paths, so all of the above is deterministically testable.
//     (An injected *throw* at kQueuePush propagates to the submitter.)
//
// Failure semantics per request: exactly one of
//   value            — cache hit, CNN answer, or degraded (fallback) answer
//   deadline_exceeded— expired while queued
//   service_shutdown — submitted after shutdown()
//   fault_injected   — failed by an armed fault-injection site
//   (other)          — a real forward-pass failure, forwarded verbatim
//
// Thread safety: predict()/predict_index()/submit()/snapshot() may be
// called concurrently from any number of threads. shutdown() (or
// destruction) drains in-flight requests before returning; requests that
// arrive afterwards fail with DnnspmvError(errc::service_shutdown).
//
// Observability: every stage is instrumented through src/obs — counters
// and latency/queue-wait/batch-size histograms in the metrics registry
// under this service's prefix (see metrics()), including the robustness
// counters (deadline_expired, shed, degraded, retries, queue_depth), and,
// when obs::set_enabled is on, trace spans for fingerprint / cache probe /
// representation building / degraded answers / forward / fulfill.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/selector.hpp"
#include "serve/batcher.hpp"
#include "serve/fallback.hpp"

namespace dnnspmv {

struct ServiceOptions {
  int num_workers = 2;            // batch-inference worker threads
  std::size_t max_batch = 16;     // micro-batch coalescing limit
  std::size_t queue_capacity = 256;
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;

  // Robustness knobs. shed_watermark is a fraction of queue_capacity:
  // misses arriving above it are answered degraded instead of queued
  // (> 1.0 disables admission-control shedding; a full queue still
  // degrades after the retry budget). push_retries/push_backoff_us bound
  // how long a submitter courts a transiently full queue: attempt, sleep
  // backoff, double it, at most push_retries times.
  double shed_watermark = 0.9;
  int push_retries = 3;
  std::int64_t push_backoff_us = 50;
  // Degraded-path selector; unset → rule-tier fallback over the
  // selector's candidates. A trained one (FallbackSelector::train) must
  // use the same candidate list as the FormatSelector.
  std::optional<FallbackSelector> fallback;
};

class SelectionService {
 public:
  /// `selector` must be trained and must outlive the service.
  explicit SelectionService(const FormatSelector& selector,
                            ServiceOptions opts = {});
  ~SelectionService();

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  /// Blocking predict; the end-to-end latency lands in the histogram.
  /// With a deadline, throws DnnspmvError(errc::deadline_exceeded) if the
  /// request expired queued (see class comment for the full semantics).
  Format predict(const Csr& a,
                 std::optional<std::chrono::microseconds> deadline =
                     std::nullopt);
  std::int32_t predict_index(const Csr& a,
                             std::optional<std::chrono::microseconds>
                                 deadline = std::nullopt);

  /// Fire-and-wait-later: a cache hit or degraded answer yields an
  /// already-ready future, a miss enqueues. The request carries the
  /// matrix's CNN representations (built here, in the calling thread), so
  /// the caller may drop `a` as soon as submit returns. `deadline` is
  /// relative to now; expired requests fail at dequeue with
  /// errc::deadline_exceeded.
  std::future<std::int32_t> submit(const Csr& a,
                                   std::optional<std::chrono::microseconds>
                                       deadline = std::nullopt);

  /// Closes the queue, drains in-flight requests, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Counters + latency histogram; cheap, callable any time.
  ServiceStats snapshot() const;

  /// The obs-registry view behind snapshot(): metrics().registry()
  /// .snapshot(metrics().prefix()) exports the same numbers untyped,
  /// alongside whatever else the process reports.
  const ServiceMetrics& metrics() const { return metrics_; }

  /// The degraded-path selector answering shed requests.
  const FallbackSelector& fallback() const { return fallback_; }

  const std::vector<Format>& candidates() const {
    return selector_.candidates();
  }
  const ServiceOptions& options() const { return opts_; }

 private:
  /// Immediate fallback answer for a shed miss (stats already computed).
  std::future<std::int32_t> answer_degraded(const MatrixStats& st,
                                            bool by_watermark);

  const FormatSelector& selector_;
  ServiceOptions opts_;
  FallbackSelector fallback_;
  std::size_t shed_threshold_;  // queue occupancy that triggers shedding
  PredictionCache cache_;
  RequestQueue queue_;
  ServiceMetrics metrics_;
  Batcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dnnspmv
