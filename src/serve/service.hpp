// SelectionService — concurrent, batched, caching format selection.
//
// The serving layer over a trained FormatSelector (ROADMAP: production-
// scale traffic). Request flow:
//
//   client thread                      worker threads (Batcher)
//   ─────────────                      ────────────────────────
//   fingerprint(matrix)
//   cache lookup ── hit ─→ answer
//        │ miss
//   admission ── shed ─→ degraded answer (FallbackSelector, no queue)
//        │ admit
//   build CNN inputs
//   push PredictRequest ─→ [bounded MPMC queue] ─→ pop ≤ max_batch
//   (bounded retry+backoff      │                  drop expired requests
//    when transiently full;     │                  (deadline_exceeded)
//    degraded after budget)     ↓
//   wait on future                       one batched forward pass
//        ↑                               fulfill promises, fill cache,
//        └───────────── answer ──────────record metrics
//
// Fingerprinting and representation-building run in the client thread, so
// that per-request work scales with the number of clients; only the CNN
// forward funnels through the workers, where queue pressure coalesces into
// micro-batches. Repeated matrices are answered from the sharded LRU cache
// without touching the queue at all.
//
// Robustness (the "predictable when unhealthy" layer):
//   * Deadlines — submit() takes an optional per-request deadline. A
//     request that expires while queued is failed with
//     errc::deadline_exceeded at dequeue instead of being served; cache
//     hits and degraded answers are immediate and never expire.
//   * Load shedding — when queue occupancy crosses
//     shed_watermark × queue_capacity, new misses skip representation
//     building and the CNN entirely and are answered by the
//     FallbackSelector (a stats-features heuristic / decision tree, see
//     serve/fallback.hpp). Clients get a slightly weaker prediction now
//     instead of blocking; the `degraded`/`shed` counters record it.
//   * Bounded retry — a transiently full queue is retried push_retries
//     times with doubling backoff (push_backoff_us base); if the queue is
//     still full the request degrades rather than blocks.
//   * Fault injection — serve/fault.hpp sites are consulted on the push
//     and worker paths, so all of the above is deterministically testable.
//     (An injected *throw* at kQueuePush propagates to the submitter.)
//
// Failure semantics per request: exactly one of
//   value            — cache hit, CNN answer, or degraded (fallback) answer
//   deadline_exceeded— expired while queued
//   service_shutdown — submitted after shutdown()
//   fault_injected   — failed by an armed fault-injection site
//   (other)          — a real forward-pass failure, forwarded verbatim
//
// Unified submit API (ISSUE 8): every entry path is one call —
// submit(Request&&) — where the Request carries whatever the caller
// already computed. A plain caller sets only `matrix`; a router that
// fingerprinted to pick this replica adds stats+fingerprint (skipping the
// O(nnz) rehash, counted in fp_reused); a hedged re-dispatch ships the
// retained `inputs` and no matrix at all. Missing pieces are derived here,
// in the calling thread. The old submit/submit_fingerprinted/
// submit_prepared entry points survive one release as [[deprecated]]
// inline forwarders. ServiceOptions::pin_cpus pins the worker pool to a
// core/NUMA group and ServiceOptions::injector scopes fault injection per
// replica.
//
// Online learning (ISSUE 8): the service serves a ModelRegistry
// subscription, not a fixed selector. Workers probe for newly published
// versions between micro-batches (lock-free staleness check) and adopt by
// cloning — no pause, in-flight batches finish on the version they
// started with. Cache keys mix in the model version, so a swap never
// serves a stale prediction and never needs a cache clear. When
// ServiceOptions::feedback is set, a sampled fraction of cache misses is
// probed (per-format measured SpMV times) and published to the feedback
// stream — the data the OnlineTrainer fine-tunes on. The legacy
// selector-reference constructor wraps its selector in a private owned
// registry, so existing callers keep working (version pinned at 1).
//
// Thread safety: predict()/predict_index()/submit()/snapshot() may be
// called concurrently from any number of threads. shutdown() (or
// destruction) drains in-flight requests before returning; requests that
// arrive afterwards fail with DnnspmvError(errc::service_shutdown).
//
// Observability: every stage is instrumented through src/obs — counters
// and latency/queue-wait/batch-size histograms in the metrics registry
// under this service's prefix (see metrics()), including the robustness
// counters (deadline_expired, shed, degraded, retries, queue_depth), and,
// when obs::set_enabled is on, trace spans for fingerprint / cache probe /
// representation building / degraded answers / forward / fulfill.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/model_registry.hpp"
#include "core/selector.hpp"
#include "serve/batcher.hpp"
#include "serve/fallback.hpp"
#include "serve/fault.hpp"
#include "serve/feedback.hpp"
#include "serve/rep_pool.hpp"

namespace dnnspmv {

struct ServiceOptions {
  int num_workers = 2;            // batch-inference worker threads
  std::size_t max_batch = 16;     // micro-batch coalescing limit
  std::size_t queue_capacity = 256;
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;

  // Worker placement: CPU ids the worker pool pins to at start-up (empty =
  // leave threads to the scheduler). Set by ReplicaRouter from its NUMA
  // plan (serve/affinity.hpp); pinning is best-effort.
  std::vector<int> pin_cpus;

  // Fault-injection scope: the injector this service's sites consult
  // (null = the process-global fault::Injector::global()). A router bench
  // or test hands one replica a private armed injector to script a
  // straggler while its siblings stay healthy. Must outlive the service.
  fault::Injector* injector = nullptr;

  // Robustness knobs. shed_watermark is a fraction of queue_capacity:
  // misses arriving above it are answered degraded instead of queued
  // (> 1.0 disables admission-control shedding; a full queue still
  // degrades after the retry budget). push_retries/push_backoff_us bound
  // how long a submitter courts a transiently full queue: attempt, sleep
  // backoff, double it, at most push_retries times.
  double shed_watermark = 0.9;
  int push_retries = 3;
  std::int64_t push_backoff_us = 50;
  // Degraded-path selector; unset → rule-tier fallback over the
  // selector's candidates. A trained one (FallbackSelector::train) must
  // use the same candidate list as the FormatSelector.
  std::optional<FallbackSelector> fallback;

  // Online-learning feedback (null = no feedback). When set, a sampled
  // fraction of cache misses that carry a matrix (feedback->offer()
  // decides) is probed for per-format measured SpMV times and published
  // to this stream. Must outlive the service.
  FeedbackCollector* feedback = nullptr;
  // Probe override: per-format seconds for a matrix, candidate order.
  // Unset → measure_format_times over the registry's candidates (times
  // this host's real kernels). Benches and tests substitute an analytic
  // platform to script a drifted label distribution deterministically.
  std::function<std::vector<double>(const Csr&)> feedback_probe;
};

/// One prediction request — the single submit() currency. Exactly the
/// fields a caller happens to know; the service derives the rest:
///   * stats absent  → computed from *matrix (O(nnz));
///   * fingerprint absent → computed from stats;
///   * inputs empty  → CNN representations built from *matrix in the
///     calling thread (the miss path's per-request work).
/// `matrix` may be null only when stats+fingerprint are present AND
/// inputs are pre-built (a hedged re-dispatch); it is borrowed for the
/// duration of the submit call only.
struct Request {
  const Csr* matrix = nullptr;
  // Which kernel the caller will run with the answer. SpMM predictions
  // come from the model's SpMM head and live under op-scoped cache keys,
  // so the two ops never serve each other's answers.
  SpOp op = SpOp::kSpmv;
  std::optional<MatrixStats> stats;
  // Raw structural fingerprint (NOT op-scoped; the service scopes it).
  std::optional<std::uint64_t> fingerprint;
  std::vector<Tensor> inputs;  // pre-built CNN representations (optional)
  std::optional<std::chrono::microseconds> deadline;  // relative to now
  // Fired exactly once when the request resolves, on whatever thread
  // resolves it (see DoneCallback's contract in request_queue.hpp).
  DoneCallback done;
  // When non-null and the request reaches the queue (miss, admitted),
  // receives a copy of the CNN inputs actually enqueued — what a router
  // retains for hedged re-dispatch. Left empty on inline answers.
  std::vector<Tensor>* retain_inputs = nullptr;
};

class SelectionService {
 public:
  /// Serves `registry`'s current version and hot-swaps to every later
  /// publish. The registry must outlive the service.
  explicit SelectionService(ModelRegistry& registry, ServiceOptions opts = {});

  /// Legacy convenience: `selector` must be trained; it is cloned into a
  /// private owned registry (version 1, never republished unless you
  /// reach it through registry()). The selector may be discarded after
  /// construction.
  explicit SelectionService(const FormatSelector& selector,
                            ServiceOptions opts = {});
  ~SelectionService();

  SelectionService(const SelectionService&) = delete;
  SelectionService& operator=(const SelectionService&) = delete;

  /// Blocking predict; the end-to-end latency lands in the histogram.
  /// With a deadline, throws DnnspmvError(errc::deadline_exceeded) if the
  /// request expired queued (see class comment for the full semantics).
  Format predict(const Csr& a,
                 std::optional<std::chrono::microseconds> deadline =
                     std::nullopt);
  std::int32_t predict_index(const Csr& a,
                             std::optional<std::chrono::microseconds>
                                 deadline = std::nullopt);

  /// Op-aware flavours: the answer comes from the model's head for `op`
  /// (requires the registry's model to support it — see
  /// FormatSelector::supports).
  Format predict(const Csr& a, SpOp op,
                 std::optional<std::chrono::microseconds> deadline =
                     std::nullopt);
  std::int32_t predict_index(const Csr& a, SpOp op,
                             std::optional<std::chrono::microseconds>
                                 deadline = std::nullopt);

  /// Fire-and-wait-later, every flavour: a cache hit or degraded answer
  /// yields an already-ready future, a miss enqueues. Whatever the
  /// Request doesn't carry is derived here, in the calling thread (see
  /// Request). Throws DnnspmvError(errc::invalid_argument) when the
  /// request carries neither a matrix nor enough precomputed pieces.
  std::future<std::int32_t> submit(Request&& req);

  /// Closes the queue, drains in-flight requests, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Counters + latency histogram; cheap, callable any time.
  ServiceStats snapshot() const;

  /// The obs-registry view behind snapshot(): metrics().registry()
  /// .snapshot(metrics().prefix()) exports the same numbers untyped,
  /// alongside whatever else the process reports.
  const ServiceMetrics& metrics() const { return metrics_; }

  /// The degraded-path selector answering shed requests.
  const FallbackSelector& fallback() const { return fallback_; }

  const std::vector<Format>& candidates() const {
    return registry_.candidates();
  }
  const ServiceOptions& options() const { return opts_; }

  /// The registry this service subscribes to (the owned one for the
  /// legacy selector constructor) — publish() here to hot-swap the model.
  ModelRegistry& registry() const { return registry_; }

  /// Model version this service's workers have adopted (may briefly lag
  /// registry().version() until the next batch boundary).
  std::uint64_t model_version() const { return subscription_.version(); }

  /// Approximate queue occupancy (the admission-control mirror) — what a
  /// router polls for its per-replica depth gauges.
  std::size_t queue_depth() const { return queue_.approx_size(); }

  /// The recycled CNN-input buffer pool behind the miss path (tests assert
  /// its steady-state behaviour through this).
  const RepBufferPool& rep_pool() const { return rep_pool_; }

 private:
  /// Common constructor: exactly one of `owned`/`registry` is the model
  /// source (owned != null for the legacy selector path).
  SelectionService(std::unique_ptr<ModelRegistry> owned,
                   ModelRegistry* registry, ServiceOptions opts);

  /// Immediate fallback answer for a shed miss (stats already computed).
  /// Consumes `done` (fires it with the degraded answer) when set.
  std::future<std::int32_t> answer_degraded(const MatrixStats& st,
                                            bool by_watermark,
                                            DoneCallback done);

  /// Cache probe → shed check shared by every submit flavour. Returns an
  /// engaged future when the request resolved inline (hit or shed).
  std::optional<std::future<std::int32_t>> answer_inline(
      const MatrixStats& st, std::uint64_t fp, DoneCallback& done);

  /// Bounded-retry enqueue of a fully-built request (common tail of every
  /// submit flavour). Falls back to the degraded path when the queue stays
  /// full and fails the request when the queue is closed.
  std::future<std::int32_t> enqueue(PredictRequest&& req,
                                    const MatrixStats& st,
                                    std::optional<std::chrono::microseconds>
                                        deadline);

  /// Sampled miss-path feedback: when the collector's gate says yes,
  /// probes `a` for per-format measured times and publishes
  /// (fp, inputs, times). Runs in the submitting thread; the gate keeps
  /// the steady-state cost at one atomic increment.
  void maybe_publish_feedback(const Csr& a, std::uint64_t fp,
                              const std::vector<Tensor>& inputs);

  std::unique_ptr<ModelRegistry> owned_registry_;  // legacy ctor only
  ModelRegistry& registry_;
  ModelSubscription subscription_;  // must precede batcher_
  ServiceOptions opts_;
  StreamingRepBuilder rep_builder_;  // geometry pinned by the registry
  FallbackSelector fallback_;
  std::size_t shed_threshold_;  // queue occupancy that triggers shedding
  fault::Injector* injector_;   // opts_.injector or the global instance
  std::function<std::vector<double>(const Csr&)> feedback_probe_;
  PredictionCache cache_;
  RequestQueue queue_;
  ServiceMetrics metrics_;
  RepBufferPool rep_pool_;  // must precede batcher_ (the batcher recycles
                            // served input buffers into it)
  Batcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dnnspmv
