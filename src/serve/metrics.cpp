#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace dnnspmv {
namespace {

std::string next_service_prefix() {
  static std::atomic<int> instance{0};
  return "serve" + std::to_string(instance.fetch_add(1)) + ".";
}

}  // namespace

double ServiceStats::bucket_upper_seconds(int i) {
  // Registry histograms record microseconds; convert the bucket edge back.
  return obs::Histogram::Snapshot::bucket_upper(i) * 1e-6;
}

double ServiceStats::latency_quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : latency) total += c;
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += latency[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_upper_seconds(i);
  }
  return bucket_upper_seconds(kLatencyBuckets - 1);
}

ServiceMetrics::ServiceMetrics(obs::MetricsRegistry* reg)
    : reg_(reg ? reg : &obs::MetricsRegistry::global()),
      prefix_(next_service_prefix()),
      requests_(reg_->counter(prefix_ + "requests")),
      cache_hits_(reg_->counter(prefix_ + "cache_hits")),
      cache_misses_(reg_->counter(prefix_ + "cache_misses")),
      rejected_(reg_->counter(prefix_ + "rejected")),
      deadline_expired_(reg_->counter(prefix_ + "deadline_expired")),
      shed_(reg_->counter(prefix_ + "shed")),
      degraded_(reg_->counter(prefix_ + "degraded")),
      retries_(reg_->counter(prefix_ + "retries")),
      fp_reused_(reg_->counter(prefix_ + "fp_reused")),
      spmv_requests_(reg_->counter(prefix_ + "spmv_requests")),
      spmm_requests_(reg_->counter(prefix_ + "spmm_requests")),
      batches_(reg_->counter(prefix_ + "batches")),
      batched_samples_(reg_->counter(prefix_ + "batched_samples")),
      swap_total_(reg_->counter(prefix_ + "swap_total")),
      model_version_(reg_->gauge(prefix_ + "model_version")),
      max_batch_(reg_->gauge(prefix_ + "max_batch")),
      cache_entries_(reg_->gauge(prefix_ + "cache_entries")),
      queue_depth_(reg_->gauge(prefix_ + "queue_depth")),
      latency_(reg_->histogram(prefix_ + "latency_us")),
      queue_wait_(reg_->histogram(prefix_ + "queue_wait_us")),
      batch_size_(reg_->histogram(prefix_ + "batch_size")),
      rep_build_(reg_->histogram(prefix_ + "rep_build_us")) {}

void ServiceMetrics::record_batch(std::size_t batch_size) {
  batches_.inc();
  batched_samples_.inc(batch_size);
  max_batch_.update_max(static_cast<double>(batch_size));
  batch_size_.observe(static_cast<double>(batch_size));
}

ServiceStats ServiceMetrics::snapshot(std::uint64_t cache_entries) const {
  cache_entries_.set(static_cast<double>(cache_entries));
  ServiceStats s;
  s.requests = requests_.value();
  s.cache_hits = cache_hits_.value();
  s.cache_misses = cache_misses_.value();
  s.rejected = rejected_.value();
  s.deadline_expired = deadline_expired_.value();
  s.shed = shed_.value();
  s.degraded = degraded_.value();
  s.retries = retries_.value();
  s.fp_reused = fp_reused_.value();
  s.spmv_requests = spmv_requests_.value();
  s.spmm_requests = spmm_requests_.value();
  s.batches = batches_.value();
  s.batched_samples = batched_samples_.value();
  s.max_batch = static_cast<std::uint64_t>(max_batch_.value());
  s.cache_entries = cache_entries;
  s.model_version = static_cast<std::uint64_t>(model_version_.value());
  s.model_swaps = swap_total_.value();
  s.latency = latency_.snapshot().buckets;
  s.rep_build = rep_build_.snapshot();
  return s;
}

}  // namespace dnnspmv
