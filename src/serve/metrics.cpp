#include "serve/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dnnspmv {

double ServiceStats::bucket_upper_seconds(int i) {
  return static_cast<double>(1ULL << (i + 1)) * 1e-6;
}

double ServiceStats::latency_quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : latency) total += c;
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += latency[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_upper_seconds(i);
  }
  return bucket_upper_seconds(kLatencyBuckets - 1);
}

void ServiceMetrics::record_batch(std::size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_samples_.fetch_add(batch_size, std::memory_order_relaxed);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < batch_size &&
         !max_batch_.compare_exchange_weak(prev, batch_size,
                                           std::memory_order_relaxed)) {
  }
}

void ServiceMetrics::record_latency(double seconds) {
  const double us = std::max(seconds, 0.0) * 1e6;
  // Bucket index = floor(log2(us)) clamped to the table.
  const auto ticks = static_cast<std::uint64_t>(us);
  const int idx =
      ticks == 0
          ? 0
          : std::min(kLatencyBuckets - 1,
                     static_cast<int>(std::bit_width(ticks)) - 1);
  latency_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
}

ServiceStats ServiceMetrics::snapshot(std::uint64_t cache_entries) const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_samples = batched_samples_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.cache_entries = cache_entries;
  for (int i = 0; i < kLatencyBuckets; ++i)
    s.latency[static_cast<std::size_t>(i)] =
        latency_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return s;
}

}  // namespace dnnspmv
