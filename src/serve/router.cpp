#include "serve/router.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "serve/fingerprint.hpp"

namespace dnnspmv {
namespace {

// Salts decorrelate ring placement and key lookup from the fingerprint
// bits the LRU shards already consume.
constexpr std::uint64_t kRingPointSalt = 0x9d2c5680ca876f1dULL;
constexpr std::uint64_t kRingLookupSalt = 0x6a09e667f3bcc909ULL;

std::string next_router_prefix() {
  static std::atomic<int> instance{0};
  return "router" + std::to_string(instance.fetch_add(1)) + ".";
}

std::future<std::int32_t> shutdown_future() {
  std::promise<std::int32_t> failed;
  failed.set_exception(std::make_exception_ptr(DnnspmvError(
      errc::service_shutdown, "ReplicaRouter is shut down; request rejected")));
  return failed.get_future();
}

}  // namespace

// ---------------------------------------------------------------- HashRing

HashRing::HashRing(int replicas, int vnodes) : replicas_(replicas) {
  DNNSPMV_CHECK_ERRC(replicas >= 1, errc::invalid_argument,
                     "HashRing needs at least one replica");
  DNNSPMV_CHECK_ERRC(vnodes >= 1, errc::invalid_argument,
                     "HashRing needs at least one vnode per replica");
  ring_.reserve(static_cast<std::size_t>(replicas) *
                static_cast<std::size_t>(vnodes));
  for (int r = 0; r < replicas; ++r) {
    const std::uint64_t seed =
        hash_combine(kRingPointSalt, static_cast<std::uint64_t>(r));
    for (int v = 0; v < vnodes; ++v)
      ring_.emplace_back(hash_combine(seed, static_cast<std::uint64_t>(v)), r);
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::position(std::uint64_t fp) const {
  const std::uint64_t h = splitmix64(fp ^ kRingLookupSalt);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t key) {
        return p.first < key;
      });
  // Clockwise successor; past the last point wraps to the first.
  return it == ring_.end() ? 0
                           : static_cast<std::size_t>(it - ring_.begin());
}

int HashRing::primary(std::uint64_t fp) const {
  return ring_[position(fp)].second;
}

int HashRing::sibling(std::uint64_t fp) const {
  const std::size_t pos = position(fp);
  const int first = ring_[pos].second;
  if (replicas_ == 1) return first;
  for (std::size_t step = 1; step < ring_.size(); ++step) {
    const int r = ring_[(pos + step) % ring_.size()].second;
    if (r != first) return r;
  }
  return first;  // unreachable with >= 2 replicas
}

// ------------------------------------------------------------- RouterStats

std::uint64_t RouterStats::total_hits() const {
  std::uint64_t n = 0;
  for (const ServiceStats& s : replica) n += s.cache_hits;
  return n;
}

std::uint64_t RouterStats::total_degraded() const {
  std::uint64_t n = 0;
  for (const ServiceStats& s : replica) n += s.degraded;
  return n;
}

std::uint64_t RouterStats::total_fp_reused() const {
  std::uint64_t n = 0;
  for (const ServiceStats& s : replica) n += s.fp_reused;
  return n;
}

double RouterStats::hit_rate() const {
  std::uint64_t hits = 0, seen = 0;
  for (const ServiceStats& s : replica) {
    hits += s.cache_hits;
    seen += s.cache_hits + s.cache_misses;
  }
  return seen == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(seen);
}

// ----------------------------------------------------------- ReplicaRouter

/// Shared state of one routed request. The promise is resolved exactly
/// once under `mu`: the first dispatch to answer wins, errors are held in
/// `first_err` until no dispatch is left AND no hedge can still be issued.
struct ReplicaRouter::HedgeState {
  std::mutex mu;
  std::promise<std::int32_t> result;
  bool resolved = false;
  int pending = 0;         // dispatches whose outcome hasn't arrived yet
  bool may_hedge = false;  // a hedge might still be issued for this request
  std::exception_ptr first_err;

  std::uint64_t fp = 0;
  SpOp op = SpOp::kSpmv;        // carried into the hedged re-dispatch
  MatrixStats st;               // for the sibling's degraded path
  std::vector<Tensor> inputs;   // retained CNN inputs for the re-dispatch
  std::int64_t start_us = 0;
  std::int64_t abs_deadline_us = -1;
  int primary = 0;
  int sibling = 0;
};

ReplicaRouter::ReplicaRouter(ModelRegistry& registry, RouterOptions opts)
    : ReplicaRouter(nullptr, &registry, std::move(opts)) {}

ReplicaRouter::ReplicaRouter(const FormatSelector& selector,
                             RouterOptions opts)
    : ReplicaRouter(
          [&selector] {
            DNNSPMV_CHECK_ERRC(selector.trained(), errc::not_trained,
                               "ReplicaRouter needs a trained FormatSelector");
            return std::make_unique<ModelRegistry>(selector.clone());
          }(),
          nullptr, std::move(opts)) {}

ReplicaRouter::ReplicaRouter(std::unique_ptr<ModelRegistry> owned,
                             ModelRegistry* registry, RouterOptions opts)
    : owned_registry_(std::move(owned)),
      registry_(registry ? *registry : *owned_registry_),
      opts_(std::move(opts)),
      ring_(opts_.replicas, opts_.vnodes),
      prefix_(next_router_prefix()),
      requests_(obs::MetricsRegistry::global().counter(prefix_ + "requests")),
      hedges_(obs::MetricsRegistry::global().counter(prefix_ + "hedge")),
      hedge_won_(obs::MetricsRegistry::global().counter(prefix_ + "hedge_won")),
      misrouted_(obs::MetricsRegistry::global().counter(prefix_ + "misrouted")),
      errors_(obs::MetricsRegistry::global().counter(prefix_ + "errors")),
      budget_gauge_(
          obs::MetricsRegistry::global().gauge(prefix_ + "hedge_budget_us")),
      cnn_wait_us_(
          obs::MetricsRegistry::global().histogram(prefix_ + "cnn_wait_us")),
      latency_us_(
          obs::MetricsRegistry::global().histogram(prefix_ + "latency_us")),
      budget_us_(opts_.hedge_fixed_us > 0 ? opts_.hedge_fixed_us
                                          : opts_.hedge_min_us) {
  DNNSPMV_CHECK_ERRC(opts_.replicas >= 1, errc::invalid_argument,
                     "need at least one replica");
  DNNSPMV_CHECK_ERRC(opts_.hedge_quantile > 0.0 && opts_.hedge_quantile <= 1.0,
                     errc::invalid_argument,
                     "hedge_quantile must be in (0, 1]");
  DNNSPMV_CHECK_ERRC(
      opts_.hedge_min_us >= 0 && opts_.hedge_max_us >= opts_.hedge_min_us,
      errc::invalid_argument, "need 0 <= hedge_min_us <= hedge_max_us");

  if (opts_.pin_workers)
    placement_ = affinity::plan_groups(affinity::detect_topology(),
                                       opts_.replicas);

  const auto n = static_cast<std::size_t>(opts_.replicas);
  services_.reserve(n);
  depth_gauges_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ServiceOptions so = opts_.service;
    if (opts_.divide_cache)
      so.cache_capacity =
          std::max<std::size_t>(64, opts_.service.cache_capacity / n);
    if (i < placement_.size()) so.pin_cpus = placement_[i].cpus;
    if (i < opts_.injectors.size() && opts_.injectors[i])
      so.injector = opts_.injectors[i];
    // Every replica subscribes to the shared registry: one publication
    // path, N independent inference lanes (each subscription adopts by
    // clone — see core/model_registry.hpp).
    services_.push_back(std::make_unique<SelectionService>(registry_, so));
    depth_gauges_.push_back(&obs::MetricsRegistry::global().gauge(
        prefix_ + "replica" + std::to_string(i) + "_depth"));
  }
  budget_gauge_.set(
      static_cast<double>(budget_us_.load(std::memory_order_relaxed)));
  hedger_ = std::thread([this] { run_hedger(); });
}

ReplicaRouter::~ReplicaRouter() { shutdown(); }

void ReplicaRouter::shutdown() {
  if (stopped_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lk(hedge_mu_);
    hedge_stop_ = true;
  }
  hedge_cv_.notify_all();
  if (hedger_.joinable()) hedger_.join();
  // Replicas drain after the timer stops: in-flight requests resolve
  // through their callbacks, no new hedge can be issued for them.
  for (auto& svc : services_) svc->shutdown();
}

void ReplicaRouter::finalize_locked(HedgeState& s) {
  if (s.resolved || s.may_hedge || s.pending != 0 || !s.first_err) return;
  s.resolved = true;
  s.result.set_exception(s.first_err);
  errors_.inc();
}

void ReplicaRouter::complete(const std::shared_ptr<HedgeState>& s,
                             std::int32_t idx, AnswerSource src,
                             std::exception_ptr err, bool from_hedge) {
  std::int64_t wait_us = -1;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    --s->pending;
    if (err) {
      // Held back: a sibling dispatch (or a hedge still to come) may yet
      // answer; the request fails only when nothing is left to try.
      if (!s->first_err) s->first_err = std::move(err);
      finalize_locked(*s);
      return;
    }
    if (s->resolved) return;  // the race's loser; first answer already out
    s->resolved = true;
    s->result.set_value(idx);
    if (from_hedge) {
      hedge_won_.inc();
      // The sibling answered from its own cache: the key was warm on a
      // replica the ring no longer routes it to.
      if (src == AnswerSource::kCache) misrouted_.inc();
    }
    if (src == AnswerSource::kCnn) wait_us = obs::now_us() - s->start_us;
  }
  if (wait_us >= 0) {
    // Only CNN-path waits feed the hedge budget: inline answers (cache,
    // degraded) resolve in microseconds and would drag the quantile to
    // the floor.
    cnn_wait_us_.observe(static_cast<double>(wait_us));
    if (waits_since_refresh_.fetch_add(1, std::memory_order_relaxed) + 1 >=
        32) {
      waits_since_refresh_.store(0, std::memory_order_relaxed);
      refresh_budget();
    }
  }
}

void ReplicaRouter::refresh_budget() {
  if (opts_.hedge_fixed_us > 0) return;
  const obs::Histogram::Snapshot snap = cnn_wait_us_.snapshot();
  if (snap.count == 0) return;
  const auto q = static_cast<std::int64_t>(snap.quantile(opts_.hedge_quantile));
  const std::int64_t b = std::clamp(q, opts_.hedge_min_us, opts_.hedge_max_us);
  budget_us_.store(b, std::memory_order_relaxed);
  budget_gauge_.set(static_cast<double>(b));
}

void ReplicaRouter::fire_hedge(const std::shared_ptr<HedgeState>& s) {
  std::vector<Tensor> inputs;
  std::optional<std::chrono::microseconds> dl;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->may_hedge = false;
    if (s->resolved) return;
    if (s->abs_deadline_us >= 0) {
      const std::int64_t rem = s->abs_deadline_us - obs::now_us();
      if (rem <= 0) {
        // Too late to hedge; if the primary already failed, resolve now.
        finalize_locked(*s);
        return;
      }
      dl = std::chrono::microseconds(rem);
    }
    inputs = std::move(s->inputs);
    ++s->pending;
  }
  hedges_.inc();
  Request hedge;
  hedge.op = s->op;
  hedge.stats = s->st;
  hedge.fingerprint = s->fp;
  hedge.inputs = std::move(inputs);
  hedge.deadline = dl;
  hedge.done = [this, s](std::int32_t idx, AnswerSource src,
                         std::exception_ptr err) {
    complete(s, idx, src, std::move(err), /*from_hedge=*/true);
  };
  services_[static_cast<std::size_t>(s->sibling)]->submit(std::move(hedge));
}

void ReplicaRouter::run_hedger() {
  std::unique_lock<std::mutex> lk(hedge_mu_);
  while (!hedge_stop_) {
    if (hedge_queue_.empty()) {
      hedge_cv_.wait(lk);
      continue;
    }
    const auto it = hedge_queue_.begin();
    const std::int64_t now = obs::now_us();
    if (now < it->first) {
      hedge_cv_.wait_for(lk, std::chrono::microseconds(it->first - now));
      continue;
    }
    const std::shared_ptr<HedgeState> s = it->second;
    hedge_queue_.erase(it);
    lk.unlock();
    fire_hedge(s);
    lk.lock();
  }
  // Shutdown: no hedge will fire for what remains. States whose every
  // dispatch already failed must resolve now (nobody else will).
  for (auto& [fire_at, s] : hedge_queue_) {
    std::lock_guard<std::mutex> slk(s->mu);
    s->may_hedge = false;
    finalize_locked(*s);
  }
  hedge_queue_.clear();
}

std::future<std::int32_t> ReplicaRouter::submit(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  return submit(a, SpOp::kSpmv, deadline);
}

std::future<std::int32_t> ReplicaRouter::submit(
    const Csr& a, SpOp op,
    std::optional<std::chrono::microseconds> deadline) {
  if (stopped_.load(std::memory_order_acquire)) return shutdown_future();
  requests_.inc();

  MatrixStats st;
  std::uint64_t fp = 0;
  {
    obs::Span span("router.fingerprint");
    st = compute_stats(a);
    fp = structural_fingerprint(st);
  }

  auto s = std::make_shared<HedgeState>();
  s->fp = fp;
  s->op = op;
  s->st = st;
  s->start_us = obs::now_us();
  s->primary = ring_.primary(fp);
  s->sibling = ring_.sibling(fp);
  if (deadline) s->abs_deadline_us = s->start_us + deadline->count();
  const bool hedgeable = opts_.hedge && ring_.replicas() > 1;
  std::future<std::int32_t> fut = s->result.get_future();
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->pending = 1;
    s->may_hedge = hedgeable;
  }

  Request primary;
  primary.matrix = &a;
  primary.op = op;
  primary.stats = st;
  primary.fingerprint = fp;
  primary.deadline = deadline;
  primary.done = [this, s](std::int32_t idx, AnswerSource src,
                           std::exception_ptr err) {
    complete(s, idx, src, std::move(err), /*from_hedge=*/false);
  };
  primary.retain_inputs = hedgeable ? &s->inputs : nullptr;
  services_[static_cast<std::size_t>(s->primary)]->submit(std::move(primary));

  if (hedgeable) {
    bool track = false;
    {
      std::lock_guard<std::mutex> lk(s->mu);
      // Only requests that actually reached the primary's queue are worth
      // hedging: inline answers (hit/degraded) are already resolved, and
      // an inline rejection left nothing to wait for.
      if (!s->resolved && !s->inputs.empty()) {
        track = true;
      } else {
        s->may_hedge = false;
        finalize_locked(*s);
      }
    }
    if (track) {
      const std::int64_t fire_at =
          obs::now_us() + budget_us_.load(std::memory_order_relaxed);
      bool registered = false;
      {
        std::lock_guard<std::mutex> lk(hedge_mu_);
        if (!hedge_stop_) {
          hedge_queue_.emplace(fire_at, s);
          registered = true;
        }
      }
      if (registered) {
        hedge_cv_.notify_one();
      } else {
        std::lock_guard<std::mutex> lk(s->mu);
        s->may_hedge = false;
        finalize_locked(*s);
      }
    }
  }
  return fut;
}

std::int32_t ReplicaRouter::predict_index(
    const Csr& a, SpOp op, std::optional<std::chrono::microseconds> deadline) {
  obs::Span span("router.predict");
  Timer timer;
  std::future<std::int32_t> fut = submit(a, op, deadline);
  const std::int32_t idx = fut.get();
  latency_us_.observe_seconds(timer.seconds());
  return idx;
}

std::int32_t ReplicaRouter::predict_index(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  return predict_index(a, SpOp::kSpmv, deadline);
}

Format ReplicaRouter::predict(
    const Csr& a, SpOp op, std::optional<std::chrono::microseconds> deadline) {
  return candidates()[static_cast<std::size_t>(
      predict_index(a, op, deadline))];
}

Format ReplicaRouter::predict(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  return predict(a, SpOp::kSpmv, deadline);
}

RouterStats ReplicaRouter::snapshot() const {
  RouterStats out;
  out.requests = requests_.value();
  out.hedges = hedges_.value();
  out.hedge_won = hedge_won_.value();
  out.misrouted = misrouted_.value();
  out.errors = errors_.value();
  out.hedge_budget_us = budget_us_.load(std::memory_order_relaxed);
  out.replica.reserve(services_.size());
  for (std::size_t i = 0; i < services_.size(); ++i) {
    out.replica.push_back(services_[i]->snapshot());
    depth_gauges_[i]->set(static_cast<double>(services_[i]->queue_depth()));
  }
  return out;
}

}  // namespace dnnspmv
