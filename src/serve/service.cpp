#include "serve/service.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "serve/affinity.hpp"
#include "serve/fingerprint.hpp"
#include "tensor/arena.hpp"

namespace dnnspmv {
namespace {

std::size_t shed_threshold_for(const ServiceOptions& opts) {
  if (opts.shed_watermark > 1.0) return SIZE_MAX;  // shedding disabled
  const auto t = static_cast<std::size_t>(
      opts.shed_watermark * static_cast<double>(opts.queue_capacity));
  return std::max<std::size_t>(1, t);
}

FallbackSelector make_fallback(const ModelRegistry& registry,
                               const ServiceOptions& opts) {
  if (!opts.fallback) return FallbackSelector(registry.candidates());
  DNNSPMV_CHECK_ERRC(opts.fallback->candidates() == registry.candidates(),
                     errc::invalid_argument,
                     "ServiceOptions::fallback was built for a different "
                     "candidate list than the model registry's");
  return *opts.fallback;
}

std::unique_ptr<ModelRegistry> make_owned_registry(
    const FormatSelector& selector) {
  DNNSPMV_CHECK_ERRC(selector.trained(), errc::not_trained,
                     "SelectionService needs a trained FormatSelector");
  return std::make_unique<ModelRegistry>(selector.clone());
}

/// Ready future carrying `idx`; also consumes `done` on the success path.
std::future<std::int32_t> ready_future(std::int32_t idx, AnswerSource src,
                                       DoneCallback& done) {
  if (done) {
    PredictRequest tmp;
    tmp.done = std::move(done);
    invoke_done(tmp, idx, src, nullptr);
  }
  std::promise<std::int32_t> ready;
  ready.set_value(idx);
  return ready.get_future();
}

}  // namespace

SelectionService::SelectionService(ModelRegistry& registry,
                                   ServiceOptions opts)
    : SelectionService(nullptr, &registry, std::move(opts)) {}

SelectionService::SelectionService(const FormatSelector& selector,
                                   ServiceOptions opts)
    : SelectionService(make_owned_registry(selector), nullptr,
                       std::move(opts)) {}

SelectionService::SelectionService(std::unique_ptr<ModelRegistry> owned,
                                   ModelRegistry* registry,
                                   ServiceOptions opts)
    : owned_registry_(std::move(owned)),
      registry_(registry ? *registry : *owned_registry_),
      subscription_(registry_),
      opts_(std::move(opts)),
      rep_builder_(registry_.current()->rep_builder()),
      fallback_(make_fallback(registry_, opts_)),
      shed_threshold_(shed_threshold_for(opts_)),
      injector_(opts_.injector ? opts_.injector : &fault::Injector::global()),
      feedback_probe_(opts_.feedback_probe),
      cache_(opts_.cache_capacity, opts_.cache_shards),
      queue_(opts_.queue_capacity),
      // Enough pooled buffer sets to cover every request that can be in
      // flight at once (queued + being batched per worker), so a loaded
      // steady state never finds the pool dry.
      rep_pool_(opts_.queue_capacity +
                static_cast<std::size_t>(std::max(opts_.num_workers, 1)) *
                    opts_.max_batch),
      batcher_(subscription_, queue_, cache_, metrics_, opts_.max_batch,
               injector_, &rep_pool_) {
  DNNSPMV_CHECK_ERRC(opts_.num_workers > 0, errc::invalid_argument,
                     "need at least one worker");
  DNNSPMV_CHECK_ERRC(opts_.shed_watermark > 0.0, errc::invalid_argument,
                     "shed_watermark must be positive (use > 1 to disable)");
  DNNSPMV_CHECK_ERRC(opts_.push_retries >= 0, errc::invalid_argument,
                     "push_retries must be non-negative");
  DNNSPMV_CHECK_ERRC(opts_.push_backoff_us >= 0, errc::invalid_argument,
                     "push_backoff_us must be non-negative");
  if (opts_.feedback && !feedback_probe_) {
    // Default probe: time this host's real kernels over the registry's
    // candidates — the same measured-label path the offline pipeline uses.
    feedback_probe_ = [formats = registry_.candidates(),
                       reps = opts_.feedback->options().measure_reps](
                          const Csr& a) {
      return measure_format_times(a, formats, reps);
    };
  }
  metrics_.record_model_version(subscription_.version());
  workers_.reserve(static_cast<std::size_t>(opts_.num_workers));
  for (int i = 0; i < opts_.num_workers; ++i)
    workers_.emplace_back([this] {
      // Best-effort: an unpinnable host just leaves the scheduler in charge.
      if (!opts_.pin_cpus.empty()) affinity::pin_current_thread(opts_.pin_cpus);
      batcher_.run();
    });
}

SelectionService::~SelectionService() { shutdown(); }

void SelectionService::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

std::future<std::int32_t> SelectionService::answer_degraded(
    const MatrixStats& st, bool by_watermark, DoneCallback done) {
  obs::Span span("serve.degraded");
  // Degraded answers are deliberately NOT cached: the fallback's pick may
  // differ from the CNN's, and a cached heuristic answer would keep being
  // served after the overload has passed. Repeats of the same matrix under
  // sustained overload re-run the fallback, which is O(#features).
  const std::int32_t idx = fallback_.predict_index(st);
  metrics_.record_degraded(by_watermark);
  return ready_future(idx, AnswerSource::kDegraded, done);
}

std::optional<std::future<std::int32_t>> SelectionService::answer_inline(
    const MatrixStats& st, std::uint64_t fp, DoneCallback& done) {
  {
    obs::Span span("serve.cache_probe");
    std::int32_t cached = 0;
    // Probes are keyed under the version the workers have adopted: after
    // a hot swap the key space moves and the old version's entries age
    // out of the LRU on their own (no clear, no stale answers).
    if (cache_.get(versioned_cache_key(fp, subscription_.version()),
                   cached)) {
      metrics_.record_hit();
      return ready_future(cached, AnswerSource::kCache, done);
    }
  }
  metrics_.record_miss();

  // Admission control: above the watermark a miss is shed to the degraded
  // path *before* the expensive representation build — under overload the
  // whole submit stays O(nnz) (the stats pass it already paid).
  if (queue_.approx_size() >= shed_threshold_)
    return answer_degraded(st, true, std::move(done));
  return std::nullopt;
}

std::future<std::int32_t> SelectionService::enqueue(
    PredictRequest&& req, const MatrixStats& st,
    std::optional<std::chrono::microseconds> deadline) {
  std::future<std::int32_t> fut = req.result.get_future();
  req.enqueued_at_us = obs::now_us();
  if (deadline) req.deadline_us = req.enqueued_at_us + deadline->count();

  std::int64_t backoff_us = opts_.push_backoff_us;
  for (int attempt = 0;; ++attempt) {
    PushResult pr;
    if (injector_->enabled() && injector_->inject(fault::Site::kQueuePush))
      pr = PushResult::kFull;  // injected transient full-queue
    else
      pr = queue_.try_push(std::move(req));
    if (pr == PushResult::kOk) {
      metrics_.record_queue_depth(queue_.approx_size());
      return fut;
    }
    if (pr == PushResult::kClosed) {
      metrics_.record_rejected();
      const auto err = std::make_exception_ptr(DnnspmvError(
          errc::service_shutdown,
          "SelectionService is shut down; request rejected"));
      invoke_done(req, -1, AnswerSource::kError, err);
      std::promise<std::int32_t> failed;
      failed.set_exception(err);
      return failed.get_future();
    }
    // Transiently full: bounded retry with doubling backoff, then shed.
    if (attempt >= opts_.push_retries) break;
    metrics_.record_retry();
    if (backoff_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us *= 2;
  }
  return answer_degraded(st, false, std::move(req.done));
}

void SelectionService::maybe_publish_feedback(
    const Csr& a, std::uint64_t fp, const std::vector<Tensor>& inputs) {
  if (!opts_.feedback || !opts_.feedback->offer()) return;
  obs::Span span("serve.feedback_probe");
  FeedbackSample s;
  s.fingerprint = fp;
  s.inputs = inputs;  // copy; the originals are about to be enqueued
  s.format_times = feedback_probe_(a);
  opts_.feedback->publish(std::move(s));
}

std::future<std::int32_t> SelectionService::submit(Request&& r) {
  MatrixStats st;
  if (r.stats) {
    st = *r.stats;
  } else {
    DNNSPMV_CHECK_ERRC(r.matrix != nullptr, errc::invalid_argument,
                       "Request needs a matrix when stats are not supplied");
    obs::Span span("serve.fingerprint");
    st = compute_stats(*r.matrix);
  }
  std::uint64_t fp;
  if (r.fingerprint) {
    fp = *r.fingerprint;
    metrics_.record_fp_reused();
  } else {
    fp = structural_fingerprint(st);
  }
  // All downstream keys (cache probe, queue entry, feedback) use the
  // op-scoped fingerprint, so the two ops never collide in the cache.
  fp = op_scoped_fingerprint(fp, r.op);
  metrics_.record_op(r.op);

  DoneCallback done = std::move(r.done);
  if (auto inline_answer = answer_inline(st, fp, done))
    return std::move(*inline_answer);

  PredictRequest req;
  req.fingerprint = fp;
  req.op = r.op;
  if (!r.inputs.empty()) {
    req.inputs = std::move(r.inputs);
  } else {
    DNNSPMV_CHECK_ERRC(r.matrix != nullptr, errc::invalid_argument,
                       "Request needs a matrix when inputs are not supplied");
    obs::Span span("serve.prepare_inputs");
    Timer timer;
    req.inputs = rep_pool_.acquire();
    rep_builder_.build_into(*r.matrix, thread_arena(), req.inputs);
    metrics_.record_rep_build(timer.seconds());
  }
  if (r.retain_inputs) *r.retain_inputs = req.inputs;  // hedge copy
  // Miss-path feedback: sampled, and only when the matrix is available to
  // probe (a hedged re-dispatch of pre-built inputs is not). SpMM misses
  // don't feed it: the probe measures SpMV times, and training the online
  // loop's SpMV head on SpMM-keyed samples would corrupt both heads.
  if (r.matrix != nullptr && r.op == SpOp::kSpmv)
    maybe_publish_feedback(*r.matrix, fp, req.inputs);
  req.done = std::move(done);
  return enqueue(std::move(req), st, r.deadline);
}

std::int32_t SelectionService::predict_index(
    const Csr& a, SpOp op, std::optional<std::chrono::microseconds> deadline) {
  obs::Span span("serve.predict");
  Timer timer;
  Request r;
  r.matrix = &a;
  r.op = op;
  r.deadline = deadline;
  std::future<std::int32_t> fut = submit(std::move(r));
  const std::int32_t idx = fut.get();
  metrics_.record_latency(timer.seconds());
  return idx;
}

std::int32_t SelectionService::predict_index(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  return predict_index(a, SpOp::kSpmv, deadline);
}

Format SelectionService::predict(
    const Csr& a, SpOp op, std::optional<std::chrono::microseconds> deadline) {
  return candidates()[static_cast<std::size_t>(
      predict_index(a, op, deadline))];
}

Format SelectionService::predict(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  return predict(a, SpOp::kSpmv, deadline);
}

ServiceStats SelectionService::snapshot() const {
  return metrics_.snapshot(cache_.size());
}

}  // namespace dnnspmv
