#include "serve/service.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "serve/fingerprint.hpp"

namespace dnnspmv {

SelectionService::SelectionService(const FormatSelector& selector,
                                   ServiceOptions opts)
    : selector_(selector),
      opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      queue_(opts.queue_capacity),
      batcher_(selector_, queue_, cache_, metrics_, opts.max_batch) {
  DNNSPMV_CHECK_ERRC(selector.trained(), errc::not_trained,
                     "SelectionService needs a trained FormatSelector");
  DNNSPMV_CHECK_ERRC(opts.num_workers > 0, errc::invalid_argument,
                     "need at least one worker");
  workers_.reserve(static_cast<std::size_t>(opts.num_workers));
  for (int i = 0; i < opts.num_workers; ++i)
    workers_.emplace_back([this] { batcher_.run(); });
}

SelectionService::~SelectionService() { shutdown(); }

void SelectionService::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

std::future<std::int32_t> SelectionService::submit(const Csr& a) {
  std::uint64_t fp = 0;
  {
    obs::Span span("serve.fingerprint");
    fp = structural_fingerprint(a);
  }

  {
    obs::Span span("serve.cache_probe");
    std::int32_t cached = 0;
    if (cache_.get(fp, cached)) {
      metrics_.record_hit();
      std::promise<std::int32_t> ready;
      ready.set_value(cached);
      return ready.get_future();
    }
  }
  metrics_.record_miss();

  PredictRequest req;
  req.fingerprint = fp;
  {
    obs::Span span("serve.prepare_inputs");
    req.inputs = selector_.prepare_inputs(a);
  }
  std::future<std::int32_t> fut = req.result.get_future();
  req.enqueued_at_us = obs::now_us();
  if (!queue_.push(std::move(req))) {
    metrics_.record_rejected();
    std::promise<std::int32_t> failed;
    failed.set_exception(std::make_exception_ptr(DnnspmvError(
        errc::service_shutdown,
        "SelectionService is shut down; request rejected")));
    return failed.get_future();
  }
  return fut;
}

std::int32_t SelectionService::predict_index(const Csr& a) {
  obs::Span span("serve.predict");
  Timer timer;
  std::future<std::int32_t> fut = submit(a);
  const std::int32_t idx = fut.get();
  metrics_.record_latency(timer.seconds());
  return idx;
}

Format SelectionService::predict(const Csr& a) {
  return candidates()[static_cast<std::size_t>(predict_index(a))];
}

ServiceStats SelectionService::snapshot() const {
  return metrics_.snapshot(cache_.size());
}

}  // namespace dnnspmv
