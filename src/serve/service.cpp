#include "serve/service.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "serve/affinity.hpp"
#include "serve/fingerprint.hpp"
#include "tensor/arena.hpp"

namespace dnnspmv {
namespace {

std::size_t shed_threshold_for(const ServiceOptions& opts) {
  if (opts.shed_watermark > 1.0) return SIZE_MAX;  // shedding disabled
  const auto t = static_cast<std::size_t>(
      opts.shed_watermark * static_cast<double>(opts.queue_capacity));
  return std::max<std::size_t>(1, t);
}

FallbackSelector make_fallback(const FormatSelector& selector,
                               const ServiceOptions& opts) {
  if (!opts.fallback) return FallbackSelector(selector.candidates());
  DNNSPMV_CHECK_ERRC(opts.fallback->candidates() == selector.candidates(),
                     errc::invalid_argument,
                     "ServiceOptions::fallback was built for a different "
                     "candidate list than the FormatSelector's");
  return *opts.fallback;
}

/// Ready future carrying `idx`; also consumes `done` on the success path.
std::future<std::int32_t> ready_future(std::int32_t idx, AnswerSource src,
                                       DoneCallback& done) {
  if (done) {
    PredictRequest tmp;
    tmp.done = std::move(done);
    invoke_done(tmp, idx, src, nullptr);
  }
  std::promise<std::int32_t> ready;
  ready.set_value(idx);
  return ready.get_future();
}

}  // namespace

SelectionService::SelectionService(const FormatSelector& selector,
                                   ServiceOptions opts)
    : selector_(selector),
      opts_(opts),
      fallback_(make_fallback(selector, opts)),
      shed_threshold_(shed_threshold_for(opts)),
      injector_(opts.injector ? opts.injector : &fault::Injector::global()),
      cache_(opts.cache_capacity, opts.cache_shards),
      queue_(opts.queue_capacity),
      // Enough pooled buffer sets to cover every request that can be in
      // flight at once (queued + being batched per worker), so a loaded
      // steady state never finds the pool dry.
      rep_pool_(opts.queue_capacity +
                static_cast<std::size_t>(std::max(opts.num_workers, 1)) *
                    opts.max_batch),
      batcher_(selector_, queue_, cache_, metrics_, opts.max_batch,
               injector_, &rep_pool_) {
  DNNSPMV_CHECK_ERRC(selector.trained(), errc::not_trained,
                     "SelectionService needs a trained FormatSelector");
  DNNSPMV_CHECK_ERRC(opts.num_workers > 0, errc::invalid_argument,
                     "need at least one worker");
  DNNSPMV_CHECK_ERRC(opts.shed_watermark > 0.0, errc::invalid_argument,
                     "shed_watermark must be positive (use > 1 to disable)");
  DNNSPMV_CHECK_ERRC(opts.push_retries >= 0, errc::invalid_argument,
                     "push_retries must be non-negative");
  DNNSPMV_CHECK_ERRC(opts.push_backoff_us >= 0, errc::invalid_argument,
                     "push_backoff_us must be non-negative");
  workers_.reserve(static_cast<std::size_t>(opts.num_workers));
  for (int i = 0; i < opts.num_workers; ++i)
    workers_.emplace_back([this] {
      // Best-effort: an unpinnable host just leaves the scheduler in charge.
      if (!opts_.pin_cpus.empty()) affinity::pin_current_thread(opts_.pin_cpus);
      batcher_.run();
    });
}

SelectionService::~SelectionService() { shutdown(); }

void SelectionService::shutdown() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

std::future<std::int32_t> SelectionService::answer_degraded(
    const MatrixStats& st, bool by_watermark, DoneCallback done) {
  obs::Span span("serve.degraded");
  // Degraded answers are deliberately NOT cached: the fallback's pick may
  // differ from the CNN's, and a cached heuristic answer would keep being
  // served after the overload has passed. Repeats of the same matrix under
  // sustained overload re-run the fallback, which is O(#features).
  const std::int32_t idx = fallback_.predict_index(st);
  metrics_.record_degraded(by_watermark);
  return ready_future(idx, AnswerSource::kDegraded, done);
}

std::optional<std::future<std::int32_t>> SelectionService::answer_inline(
    const MatrixStats& st, std::uint64_t fp, DoneCallback& done) {
  {
    obs::Span span("serve.cache_probe");
    std::int32_t cached = 0;
    if (cache_.get(fp, cached)) {
      metrics_.record_hit();
      return ready_future(cached, AnswerSource::kCache, done);
    }
  }
  metrics_.record_miss();

  // Admission control: above the watermark a miss is shed to the degraded
  // path *before* the expensive representation build — under overload the
  // whole submit stays O(nnz) (the stats pass it already paid).
  if (queue_.approx_size() >= shed_threshold_)
    return answer_degraded(st, true, std::move(done));
  return std::nullopt;
}

std::future<std::int32_t> SelectionService::enqueue(
    PredictRequest&& req, const MatrixStats& st,
    std::optional<std::chrono::microseconds> deadline) {
  std::future<std::int32_t> fut = req.result.get_future();
  req.enqueued_at_us = obs::now_us();
  if (deadline) req.deadline_us = req.enqueued_at_us + deadline->count();

  std::int64_t backoff_us = opts_.push_backoff_us;
  for (int attempt = 0;; ++attempt) {
    PushResult pr;
    if (injector_->enabled() && injector_->inject(fault::Site::kQueuePush))
      pr = PushResult::kFull;  // injected transient full-queue
    else
      pr = queue_.try_push(std::move(req));
    if (pr == PushResult::kOk) {
      metrics_.record_queue_depth(queue_.approx_size());
      return fut;
    }
    if (pr == PushResult::kClosed) {
      metrics_.record_rejected();
      const auto err = std::make_exception_ptr(DnnspmvError(
          errc::service_shutdown,
          "SelectionService is shut down; request rejected"));
      invoke_done(req, -1, AnswerSource::kError, err);
      std::promise<std::int32_t> failed;
      failed.set_exception(err);
      return failed.get_future();
    }
    // Transiently full: bounded retry with doubling backoff, then shed.
    if (attempt >= opts_.push_retries) break;
    metrics_.record_retry();
    if (backoff_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us *= 2;
  }
  return answer_degraded(st, false, std::move(req.done));
}

std::future<std::int32_t> SelectionService::submit(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  MatrixStats st;
  std::uint64_t fp = 0;
  {
    obs::Span span("serve.fingerprint");
    st = compute_stats(a);
    fp = structural_fingerprint(st);
  }
  DoneCallback done;
  if (auto inline_answer = answer_inline(st, fp, done))
    return std::move(*inline_answer);

  PredictRequest req;
  req.fingerprint = fp;
  {
    obs::Span span("serve.prepare_inputs");
    Timer timer;
    req.inputs = rep_pool_.acquire();
    selector_.rep_builder().build_into(a, thread_arena(), req.inputs);
    metrics_.record_rep_build(timer.seconds());
  }
  return enqueue(std::move(req), st, deadline);
}

std::future<std::int32_t> SelectionService::submit_fingerprinted(
    const Csr& a, const MatrixStats& st, std::uint64_t fp,
    std::optional<std::chrono::microseconds> deadline, DoneCallback done,
    std::vector<Tensor>* retain_inputs) {
  metrics_.record_fp_reused();
  if (auto inline_answer = answer_inline(st, fp, done))
    return std::move(*inline_answer);

  PredictRequest req;
  req.fingerprint = fp;
  {
    obs::Span span("serve.prepare_inputs");
    Timer timer;
    req.inputs = rep_pool_.acquire();
    selector_.rep_builder().build_into(a, thread_arena(), req.inputs);
    metrics_.record_rep_build(timer.seconds());
  }
  if (retain_inputs) *retain_inputs = req.inputs;  // hedge copy
  req.done = std::move(done);
  return enqueue(std::move(req), st, deadline);
}

std::future<std::int32_t> SelectionService::submit_prepared(
    const MatrixStats& st, std::uint64_t fp, std::vector<Tensor> inputs,
    std::optional<std::chrono::microseconds> deadline, DoneCallback done) {
  metrics_.record_fp_reused();
  if (auto inline_answer = answer_inline(st, fp, done))
    return std::move(*inline_answer);

  PredictRequest req;
  req.fingerprint = fp;
  req.inputs = std::move(inputs);
  req.done = std::move(done);
  return enqueue(std::move(req), st, deadline);
}

std::int32_t SelectionService::predict_index(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  obs::Span span("serve.predict");
  Timer timer;
  std::future<std::int32_t> fut = submit(a, deadline);
  const std::int32_t idx = fut.get();
  metrics_.record_latency(timer.seconds());
  return idx;
}

Format SelectionService::predict(
    const Csr& a, std::optional<std::chrono::microseconds> deadline) {
  return candidates()[static_cast<std::size_t>(predict_index(a, deadline))];
}

ServiceStats SelectionService::snapshot() const {
  return metrics_.snapshot(cache_.size());
}

}  // namespace dnnspmv
