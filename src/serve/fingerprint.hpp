// Structural fingerprint of a sparse matrix (src/serve cache key).
//
// Two matrices share a fingerprint iff they agree on dimensions, nnz, and
// the full MatrixStats vector (src/sparse/stats.hpp) — i.e. on everything
// the selection pipeline can see short of the exact sparsity pattern. That
// is deliberately coarser than pattern identity: matrices the CNN inputs
// cannot distinguish anyway map to the same key, so a cached prediction is
// a sound stand-in. Values are ignored (format choice is structural).
//
// Cost: one compute_stats pass, O(nnz) — orders of magnitude cheaper than
// building the CNN representations plus a forward pass.
#pragma once

#include <cstdint>

#include "common/hash.hpp"
#include "sparse/format.hpp"
#include "sparse/stats.hpp"

namespace dnnspmv {

/// Fingerprint from already-computed stats (avoids a second O(nnz) pass
/// when the caller needs the stats anyway).
std::uint64_t structural_fingerprint(const MatrixStats& s);

/// Fingerprint of `a`: hash of dims, nnz, and the stats vector.
std::uint64_t structural_fingerprint(const Csr& a);

/// Prediction-cache key for a fingerprint under one model version. Mixing
/// the version into the key makes entries self-invalidating across a
/// ModelRegistry hot swap: after a publish, probes move to the new
/// version's key space and stale predictions simply age out of the LRU —
/// no cache clear, no race with workers still caching the old version.
inline std::uint64_t versioned_cache_key(std::uint64_t fingerprint,
                                         std::uint64_t model_version) {
  return hash_combine(fingerprint, model_version);
}

/// Scopes a structural fingerprint to an operation, so one service answers
/// both ops without SpMV and SpMM predictions colliding in the cache.
/// Identity for kSpmv: the pre-SpMM key space (and every test/bench built
/// on it) is unchanged, and only the new op pays the extra mix.
inline std::uint64_t op_scoped_fingerprint(std::uint64_t fingerprint,
                                           SpOp op) {
  return op == SpOp::kSpmv
             ? fingerprint
             : hash_combine(fingerprint, static_cast<std::uint64_t>(op));
}

}  // namespace dnnspmv
