// Lock-free service metrics: atomic counters plus a fixed-bucket latency
// histogram.
//
// Writers (client threads, batch workers) touch only relaxed atomics, so
// instrumentation never serializes the hot path. snapshot() produces a
// plain ServiceStats value that is internally consistent enough for
// monitoring (counters are read independently, not under a global lock —
// the standard trade for zero-cost recording).
//
// Latency buckets are powers of two in microseconds: bucket i counts
// requests with latency in [2^i, 2^(i+1)) µs, bucket 0 additionally takes
// sub-microsecond requests and the last bucket takes everything slower.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace dnnspmv {

inline constexpr int kLatencyBuckets = 22;  // 1 µs … ~2 s, then overflow

/// Plain-value snapshot of a ServiceMetrics block.
struct ServiceStats {
  std::uint64_t requests = 0;        // predictions asked of the service
  std::uint64_t cache_hits = 0;      // answered from the LRU cache
  std::uint64_t cache_misses = 0;    // went through the batcher
  std::uint64_t rejected = 0;        // failed (queue closed / shutdown)
  std::uint64_t batches = 0;         // forward passes executed
  std::uint64_t batched_samples = 0; // requests summed over those batches
  std::uint64_t max_batch = 0;       // largest coalesced batch seen
  std::uint64_t cache_entries = 0;   // live cache entries at snapshot time
  std::array<std::uint64_t, kLatencyBuckets> latency{};  // bucket counts

  double hit_rate() const {
    const std::uint64_t seen = cache_hits + cache_misses;
    return seen == 0 ? 0.0
                     : static_cast<double>(cache_hits) /
                           static_cast<double>(seen);
  }

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_samples) /
                              static_cast<double>(batches);
  }

  /// Upper bound in seconds of bucket `i`.
  static double bucket_upper_seconds(int i);

  /// Approximate latency quantile (q in [0,1]) from the histogram: the
  /// upper edge of the bucket containing the q-th recorded request.
  double latency_quantile(double q) const;
};

class ServiceMetrics {
 public:
  void record_hit() {
    requests_.fetch_add(1, std::memory_order_relaxed);
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_miss() {
    requests_.fetch_add(1, std::memory_order_relaxed);
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }

  void record_batch(std::size_t batch_size);
  void record_latency(double seconds);

  /// `cache_entries` is supplied by the owner (the cache knows its size).
  ServiceStats snapshot(std::uint64_t cache_entries = 0) const;

 private:
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_samples_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_{};
};

}  // namespace dnnspmv
