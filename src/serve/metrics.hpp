// Service metrics as a typed view over the obs registry.
//
// Since PR 3 the counters live in obs::MetricsRegistry (by default the
// process-global one) under a per-service prefix ("serve0.", "serve1.",
// …), so one registry export shows every live service next to the nn/
// sparse instrumentation. ServiceMetrics resolves its handles once at
// construction; recording is the same relaxed-atomic cost as the old
// hand-rolled block, and snapshot() still produces the plain ServiceStats
// value the tests and benches have always consumed — now guaranteed to
// match the registry export for the same run because both read the same
// atomics.
//
// Latency buckets are powers of two in microseconds: bucket i counts
// requests with latency in [2^i, 2^(i+1)) µs, bucket 0 additionally takes
// sub-microsecond requests and the last bucket takes everything slower.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "sparse/format.hpp"

namespace dnnspmv {

inline constexpr int kLatencyBuckets = obs::kHistogramBuckets;

/// Plain-value snapshot of a ServiceMetrics block.
struct ServiceStats {
  std::uint64_t requests = 0;        // predictions asked of the service
  std::uint64_t cache_hits = 0;      // answered from the LRU cache
  std::uint64_t cache_misses = 0;    // went through the batcher
  std::uint64_t rejected = 0;        // failed (queue closed / shutdown)
  std::uint64_t deadline_expired = 0;  // expired while queued, failed at pop
  std::uint64_t shed = 0;            // misses shed by admission control
  std::uint64_t degraded = 0;        // answered by the FallbackSelector
  std::uint64_t retries = 0;         // backoff retries of full-queue pushes
  std::uint64_t fp_reused = 0;       // requests whose caller-supplied
                                     // fingerprint skipped the O(nnz) rehash
  std::uint64_t spmv_requests = 0;   // per-op split of `requests`, so a
  std::uint64_t spmm_requests = 0;   // hit-rate regression on one op is
                                     // visible instead of blended
  std::uint64_t batches = 0;         // forward passes executed
  std::uint64_t batched_samples = 0; // requests summed over those batches
  std::uint64_t max_batch = 0;       // largest coalesced batch seen
  std::uint64_t cache_entries = 0;   // live cache entries at snapshot time
  std::uint64_t model_version = 0;   // registry version the workers serve
  std::uint64_t model_swaps = 0;     // hot swaps adopted since start
  std::array<std::uint64_t, kLatencyBuckets> latency{};  // bucket counts
  // Miss-path representation-build time (the serve.prepare_inputs work),
  // microsecond buckets like `latency`. Counts one observation per
  // admitted miss that built inputs in the client thread.
  obs::Histogram::Snapshot rep_build;

  /// Fraction of requests that received a prediction (from the cache, the
  /// CNN, or the degraded path) rather than a deadline failure. Rejected
  /// requests never make it into `requests`, so they are not counted here.
  double availability() const {
    return requests == 0 ? 1.0
                         : static_cast<double>(requests - deadline_expired) /
                               static_cast<double>(requests);
  }

  double hit_rate() const {
    const std::uint64_t seen = cache_hits + cache_misses;
    return seen == 0 ? 0.0
                     : static_cast<double>(cache_hits) /
                           static_cast<double>(seen);
  }

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_samples) /
                              static_cast<double>(batches);
  }

  /// Upper bound in seconds of bucket `i`.
  static double bucket_upper_seconds(int i);

  /// Approximate latency quantile (q in [0,1]) from the histogram: the
  /// upper edge of the bucket containing the q-th recorded request.
  double latency_quantile(double q) const;
};

class ServiceMetrics {
 public:
  /// Registers this block's instruments in `reg` (null → the process
  /// global registry) under a fresh "serve<N>." prefix, so concurrent
  /// services never share counters.
  explicit ServiceMetrics(obs::MetricsRegistry* reg = nullptr);

  void record_hit() {
    requests_.inc();
    cache_hits_.inc();
  }
  void record_miss() {
    requests_.inc();
    cache_misses_.inc();
  }
  void record_rejected() { rejected_.inc(); }
  void record_deadline_expired(std::uint64_t n = 1) {
    deadline_expired_.inc(n);
  }
  /// A miss answered by the fallback; `by_watermark` marks admission-
  /// control sheds (vs. degraded answers after a full-queue retry budget).
  void record_degraded(bool by_watermark) {
    degraded_.inc();
    if (by_watermark) shed_.inc();
  }
  void record_retry() { retries_.inc(); }
  /// A submit whose stats+fingerprint arrived precomputed (router path).
  void record_fp_reused() { fp_reused_.inc(); }
  /// Which op a request asked for (recorded once per submit, hit or miss).
  void record_op(SpOp op) {
    (op == SpOp::kSpmv ? spmv_requests_ : spmm_requests_).inc();
  }
  void record_queue_depth(std::size_t depth) {
    queue_depth_.set(static_cast<double>(depth));
  }
  /// A worker adopted a newly-published model version (RCU hot swap).
  void record_model_swap(std::uint64_t new_version) {
    swap_total_.inc();
    model_version_.update_max(static_cast<double>(new_version));
  }
  /// The version the service booted on (swaps then only move it forward).
  void record_model_version(std::uint64_t version) {
    model_version_.update_max(static_cast<double>(version));
  }

  void record_batch(std::size_t batch_size);
  void record_latency(double seconds) { latency_.observe_seconds(seconds); }
  /// Time the client thread spent building CNN representations for one
  /// admitted miss (the streaming builder's build_into call).
  void record_rep_build(double seconds) {
    rep_build_.observe_seconds(seconds);
  }
  /// Time a request spent queued before a worker popped it.
  void record_queue_wait(double seconds) {
    queue_wait_.observe_seconds(seconds);
  }

  /// `cache_entries` is supplied by the owner (the cache knows its size);
  /// it is also published to the registry's `<prefix>cache_entries` gauge.
  ServiceStats snapshot(std::uint64_t cache_entries = 0) const;

  /// The registry this block reports into and its metric-name prefix —
  /// `registry().snapshot(prefix())` is the untyped view of this block.
  obs::MetricsRegistry& registry() const { return *reg_; }
  const std::string& prefix() const { return prefix_; }

 private:
  obs::MetricsRegistry* reg_;
  std::string prefix_;
  obs::Counter& requests_;
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& rejected_;
  obs::Counter& deadline_expired_;
  obs::Counter& shed_;
  obs::Counter& degraded_;
  obs::Counter& retries_;
  obs::Counter& fp_reused_;
  obs::Counter& spmv_requests_;
  obs::Counter& spmm_requests_;
  obs::Counter& batches_;
  obs::Counter& batched_samples_;
  obs::Counter& swap_total_;
  obs::Gauge& model_version_;
  obs::Gauge& max_batch_;
  obs::Gauge& cache_entries_;
  obs::Gauge& queue_depth_;
  obs::Histogram& latency_;
  obs::Histogram& queue_wait_;
  obs::Histogram& batch_size_;
  obs::Histogram& rep_build_;
};

}  // namespace dnnspmv
