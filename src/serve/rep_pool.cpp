#include "serve/rep_pool.hpp"

#include <utility>

namespace dnnspmv {

RepBufferPool::RepBufferPool(std::size_t cap) : cap_(cap) {
  pool_.reserve(cap);
}

std::vector<Tensor> RepBufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_.empty()) return {};
  std::vector<Tensor> out = std::move(pool_.back());
  pool_.pop_back();
  return out;
}

void RepBufferPool::release(std::vector<Tensor>&& bufs) {
  if (bufs.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_.size() >= cap_) return;  // at cap: let `bufs` free on return
  pool_.push_back(std::move(bufs));
}

std::size_t RepBufferPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.size();
}

}  // namespace dnnspmv
