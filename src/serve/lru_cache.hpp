// Sharded LRU prediction cache: fingerprint -> candidate-format index.
//
// Each shard is an intrusive-list LRU guarded by its own mutex; a key's
// shard is fixed by its high hash bits, so two threads touching different
// matrices rarely contend. Capacity is divided evenly across shards and
// eviction is per-shard (global recency order is approximated, which is the
// standard trade for shard-local locking).
//
// The value type is the selector's candidate index (std::int32_t), not a
// Format: a cache is only meaningful relative to one trained selector, and
// the index is what the batcher produces. Hit/miss/insert/evict counters
// are maintained internally and surfaced via stats().
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dnnspmv {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  // current size across shards

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Single-shard LRU (exposed for tests; use ShardedLruCache in services).
class LruShard {
 public:
  explicit LruShard(std::size_t capacity);

  /// True plus `out` on hit; refreshes the entry to most-recently-used.
  bool get(std::uint64_t key, std::int32_t& out);

  /// Inserts or refreshes; evicts the least-recently-used entry when full.
  void put(std::uint64_t key, std::int32_t value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CacheStats stats() const;
  void clear();

 private:
  using Entry = std::pair<std::uint64_t, std::int32_t>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0, misses_ = 0, insertions_ = 0, evictions_ = 0;
};

class ShardedLruCache {
 public:
  /// `capacity` entries total, split across `shards` (rounded up so every
  /// shard holds at least one entry).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8);

  bool get(std::uint64_t key, std::int32_t& out);
  void put(std::uint64_t key, std::int32_t value);

  std::size_t size() const;
  std::size_t num_shards() const { return shards_.size(); }
  /// Aggregated over shards.
  CacheStats stats() const;
  void clear();

 private:
  LruShard& shard_for(std::uint64_t key);

  std::vector<std::unique_ptr<LruShard>> shards_;
};

/// The cache type the selection pipeline shares (service, AdaptiveSpmv).
using PredictionCache = ShardedLruCache;

}  // namespace dnnspmv
