// ReplicaRouter — sharded, hedged serving tier above SelectionService.
//
// One SelectionService is one queue, one worker pool, one model instance
// (forward passes serialize on the selector's inference mutex) — a ceiling
// no amount of client threads moves. The router scales that out:
//
//            client thread
//            ─────────────
//            stats + fingerprint (once — replicas never rehash)
//                  │
//            consistent-hash ring  (vnodes; repeat matrices stay
//                  │                cache-warm on one replica)
//         ┌────────┴──────────┬──────────────────┐
//      replica 0           replica 1    …     replica N-1
//      registry subscriber registry subscriber   (one ModelRegistry is the
//      (adopts published   (adopts published      tier's single publication
//       versions by clone)  versions by clone)    path; hot swap per
//      own cache shard     own cache shard        replica, no restart)
//      own bounded queue   own bounded queue
//      workers pinned to   workers pinned to
//      core/NUMA group 0   core/NUMA group 1     (serve/affinity.hpp)
//
// Hedged re-dispatch: a cache miss enqueued on its primary replica is
// watched by the router's hedge timer. If it is still unresolved after a
// budget derived from the router's own CNN-wait histogram (quantile ×
// clamp, or a fixed override), the retained input copy is re-submitted to
// the key's ring sibling and the two dispatches race; the router's future
// resolves exactly once with the first answer (mutex-guarded first-wins,
// tsan-clean). Errors are held back while a sibling might still answer —
// the request fails only when every dispatch has failed. Each replica's
// own degraded path (FallbackSelector, PR 4) remains the last resort, so
// availability survives both replicas shedding.
//
// Failure semantics per request: exactly one of
//   value            — primary answer, hedge answer, or degraded answer
//   deadline_exceeded— expired on every dispatched replica
//   service_shutdown — submitted after shutdown()
//   (other)          — every dispatch failed; the first error is forwarded
//
// Observability: the router registers under a fresh "router<N>." prefix in
// the obs registry — requests/hedge/hedge_won/misrouted/errors counters,
// per-replica replica<i>_depth gauges, the hedge_budget_us gauge, and the
// cnn_wait_us/latency_us histograms — next to each replica's own
// "serve<M>." block. snapshot() is the typed view of all of it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/affinity.hpp"
#include "serve/service.hpp"

namespace dnnspmv {

/// Consistent-hash ring mapping structural fingerprints to replica ids.
/// Each replica owns `vnodes` points on the ring (splitmix64-placed); a
/// fingerprint's primary is the first point clockwise, its sibling the
/// next point owned by a *different* replica. Exposed for balance tests.
class HashRing {
 public:
  explicit HashRing(int replicas, int vnodes = 128);

  int primary(std::uint64_t fp) const;
  /// Hedge target: next distinct replica clockwise (== primary only when
  /// the ring has a single replica).
  int sibling(std::uint64_t fp) const;
  int replicas() const { return replicas_; }

 private:
  std::size_t position(std::uint64_t fp) const;

  int replicas_;
  std::vector<std::pair<std::uint64_t, int>> ring_;  // sorted by hash
};

struct RouterOptions {
  int replicas = 2;
  /// Template for every replica's service. cache_capacity is the ROUTER
  /// total: it is divided by `replicas` (floor 64) since the ring already
  /// partitions the keyspace. Set divide_cache=false to give every replica
  /// the full capacity instead.
  ServiceOptions service;
  bool divide_cache = true;

  // Hedging. The budget is hedge_quantile of the router's cnn_wait_us
  // histogram, clamped to [hedge_min_us, hedge_max_us] and refreshed every
  // few resolutions; until enough waits are observed the clamp floor
  // applies (hedge early, learn up). hedge_fixed_us > 0 bypasses the
  // quantile entirely — deterministic tests use it.
  bool hedge = true;
  double hedge_quantile = 0.95;
  std::int64_t hedge_min_us = 500;
  std::int64_t hedge_max_us = 100'000;
  std::int64_t hedge_fixed_us = 0;

  // Placement: plan one core/NUMA group per replica (serve/affinity.hpp)
  // and pin each replica's workers to its group. Best-effort.
  bool pin_workers = true;

  int vnodes = 128;  // ring points per replica

  // Per-replica fault injectors (index = replica id; null entries and
  // missing tail entries mean "use the global injector"). How a bench or
  // test scripts a straggler replica end to end.
  std::vector<fault::Injector*> injectors;
};

/// Plain-value snapshot of the router tier plus every replica underneath.
struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t hedges = 0;      // hedged re-dispatches issued
  std::uint64_t hedge_won = 0;   // races the sibling's answer won
  std::uint64_t misrouted = 0;   // hedge wins served from the sibling's
                                 // cache (the key was warm on the wrong
                                 // replica — ring-move or duplicate)
  std::uint64_t errors = 0;      // requests that failed on every dispatch
  std::int64_t hedge_budget_us = 0;  // budget in force at snapshot time
  std::vector<ServiceStats> replica;

  /// Sums over replicas (hedged requests can count on two replicas).
  std::uint64_t total_hits() const;
  std::uint64_t total_degraded() const;
  std::uint64_t total_fp_reused() const;
  double hit_rate() const;
  /// Requests that produced an answer (any source) over all submitted.
  double availability() const {
    return requests == 0 ? 1.0
                         : static_cast<double>(requests - errors) /
                               static_cast<double>(requests);
  }
};

class ReplicaRouter {
 public:
  /// All replicas subscribe to `registry` — one publication path for the
  /// whole tier. Each replica's subscription still adopts by clone, so
  /// inference lanes stay independent (see core/model_registry.hpp); a
  /// publish hot-swaps every replica at its next batch boundary. The
  /// registry must outlive the router.
  explicit ReplicaRouter(ModelRegistry& registry, RouterOptions opts = {});

  /// Legacy convenience: clones `selector` into a private owned registry
  /// (version 1). The selector may be discarded after construction.
  explicit ReplicaRouter(const FormatSelector& selector,
                         RouterOptions opts = {});
  ~ReplicaRouter();

  ReplicaRouter(const ReplicaRouter&) = delete;
  ReplicaRouter& operator=(const ReplicaRouter&) = delete;

  /// Routes by structural fingerprint; hedges per RouterOptions. The
  /// returned future resolves exactly once (see class comment). Routing
  /// uses the raw (op-agnostic) fingerprint — both ops of one matrix land
  /// on the same replica, which keeps its stats/rep work cache-warm — and
  /// each replica op-scopes its cache keys underneath.
  std::future<std::int32_t> submit(const Csr& a,
                                   std::optional<std::chrono::microseconds>
                                       deadline = std::nullopt);
  std::future<std::int32_t> submit(const Csr& a, SpOp op,
                                   std::optional<std::chrono::microseconds>
                                       deadline = std::nullopt);

  /// Blocking wrappers; end-to-end latency lands in router latency_us.
  std::int32_t predict_index(const Csr& a,
                             std::optional<std::chrono::microseconds>
                                 deadline = std::nullopt);
  Format predict(const Csr& a,
                 std::optional<std::chrono::microseconds> deadline =
                     std::nullopt);
  std::int32_t predict_index(const Csr& a, SpOp op,
                             std::optional<std::chrono::microseconds>
                                 deadline = std::nullopt);
  Format predict(const Csr& a, SpOp op,
                 std::optional<std::chrono::microseconds> deadline =
                     std::nullopt);

  /// Stops the hedge timer, then drains every replica. Idempotent; also
  /// called by the destructor. In-flight requests still resolve.
  void shutdown();

  RouterStats snapshot() const;

  std::size_t num_replicas() const { return services_.size(); }
  SelectionService& replica(std::size_t i) { return *services_[i]; }
  const HashRing& ring() const { return ring_; }
  /// The worker-placement plan (empty when pin_workers was off).
  const std::vector<affinity::CpuGroup>& placement() const {
    return placement_;
  }
  /// Hedge budget currently in force (µs).
  std::int64_t hedge_budget_us() const {
    return budget_us_.load(std::memory_order_relaxed);
  }
  const RouterOptions& options() const { return opts_; }
  const std::vector<Format>& candidates() const {
    return services_.front()->candidates();
  }

  /// The registry every replica subscribes to (the owned one for the
  /// legacy selector constructor) — publish() here to hot-swap the tier.
  ModelRegistry& registry() const { return registry_; }

 private:
  struct HedgeState;

  ReplicaRouter(std::unique_ptr<ModelRegistry> owned, ModelRegistry* registry,
                RouterOptions opts);

  /// First-wins resolution of one dispatch's outcome into the state.
  void complete(const std::shared_ptr<HedgeState>& s, std::int32_t idx,
                AnswerSource src, std::exception_ptr err, bool from_hedge);
  /// Resolves a terminally-failed state (no dispatch left, no hedge
  /// coming). Caller holds s->mu.
  void finalize_locked(HedgeState& s);
  /// Re-dispatches `s` to its ring sibling (hedge timer callback).
  void fire_hedge(const std::shared_ptr<HedgeState>& s);
  void run_hedger();
  void refresh_budget();

  std::unique_ptr<ModelRegistry> owned_registry_;  // legacy ctor only
  ModelRegistry& registry_;
  RouterOptions opts_;
  HashRing ring_;
  std::vector<affinity::CpuGroup> placement_;
  std::vector<std::unique_ptr<SelectionService>> services_;

  // Metrics (router<N>. prefix in the global obs registry).
  std::string prefix_;
  obs::Counter& requests_;
  obs::Counter& hedges_;
  obs::Counter& hedge_won_;
  obs::Counter& misrouted_;
  obs::Counter& errors_;
  obs::Gauge& budget_gauge_;
  obs::Histogram& cnn_wait_us_;
  obs::Histogram& latency_us_;
  std::vector<obs::Gauge*> depth_gauges_;

  // Adaptive hedge budget (µs), refreshed from cnn_wait_us_.
  std::atomic<std::int64_t> budget_us_;
  std::atomic<std::uint64_t> waits_since_refresh_{0};

  // Hedge timer: min-heap of (fire-at µs, state) drained by one thread.
  std::mutex hedge_mu_;
  std::condition_variable hedge_cv_;
  std::multimap<std::int64_t, std::shared_ptr<HedgeState>> hedge_queue_;
  bool hedge_stop_ = false;
  std::thread hedger_;

  std::atomic<bool> stopped_{false};
};

}  // namespace dnnspmv
