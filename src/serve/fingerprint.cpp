#include "serve/fingerprint.hpp"

#include "common/hash.hpp"

namespace dnnspmv {

std::uint64_t structural_fingerprint(const MatrixStats& s) {
  // Seed with the discrete identity fields, then fold in the full vector
  // (which repeats rows/cols/nnz — harmless, hashing is order-sensitive).
  std::uint64_t h = splitmix64(0x646e6e73706d76ULL);  // "dnnspmv"
  h = hash_combine(h, static_cast<std::uint64_t>(s.rows));
  h = hash_combine(h, static_cast<std::uint64_t>(s.cols));
  h = hash_combine(h, static_cast<std::uint64_t>(s.nnz));
  for (double v : stats_vector(s)) h = hash_combine(h, hash_double(v));
  return h;
}

std::uint64_t structural_fingerprint(const Csr& a) {
  return structural_fingerprint(compute_stats(a));
}

}  // namespace dnnspmv
