#include "serve/feedback.hpp"

#include <algorithm>
#include <utility>

#include "perf/platform.hpp"

namespace dnnspmv {
namespace {

std::string next_feedback_prefix() {
  static std::atomic<int> instance{0};
  return "feedback" + std::to_string(instance.fetch_add(1)) + ".";
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FeedbackCollector::FeedbackCollector(FeedbackOptions opts)
    : opts_(opts),
      capacity_(round_up_pow2(std::max<std::size_t>(opts.capacity, 2))),
      mask_(capacity_ - 1),
      cells_(new Cell[capacity_]),
      prefix_(next_feedback_prefix()),
      offered_(obs::MetricsRegistry::global().counter(prefix_ +
                                                      "feedback_offered")),
      sampled_(obs::MetricsRegistry::global().counter(prefix_ +
                                                      "feedback_sampled")),
      published_(obs::MetricsRegistry::global().counter(prefix_ +
                                                        "feedback_published")),
      dropped_(obs::MetricsRegistry::global().counter(prefix_ +
                                                      "feedback_dropped")),
      depth_(obs::MetricsRegistry::global().gauge(prefix_ + "feedback_depth")) {
  if (opts_.sample_every <= 0) opts_.sample_every = 1;
  for (std::size_t i = 0; i < capacity_; ++i)
    cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool FeedbackCollector::offer() {
  offered_.inc();
  const std::uint64_t n = offers_.fetch_add(1, std::memory_order_relaxed);
  const bool take = n % static_cast<std::uint64_t>(opts_.sample_every) == 0;
  if (take) sampled_.inc();
  return take;
}

bool FeedbackCollector::publish(FeedbackSample&& sample) {
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::ptrdiff_t>(seq) -
                      static_cast<std::ptrdiff_t>(pos);
    if (diff == 0) {
      // Slot free at this cursor: claim it, write, then flip seq to make
      // the value visible to the consumer.
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.value = std::move(sample);
        cell.seq.store(pos + 1, std::memory_order_release);
        published_.inc();
        depth_.set(static_cast<double>(approx_depth()));
        return true;
      }
      // CAS lost: `pos` was reloaded; retry on the new cursor.
    } else if (diff < 0) {
      // A full lap behind the dequeue cursor: ring is full. Drop, don't
      // block — the hot path never waits on the trainer.
      dropped_.inc();
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

std::size_t FeedbackCollector::drain(std::vector<FeedbackSample>& out,
                                     std::size_t max) {
  std::size_t drained = 0;
  while (drained < max) {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::ptrdiff_t>(seq) -
                      static_cast<std::ptrdiff_t>(pos + 1);
    if (diff != 0) break;  // next slot not published yet — stream is dry
    out.push_back(std::move(cell.value));
    cell.value = FeedbackSample{};  // release tensor buffers eagerly
    // Mark the slot free for the producer a lap from now.
    cell.seq.store(pos + capacity_, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    ++drained;
  }
  if (drained > 0) depth_.set(static_cast<double>(approx_depth()));
  return drained;
}

std::size_t FeedbackCollector::approx_depth() const {
  const std::size_t e = enqueue_pos_.load(std::memory_order_relaxed);
  const std::size_t d = dequeue_pos_.load(std::memory_order_relaxed);
  return e >= d ? e - d : 0;
}

std::vector<double> measure_format_times(const Csr& a,
                                         const std::vector<Format>& formats,
                                         int reps) {
  return make_measured(formats, reps)->spmv_times(a);
}

}  // namespace dnnspmv
