// Micro-batching worker: drains the request queue and answers requests
// with batched CNN inference.
//
// Each worker loops on RequestQueue::pop_batch(max_batch): whatever is
// queued when it wakes (1..max_batch requests) becomes one batched forward
// pass through FormatSelector::predict_prepared — the batched-tensor path
// the trainer already uses, not N single-sample forwards. Results go three
// ways: the waiting client (via the request's promise), the prediction
// cache (so the next identical matrix never reaches the queue), and the
// metrics block.
//
// Inference inside FormatSelector is internally serialized (see
// selector.hpp), so multiple workers are safe; extra workers overlap their
// batch-assembly and promise bookkeeping with each other's forwards.
//
// Robustness (ISSUE 5): requests whose deadline passed while queued are
// failed with errc::deadline_exceeded at dequeue rather than served, and
// the serve/fault.hpp injection sites kWorkerPop (drop) and kForward
// (delay/throw) are consulted on every batch, so the failure paths are
// exercised deterministically in tests. Every popped request's promise is
// satisfied exactly once — value, deadline error, injected error, or
// forward error — never leaked.
//
// Model adoption (ISSUE 8): workers serve off a ModelSubscription instead
// of a fixed selector. Between batches a worker runs the subscription's
// lock-free staleness probe and adopts newly published versions; *within*
// a batch the model is pinned — the worker holds the snapshot's
// shared_ptr across the forward pass, so a publish mid-batch never moves
// the model under a running inference (RCU: the old version stays alive
// until its last in-flight batch drops the reference). Cache entries are
// keyed by (fingerprint, model version), so predictions from a superseded
// version stop being served as soon as probes move to the new key space.
#pragma once

#include <memory>

#include "core/model_registry.hpp"
#include "core/selector.hpp"
#include "serve/fault.hpp"
#include "serve/lru_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/rep_pool.hpp"
#include "serve/request_queue.hpp"

namespace dnnspmv {

class Batcher {
 public:
  /// `injector` scopes fault injection (null → the process-global one), so
  /// a router can make exactly one replica's workers unhealthy. `pool`
  /// (optional) receives every served request's input buffers back for
  /// reuse — the release half of the miss path's allocation-free loop.
  Batcher(ModelSubscription& models, RequestQueue& queue,
          PredictionCache& cache, ServiceMetrics& metrics,
          std::size_t max_batch, fault::Injector* injector = nullptr,
          RepBufferPool* pool = nullptr);

  /// Worker loop; returns when the queue is closed and fully drained.
  /// Never throws: inference failures are forwarded to the waiting
  /// clients through their promises. Each run() owns one Workspace that
  /// every batch it serves reuses, so a worker thread's miss-path
  /// inference stops allocating once shapes have been seen.
  void run();

  /// Answers one popped batch on `model` (the version pinned for this
  /// batch) with the given per-worker scratch workspace.
  void serve_batch(std::vector<PredictRequest>& batch, Workspace& ws,
                   const FormatSelector& model);

  /// Convenience for deterministic tests: pins the subscription's current
  /// model for this one batch.
  void serve_batch(std::vector<PredictRequest>& batch, Workspace& ws);

 private:
  ModelSubscription& models_;
  RequestQueue& queue_;
  PredictionCache& cache_;
  ServiceMetrics& metrics_;
  std::size_t max_batch_;
  fault::Injector* injector_;
  RepBufferPool* pool_;  // may be null (no recycling)
};

}  // namespace dnnspmv
