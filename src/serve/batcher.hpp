// Micro-batching worker: drains the request queue and answers requests
// with batched CNN inference.
//
// Each worker loops on RequestQueue::pop_batch(max_batch): whatever is
// queued when it wakes (1..max_batch requests) becomes one batched forward
// pass through FormatSelector::predict_prepared — the batched-tensor path
// the trainer already uses, not N single-sample forwards. Results go three
// ways: the waiting client (via the request's promise), the prediction
// cache (so the next identical matrix never reaches the queue), and the
// metrics block.
//
// Inference inside FormatSelector is internally serialized (see
// selector.hpp), so multiple workers are safe; extra workers overlap their
// batch-assembly and promise bookkeeping with each other's forwards.
//
// Robustness (ISSUE 5): requests whose deadline passed while queued are
// failed with errc::deadline_exceeded at dequeue rather than served, and
// the serve/fault.hpp injection sites kWorkerPop (drop) and kForward
// (delay/throw) are consulted on every batch, so the failure paths are
// exercised deterministically in tests. Every popped request's promise is
// satisfied exactly once — value, deadline error, injected error, or
// forward error — never leaked.
#pragma once

#include "core/selector.hpp"
#include "serve/fault.hpp"
#include "serve/lru_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/rep_pool.hpp"
#include "serve/request_queue.hpp"

namespace dnnspmv {

class Batcher {
 public:
  /// `injector` scopes fault injection (null → the process-global one), so
  /// a router can make exactly one replica's workers unhealthy. `pool`
  /// (optional) receives every served request's input buffers back for
  /// reuse — the release half of the miss path's allocation-free loop.
  Batcher(const FormatSelector& selector, RequestQueue& queue,
          PredictionCache& cache, ServiceMetrics& metrics,
          std::size_t max_batch, fault::Injector* injector = nullptr,
          RepBufferPool* pool = nullptr);

  /// Worker loop; returns when the queue is closed and fully drained.
  /// Never throws: inference failures are forwarded to the waiting
  /// clients through their promises. Each run() owns one Workspace that
  /// every batch it serves reuses, so a worker thread's miss-path
  /// inference stops allocating once shapes have been seen.
  void run();

  /// Answers one popped batch with the given per-worker scratch workspace
  /// (exposed for deterministic tests).
  void serve_batch(std::vector<PredictRequest>& batch, Workspace& ws);

 private:
  const FormatSelector& selector_;
  RequestQueue& queue_;
  PredictionCache& cache_;
  ServiceMetrics& metrics_;
  std::size_t max_batch_;
  fault::Injector* injector_;
  RepBufferPool* pool_;  // may be null (no recycling)
};

}  // namespace dnnspmv
