// FallbackSelector — the degraded answer path of SelectionService.
//
// Under overload the service stops paying for CNN inference on new misses
// and answers from structural statistics instead (the load-shedding idea:
// a cheap ML/heuristic fallback still captures most of the format-
// selection win, and an answer now beats a better answer after the client
// timed out — cf. Stylianou & Weiland, arXiv 2303.05098, and the paper's
// own §6 argument that selection must stay cheap relative to SpMV).
//
// Two tiers share one interface:
//   * rule tier (always available) — hand rules over MatrixStats mirroring
//     the classic format folklore: dense few-diagonal structure → DIA,
//     uniform row lengths → ELL, heavy row imbalance → HYB/COO, else CSR;
//   * tree tier (optional) — a CART DecisionTree over the same 16
//     hand-crafted features as the paper's baseline (src/ml), trained via
//     train() from the labelled corpus the CNN was trained on.
//
// predict_index costs O(#features) on stats the service has already
// computed for the fingerprint, so a degraded answer does zero extra
// passes over the matrix.
#pragma once

#include <vector>

#include "ml/dtree.hpp"
#include "sparse/format.hpp"
#include "sparse/stats.hpp"

namespace dnnspmv {

struct LabeledMatrix;  // perf/labels.hpp

class FallbackSelector {
 public:
  FallbackSelector() = default;

  /// Rule-tier selector choosing among `candidates` (a service passes its
  /// FormatSelector's candidate list, so indices line up with the CNN's).
  explicit FallbackSelector(std::vector<Format> candidates);

  /// Tree-tier selector: fits a CART tree on extract_features(matrix) →
  /// label over the same labelled corpus the CNN trains on.
  static FallbackSelector train(const std::vector<LabeledMatrix>& labeled,
                                const std::vector<Format>& candidates,
                                const DTreeConfig& cfg = {});

  /// Candidate index for a matrix with statistics `s`. Never throws on a
  /// trained/constructed selector; always returns a valid index.
  std::int32_t predict_index(const MatrixStats& s) const;
  Format predict(const MatrixStats& s) const;

  bool has_tree() const { return tree_.trained(); }
  const std::vector<Format>& candidates() const { return candidates_; }

 private:
  std::int32_t rule_index(const MatrixStats& s) const;
  /// Index of `f` in candidates_, or of kCsr, or 0 — always answerable.
  std::int32_t index_or_default(Format f) const;

  std::vector<Format> candidates_;
  DecisionTree tree_;
};

}  // namespace dnnspmv
