#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "serve/fault.hpp"
#include "serve/fingerprint.hpp"

namespace dnnspmv {
namespace {

/// Fails one request's promise, tolerating an already-satisfied one (the
/// fulfil/fail race on shutdown paths must never terminate the process).
/// The completion hook (if any) fires after the promise, err in hand.
void fail_request(PredictRequest& r, const std::exception_ptr& err) {
  try {
    r.result.set_exception(err);
  } catch (const std::future_error&) {
    // promise already satisfied — nothing to deliver
  }
  invoke_done(r, -1, AnswerSource::kError, err);
}

}  // namespace

Batcher::Batcher(ModelSubscription& models, RequestQueue& queue,
                 PredictionCache& cache, ServiceMetrics& metrics,
                 std::size_t max_batch, fault::Injector* injector,
                 RepBufferPool* pool)
    : models_(models),
      queue_(queue),
      cache_(cache),
      metrics_(metrics),
      max_batch_(max_batch),
      injector_(injector ? injector : &fault::Injector::global()),
      pool_(pool) {
  DNNSPMV_CHECK(max_batch > 0);
}

void Batcher::serve_batch(std::vector<PredictRequest>& batch, Workspace& ws) {
  const std::shared_ptr<const FormatSelector> model = models_.model();
  serve_batch(batch, ws, *model);
}

void Batcher::serve_batch(std::vector<PredictRequest>& batch, Workspace& ws,
                          const FormatSelector& model) {
  if (batch.empty()) return;
  // Recycles a request's (or assembled) input buffers into the pool; a
  // moved-from / empty set is a no-op, so it is safe to offer both the
  // request and the assembled copy on error paths.
  const auto recycle = [this](std::vector<Tensor>&& bufs) {
    if (pool_) pool_->release(std::move(bufs));
  };
  // Queue wait is charged when a worker first sees the batch: the gap
  // between submit()'s enqueue stamp and now.
  const std::int64_t popped_us = obs::now_us();
  for (const PredictRequest& r : batch)
    if (r.enqueued_at_us >= 0)
      metrics_.record_queue_wait(
          static_cast<double>(popped_us - r.enqueued_at_us) * 1e-6);

  // Deadline enforcement happens here, at dequeue: a request that expired
  // while queued is failed instead of served — spending a forward pass on
  // it would only delay the still-live requests behind it. (A request can
  // still expire *during* the forward; it then gets its answer late. The
  // dequeue check bounds queue-wait, not compute.) The kWorkerPop fault
  // site drops requests the same way, with errc::fault_injected.
  fault::Injector& inj = *injector_;
  std::size_t kept = 0;
  std::uint64_t expired = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    PredictRequest& r = batch[i];
    if (r.deadline_us >= 0 && popped_us > r.deadline_us) {
      ++expired;
      fail_request(r, std::make_exception_ptr(DnnspmvError(
                          errc::deadline_exceeded,
                          "request expired in queue before a worker "
                          "could serve it")));
      recycle(std::move(r.inputs));
      continue;
    }
    if (inj.enabled() && inj.decide(fault::Site::kWorkerPop).should_drop) {
      fail_request(r, std::make_exception_ptr(DnnspmvError(
                          errc::fault_injected,
                          "injected drop at serve site 'worker_pop'")));
      recycle(std::move(r.inputs));
      continue;
    }
    if (kept != i) batch[kept] = std::move(batch[i]);
    ++kept;
  }
  if (expired > 0) metrics_.record_deadline_expired(expired);
  batch.resize(kept);
  if (batch.empty()) return;

  // A micro-batch may mix ops; each selector head gets one forward pass
  // over its contiguous group. Partitioning is stable so intra-op FIFO
  // order (and thus fulfilment order per client stream) is preserved.
  const auto mid = std::stable_partition(
      batch.begin(), batch.end(),
      [](const PredictRequest& r) { return r.op == SpOp::kSpmv; });
  const std::size_t n_spmv =
      static_cast<std::size_t>(mid - batch.begin());

  // Serves batch[lo, hi) — all the same op — with one forward pass.
  const auto serve_group = [&](std::size_t lo, std::size_t hi, SpOp op) {
    if (lo == hi) return;
    const std::size_t n = hi - lo;
    std::vector<std::vector<Tensor>> prepared;
    try {
      inj.inject(fault::Site::kForward);
      prepared.reserve(n);
      {
        obs::Span span("serve.batch_assemble");
        for (std::size_t i = lo; i < hi; ++i)
          prepared.push_back(std::move(batch[i].inputs));
      }
      std::vector<std::int32_t> picks;
      {
        obs::Span span("serve.forward");
        picks = model.predict_prepared(prepared, &ws, op);
      }
      DNNSPMV_CHECK(picks.size() == n);
      // Cache and metrics first, promises last: once a client unblocks,
      // its prediction is already cached and the batch counters already
      // reflect it (snapshot() right after predict() must see this
      // forward). Entries are keyed under the version that produced them,
      // so probes stop hitting them once the service moves to a newer
      // version. (Fingerprints arrive op-scoped from the submitter.)
      obs::Span span("serve.fulfill");
      for (std::size_t i = 0; i < n; ++i)
        cache_.put(versioned_cache_key(batch[lo + i].fingerprint,
                                       model.model_version()),
                   picks[i]);
      metrics_.record_batch(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch[lo + i].result.set_value(picks[i]);
        invoke_done(batch[lo + i], picks[i], AnswerSource::kCnn, nullptr);
      }
    } catch (...) {
      // A failed forward (real or injected) fails its whole group; each
      // waiting client gets the exception instead of a hang.
      const std::exception_ptr err = std::current_exception();
      for (std::size_t i = lo; i < hi; ++i) fail_request(batch[i], err);
    }
    // Served or failed, the input buffers are dead — recycle them. On the
    // error paths they may still live in `batch` (pre-assembly failure),
    // so offer both containers; only the non-empty ones pool.
    for (std::vector<Tensor>& bufs : prepared) recycle(std::move(bufs));
    for (std::size_t i = lo; i < hi; ++i)
      recycle(std::move(batch[i].inputs));
  };
  serve_group(0, n_spmv, SpOp::kSpmv);
  serve_group(n_spmv, batch.size(), SpOp::kSpmm);
}

void Batcher::run() {
  Workspace ws;  // per-worker scratch, reused across every served batch
  std::vector<PredictRequest> batch;
  // Per-worker model snapshot. The staleness probe between batches is one
  // relaxed atomic compare; adoption (clone of the published version) only
  // runs when a publish actually happened. Holding the shared_ptr across
  // serve_batch pins the version for the whole micro-batch.
  std::shared_ptr<const FormatSelector> model = models_.model();
  metrics_.record_model_version(model->model_version());
  while (true) {
    batch.clear();
    if (queue_.pop_batch(batch, max_batch_) == 0) return;
    metrics_.record_queue_depth(queue_.approx_size());
    if (models_.stale()) {
      model = models_.model();
      metrics_.record_model_swap(model->model_version());
    }
    serve_batch(batch, ws, *model);
  }
}

}  // namespace dnnspmv
