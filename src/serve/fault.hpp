// Fault injection for the serve layer.
//
// The robustness paths of SelectionService — deadline expiry, load
// shedding, retry-with-backoff, batch failure — only trigger when the
// system is unhealthy, which a unit test cannot arrange by asking nicely.
// This hook lets tests (and the bench_serve overload scenario) make the
// service unhealthy on purpose: each injection *site* in the serve code
// consults the process-global Injector, which can be armed to delay, drop,
// or throw there — either probabilistically (seeded, reproducible) or
// scripted ("the next N arrivals at this site fault"), which is what makes
// the degraded and timeout paths deterministically testable.
//
// The hooks are compiled in always and enabled at runtime: when no site is
// armed (the default), a call site costs one relaxed atomic load, so
// production binaries carry the hook at ~zero cost and an operator can
// exercise failure drills without a rebuild.
//
// Injected throws raise DnnspmvError(errc::fault_injected), so tests can
// tell an injected failure from a real one.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/rng.hpp"

namespace dnnspmv::fault {

/// Where in the serve request path a fault can be injected.
enum class Site : int {
  kQueuePush = 0,  // submit()'s queue push: a hit reports "queue full",
                   // which exercises the bounded-retry/backoff path
  kWorkerPop,      // a worker popped the request: a hit drops it (the
                   // batcher must still fail its promise, never leak it)
  kForward,        // the batched CNN forward: delay simulates a saturated
                   // model, throw fails the whole micro-batch
};
inline constexpr int kNumSites = 3;

const char* site_name(Site s);

/// What to inject at one site. Scripted counters (`*_next`) fire on the
/// next N arrivals and then disarm; probabilities apply to every arrival.
/// Scripted decisions are consumed before probabilistic ones.
struct Plan {
  double throw_prob = 0.0;
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  std::int64_t delay_us = 0;  // sleep length for delay hits
  std::int32_t throw_next = 0;
  std::int32_t drop_next = 0;
  std::int32_t delay_next = 0;
};

/// Outcome of consulting a site: sleep `delay_us`, then drop and/or throw.
struct Decision {
  bool should_throw = false;
  bool should_drop = false;
  std::int64_t delay_us = 0;
};

class Injector {
 public:
  /// A fresh, disarmed injector. ServiceOptions::injector lets one service
  /// consult a private instance instead of the global one — how a router
  /// bench/test turns exactly one replica into a straggler while its
  /// siblings stay healthy.
  Injector() = default;

  /// The process-global injector every serve call site consults by default.
  static Injector& global();

  /// Arms `site` with `plan` and enables the injector.
  void configure(Site site, const Plan& plan);

  /// Disarms every site and zeroes the per-site hit counts. The injector
  /// goes back to its one-atomic-load fast path.
  void reset();

  /// Reseeds the probabilistic decisions (deterministic replay).
  void seed(std::uint64_t s);

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Raw decision for `site`; consumes scripted counters. No side effects
  /// beyond the injector's own bookkeeping.
  Decision decide(Site site);

  /// Call-site helper: decides, sleeps through any injected delay, throws
  /// DnnspmvError(errc::fault_injected) on a throw hit, and returns
  /// whether the request should be dropped.
  bool inject(Site site);

  /// Faults actually delivered at `site` (scripted or probabilistic).
  std::uint64_t injected(Site site) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::array<Plan, kNumSites> plans_{};
  std::array<std::uint64_t, kNumSites> hits_{};
  Rng rng_{0xfa0175eedULL};
};

/// RAII arm/disarm for tests: resets the global injector on scope exit so
/// one test's faults never outlive it.
class ScopedFaults {
 public:
  ScopedFaults() = default;
  ScopedFaults(Site site, const Plan& plan) {
    Injector::global().configure(site, plan);
  }
  ~ScopedFaults() { Injector::global().reset(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace dnnspmv::fault
