// FeedbackCollector — bounded lock-free MPSC stream of measured outcomes.
//
// The feedback half of the online-learning loop (DESIGN.md §12): serving
// paths that actually *ran* SpMV — AdaptiveSpmv::apply's first-apply probe
// and SelectionService's sampled miss path — publish
//
//   FeedbackSample { fingerprint, CNN representation, measured per-format
//                    SpMV seconds }
//
// into a fixed-capacity ring; the OnlineTrainer (core/online.hpp) is the
// single consumer, draining samples into its replay buffer and deriving
// labels from the measured times (argmin — perf/labels.hpp).
//
// Producer-side contract, in order:
//   1. offer()   — the sampling gate. One relaxed fetch_add; returns true
//                  for every sample_every-th call. Callers skip the whole
//                  probe (conversions + timed SpMVs) when it says no, so
//                  the steady-state cost of feedback on the hot path is
//                  one atomic increment.
//   2. publish() — hands a built sample to the ring. Lock-free bounded
//                  MPSC (Vyukov-style sequence ring): full buffer means
//                  the sample is DROPPED and counted, never blocks — the
//                  serving path's latency is worth more than any one
//                  training sample.
//
// Observability (obs registry, "feedback<N>." prefix): feedback_offered /
// feedback_sampled / feedback_published / feedback_dropped counters and a
// feedback_depth gauge, so the sampling rate and backpressure are visible
// next to the serve metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sparse/csr.hpp"
#include "sparse/format.hpp"
#include "tensor/tensor.hpp"

namespace dnnspmv {

/// One measured outcome from served traffic. `inputs` is the CNN-ready
/// representation (same tensors the miss path enqueued); `format_times`
/// is seconds per candidate format, +inf where the format refused the
/// matrix — exactly the labels.hpp convention, so best_format_index()
/// applies directly.
struct FeedbackSample {
  std::uint64_t fingerprint = 0;
  std::vector<Tensor> inputs;
  std::vector<double> format_times;
};

struct FeedbackOptions {
  /// Ring capacity (rounded up to a power of two, minimum 2).
  std::size_t capacity = 1024;
  /// offer() returns true once per this many calls (1 = sample everything;
  /// <= 0 is clamped to 1).
  std::int64_t sample_every = 16;
  /// Repetitions per format for the measure_format_times probe.
  int measure_reps = 3;
};

class FeedbackCollector {
 public:
  explicit FeedbackCollector(FeedbackOptions opts = {});

  FeedbackCollector(const FeedbackCollector&) = delete;
  FeedbackCollector& operator=(const FeedbackCollector&) = delete;

  /// Sampling gate: true when the caller should measure and publish this
  /// request. Thread-safe, wait-free, one relaxed fetch_add.
  bool offer();

  /// Publishes a sample (any producer thread). Returns false — and counts
  /// a drop — when the ring is full or a slot race was lost; never blocks.
  bool publish(FeedbackSample&& sample);

  /// Drains up to `max` samples in publish order (appended to `out`).
  /// Single consumer only: at most one thread may be inside drain() at a
  /// time (the OnlineTrainer's loop). Returns the number drained.
  std::size_t drain(std::vector<FeedbackSample>& out,
                    std::size_t max = SIZE_MAX);

  /// Samples currently buffered (approximate under concurrent publish).
  std::size_t approx_depth() const;

  std::size_t capacity() const { return capacity_; }
  const FeedbackOptions& options() const { return opts_; }

  std::uint64_t published() const { return published_.value(); }
  std::uint64_t dropped() const { return dropped_.value(); }

  /// Obs prefix ("feedback<N>.") this collector's instruments live under.
  const std::string& prefix() const { return prefix_; }

 private:
  // Vyukov bounded-queue cell: `seq` encodes the slot's state relative to
  // the enqueue/dequeue cursors (== pos: free to write; == pos+1: ready to
  // read; otherwise a lap behind/ahead).
  struct Cell {
    std::atomic<std::size_t> seq{0};
    FeedbackSample value;
  };

  FeedbackOptions opts_;
  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> offers_{0};

  std::string prefix_;
  obs::Counter& offered_;
  obs::Counter& sampled_;
  obs::Counter& published_;
  obs::Counter& dropped_;
  obs::Gauge& depth_;
};

/// Times this library's real kernels on the host: seconds per format in
/// `formats` order (+inf where the format refuses `a`). The default
/// feedback probe — a thin wrapper over perf's MeasuredPlatform, so
/// feedback labels and offline measured labels share one code path.
/// Benches and tests swap in analytic platforms to script drift.
std::vector<double> measure_format_times(const Csr& a,
                                         const std::vector<Format>& formats,
                                         int reps = 3);

}  // namespace dnnspmv
