#include "serve/fault.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace dnnspmv::fault {

const char* site_name(Site s) {
  switch (s) {
    case Site::kQueuePush: return "queue_push";
    case Site::kWorkerPop: return "worker_pop";
    case Site::kForward: return "forward";
  }
  return "unknown";
}

Injector& Injector::global() {
  static Injector injector;
  return injector;
}

void Injector::configure(Site site, const Plan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[static_cast<std::size_t>(site)] = plan;
  enabled_.store(true, std::memory_order_relaxed);
}

void Injector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_ = {};
  hits_ = {};
  enabled_.store(false, std::memory_order_relaxed);
}

void Injector::seed(std::uint64_t s) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.reseed(s);
}

Decision Injector::decide(Site site) {
  Decision d;
  if (!enabled()) return d;
  std::lock_guard<std::mutex> lock(mu_);
  Plan& p = plans_[static_cast<std::size_t>(site)];
  if (p.delay_next > 0) {
    --p.delay_next;
    d.delay_us = p.delay_us;
  } else if (p.delay_prob > 0.0 && rng_.bernoulli(p.delay_prob)) {
    d.delay_us = p.delay_us;
  }
  if (p.drop_next > 0) {
    --p.drop_next;
    d.should_drop = true;
  } else if (p.drop_prob > 0.0 && rng_.bernoulli(p.drop_prob)) {
    d.should_drop = true;
  }
  if (p.throw_next > 0) {
    --p.throw_next;
    d.should_throw = true;
  } else if (p.throw_prob > 0.0 && rng_.bernoulli(p.throw_prob)) {
    d.should_throw = true;
  }
  if (d.should_throw || d.should_drop || d.delay_us > 0)
    ++hits_[static_cast<std::size_t>(site)];
  return d;
}

bool Injector::inject(Site site) {
  if (!enabled()) return false;
  const Decision d = decide(site);
  if (d.delay_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
  if (d.should_throw)
    throw DnnspmvError(errc::fault_injected,
                       std::string("injected fault at serve site '") +
                           site_name(site) + "'");
  return d.should_drop;
}

std::uint64_t Injector::injected(Site site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_[static_cast<std::size_t>(site)];
}

}  // namespace dnnspmv::fault
