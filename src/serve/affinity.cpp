#include "serve/affinity.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dnnspmv::affinity {
namespace {

/// CPUs the process is allowed to run on (taskset/cgroup mask). Empty when
/// the mask cannot be read — callers then trust sysfs alone.
std::set<int> allowed_cpus() {
  std::set<int> out;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu)
      if (CPU_ISSET(cpu, &mask)) out.insert(cpu);
  }
#endif
  return out;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    const std::string chunk = list.substr(pos, end - pos);
    pos = end + 1;
    if (chunk.empty()) continue;
    char* after = nullptr;
    const long lo = std::strtol(chunk.c_str(), &after, 10);
    if (after == chunk.c_str() || lo < 0) continue;  // malformed chunk
    long hi = lo;
    if (*after == '-') {
      const char* hi_start = after + 1;
      hi = std::strtol(hi_start, &after, 10);
      if (after == hi_start || hi < lo) continue;
    }
    for (long cpu = lo; cpu <= hi; ++cpu) cpus.push_back(static_cast<int>(cpu));
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology detect_topology() {
  const std::set<int> allowed = allowed_cpus();
  const auto usable = [&](int cpu) {
    return allowed.empty() || allowed.count(cpu) != 0;
  };

  CpuTopology topo;
#if defined(__linux__)
  // Nodes are numbered densely from 0 on every Linux we target; stop at the
  // first missing one. Memory-only nodes have an empty/absent cpulist and
  // are dropped below.
  for (int node = 0;; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) +
                    "/cpulist");
    if (!f.is_open()) break;
    std::string list;
    std::getline(f, list);
    std::vector<int> cpus;
    for (int cpu : parse_cpulist(list))
      if (usable(cpu)) cpus.push_back(cpu);
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) {
    // No NUMA sysfs (or nothing usable): one implicit node over the allowed
    // mask, falling back to hardware_concurrency, then to CPU 0.
    std::vector<int> cpus(allowed.begin(), allowed.end());
    if (cpus.empty()) {
      const unsigned n = std::max(1u, std::thread::hardware_concurrency());
      for (unsigned i = 0; i < n; ++i) cpus.push_back(static_cast<int>(i));
    }
    topo.node_cpus.push_back(std::move(cpus));
  }
  return topo;
}

std::vector<CpuGroup> plan_groups(const CpuTopology& topo, int groups) {
  std::vector<CpuGroup> out;
  if (groups <= 0 || topo.node_cpus.empty()) return out;
  const int nodes = topo.num_nodes();

  // Groups hosted by each node (round-robin keeps replicas spread across
  // sockets before two share one).
  std::vector<std::vector<int>> hosted(static_cast<std::size_t>(nodes));
  for (int g = 0; g < groups; ++g)
    hosted[static_cast<std::size_t>(g % nodes)].push_back(g);

  out.resize(static_cast<std::size_t>(groups));
  for (int node = 0; node < nodes; ++node) {
    const std::vector<int>& cpus = topo.node_cpus[static_cast<std::size_t>(node)];
    const std::vector<int>& gs = hosted[static_cast<std::size_t>(node)];
    const std::size_t c = cpus.size(), k = gs.size();
    for (std::size_t j = 0; j < k; ++j) {
      CpuGroup& grp = out[static_cast<std::size_t>(gs[j])];
      grp.node = node;
      // Contiguous slice [j*c/k, (j+1)*c/k); when the node has fewer CPUs
      // than groups the slice can be empty — share round-robin instead.
      const std::size_t lo = j * c / k, hi = (j + 1) * c / k;
      if (lo < hi)
        grp.cpus.assign(cpus.begin() + static_cast<std::ptrdiff_t>(lo),
                        cpus.begin() + static_cast<std::ptrdiff_t>(hi));
      else
        grp.cpus.push_back(cpus[j % c]);
    }
  }
  return out;
}

bool pin_current_thread(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (int cpu : cpus)
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &mask);
  if (CPU_COUNT(&mask) == 0) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  return false;
#endif
}

int current_cpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

}  // namespace dnnspmv::affinity
