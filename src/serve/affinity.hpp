// CPU/NUMA topology discovery and worker placement (serve/router tier).
//
// A ReplicaRouter runs N independent SelectionService replicas; if their
// worker pools float freely the OS migrates them across cores and NUMA
// nodes, so a replica's model weights, LRU shard, and queue keep bouncing
// between last-level caches. This helper pins each replica's workers to a
// distinct core group, preferring groups that do not straddle NUMA nodes:
//
//   detect_topology()  — reads /sys/devices/system/node/node*/cpulist and
//                        intersects it with the process's allowed-CPU mask
//                        (sched_getaffinity), so containers and taskset
//                        limits are respected. Hosts without NUMA sysfs
//                        degrade to one implicit node over all CPUs.
//   plan_groups(t, G)  — partitions the usable CPUs into G disjoint groups,
//                        round-robining groups across NUMA nodes and
//                        slicing contiguously within a node. With fewer
//                        CPUs than groups, groups share CPUs round-robin
//                        (placement degrades, never fails).
//   pin_current_thread — pthread_setaffinity_np on Linux; a no-op returning
//                        false elsewhere, so callers can treat pinning as
//                        best-effort everywhere.
//
// Everything here is best-effort by design: a failed pin leaves the thread
// where the scheduler put it, which is exactly the pre-router behaviour.
#pragma once

#include <string>
#include <vector>

namespace dnnspmv::affinity {

/// CPUs usable by this process, grouped by NUMA node.
struct CpuTopology {
  // node_cpus[i] = sorted CPU ids of the i-th usable NUMA node. Nodes with
  // no usable CPUs (memory-only nodes, fully masked nodes) are dropped.
  std::vector<std::vector<int>> node_cpus;

  int num_nodes() const { return static_cast<int>(node_cpus.size()); }
  int num_cpus() const {
    int n = 0;
    for (const auto& node : node_cpus) n += static_cast<int>(node.size());
    return n;
  }
};

/// One replica's worker placement.
struct CpuGroup {
  int node = 0;           // NUMA node the CPUs were drawn from
  std::vector<int> cpus;  // CPU ids the replica's workers pin to
};

/// Parses a sysfs cpulist string ("0-3,8,10-11") into sorted CPU ids.
/// Malformed chunks are skipped (sysfs is trusted but not load-bearing).
std::vector<int> parse_cpulist(const std::string& list);

/// The host topology as visible to this process (allowed-CPU mask applied).
/// Never returns an empty topology: with no sysfs NUMA info the result is
/// one node holding every allowed CPU (or CPU 0 as a last resort).
CpuTopology detect_topology();

/// Splits `topo` into `groups` worker placements. Groups are assigned to
/// nodes round-robin (group g → usable node g mod N) and each node's CPUs
/// are sliced contiguously across the groups it hosts; when a node has
/// fewer CPUs than groups, its groups share CPUs round-robin. Every
/// returned group is non-empty.
std::vector<CpuGroup> plan_groups(const CpuTopology& topo, int groups);

/// Pins the calling thread to `cpus`. Returns false (thread unchanged) on
/// an empty set, on non-Linux hosts, or if the kernel rejects the mask.
bool pin_current_thread(const std::vector<int>& cpus);

/// CPU the calling thread is currently running on, or -1 if unknown.
int current_cpu();

}  // namespace dnnspmv::affinity
