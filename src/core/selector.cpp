#include "core/selector.hpp"

#include <fstream>

#include <numeric>

#include "common/error.hpp"
#include "core/trainer.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"

namespace dnnspmv {

Dataset build_dataset(const std::vector<LabeledMatrix>& labeled,
                      const std::vector<Format>& candidates, RepMode mode,
                      std::int64_t rep_rows, std::int64_t rep_bins,
                      std::int64_t rep_sample_nnz) {
  const StreamingRepBuilder builder(
      {mode, rep_rows, rep_bins, rep_sample_nnz, /*use_simd=*/true});
  Dataset ds;
  ds.candidates = candidates;
  ds.samples.reserve(labeled.size());
  for (const LabeledMatrix& lm : labeled) {
    Sample s;
    s.inputs = builder.build(*lm.matrix);
    s.features = extract_features(*lm.matrix);
    s.format_times = lm.format_times;
    s.label = lm.label;
    s.gen_class = static_cast<std::int32_t>(lm.gen_class);
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

FormatSelector::FormatSelector(SelectorOptions opts)
    : opts_(std::move(opts)),
      rep_builder_({opts_.mode, opts_.rep_rows, opts_.rep_bins,
                    opts_.rep_sample_nnz, /*use_simd=*/true}) {}

CnnSpec FormatSelector::make_spec() const {
  CnnSpec spec;
  const int nsources = rep_num_sources(opts_.mode);
  for (int s = 0; s < nsources; ++s) {
    if (opts_.mode == RepMode::kHistogram)
      spec.input_hw.push_back({opts_.rep_rows, opts_.rep_bins});
    else
      spec.input_hw.push_back({opts_.rep_rows, opts_.rep_rows});
  }
  spec.num_classes = static_cast<int>(candidates_.size());
  spec.late_merge = opts_.late_merge;
  spec.seed = opts_.train.seed;
  return spec;
}

void FormatSelector::fit(const std::vector<LabeledMatrix>& labeled,
                         std::vector<Format> candidates) {
  candidates_ = std::move(candidates);
  const Dataset ds =
      build_dataset(labeled, candidates_, opts_.mode, opts_.rep_rows,
                    opts_.rep_bins, opts_.rep_sample_nnz);
  const CnnSpec spec = make_spec();
  net_ = std::make_unique<MergeNet>(build_cnn(spec));
  train_cnn(*net_, ds, num_net_inputs(spec), opts_.train);
  if (opts_.quantize) quantize(ds);
}

void FormatSelector::fit(const Dataset& train) {
  DNNSPMV_CHECK(!train.samples.empty());
  candidates_ = train.candidates;
  const CnnSpec spec = make_spec();
  net_ = std::make_unique<MergeNet>(build_cnn(spec));
  train_cnn(*net_, train, num_net_inputs(spec), opts_.train);
  if (opts_.quantize) quantize(train);
}

void FormatSelector::fit_spmm(const std::vector<LabeledMatrix>& labeled) {
  DNNSPMV_CHECK_MSG(net_, "fit_spmm before fit: the SpMV head defines the "
                          "candidate set and representation geometry");
  const Dataset ds =
      build_dataset(labeled, candidates_, opts_.mode, opts_.rep_rows,
                    opts_.rep_bins, opts_.rep_sample_nnz);
  fit_spmm(ds);
}

void FormatSelector::fit_spmm(const Dataset& train) {
  DNNSPMV_CHECK_MSG(net_, "fit_spmm before fit: the SpMV head defines the "
                          "candidate set and representation geometry");
  DNNSPMV_CHECK(!train.samples.empty());
  DNNSPMV_CHECK_MSG(train.candidates == candidates_,
                    "SpMM labels must use the SpMV head's candidate formats");
  CnnSpec spec = make_spec();
  // Decorrelate the two heads' initializations; identical seeds would give
  // identical nets whenever the label sets happen to agree.
  spec.seed = opts_.train.seed ^ 0x5b4d4dULL;  // "SpMM"-ish tag
  spmm_net_ = std::make_unique<MergeNet>(build_cnn(spec));
  train_cnn(*spmm_net_, train, num_net_inputs(spec), opts_.train);
  // Keep the both-heads-quantized-or-neither invariant: a quantized
  // selector gaining an SpMM head quantizes it on its own training slice.
  if (qws_ || opts_.quantize) quantize_spmm(train);
}

bool FormatSelector::supports(SpOp op) const {
  return op == SpOp::kSpmv ? net_ != nullptr : spmm_net_ != nullptr;
}

std::vector<std::vector<Tensor>> FormatSelector::calib_batches(
    const Dataset& calib) const {
  const int ninputs = num_net_inputs(make_spec());
  const std::int64_t cap =
      std::min<std::int64_t>(opts_.quant.max_calib_samples,
                             static_cast<std::int64_t>(calib.samples.size()));
  const std::int64_t bs = std::max(1, opts_.train.batch);
  std::vector<std::vector<Tensor>> batches;
  for (std::int64_t i = 0; i < cap; i += bs) {
    std::vector<std::int32_t> idx;
    for (std::int64_t j = i; j < std::min(cap, i + bs); ++j)
      idx.push_back(static_cast<std::int32_t>(j));
    batches.push_back(assemble_batch(calib, idx, ninputs));
  }
  return batches;
}

void FormatSelector::quantize(const Dataset& calib) {
  DNNSPMV_CHECK_MSG(net_, "quantize an untrained FormatSelector");
  DNNSPMV_CHECK_MSG(!calib.samples.empty(),
                    "quantize needs a calibration dataset");
  const std::vector<std::vector<Tensor>> batches = calib_batches(calib);
  // The calibration walk runs forwards through the shared net scratch, so
  // it takes the same lock predictions do.
  {
    std::lock_guard<std::mutex> lock(*infer_mu_);
    qws_ = std::make_unique<QuantizedWeightSet>(
        quantize_merge_net(*net_, batches, opts_.quant));
    qnet_ = std::make_unique<QuantizedMergeNet>(*net_, *qws_);
    opts_.quantize = true;
  }
  // Representations are op-independent, so the same calibration batches
  // exercise the SpMM head's activation ranges.
  if (spmm_net_) quantize_spmm(calib);
}

void FormatSelector::quantize_spmm(const Dataset& calib) {
  DNNSPMV_CHECK(spmm_net_ && !calib.samples.empty());
  const std::vector<std::vector<Tensor>> batches = calib_batches(calib);
  std::lock_guard<std::mutex> lock(*infer_mu_);
  spmm_qws_ = std::make_unique<QuantizedWeightSet>(
      quantize_merge_net(*spmm_net_, batches, opts_.quant));
  spmm_qnet_ = std::make_unique<QuantizedMergeNet>(*spmm_net_, *spmm_qws_);
}

std::vector<Tensor> FormatSelector::prepare_inputs(const Csr& a) const {
  DNNSPMV_CHECK_MSG(net_, "predict on an untrained FormatSelector");
  return rep_builder_.build(a);
}

std::vector<std::int32_t> FormatSelector::predict_prepared(
    const std::vector<std::vector<Tensor>>& prepared, Workspace* ws,
    SpOp op) const {
  DNNSPMV_CHECK_MSG(net_, "predict on an untrained FormatSelector");
  DNNSPMV_CHECK_MSG(op == SpOp::kSpmv || spmm_net_,
                    "predict(kSpmm) on a selector without an SpMM head "
                    "(fit_spmm was never called)");
  MergeNet* net = op == SpOp::kSpmv ? net_.get() : spmm_net_.get();
  QuantizedMergeNet* qnet =
      op == SpOp::kSpmv ? qnet_.get() : spmm_qnet_.get();
  if (prepared.empty()) return {};
  Dataset batch;
  batch.candidates = candidates_;
  batch.samples.reserve(prepared.size());
  for (const std::vector<Tensor>& inputs : prepared) {
    Sample s;
    s.inputs = inputs;
    batch.samples.push_back(std::move(s));
  }
  // One forward over the whole batch; the lock covers only inference, not
  // the representation work above.
  std::lock_guard<std::mutex> lock(*infer_mu_);
  if (qnet) {
    // Quantized cold-miss path: same batch assembly, int8 forward. The
    // lock still applies — the executor shares the net's fp32 pool layers
    // (mutable argmax scratch).
    std::vector<std::int32_t> idx(batch.samples.size());
    std::iota(idx.begin(), idx.end(), 0);
    const std::vector<Tensor> inputs =
        assemble_batch(batch, idx, num_net_inputs(make_spec()));
    Tensor logits;
    qnet->forward(inputs, logits);
    return argmax_rows(logits);
  }
  return predict_cnn(*net, batch, num_net_inputs(make_spec()),
                     static_cast<int>(prepared.size()), ws);
}

std::int32_t FormatSelector::predict_index(const Csr& a, SpOp op) const {
  return predict_prepared({prepare_inputs(a)}, nullptr, op)[0];
}

std::vector<std::int32_t> FormatSelector::predict_index_batch(
    const std::vector<const Csr*>& as, SpOp op) const {
  std::vector<std::vector<Tensor>> prepared;
  prepared.reserve(as.size());
  for (const Csr* a : as) {
    DNNSPMV_CHECK(a != nullptr);
    prepared.push_back(prepare_inputs(*a));
  }
  return predict_prepared(prepared, nullptr, op);
}

std::vector<Format> FormatSelector::predict_batch(const std::vector<Csr>& as,
                                                  SpOp op) const {
  std::vector<const Csr*> ptrs;
  ptrs.reserve(as.size());
  for (const Csr& a : as) ptrs.push_back(&a);
  std::vector<Format> out;
  out.reserve(as.size());
  for (std::int32_t idx : predict_index_batch(ptrs, op))
    out.push_back(candidates_[static_cast<std::size_t>(idx)]);
  return out;
}

Format FormatSelector::predict(const Csr& a, SpOp op) const {
  return candidates_[static_cast<std::size_t>(predict_index(a, op))];
}

std::int32_t FormatSelector::candidate_index(Format f) const {
  for (std::size_t i = 0; i < candidates_.size(); ++i)
    if (candidates_[i] == f) return static_cast<std::int32_t>(i);
  return -1;
}

MergeNet& FormatSelector::net() {
  DNNSPMV_CHECK(net_);
  return *net_;
}

FormatSelector FormatSelector::clone() const {
  DNNSPMV_CHECK_MSG(net_, "clone of an untrained FormatSelector");
  FormatSelector out(opts_);
  out.candidates_ = candidates_;
  // Clones carry the weight set's registry version: a ModelSubscription's
  // private copy must answer model_version() with the published number.
  out.model_version_ = model_version_;
  out.net_ = std::make_unique<MergeNet>(build_cnn(out.make_spec()));
  copy_params(const_cast<MergeNet&>(*net_).params(), out.net_->params());
  if (qws_) {
    // The weight set is pure data; the executor is rebuilt over the
    // clone's net so each lane has private int8 scratch.
    out.qws_ = std::make_unique<QuantizedWeightSet>(*qws_);
    out.qnet_ = std::make_unique<QuantizedMergeNet>(*out.net_, *out.qws_);
  }
  if (spmm_net_) {
    CnnSpec spec = out.make_spec();
    spec.seed = opts_.train.seed ^ 0x5b4d4dULL;
    out.spmm_net_ = std::make_unique<MergeNet>(build_cnn(spec));
    copy_params(const_cast<MergeNet&>(*spmm_net_).params(),
                out.spmm_net_->params());
    if (spmm_qws_) {
      out.spmm_qws_ = std::make_unique<QuantizedWeightSet>(*spmm_qws_);
      out.spmm_qnet_ =
          std::make_unique<QuantizedMergeNet>(*out.spmm_net_, *out.spmm_qws_);
    }
  }
  return out;
}

FormatSelector FormatSelector::migrate(MigrationMethod method,
                                       const Dataset& target_train,
                                       const TrainConfig& cfg) const {
  DNNSPMV_CHECK_MSG(net_, "migrate from an untrained FormatSelector");
  DNNSPMV_CHECK_MSG(target_train.candidates == candidates_,
                    "target platform must use the same candidate formats");
  FormatSelector out(opts_);
  out.opts_.train = cfg;
  out.candidates_ = candidates_;
  out.net_ = std::make_unique<MergeNet>(
      migrate_model(make_spec(), *net_, method, target_train, cfg));
  // The SpMM head rides migration as a weight copy: target_train holds
  // SpMV labels, so fine-tuning the SpMM head on it would erase what makes
  // the head different. Carrying it means a migrated/online-published
  // model still answers both ops (ModelRegistry checks op support).
  if (spmm_net_) {
    CnnSpec spec = out.make_spec();
    spec.seed = opts_.train.seed ^ 0x5b4d4dULL;
    out.spmm_net_ = std::make_unique<MergeNet>(build_cnn(spec));
    copy_params(const_cast<MergeNet&>(*spmm_net_).params(),
                out.spmm_net_->params());
  }
  // Re-quantize on the migration target: the fine-tuned weights get fresh
  // scales and the calibration distribution matches the data the migrated
  // model will serve. This is what keeps online publishes quantized —
  // OnlineTrainer migrates onto its replay dataset before every publish.
  // (quantize() covers the SpMM head too — representations are
  // op-independent, so the calibration batches are valid for both.)
  if (out.opts_.quantize) out.quantize(target_train);
  return out;
}

void FormatSelector::save(const std::string& path) const {
  DNNSPMV_CHECK_MSG(net_, "save of an untrained FormatSelector");
  std::ofstream os(path, std::ios::binary);
  DNNSPMV_CHECK_MSG(os.is_open(), "cannot open " << path << " for write");
  // Versioned weight set: the header carries the registry version the
  // weights were published as, so a reloaded model keeps its provenance.
  // v2 adds the quantize flag and the optional QuantizedWeightSet trailer;
  // v3 adds the SpMM-head flag + K and the head's params/weights trailer.
  save_weight_set_header(os, WeightSetHeader{3, model_version_});
  const auto mode = static_cast<std::int32_t>(opts_.mode);
  os.write(reinterpret_cast<const char*>(&mode), sizeof(mode));
  os.write(reinterpret_cast<const char*>(&opts_.rep_rows), sizeof(opts_.rep_rows));
  os.write(reinterpret_cast<const char*>(&opts_.rep_bins), sizeof(opts_.rep_bins));
  os.write(reinterpret_cast<const char*>(&opts_.rep_sample_nnz),
           sizeof(opts_.rep_sample_nnz));
  const std::int32_t late = opts_.late_merge ? 1 : 0;
  os.write(reinterpret_cast<const char*>(&late), sizeof(late));
  const std::int32_t quant = qws_ ? 1 : 0;
  os.write(reinterpret_cast<const char*>(&quant), sizeof(quant));
  const std::int32_t has_spmm = spmm_net_ ? 1 : 0;
  os.write(reinterpret_cast<const char*>(&has_spmm), sizeof(has_spmm));
  os.write(reinterpret_cast<const char*>(&opts_.spmm_cols),
           sizeof(opts_.spmm_cols));
  const auto ncand = static_cast<std::int32_t>(candidates_.size());
  os.write(reinterpret_cast<const char*>(&ncand), sizeof(ncand));
  for (Format f : candidates_) {
    const auto fi = static_cast<std::int32_t>(f);
    os.write(reinterpret_cast<const char*>(&fi), sizeof(fi));
  }
  save_params(os, const_cast<MergeNet&>(*net_).params());
  if (qws_) qws_->save(os);
  if (spmm_net_) {
    save_params(os, const_cast<MergeNet&>(*spmm_net_).params());
    if (spmm_qws_) spmm_qws_->save(os);
  }
}

FormatSelector FormatSelector::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DNNSPMV_CHECK_MSG(is.is_open(), "cannot open " << path);
  SelectorOptions opts;
  // Pre-versioning files start directly with the mode field; the header
  // probe rewinds on them and the model loads with version 0 (unpublished).
  WeightSetHeader header;
  read_weight_set_header(is, header);
  std::int32_t mode = 0, late = 0, ncand = 0;
  is.read(reinterpret_cast<char*>(&mode), sizeof(mode));
  is.read(reinterpret_cast<char*>(&opts.rep_rows), sizeof(opts.rep_rows));
  is.read(reinterpret_cast<char*>(&opts.rep_bins), sizeof(opts.rep_bins));
  is.read(reinterpret_cast<char*>(&opts.rep_sample_nnz),
          sizeof(opts.rep_sample_nnz));
  is.read(reinterpret_cast<char*>(&late), sizeof(late));
  std::int32_t quant = 0;
  // The quantize flag exists from format v2 on; v1 and legacy pre-header
  // files are always fp32.
  if (header.format_version >= 2)
    is.read(reinterpret_cast<char*>(&quant), sizeof(quant));
  std::int32_t has_spmm = 0;
  // The SpMM head exists from format v3 on; earlier files are SpMV-only.
  if (header.format_version >= 3) {
    is.read(reinterpret_cast<char*>(&has_spmm), sizeof(has_spmm));
    is.read(reinterpret_cast<char*>(&opts.spmm_cols),
            sizeof(opts.spmm_cols));
  }
  is.read(reinterpret_cast<char*>(&ncand), sizeof(ncand));
  DNNSPMV_CHECK_MSG(is.good() && ncand >= 2, "corrupt selector file");
  opts.mode = static_cast<RepMode>(mode);
  opts.late_merge = late != 0;
  opts.quantize = quant != 0;
  FormatSelector sel(opts);
  for (std::int32_t i = 0; i < ncand; ++i) {
    std::int32_t fi = 0;
    is.read(reinterpret_cast<char*>(&fi), sizeof(fi));
    sel.candidates_.push_back(static_cast<Format>(fi));
  }
  sel.model_version_ = header.model_version;
  sel.net_ = std::make_unique<MergeNet>(build_cnn(sel.make_spec()));
  load_params(is, sel.net_->params());
  if (quant != 0) {
    // The executor constructor validates the weight set against the
    // freshly built net (layer kinds + shapes) and throws errc::data_error
    // when the file does not match this architecture.
    sel.qws_ = std::make_unique<QuantizedWeightSet>(
        QuantizedWeightSet::load(is));
    sel.qnet_ = std::make_unique<QuantizedMergeNet>(*sel.net_, *sel.qws_);
  }
  if (has_spmm != 0) {
    CnnSpec spec = sel.make_spec();
    spec.seed = sel.opts_.train.seed ^ 0x5b4d4dULL;
    sel.spmm_net_ = std::make_unique<MergeNet>(build_cnn(spec));
    load_params(is, sel.spmm_net_->params());
    if (quant != 0) {
      sel.spmm_qws_ = std::make_unique<QuantizedWeightSet>(
          QuantizedWeightSet::load(is));
      sel.spmm_qnet_ =
          std::make_unique<QuantizedMergeNet>(*sel.spmm_net_, *sel.spmm_qws_);
    }
  }
  return sel;
}

}  // namespace dnnspmv
