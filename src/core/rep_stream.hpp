// Streaming sampled representation builder — the allocation-free miss path.
//
// make_inputs (core/represent.hpp) materializes the paper's fixed-size CNN
// representations with one full O(nnz) pass *per source tensor* plus fresh
// Tensor allocations per request. That is the admission-time cost the serve
// tier pays on every cache miss. StreamingRepBuilder replaces it with:
//
//  * one single streaming pass that fills every source tensor of the mode
//    at once (row + column histograms share the pass; binary + density
//    share the pass);
//  * bounded-sample streaming: above `sample_nnz` nonzeros, the pass walks
//    a deterministic strided subset of chunks (kRepSampleChunk consecutive
//    nonzeros per sampled chunk, chunk stride chosen so ~sample_nnz
//    elements are touched) and rescales counts by nnz/sampled — so the
//    build is O(sample + rows) instead of O(nnz). The chunk phase is
//    seeded from the matrix's structural identity (rows, cols, nnz — the
//    same fields the serve-tier structural fingerprint anchors on), so the
//    same matrix always samples the same nonzeros: train-time and
//    serve-time representations are bit-identical, and repeated requests
//    are deterministic.
//  * SIMD histogram binning (AVX2 behind the DNNSPMV_SIMD build switch,
//    SSE2 on any x86-64, scalar elsewhere): distances and bin candidates
//    for a whole lane-width of nonzeros at a time, with an exact integer
//    correction step so SIMD, scalar, and the exact builders agree
//    bitwise.
//  * arena-backed buffers: build_into() accumulates raw counts in
//    TensorArena slots and writes outputs into caller-owned tensors via
//    ensure2(), so steady-state builds perform zero heap allocation.
//
// Exactness contract: with sampling disabled — sample_nnz <= 0, or
// nnz <= sample_nnz — the output is bitwise identical to
// make_inputs(a, mode, rep_rows, rep_bins). The exact builder stays the
// reference oracle (tests/test_rep_stream.cpp holds the two together).
#pragma once

#include <cstdint>
#include <vector>

#include "core/represent.hpp"
#include "sparse/csr.hpp"
#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

namespace dnnspmv {

/// Nonzeros examined per sampled chunk. Chunks keep the sampled elements
/// in cache-friendly SIMD-friendly runs instead of scattering single
/// strided picks.
inline constexpr std::int64_t kRepSampleChunk = 32;

/// Default sampling budget: matrices up to this many nonzeros are built
/// exactly; larger ones are estimated from ~this many sampled nonzeros.
inline constexpr std::int64_t kDefaultRepSampleNnz = 1 << 15;

/// Deterministic per-matrix sampling seed, derived from the structural
/// identity fields (rows, cols, nnz) that also anchor the serve tier's
/// structural fingerprint. O(1), so the builder never needs a stats pass.
std::uint64_t rep_sample_seed(std::int64_t rows, std::int64_t cols,
                              std::int64_t nnz);

struct RepStreamOptions {
  RepMode mode = RepMode::kHistogram;
  std::int64_t rep_rows = 32;  // rows of the representation
  std::int64_t rep_bins = 16;  // histogram bins (ignored for binary/density)
  // Sampling budget: <= 0 disables sampling (always exact, still single
  // pass + arena-backed).
  std::int64_t sample_nnz = kDefaultRepSampleNnz;
  // Runtime switch for the vectorized binning kernel (compile-time ISA
  // still decides what "vectorized" means). Off forces the scalar kernel —
  // benches and the SIMD-vs-scalar equality test flip this.
  bool use_simd = true;
};

class StreamingRepBuilder {
 public:
  explicit StreamingRepBuilder(RepStreamOptions opts);

  const RepStreamOptions& options() const { return opts_; }

  /// True when a matrix with `nnz` nonzeros would be sampled rather than
  /// walked exactly.
  bool will_sample(std::int64_t nnz) const {
    return opts_.sample_nnz > 0 && nnz > opts_.sample_nnz;
  }

  /// Builds all source tensors of the mode into `out` (resized to
  /// rep_num_sources(mode); each tensor ensure2()d and fully overwritten).
  /// Raw count accumulation uses arena slots keyed by this builder, so a
  /// warm (arena, out) pair makes the whole call allocation-free. NOT
  /// thread-safe through a shared arena — use one arena per thread
  /// (thread_arena()).
  void build_into(const Csr& a, TensorArena& arena,
                  std::vector<Tensor>& out) const;

  /// Allocating convenience wrapper over build_into (scratch from the
  /// calling thread's arena): what FormatSelector::prepare_inputs uses.
  std::vector<Tensor> build(const Csr& a) const;

 private:
  RepStreamOptions opts_;
};

}  // namespace dnnspmv
