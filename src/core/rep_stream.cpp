#include "core/rep_stream.hpp"

#include <algorithm>
#include <cmath>

#if defined(DNNSPMV_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#define DNNSPMV_REP_AVX2 1
#elif defined(__SSE2__)
#include <emmintrin.h>
#define DNNSPMV_REP_SSE2 1
#endif

#include "common/error.hpp"
#include "common/hash.hpp"

namespace dnnspmv {
namespace {

// Exact floor(num / den) from a float-derived candidate. The vector kernel
// computes bin/cell candidates with a float multiply, which can land one
// off the true integer quotient near bin boundaries; the two nudge loops
// repair any bounded error, so SIMD and scalar paths agree bitwise with
// the integer division the exact builders use. num and den fit comfortably
// in int64 (num <= bins * 2^31 or s * 2^31).
inline std::int64_t fix_div(std::int64_t q, std::int64_t num,
                            std::int64_t den) {
  while ((q + 1) * den <= num) ++q;
  while (q > 0 && q * den > num) --q;
  return q;
}

// Everything a per-run kernel needs, resolved once per build.
struct RunCtx {
  std::int64_t s = 0;        // representation rows (and cols for binary)
  std::int64_t bins = 0;     // histogram bins
  std::int64_t rows = 0;     // source matrix rows
  std::int64_t cols = 0;     // source matrix cols
  std::int64_t max_dim = 0;  // max(rows, cols) — histogram distance scale
  float bin_scale = 0.0f;    // (float)bins / max_dim   (candidate bins)
  float cell_scale = 0.0f;   // (float)s / cols         (candidate col cells)
  Tensor* t0 = nullptr;      // binary image | raw row histogram
  Tensor* t1 = nullptr;      // density image | raw col histogram (or null)
};

// ---- histogram mode: one run fills BOTH row and column histograms ------

inline void run_hist_scalar(const RunCtx& cx, std::int64_t row,
                            const index_t* cols, std::int64_t len) {
  const std::int64_t hr = rep_cell_of(row, cx.rows, cx.s);
  float* rrow = cx.t0->data() + hr * cx.bins;
  float* cbase = cx.t1->data();
  for (std::int64_t k = 0; k < len; ++k) {
    const std::int64_t col = cols[k];
    const std::int64_t dist = col >= row ? col - row : row - col;
    const std::int64_t bin =
        std::min<std::int64_t>(cx.bins - 1, cx.bins * dist / cx.max_dim);
    const std::int64_t hc = rep_cell_of(col, cx.cols, cx.s);
    rrow[bin] += 1.0f;
    cbase[hc * cx.bins + bin] += 1.0f;
  }
}

// ---- binary (+ density) mode -------------------------------------------

inline void run_bd_scalar(const RunCtx& cx, std::int64_t row,
                          const index_t* cols, std::int64_t len) {
  const std::int64_t cr = rep_cell_of(row, cx.rows, cx.s);
  float* brow = cx.t0->data() + cr * cx.s;
  float* drow = cx.t1 ? cx.t1->data() + cr * cx.s : nullptr;
  for (std::int64_t k = 0; k < len; ++k) {
    const std::int64_t cc = rep_cell_of(cols[k], cx.cols, cx.s);
    brow[cc] = 1.0f;
    if (drow) drow[cc] += 1.0f;
  }
}

#if defined(DNNSPMV_REP_AVX2)

// 8 lanes: |col - row|, float bin/cell candidates, truncate — then a
// scalar pass corrects each candidate to the exact integer quotient and
// performs the (inherently scatter-shaped) histogram increments.
inline void run_hist_simd(const RunCtx& cx, std::int64_t row,
                          const index_t* cols, std::int64_t len) {
  const std::int64_t hr = rep_cell_of(row, cx.rows, cx.s);
  float* rrow = cx.t0->data() + hr * cx.bins;
  float* cbase = cx.t1->data();
  const __m256i vrow = _mm256_set1_epi32(static_cast<int>(row));
  const __m256 vbs = _mm256_set1_ps(cx.bin_scale);
  const __m256 vcs = _mm256_set1_ps(cx.cell_scale);
  alignas(32) std::int32_t dist[8], bin[8], cell[8], colv[8];
  std::int64_t k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m256i vcol =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + k));
    const __m256i vdist = _mm256_abs_epi32(_mm256_sub_epi32(vcol, vrow));
    const __m256i vbin =
        _mm256_cvttps_epi32(_mm256_mul_ps(_mm256_cvtepi32_ps(vdist), vbs));
    const __m256i vcell =
        _mm256_cvttps_epi32(_mm256_mul_ps(_mm256_cvtepi32_ps(vcol), vcs));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dist), vdist);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bin), vbin);
    _mm256_store_si256(reinterpret_cast<__m256i*>(cell), vcell);
    _mm256_store_si256(reinterpret_cast<__m256i*>(colv), vcol);
    for (int l = 0; l < 8; ++l) {
      const std::int64_t b = std::min<std::int64_t>(
          cx.bins - 1,
          fix_div(bin[l], cx.bins * static_cast<std::int64_t>(dist[l]),
                  cx.max_dim));
      const std::int64_t hc = std::min<std::int64_t>(
          cx.s - 1,
          fix_div(cell[l], static_cast<std::int64_t>(colv[l]) * cx.s,
                  cx.cols));
      rrow[b] += 1.0f;
      cbase[hc * cx.bins + b] += 1.0f;
    }
  }
  if (k < len) run_hist_scalar(cx, row, cols + k, len - k);
}

inline void run_bd_simd(const RunCtx& cx, std::int64_t row,
                        const index_t* cols, std::int64_t len) {
  const std::int64_t cr = rep_cell_of(row, cx.rows, cx.s);
  float* brow = cx.t0->data() + cr * cx.s;
  float* drow = cx.t1 ? cx.t1->data() + cr * cx.s : nullptr;
  const __m256 vcs = _mm256_set1_ps(cx.cell_scale);
  alignas(32) std::int32_t cell[8], colv[8];
  std::int64_t k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m256i vcol =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + k));
    const __m256i vcell =
        _mm256_cvttps_epi32(_mm256_mul_ps(_mm256_cvtepi32_ps(vcol), vcs));
    _mm256_store_si256(reinterpret_cast<__m256i*>(cell), vcell);
    _mm256_store_si256(reinterpret_cast<__m256i*>(colv), vcol);
    for (int l = 0; l < 8; ++l) {
      const std::int64_t cc = std::min<std::int64_t>(
          cx.s - 1,
          fix_div(cell[l], static_cast<std::int64_t>(colv[l]) * cx.s,
                  cx.cols));
      brow[cc] = 1.0f;
      if (drow) drow[cc] += 1.0f;
    }
  }
  if (k < len) run_bd_scalar(cx, row, cols + k, len - k);
}

#elif defined(DNNSPMV_REP_SSE2)

// 4 lanes, SSE2 only (no abs/ cvttps on epi32 gaps matter: abs via the
// sign-mask trick). Same correct-then-scatter structure as the AVX2 path.
inline __m128i sse2_abs_epi32(__m128i x) {
  const __m128i sign = _mm_srai_epi32(x, 31);
  return _mm_sub_epi32(_mm_xor_si128(x, sign), sign);
}

inline void run_hist_simd(const RunCtx& cx, std::int64_t row,
                          const index_t* cols, std::int64_t len) {
  const std::int64_t hr = rep_cell_of(row, cx.rows, cx.s);
  float* rrow = cx.t0->data() + hr * cx.bins;
  float* cbase = cx.t1->data();
  const __m128i vrow = _mm_set1_epi32(static_cast<int>(row));
  const __m128 vbs = _mm_set1_ps(cx.bin_scale);
  const __m128 vcs = _mm_set1_ps(cx.cell_scale);
  alignas(16) std::int32_t dist[4], bin[4], cell[4], colv[4];
  std::int64_t k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m128i vcol =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + k));
    const __m128i vdist = sse2_abs_epi32(_mm_sub_epi32(vcol, vrow));
    const __m128i vbin =
        _mm_cvttps_epi32(_mm_mul_ps(_mm_cvtepi32_ps(vdist), vbs));
    const __m128i vcell =
        _mm_cvttps_epi32(_mm_mul_ps(_mm_cvtepi32_ps(vcol), vcs));
    _mm_store_si128(reinterpret_cast<__m128i*>(dist), vdist);
    _mm_store_si128(reinterpret_cast<__m128i*>(bin), vbin);
    _mm_store_si128(reinterpret_cast<__m128i*>(cell), vcell);
    _mm_store_si128(reinterpret_cast<__m128i*>(colv), vcol);
    for (int l = 0; l < 4; ++l) {
      const std::int64_t b = std::min<std::int64_t>(
          cx.bins - 1,
          fix_div(bin[l], cx.bins * static_cast<std::int64_t>(dist[l]),
                  cx.max_dim));
      const std::int64_t hc = std::min<std::int64_t>(
          cx.s - 1,
          fix_div(cell[l], static_cast<std::int64_t>(colv[l]) * cx.s,
                  cx.cols));
      rrow[b] += 1.0f;
      cbase[hc * cx.bins + b] += 1.0f;
    }
  }
  if (k < len) run_hist_scalar(cx, row, cols + k, len - k);
}

inline void run_bd_simd(const RunCtx& cx, std::int64_t row,
                        const index_t* cols, std::int64_t len) {
  const std::int64_t cr = rep_cell_of(row, cx.rows, cx.s);
  float* brow = cx.t0->data() + cr * cx.s;
  float* drow = cx.t1 ? cx.t1->data() + cr * cx.s : nullptr;
  const __m128 vcs = _mm_set1_ps(cx.cell_scale);
  alignas(16) std::int32_t cell[4], colv[4];
  std::int64_t k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m128i vcol =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + k));
    const __m128i vcell =
        _mm_cvttps_epi32(_mm_mul_ps(_mm_cvtepi32_ps(vcol), vcs));
    _mm_store_si128(reinterpret_cast<__m128i*>(cell), vcell);
    _mm_store_si128(reinterpret_cast<__m128i*>(colv), vcol);
    for (int l = 0; l < 4; ++l) {
      const std::int64_t cc = std::min<std::int64_t>(
          cx.s - 1,
          fix_div(cell[l], static_cast<std::int64_t>(colv[l]) * cx.s,
                  cx.cols));
      brow[cc] = 1.0f;
      if (drow) drow[cc] += 1.0f;
    }
  }
  if (k < len) run_bd_scalar(cx, row, cols + k, len - k);
}

#endif  // DNNSPMV_REP_AVX2 / DNNSPMV_REP_SSE2

inline void process_run(const RunCtx& cx, bool hist, bool simd,
                        std::int64_t row, const index_t* cols,
                        std::int64_t len) {
  if (len <= 0) return;
#if defined(DNNSPMV_REP_AVX2) || defined(DNNSPMV_REP_SSE2)
  if (simd) {
    if (hist)
      run_hist_simd(cx, row, cols, len);
    else
      run_bd_simd(cx, row, cols, len);
    return;
  }
#else
  (void)simd;
#endif
  if (hist)
    run_hist_scalar(cx, row, cols, len);
  else
    run_bd_scalar(cx, row, cols, len);
}

}  // namespace

std::uint64_t rep_sample_seed(std::int64_t rows, std::int64_t cols,
                              std::int64_t nnz) {
  std::uint64_t h = splitmix64(0x5245505354524dULL);  // "REPSTRM"
  h = hash_combine(h, static_cast<std::uint64_t>(rows));
  h = hash_combine(h, static_cast<std::uint64_t>(cols));
  h = hash_combine(h, static_cast<std::uint64_t>(nnz));
  return h;
}

StreamingRepBuilder::StreamingRepBuilder(RepStreamOptions opts)
    : opts_(opts) {
  DNNSPMV_CHECK(opts_.rep_rows > 0 && opts_.rep_bins > 0);
}

void StreamingRepBuilder::build_into(const Csr& a, TensorArena& arena,
                                     std::vector<Tensor>& out) const {
  DNNSPMV_CHECK(a.rows > 0 && a.cols > 0);
  const std::int64_t s = opts_.rep_rows;
  const std::int64_t bins = opts_.rep_bins;
  const bool hist = opts_.mode == RepMode::kHistogram;
  const int nsrc = rep_num_sources(opts_.mode);
  if (static_cast<int>(out.size()) != nsrc) out.resize(nsrc);
  const std::int64_t nnz = a.nnz();

  RunCtx cx;
  cx.s = s;
  cx.bins = bins;
  cx.rows = a.rows;
  cx.cols = a.cols;
  cx.max_dim = std::max<std::int64_t>(a.rows, a.cols);
  cx.bin_scale =
      static_cast<float>(bins) / static_cast<float>(cx.max_dim);
  cx.cell_scale = static_cast<float>(s) / static_cast<float>(a.cols);

  // Accumulation targets. Binary/density accumulate straight into the
  // output tensors; histogram counts go to arena scratch because the
  // normalization is a separate raw -> scaled transform.
  Tensor* raw_row = nullptr;
  Tensor* raw_col = nullptr;
  switch (opts_.mode) {
    case RepMode::kBinary:
      out[0].ensure2(s, s);
      out[0].zero();
      cx.t0 = &out[0];
      break;
    case RepMode::kBinaryDensity:
      out[0].ensure2(s, s);
      out[0].zero();
      out[1].ensure2(s, s);
      out[1].zero();
      cx.t0 = &out[0];
      cx.t1 = &out[1];
      break;
    case RepMode::kHistogram:
      raw_row = &arena.tensor(this, 0);
      raw_col = &arena.tensor(this, 1);
      raw_row->ensure2(s, bins);
      raw_row->zero();
      raw_col->ensure2(s, bins);
      raw_col->zero();
      cx.t0 = raw_row;
      cx.t1 = raw_col;
      break;
  }

  // Sampling geometry. Exact mode is "one chunk spans all of nnz", so the
  // exact path is literally the sampled walk with a single chunk — same
  // code, same accumulation order as the reference builders (which also
  // visit nonzeros in CSR order), hence bitwise-identical output.
  const bool sampled = will_sample(nnz);
  const std::int64_t chunk =
      sampled ? kRepSampleChunk : std::max<std::int64_t>(1, nnz);
  std::int64_t cstride = 1;
  std::int64_t phase = 0;
  if (sampled) {
    const std::int64_t nchunks = (nnz + chunk - 1) / chunk;
    const std::int64_t want =
        std::max<std::int64_t>(1, opts_.sample_nnz / chunk);
    cstride = std::max<std::int64_t>(1, nchunks / want);
    phase = static_cast<std::int64_t>(
        rep_sample_seed(a.rows, a.cols, nnz) %
        static_cast<std::uint64_t>(cstride));
  }

  // The walk: visit sampled chunks left to right, splitting each chunk
  // into per-row runs. `r` only ever advances, so the whole pass is
  // O(sampled + rows) regardless of stride.
  std::int64_t sampled_cnt = 0;
  index_t r = 0;
  for (std::int64_t c = phase; c * chunk < nnz; c += cstride) {
    const std::int64_t lo = c * chunk;
    const std::int64_t hi = std::min<std::int64_t>(nnz, lo + chunk);
    while (a.ptr[r + 1] <= lo) ++r;
    std::int64_t j = lo;
    while (j < hi) {
      const std::int64_t row_end = std::min<std::int64_t>(hi, a.ptr[r + 1]);
      process_run(cx, hist, opts_.use_simd, r, a.idx.data() + j,
                  row_end - j);
      j = row_end;
      if (j < hi) ++r;
    }
    sampled_cnt += hi - lo;
  }
  const double factor =
      sampled && sampled_cnt > 0
          ? static_cast<double>(nnz) / static_cast<double>(sampled_cnt)
          : 1.0;

  // Finish per mode.
  if (opts_.mode == RepMode::kBinaryDensity) {
    Tensor& d = out[1];
    if (!sampled) {
      // Identical loop to density_rep()'s finish — bitwise contract.
      for (std::int64_t cr = 0; cr < s; ++cr) {
        const std::int64_t rh = rep_cell_span(cr, a.rows, s);
        for (std::int64_t cc = 0; cc < s; ++cc) {
          const std::int64_t cw = rep_cell_span(cc, a.cols, s);
          const std::int64_t block = rh * cw;
          if (block > 0) d.at2(cr, cc) /= static_cast<float>(block);
        }
      }
    } else {
      // Sampled counts estimate block occupancy; rescale and clamp (the
      // estimate can overshoot a block's capacity).
      for (std::int64_t cr = 0; cr < s; ++cr) {
        const std::int64_t rh = rep_cell_span(cr, a.rows, s);
        for (std::int64_t cc = 0; cc < s; ++cc) {
          const std::int64_t cw = rep_cell_span(cc, a.cols, s);
          const std::int64_t block = rh * cw;
          if (block > 0)
            d.at2(cr, cc) = std::min(
                1.0f, static_cast<float>(d.at2(cr, cc) * factor /
                                         static_cast<double>(block)));
        }
      }
    }
  } else if (hist) {
    density_scale_histogram_into(*raw_row, a.rows, factor, out[0]);
    density_scale_histogram_into(*raw_col, a.cols, factor, out[1]);
  }
}

std::vector<Tensor> StreamingRepBuilder::build(const Csr& a) const {
  std::vector<Tensor> out;
  build_into(a, thread_arena(), out);
  return out;
}

}  // namespace dnnspmv
