// CNN architectures for format selection (paper §5, Figure 10).
//
// The late-merging network has one convolutional tower per input source
// (binary/density pair, or row/column histograms); towers' flattened
// outputs are concatenated and classified by a fully connected head. The
// early-merging twin stacks all sources as channels of a single input and
// runs one tower — the structure the paper shows converging slower
// (Figure 11).
//
// Figure 10's exact stack targets 128×128 inputs. The builder scales the
// stack to the configured input size: every tower is
//   Conv(3×3×c1, s1, pad 1) → ReLU → MaxPool2
//   Conv(3×3×c2, s2, pad 1) → ReLU → MaxPool2
//   [Conv(3×3×c2, s2, pad 1) → ReLU → MaxPool2]   (only if H ≥ 128)
//   Flatten
// and the head is Dense(h) → ReLU → Dropout → Dense(K).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "nn/merge_net.hpp"

namespace dnnspmv {

struct CnnSpec {
  /// Per-source input sizes {H, W}; early merge requires all equal.
  std::vector<std::array<std::int64_t, 2>> input_hw;
  int num_classes = 4;
  bool late_merge = true;
  int conv1_channels = 12;
  int conv2_channels = 24;
  int head_hidden = 96;
  double dropout = 0.25;
  std::uint64_t seed = 7;
};

/// Builds the network. For early merge the single tower takes
/// input_hw.size() channels.
MergeNet build_cnn(const CnnSpec& spec);

/// Number of sources the built network's forward() expects (towers).
int num_net_inputs(const CnnSpec& spec);

}  // namespace dnnspmv
