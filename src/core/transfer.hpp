// Cross-architecture model migration via transfer learning (paper §6).
//
// Three ways to obtain a model for a *target* platform given a model
// trained on a *source* platform:
//
//  * from scratch          — ignore the source model; random init.
//  * continuous evolvement — warm-start all parameters from the source
//                            model, fine-tune everything.
//  * top evolvement        — warm-start, freeze the convolutional towers
//                            ("CNN codes" stay fixed), retrain the head.
#pragma once

#include <string>

#include "core/trainer.hpp"

namespace dnnspmv {

enum class MigrationMethod : std::int32_t {
  kFromScratch = 0,
  kContinuous = 1,
  kTopEvolve = 2,
};

std::string migration_method_name(MigrationMethod m);

/// Builds a model for the target platform with `method`, training on
/// `target_train` (labels collected on the target machine).
/// `source_model` supplies the warm-start weights for the evolvement
/// methods and is ignored for from-scratch.
MergeNet migrate_model(const CnnSpec& spec, MergeNet& source_model,
                       MigrationMethod method, const Dataset& target_train,
                       const TrainConfig& cfg);

}  // namespace dnnspmv
