// Fixed-size matrix representations (paper §4).
//
// Three normalizations of an arbitrary sparse matrix into CNN-ready
// tensors:
//
//  * binary     — S×S down-sampling; cell = 1 iff its block holds any
//                 nonzero (the "traditional image scaling" baseline that
//                 loses diagonal structure, Figure 4);
//  * density    — S×S cell = nonzeros in block / block size (Figure 5a);
//  * histogram  — the paper's winning proposal (Algorithm 1): one r×BINS
//                 matrix of per-row-group histograms of distances from the
//                 principal diagonal, plus the analogous column histogram.
//
// Histogram values are normalized to [0,1] by the matrix max (paper §4);
// binary is already 0/1 and density is a ratio in [0,1].
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "tensor/tensor.hpp"

namespace dnnspmv {

/// Which input-source set feeds the CNN (Table 2's three model columns).
enum class RepMode : std::int32_t {
  kBinary = 0,         // 1 source: binary S×S
  kBinaryDensity = 1,  // 2 sources: binary S×S + density S×S
  kHistogram = 2,      // 2 sources: row hist r×BINS + column hist r×BINS
};

std::string rep_mode_name(RepMode m);

/// Number of CNN input sources the mode produces.
int rep_num_sources(RepMode m);

/// Maps source index i in [0, n) to cell index in [0, s): floor(i*s/n),
/// clamped to the last cell. Single source of truth for representation
/// geometry — the exact builders below and the streaming builder
/// (core/rep_stream.hpp) must agree bitwise, and do so by sharing this.
inline std::int64_t rep_cell_of(std::int64_t i, std::int64_t n,
                                std::int64_t s) {
  return std::min<std::int64_t>(s - 1, i * s / n);
}

/// Number of source indices mapped to cell c (for exact density blocks).
inline std::int64_t rep_cell_span(std::int64_t c, std::int64_t n,
                                  std::int64_t s) {
  // Inverse of rep_cell_of for the floor mapping: indices i with
  // i*s/n == c form [ceil(c*n/s), ceil((c+1)*n/s)).
  const std::int64_t lo = (c * n + s - 1) / s;
  const std::int64_t hi = ((c + 1) * n + s - 1) / s;
  return std::max<std::int64_t>(0, std::min(hi, n) - lo);
}

/// Binary down-sampled S×S representation.
Tensor binary_rep(const Csr& a, std::int64_t s);

/// Density down-sampled S×S representation (exact per-cell block sizes).
Tensor density_rep(const Csr& a, std::int64_t s);

/// Row-distance histogram, r rows × bins columns (Algorithm 1), raw counts.
Tensor row_histogram_raw(const Csr& a, std::int64_t r, std::int64_t bins);

/// Column histogram = row histogram of A^T with the same geometry.
Tensor col_histogram_raw(const Csr& a, std::int64_t r, std::int64_t bins);

/// Algorithm 1's normalization: [0,1] by the matrix max (log-compressed
/// first for dynamic range; zero matrix stays zero).
Tensor normalize_histogram(Tensor h);

/// Density-scaled histogram: cell -> log1p(count / source-rows-per-group),
/// clipped to [0,1]. Unlike the divide-by-max rule this keeps *absolute*
/// per-row density — the quantity DIA/ELL padding economics hinge on —
/// which global max-normalization erases (DESIGN.md §5). Default in the
/// pipeline; the paper's /max variant is the ablation.
Tensor density_scale_histogram(Tensor h, std::int64_t source_rows);

/// Out-of-place core of density_scale_histogram: reads raw counts from
/// `raw`, writes the scaled histogram into `out` (ensure2()d to raw's
/// shape, every cell overwritten — safe for arena/pool-backed buffers;
/// `raw` and `out` may alias). `count_scale` rescales counts first — the
/// streaming builder passes nnz/sampled there so a sampled histogram
/// estimates the full-matrix counts; 1.0 reproduces the exact result
/// bitwise.
void density_scale_histogram_into(const Tensor& raw, std::int64_t source_rows,
                                  double count_scale, Tensor& out);

/// The full input set for `mode`: rep_rows×rep_rows for binary/density tensors,
/// rep_rows×rep_bins for histograms.
std::vector<Tensor> make_inputs(const Csr& a, RepMode mode,
                                std::int64_t rep_rows, std::int64_t rep_bins);

}  // namespace dnnspmv
