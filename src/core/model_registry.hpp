// ModelRegistry — versioned, immutable model snapshots with RCU-style
// hot swap (ROADMAP: close the loop / in-service platform migration).
//
// The registry is the single publication path between whoever produces
// models (offline training, the OnlineTrainer's fine-tune loop) and
// whoever serves them (SelectionService workers, ReplicaRouter replicas):
//
//   publisher                      registry                 subscribers
//   ─────────                      ────────                 ───────────
//   fine-tuned FormatSelector ──→ publish():                ModelSubscription
//                                  validate compat           per replica
//                                  stamp version N+1            │
//                                  swap shared_ptr        stale()? lock-free
//                                  (writers never block       │ version check
//                                   readers, readers       adopt: clone the
//                                   never block writers)   snapshot, swap the
//                                                          local shared_ptr
//
// Versions are immutable: a published FormatSelector is never trained or
// mutated again; fine-tuning always builds a fresh network (see
// core/online.hpp). Readers hold plain shared_ptr snapshots, so a version
// stays alive for as long as any in-flight batch still runs on it — the
// RCU grace period is reference counting, no epochs, no quiescent states.
//
// Hot-path contract: checking for staleness is one relaxed atomic load
// (version()); nothing on a serving hot path ever takes the registry
// mutex. current()/publish()/adoption take a mutex, but they run only
// when a new version actually appears — a rare, cold event.
//
// Why subscribers clone instead of sharing the published object: MergeNet
// keeps per-forward scratch, so inference serializes on a per-selector
// mutex (selector.hpp). N replicas sharing one published instance would
// collapse into one inference lane. ModelSubscription therefore adopts by
// cloning — one O(#params) copy per subscriber per published version —
// keeping replicas' lanes independent while the *publication path* (which
// weights, which version) stays single-sourced, replacing the divergent
// clone()-per-replica ownership the router used before.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/selector.hpp"
#include "obs/metrics.hpp"

namespace dnnspmv {

class ModelRegistry {
 public:
  /// Takes ownership of the boot model (must be trained) as version 1.
  explicit ModelRegistry(FormatSelector initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The newest published snapshot. Immutable; safe to call concurrently
  /// with publish(). Cold path — subscribers only call this after a
  /// lock-free version() check says their snapshot is stale.
  std::shared_ptr<const FormatSelector> current() const;

  /// Version of the newest snapshot (monotonic from 1). One relaxed
  /// atomic load — the hot-path staleness probe.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Publishes `next` as the new current version and returns its version
  /// number. Validates that `next` is trained and interface-compatible
  /// with the boot model (same candidates, same representation geometry):
  /// serving layers cache candidates and representation builders across
  /// swaps, so an incompatible model must be a new registry, not a new
  /// version. Throws DnnspmvError(errc::invalid_argument) on mismatch.
  std::uint64_t publish(FormatSelector next);

  /// Versions published through publish() (excludes the boot model).
  std::uint64_t published_count() const { return published_.value(); }

  /// Candidates / options of the version-1 model; fixed for the registry's
  /// lifetime by the publish() compatibility check.
  const std::vector<Format>& candidates() const { return candidates_; }
  const SelectorOptions& options() const { return options_; }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const FormatSelector> current_;  // guarded by mu_
  std::atomic<std::uint64_t> version_{0};

  std::vector<Format> candidates_;  // pinned at construction
  SelectorOptions options_;

  std::string prefix_;       // "registry<N>." in the global obs registry
  obs::Gauge& version_gauge_;
  obs::Counter& published_;
};

/// One subscriber's RCU read side: a privately-owned clone of the
/// registry's current version, refreshed on demand. stale() is the
/// lock-free hot-path probe; model() swaps in a fresh clone only when a
/// new version was published (cold). Snapshots returned by model() pin
/// their version: an in-flight batch keeps its shared_ptr and finishes on
/// the version it started with, even while the subscription moves on.
class ModelSubscription {
 public:
  explicit ModelSubscription(ModelRegistry& registry);

  ModelSubscription(const ModelSubscription&) = delete;
  ModelSubscription& operator=(const ModelSubscription&) = delete;

  /// True when the registry has published a version this subscription has
  /// not adopted yet. One relaxed load; never blocks.
  bool stale() const {
    return registry_.version() != version_.load(std::memory_order_relaxed);
  }

  /// The adopted snapshot, refreshing first if stale. Callers keep the
  /// returned shared_ptr for the whole unit of work they want pinned to
  /// one version (the Batcher holds it across a micro-batch).
  std::shared_ptr<const FormatSelector> model();

  /// Adopted version (lags registry.version() until the next model()).
  std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// Number of adoptions that replaced a live model (i.e. hot swaps; the
  /// initial adoption at construction is not counted).
  std::uint64_t swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }

  ModelRegistry& registry() const { return registry_; }

 private:
  ModelRegistry& registry_;
  std::mutex mu_;
  std::shared_ptr<const FormatSelector> model_;  // guarded by mu_
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> swaps_{0};
};

}  // namespace dnnspmv
