#include "core/model_registry.hpp"

#include <utility>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

std::string next_registry_prefix() {
  static std::atomic<int> instance{0};
  return "registry" + std::to_string(instance.fetch_add(1)) + ".";
}

/// The interface a serving layer caches across swaps: candidate list and
/// representation geometry. Weights may change per version; these may not.
void check_compatible(const FormatSelector& boot, const FormatSelector& next) {
  DNNSPMV_CHECK_ERRC(next.trained(), errc::not_trained,
                     "ModelRegistry::publish needs a trained model");
  DNNSPMV_CHECK_ERRC(next.candidates() == boot.candidates(),
                     errc::invalid_argument,
                     "published model changes the candidate format list; "
                     "incompatible versions need a new registry");
  const SelectorOptions& a = boot.options();
  const SelectorOptions& b = next.options();
  DNNSPMV_CHECK_ERRC(a.mode == b.mode && a.rep_rows == b.rep_rows &&
                         a.rep_bins == b.rep_bins &&
                         a.rep_sample_nnz == b.rep_sample_nnz &&
                         a.late_merge == b.late_merge,
                     errc::invalid_argument,
                     "published model changes the representation geometry; "
                     "incompatible versions need a new registry");
  // Quantization is part of the serving contract too: a fleet serving int8
  // latencies must not silently adopt an fp32 model (or vice versa) — the
  // cold-miss budget and the numerics both change.
  DNNSPMV_CHECK_ERRC(boot.quantized() == next.quantized(),
                     errc::invalid_argument,
                     "published model changes quantization; "
                     "incompatible versions need a new registry");
  // Op support is part of the contract: a deployment answering SpMM must
  // not swap in an SpMV-only model mid-flight (in-queue kSpmm requests
  // would hit the no-head check). migrate() carries the SpMM head by
  // weight copy, so online publishes keep satisfying this.
  DNNSPMV_CHECK_ERRC(boot.supports(SpOp::kSpmm) == next.supports(SpOp::kSpmm),
                     errc::invalid_argument,
                     "published model changes SpMM support; "
                     "incompatible versions need a new registry");
  DNNSPMV_CHECK_ERRC(!boot.supports(SpOp::kSpmm) ||
                         a.spmm_cols == b.spmm_cols,
                     errc::invalid_argument,
                     "published model changes the SpMM label K; "
                     "incompatible versions need a new registry");
}

}  // namespace

ModelRegistry::ModelRegistry(FormatSelector initial)
    : candidates_(initial.candidates()),
      options_(initial.options()),
      prefix_(next_registry_prefix()),
      version_gauge_(
          obs::MetricsRegistry::global().gauge(prefix_ + "model_version")),
      published_(
          obs::MetricsRegistry::global().counter(prefix_ + "published")) {
  DNNSPMV_CHECK_ERRC(initial.trained(), errc::not_trained,
                     "ModelRegistry needs a trained boot model");
  initial.model_version_ = 1;
  current_ = std::make_shared<const FormatSelector>(std::move(initial));
  version_.store(1, std::memory_order_release);
  version_gauge_.set(1.0);
}

std::shared_ptr<const FormatSelector> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t ModelRegistry::publish(FormatSelector next) {
  std::lock_guard<std::mutex> lock(mu_);
  check_compatible(*current_, next);
  const std::uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  next.model_version_ = v;
  // Old versions stay alive through the shared_ptrs subscribers still
  // hold — swapping the registry pointer never pauses a reader.
  current_ = std::make_shared<const FormatSelector>(std::move(next));
  version_.store(v, std::memory_order_release);
  published_.inc();
  version_gauge_.set(static_cast<double>(v));
  return v;
}

ModelSubscription::ModelSubscription(ModelRegistry& registry)
    : registry_(registry) {
  std::shared_ptr<const FormatSelector> cur = registry_.current();
  model_ = std::make_shared<const FormatSelector>(cur->clone());
  version_.store(cur->model_version(), std::memory_order_relaxed);
}

std::shared_ptr<const FormatSelector> ModelSubscription::model() {
  // Fast path: adopted version is current — hand out the local snapshot.
  // Slow path (a publish happened): clone the new version into a private
  // copy so this subscriber keeps its own inference lane, then swap. Both
  // paths serialize on the subscription mutex; only subscriber threads
  // (a service's few workers, at batch granularity) ever contend on it.
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t rv = registry_.version();
  if (rv != version_.load(std::memory_order_relaxed)) {
    std::shared_ptr<const FormatSelector> cur = registry_.current();
    model_ = std::make_shared<const FormatSelector>(cur->clone());
    version_.store(cur->model_version(), std::memory_order_relaxed);
    swaps_.fetch_add(1, std::memory_order_relaxed);
  }
  return model_;
}

}  // namespace dnnspmv
