#include "core/adaptive.hpp"

#include <mutex>
#include <utility>

#include "common/hash.hpp"
#include "common/timer.hpp"
#include "serve/fingerprint.hpp"

namespace dnnspmv {

/// Everything the deferred feedback probe needs, retained only while the
/// probe is still pending. The matrix copy and representations are
/// released as soon as the sample is published.
struct AdaptiveSpmv::Probe {
  std::once_flag once;
  FeedbackCollector* collector = nullptr;
  std::vector<Format> formats;
  int reps = 3;
  std::uint64_t fingerprint = 0;
  std::vector<Tensor> inputs;
  Csr matrix;
};

PredictionCache& AdaptiveSpmv::shared_prediction_cache() {
  static PredictionCache cache(/*capacity=*/4096, /*shards=*/8);
  return cache;
}

AnyFormatMatrix AdaptiveSpmv::convert_or_csr(const Csr& matrix,
                                             Format format,
                                             bool& fell_back) {
  auto stored = AnyFormatMatrix::convert(matrix, format);
  if (stored) {
    fell_back = false;
    return std::move(*stored);
  }
  fell_back = true;
  return *AnyFormatMatrix::convert(matrix, Format::kCsr);  // never refuses
}

AdaptiveSpmv::AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix)
    : AdaptiveSpmv(selector, matrix, &shared_prediction_cache()) {}

AdaptiveSpmv::AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix,
                           PredictionCache* cache)
    : AdaptiveSpmv(selector, matrix, cache, nullptr) {}

AdaptiveSpmv::AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix,
                           PredictionCache* cache, FeedbackCollector* feedback)
    : stored_(*AnyFormatMatrix::convert(matrix, Format::kCsr)) {
  Timer predict_timer;
  Format pick;
  if (cache) {
    // Same cache key space as the service: structural fingerprint, mixed
    // with the selector's identity so two models never share entries.
    const std::uint64_t key = hash_combine(
        structural_fingerprint(matrix),
        reinterpret_cast<std::uintptr_t>(&selector));
    std::int32_t idx = 0;
    if (cache->get(key, idx)) {
      cache_hit_ = true;
      pick = selector.candidates()[static_cast<std::size_t>(idx)];
    } else {
      idx = selector.predict_index(matrix);
      cache->put(key, idx);
      pick = selector.candidates()[static_cast<std::size_t>(idx)];
    }
  } else {
    pick = selector.predict(matrix);
  }
  prediction_seconds_ = predict_timer.seconds();
  Timer convert_timer;
  stored_ = convert_or_csr(matrix, pick, fell_back_);
  conversion_seconds_ = convert_timer.seconds();

  // Sampling decision up front (one atomic increment); the probe itself —
  // conversions plus timed SpMVs over every candidate — is deferred to
  // the first apply(), where "this matrix is actually being served" is a
  // fact rather than a guess.
  if (feedback != nullptr && feedback->offer()) {
    probe_ = std::make_shared<Probe>();
    probe_->collector = feedback;
    probe_->formats = selector.candidates();
    probe_->reps = feedback->options().measure_reps;
    probe_->fingerprint = structural_fingerprint(matrix);
    probe_->inputs = selector.prepare_inputs(matrix);
    probe_->matrix = matrix;
  }
}

AdaptiveSpmv::AdaptiveSpmv(const Csr& matrix, Format format)
    : stored_(*AnyFormatMatrix::convert(matrix, Format::kCsr)) {
  Timer convert_timer;
  stored_ = convert_or_csr(matrix, format, fell_back_);
  conversion_seconds_ = convert_timer.seconds();
}

void AdaptiveSpmv::apply(std::span<const double> x,
                         std::span<double> y) const {
  if (probe_) {
    std::call_once(probe_->once, [p = probe_.get()] {
      FeedbackSample s;
      s.fingerprint = p->fingerprint;
      s.inputs = std::move(p->inputs);
      s.format_times =
          measure_format_times(p->matrix, p->formats, p->reps);
      p->collector->publish(std::move(s));
      p->matrix = Csr{};  // the probe's retained copy is no longer needed
    });
  }
  stored_.spmv(x, y);
}

}  // namespace dnnspmv
