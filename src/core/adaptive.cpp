#include "core/adaptive.hpp"

#include "common/hash.hpp"
#include "common/timer.hpp"
#include "serve/fingerprint.hpp"

namespace dnnspmv {

PredictionCache& AdaptiveSpmv::shared_prediction_cache() {
  static PredictionCache cache(/*capacity=*/4096, /*shards=*/8);
  return cache;
}

AnyFormatMatrix AdaptiveSpmv::convert_or_csr(const Csr& matrix,
                                             Format format,
                                             bool& fell_back) {
  auto stored = AnyFormatMatrix::convert(matrix, format);
  if (stored) {
    fell_back = false;
    return std::move(*stored);
  }
  fell_back = true;
  return *AnyFormatMatrix::convert(matrix, Format::kCsr);  // never refuses
}

AdaptiveSpmv::AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix)
    : AdaptiveSpmv(selector, matrix, &shared_prediction_cache()) {}

AdaptiveSpmv::AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix,
                           PredictionCache* cache)
    : stored_(*AnyFormatMatrix::convert(matrix, Format::kCsr)) {
  Timer predict_timer;
  Format pick;
  if (cache) {
    // Same cache key space as the service: structural fingerprint, mixed
    // with the selector's identity so two models never share entries.
    const std::uint64_t key = hash_combine(
        structural_fingerprint(matrix),
        reinterpret_cast<std::uintptr_t>(&selector));
    std::int32_t idx = 0;
    if (cache->get(key, idx)) {
      cache_hit_ = true;
      pick = selector.candidates()[static_cast<std::size_t>(idx)];
    } else {
      idx = selector.predict_index(matrix);
      cache->put(key, idx);
      pick = selector.candidates()[static_cast<std::size_t>(idx)];
    }
  } else {
    pick = selector.predict(matrix);
  }
  prediction_seconds_ = predict_timer.seconds();
  Timer convert_timer;
  stored_ = convert_or_csr(matrix, pick, fell_back_);
  conversion_seconds_ = convert_timer.seconds();
}

AdaptiveSpmv::AdaptiveSpmv(const Csr& matrix, Format format)
    : stored_(*AnyFormatMatrix::convert(matrix, Format::kCsr)) {
  Timer convert_timer;
  stored_ = convert_or_csr(matrix, format, fell_back_);
  conversion_seconds_ = convert_timer.seconds();
}

void AdaptiveSpmv::apply(std::span<const double> x,
                         std::span<double> y) const {
  stored_.spmv(x, y);
}

}  // namespace dnnspmv
