#include "core/adaptive.hpp"

#include "common/timer.hpp"

namespace dnnspmv {

AnyFormatMatrix AdaptiveSpmv::convert_or_csr(const Csr& matrix,
                                             Format format,
                                             bool& fell_back) {
  auto stored = AnyFormatMatrix::convert(matrix, format);
  if (stored) {
    fell_back = false;
    return std::move(*stored);
  }
  fell_back = true;
  return *AnyFormatMatrix::convert(matrix, Format::kCsr);  // never refuses
}

AdaptiveSpmv::AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix)
    : stored_(*AnyFormatMatrix::convert(matrix, Format::kCsr)) {
  Timer predict_timer;
  const Format pick = selector.predict(matrix);
  prediction_seconds_ = predict_timer.seconds();
  Timer convert_timer;
  stored_ = convert_or_csr(matrix, pick, fell_back_);
  conversion_seconds_ = convert_timer.seconds();
}

AdaptiveSpmv::AdaptiveSpmv(const Csr& matrix, Format format)
    : stored_(*AnyFormatMatrix::convert(matrix, Format::kCsr)) {
  Timer convert_timer;
  stored_ = convert_or_csr(matrix, format, fell_back_);
  conversion_seconds_ = convert_timer.seconds();
}

void AdaptiveSpmv::apply(std::span<const double> x,
                         std::span<double> y) const {
  stored_.spmv(x, y);
}

}  // namespace dnnspmv
