#include "core/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dnnspmv {
namespace {

// Trainer stats in the global registry. Counters/gauges are always live
// (they are the epoch/step trajectory a monitoring scrape reads); the
// step-duration histogram too — one clock pair per optimizer step is
// noise next to the forward/backward inside it.
struct TrainerObs {
  obs::Counter& epochs;
  obs::Counter& steps;
  obs::Gauge& last_loss;
  obs::Histogram& step_us;

  static TrainerObs& get() {
    static TrainerObs t{
        obs::MetricsRegistry::global().counter("train.epochs"),
        obs::MetricsRegistry::global().counter("train.steps"),
        obs::MetricsRegistry::global().gauge("train.last_loss"),
        obs::MetricsRegistry::global().histogram("train.step_us")};
    return t;
  }
};

}  // namespace

std::vector<Tensor> assemble_batch(const Dataset& data,
                                   const std::vector<std::int32_t>& idx,
                                   int net_inputs) {
  DNNSPMV_CHECK(!idx.empty() && !data.samples.empty());
  const auto& first = data.samples[static_cast<std::size_t>(idx[0])];
  const int nsources = static_cast<int>(first.inputs.size());
  DNNSPMV_CHECK_MSG(net_inputs == nsources || net_inputs == 1,
                    "cannot feed " << nsources << " sources into "
                                   << net_inputs << " towers");
  const auto batch = static_cast<std::int64_t>(idx.size());

  std::vector<Tensor> out;
  if (net_inputs == nsources) {
    // One tower per source: batch tensors [B, 1, H, W].
    for (int s = 0; s < nsources; ++s) {
      const auto& shape = first.inputs[static_cast<std::size_t>(s)].shape();
      Tensor t({batch, 1, shape[0], shape[1]});
      for (std::int64_t b = 0; b < batch; ++b) {
        const Tensor& src =
            data.samples[static_cast<std::size_t>(idx[b])]
                .inputs[static_cast<std::size_t>(s)];
        DNNSPMV_CHECK(src.shape() == shape);
        std::copy(src.data(), src.data() + src.size(),
                  t.data() + b * src.size());
      }
      out.push_back(std::move(t));
    }
  } else {
    // Early merging: stack all sources as channels of one input.
    const auto& shape = first.inputs[0].shape();
    Tensor t({batch, nsources, shape[0], shape[1]});
    const std::int64_t plane = shape[0] * shape[1];
    for (std::int64_t b = 0; b < batch; ++b) {
      for (int s = 0; s < nsources; ++s) {
        const Tensor& src =
            data.samples[static_cast<std::size_t>(idx[b])]
                .inputs[static_cast<std::size_t>(s)];
        DNNSPMV_CHECK(src.shape() == shape);
        std::copy(src.data(), src.data() + plane,
                  t.data() + (b * nsources + s) * plane);
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

TrainHistory train_cnn(MergeNet& net, const Dataset& data, int net_inputs,
                       const TrainConfig& cfg) {
  DNNSPMV_CHECK(!data.samples.empty());
  TrainHistory hist;
  Adam opt(net.params(), cfg.lr);
  Workspace ws;  // one scratch workspace for the whole training run
  Rng rng(cfg.seed);
  std::vector<std::int32_t> order(data.samples.size());
  std::iota(order.begin(), order.end(), 0);

  TrainerObs& tobs = TrainerObs::get();
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::Span epoch_span("train.epoch");
    // Step decay: drop the learning rate for the final third of training.
    if (cfg.epochs >= 6 && epoch == (cfg.epochs * 2) / 3)
      opt.set_lr(cfg.lr * 0.3);
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    int steps = 0;
    for (std::size_t off = 0; off < order.size();
         off += static_cast<std::size_t>(cfg.batch)) {
      obs::Span step_span("train.step");
      Timer step_timer;
      const std::size_t end =
          std::min(order.size(), off + static_cast<std::size_t>(cfg.batch));
      const std::vector<std::int32_t> idx(order.begin() + off,
                                          order.begin() + end);
      const std::vector<Tensor> inputs =
          assemble_batch(data, idx, net_inputs);
      std::vector<std::int32_t> labels;
      labels.reserve(idx.size());
      for (std::int32_t i : idx)
        labels.push_back(data.samples[static_cast<std::size_t>(i)].label);

      Tensor logits;
      net.forward(inputs, logits, /*training=*/true, ws);
      Tensor grad;
      const double loss = softmax_cross_entropy(logits, labels, grad);
      net.backward(inputs, grad, ws);
      opt.step();

      hist.step_loss.push_back(loss);
      epoch_loss += loss;
      ++steps;
      tobs.steps.inc();
      tobs.last_loss.set(loss);
      tobs.step_us.observe_seconds(step_timer.seconds());
    }
    tobs.epochs.inc();
    hist.epoch_loss.push_back(epoch_loss / std::max(steps, 1));
    if (cfg.verbose)
      std::printf("  epoch %2d/%d  loss %.4f\n", epoch + 1, cfg.epochs,
                  hist.epoch_loss.back());
  }
  return hist;
}

std::vector<std::int32_t> predict_cnn(MergeNet& net, const Dataset& data,
                                      int net_inputs, int batch,
                                      Workspace* ws) {
  std::vector<std::int32_t> pred;
  pred.reserve(data.samples.size());
  for (std::size_t off = 0; off < data.samples.size();
       off += static_cast<std::size_t>(batch)) {
    const std::size_t end = std::min(
        data.samples.size(), off + static_cast<std::size_t>(batch));
    std::vector<std::int32_t> idx;
    for (std::size_t i = off; i < end; ++i)
      idx.push_back(static_cast<std::int32_t>(i));
    const std::vector<Tensor> inputs = assemble_batch(data, idx, net_inputs);
    Tensor logits;
    if (ws)
      net.forward(inputs, logits, /*training=*/false, *ws);
    else
      net.forward(inputs, logits, /*training=*/false);
    for (std::int32_t p : argmax_rows(logits)) pred.push_back(p);
  }
  return pred;
}

double accuracy_cnn(MergeNet& net, const Dataset& data, int net_inputs) {
  const auto pred = predict_cnn(net, data, net_inputs);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == data.samples[i].label) ++correct;
  return data.samples.empty()
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(data.samples.size());
}

}  // namespace dnnspmv
