// Library-integration path (paper §7.6/§8): the predictive model embedded
// directly into an SpMV operator.
//
// AdaptiveSpmv predicts the best format for a matrix once, converts, and
// then serves y = A*x from the chosen representation. If the predicted
// format refuses the matrix (DIA/ELL padding blow-up) it falls back to
// CSR. The constructor records how long prediction and conversion took so
// callers can reason about amortization ("the 1–3 iterations of overhead
// is negligible compared to the time the better formats help save").
#pragma once

#include <optional>

#include "core/selector.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {

class AdaptiveSpmv {
 public:
  /// Predicts with `selector`, converts, and owns the stored matrix.
  AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix);

  /// No prediction: stores the matrix in `format` (CSR fallback applies).
  AdaptiveSpmv(const Csr& matrix, Format format);

  /// y = A*x in the chosen format.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// The format actually in use (after any fallback).
  Format format() const { return stored_.format(); }

  /// True when the predicted format refused the matrix and CSR is used.
  bool fell_back() const { return fell_back_; }

  index_t rows() const { return stored_.rows(); }
  index_t cols() const { return stored_.cols(); }
  std::int64_t bytes() const { return stored_.bytes(); }

  /// One-time costs paid at construction.
  double prediction_seconds() const { return prediction_seconds_; }
  double conversion_seconds() const { return conversion_seconds_; }

 private:
  static AnyFormatMatrix convert_or_csr(const Csr& matrix, Format format,
                                        bool& fell_back);

  AnyFormatMatrix stored_;
  bool fell_back_ = false;
  double prediction_seconds_ = 0.0;
  double conversion_seconds_ = 0.0;
};

}  // namespace dnnspmv
