// Library-integration path (paper §7.6/§8): the predictive model embedded
// directly into an SpMV operator.
//
// AdaptiveSpmv predicts the best format for a matrix once, converts, and
// then serves y = A*x from the chosen representation. If the predicted
// format refuses the matrix (DIA/ELL padding blow-up) it falls back to
// CSR. The constructor records how long prediction and conversion took so
// callers can reason about amortization ("the 1–3 iterations of overhead
// is negligible compared to the time the better formats help save").
//
// Prediction is memoized through the serve-layer structural-fingerprint
// cache: constructing repeatedly from the same (or structurally identical)
// matrix skips CNN inference after the first time, paying only the O(nnz)
// fingerprint pass. By default a process-wide cache is used, keyed by
// (selector identity, fingerprint); pass an explicit PredictionCache to
// scope the memoization (e.g. per tenant), or nullptr to disable it.
#pragma once

#include <memory>
#include <optional>

#include "core/selector.hpp"
#include "serve/feedback.hpp"
#include "serve/lru_cache.hpp"
#include "sparse/spmv.hpp"

namespace dnnspmv {

class AdaptiveSpmv {
 public:
  /// Predicts with `selector` (through the shared prediction cache),
  /// converts, and owns the stored matrix.
  AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix);

  /// Same, against a caller-owned cache; nullptr disables memoization.
  AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix,
               PredictionCache* cache);

  /// Same, and closes the online-learning loop: when `feedback` is
  /// non-null and its sampling gate admits this matrix, the FIRST apply()
  /// additionally measures SpMV across all candidate formats and
  /// publishes (fingerprint, representation, measured times) to the
  /// stream — ground-truth labels from exactly the traffic this operator
  /// serves. The probe runs once per AdaptiveSpmv (a retained matrix copy
  /// is released afterwards); unsampled instances pay one atomic
  /// increment at construction and nothing per apply.
  AdaptiveSpmv(const FormatSelector& selector, const Csr& matrix,
               PredictionCache* cache, FeedbackCollector* feedback);

  /// No prediction: stores the matrix in `format` (CSR fallback applies).
  AdaptiveSpmv(const Csr& matrix, Format format);

  /// y = A*x in the chosen format.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// The format actually in use (after any fallback).
  Format format() const { return stored_.format(); }

  /// True when the predicted format refused the matrix and CSR is used.
  bool fell_back() const { return fell_back_; }

  /// True when the prediction came from the cache (no CNN forward ran).
  bool cache_hit() const { return cache_hit_; }

  index_t rows() const { return stored_.rows(); }
  index_t cols() const { return stored_.cols(); }
  std::int64_t bytes() const { return stored_.bytes(); }

  /// One-time costs paid at construction. On a cache hit,
  /// prediction_seconds() is the fingerprint+lookup time only.
  double prediction_seconds() const { return prediction_seconds_; }
  double conversion_seconds() const { return conversion_seconds_; }

  /// The process-wide prediction cache the two-argument constructor uses.
  /// Entries are keyed by selector identity (address) + fingerprint; a
  /// stale entry after a selector is destroyed and another allocated at
  /// the same address can only mis-pick a *format* (a performance, never a
  /// correctness, concern — every format computes the same product).
  static PredictionCache& shared_prediction_cache();

 private:
  struct Probe;  // deferred first-apply feedback probe (defined in .cpp)

  static AnyFormatMatrix convert_or_csr(const Csr& matrix, Format format,
                                        bool& fell_back);

  AnyFormatMatrix stored_;
  bool fell_back_ = false;
  bool cache_hit_ = false;
  double prediction_seconds_ = 0.0;
  double conversion_seconds_ = 0.0;
  std::shared_ptr<Probe> probe_;  // null unless sampled for feedback
};

}  // namespace dnnspmv
