#include "core/represent.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

// Geometry helpers now live in represent.hpp (rep_cell_of/rep_cell_span),
// shared with the streaming builder; local names kept for readability.
inline std::int64_t cell_of(std::int64_t i, std::int64_t n, std::int64_t s) {
  return rep_cell_of(i, n, s);
}
inline std::int64_t cell_span(std::int64_t c, std::int64_t n, std::int64_t s) {
  return rep_cell_span(c, n, s);
}

}  // namespace

std::string rep_mode_name(RepMode m) {
  switch (m) {
    case RepMode::kBinary: return "binary";
    case RepMode::kBinaryDensity: return "binary+density";
    case RepMode::kHistogram: return "histogram";
  }
  DNNSPMV_CHECK_MSG(false, "invalid RepMode");
}

int rep_num_sources(RepMode m) {
  return m == RepMode::kBinary ? 1 : 2;
}

Tensor binary_rep(const Csr& a, std::int64_t s) {
  DNNSPMV_CHECK(s > 0 && a.rows > 0 && a.cols > 0);
  Tensor t({s, s});
  for (index_t r = 0; r < a.rows; ++r) {
    const std::int64_t cr = cell_of(r, a.rows, s);
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      t.at2(cr, cell_of(a.idx[j], a.cols, s)) = 1.0f;
  }
  return t;
}

Tensor density_rep(const Csr& a, std::int64_t s) {
  DNNSPMV_CHECK(s > 0 && a.rows > 0 && a.cols > 0);
  Tensor t({s, s});
  for (index_t r = 0; r < a.rows; ++r) {
    const std::int64_t cr = cell_of(r, a.rows, s);
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      t.at2(cr, cell_of(a.idx[j], a.cols, s)) += 1.0f;
  }
  for (std::int64_t cr = 0; cr < s; ++cr) {
    const std::int64_t rh = cell_span(cr, a.rows, s);
    for (std::int64_t cc = 0; cc < s; ++cc) {
      const std::int64_t cw = cell_span(cc, a.cols, s);
      const std::int64_t block = rh * cw;
      if (block > 0)
        t.at2(cr, cc) /= static_cast<float>(block);
    }
  }
  return t;
}

Tensor row_histogram_raw(const Csr& a, std::int64_t r, std::int64_t bins) {
  DNNSPMV_CHECK(r > 0 && bins > 0 && a.rows > 0 && a.cols > 0);
  Tensor t({r, bins});
  const std::int64_t max_dim = std::max(a.rows, a.cols);
  for (index_t row = 0; row < a.rows; ++row) {
    const std::int64_t hr = cell_of(row, a.rows, r);
    for (std::int64_t j = a.ptr[row]; j < a.ptr[row + 1]; ++j) {
      const std::int64_t dist = std::llabs(
          static_cast<std::int64_t>(a.idx[j]) - row);
      const std::int64_t bin =
          std::min<std::int64_t>(bins - 1, bins * dist / max_dim);
      t.at2(hr, bin) += 1.0f;
    }
  }
  return t;
}

Tensor col_histogram_raw(const Csr& a, std::int64_t r, std::int64_t bins) {
  DNNSPMV_CHECK(r > 0 && bins > 0 && a.rows > 0 && a.cols > 0);
  Tensor t({r, bins});
  const std::int64_t max_dim = std::max(a.rows, a.cols);
  for (index_t row = 0; row < a.rows; ++row) {
    for (std::int64_t j = a.ptr[row]; j < a.ptr[row + 1]; ++j) {
      const index_t col = a.idx[j];
      const std::int64_t hc = cell_of(col, a.cols, r);
      const std::int64_t dist =
          std::llabs(static_cast<std::int64_t>(col) - row);
      const std::int64_t bin =
          std::min<std::int64_t>(bins - 1, bins * dist / max_dim);
      t.at2(hc, bin) += 1.0f;
    }
  }
  return t;
}

Tensor normalize_histogram(Tensor h) {
  // Algorithm 1 normalizes by the matrix maximum. Raw counts span several
  // decades (one dense row can dwarf every other cell), so we log-compress
  // before dividing — information-preserving, but it keeps the small-count
  // structure visible to the convolution filters instead of flushing it
  // toward zero.
  for (std::int64_t i = 0; i < h.size(); ++i)
    h[i] = std::log1p(h[i]);
  const float mx = h.max_abs();
  if (mx > 0.0f) h.scale_(1.0f / mx);
  return h;
}

void density_scale_histogram_into(const Tensor& raw, std::int64_t source_rows,
                                  double count_scale, Tensor& out) {
  DNNSPMV_CHECK(raw.rank() == 2 && source_rows > 0 && count_scale > 0.0);
  const double rows_per_group =
      std::max(1.0, static_cast<double>(source_rows) /
                        static_cast<double>(raw.dim(0)));
  // log1p(64) caps the useful density range at ~64 nnz/row/bin.
  const float scale = static_cast<float>(1.0 / std::log1p(64.0));
  out.ensure2(raw.dim(0), raw.dim(1));
  for (std::int64_t i = 0; i < raw.size(); ++i) {
    // count_scale == 1.0 leaves raw[i] bit-exact, so the streamed exact
    // path reproduces the historical density_scale_histogram() output.
    const double per_row = raw[i] * count_scale / rows_per_group;
    out[i] = std::min(1.0f, static_cast<float>(std::log1p(per_row)) * scale);
  }
}

Tensor density_scale_histogram(Tensor h, std::int64_t source_rows) {
  density_scale_histogram_into(h, source_rows, 1.0, h);
  return h;
}

std::vector<Tensor> make_inputs(const Csr& a, RepMode mode,
                                std::int64_t rep_rows, std::int64_t rep_bins) {
  switch (mode) {
    case RepMode::kBinary:
      return {binary_rep(a, rep_rows)};
    case RepMode::kBinaryDensity:
      return {binary_rep(a, rep_rows), density_rep(a, rep_rows)};
    case RepMode::kHistogram:
      return {density_scale_histogram(row_histogram_raw(a, rep_rows, rep_bins),
                                      a.rows),
              density_scale_histogram(col_histogram_raw(a, rep_rows, rep_bins),
                                      a.cols)};
  }
  DNNSPMV_CHECK_MSG(false, "invalid RepMode");
}

}  // namespace dnnspmv
