#include "core/transfer.hpp"

#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace dnnspmv {

std::string migration_method_name(MigrationMethod m) {
  switch (m) {
    case MigrationMethod::kFromScratch: return "from-scratch";
    case MigrationMethod::kContinuous: return "continuous-evolvement";
    case MigrationMethod::kTopEvolve: return "top-evolvement";
  }
  DNNSPMV_CHECK_MSG(false, "invalid MigrationMethod");
}

MergeNet migrate_model(const CnnSpec& spec, MergeNet& source_model,
                       MigrationMethod method, const Dataset& target_train,
                       const TrainConfig& cfg) {
  MergeNet model = build_cnn(spec);
  if (method != MigrationMethod::kFromScratch)
    copy_params(source_model.params(), model.params());
  if (method == MigrationMethod::kTopEvolve)
    model.freeze_towers();
  else
    model.unfreeze_all();
  if (!target_train.samples.empty())
    train_cnn(model, target_train, num_net_inputs(spec), cfg);
  return model;
}

}  // namespace dnnspmv
