// FormatSelector — the library's public façade.
//
// Wraps the full pipeline of paper Figure 3: given matrices labelled on a
// platform (collect_labels), it normalizes them (RepMode), builds the
// late-merging CNN, trains it, and then predicts the best SpMV format for
// unseen matrices. Models persist to a single file and can be migrated to
// another platform with migrate() (paper §6).
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "core/rep_stream.hpp"
#include "core/represent.hpp"
#include "core/transfer.hpp"
#include "ml/features.hpp"
#include "nn/quant.hpp"
#include "perf/labels.hpp"

namespace dnnspmv {

struct SelectorOptions {
  RepMode mode = RepMode::kHistogram;
  std::int64_t rep_rows = 32;  // rows of the representation
  std::int64_t rep_bins = 16;  // histogram bins (ignored for binary/density)
  // Sampling budget for the streaming representation builder: matrices
  // with more nonzeros than this are represented from a deterministic
  // strided sample instead of a full pass (<= 0 always exact). Applied
  // identically at train and serve time, so representations stay
  // bit-identical across the two.
  std::int64_t rep_sample_nnz = kDefaultRepSampleNnz;
  bool late_merge = true;
  // Post-training int8 quantization of the inference path (DESIGN.md §13):
  // fit() calibrates on the training slice and predictions run the int8
  // kernels; migrate() re-calibrates on the target dataset, so online
  // publishes stay quantized. Rides save/load (v2 weight-set format) and
  // clone(), and is validated by ModelRegistry::publish like the rep
  // geometry.
  bool quantize = false;
  // Representation tensors are normalized and bounded (no outlier tail),
  // so exact-range calibration beats percentile clipping here — it keeps
  // the top of the activation range instead of saturating it.
  QuantConfig quant{.observer = QuantConfig::Observer::kMinMax};
  // K (dense columns) the SpMM head's labels were measured at. Purely
  // descriptive for inference — representations are op-independent — but
  // published models must agree on it (ModelRegistry validates), since a
  // head trained at K=8 answers a K=128 workload with stale crossovers.
  index_t spmm_cols = 32;
  TrainConfig train;
};

/// Builds the CNN-ready dataset from labelled matrices: step 2 of Figure 3.
/// Representations come from the same streaming sampled builder the serve
/// path uses (same rep_sample_nnz => same tensors, bitwise).
Dataset build_dataset(const std::vector<LabeledMatrix>& labeled,
                      const std::vector<Format>& candidates, RepMode mode,
                      std::int64_t rep_rows, std::int64_t rep_bins,
                      std::int64_t rep_sample_nnz = kDefaultRepSampleNnz);

class FormatSelector {
 public:
  explicit FormatSelector(SelectorOptions opts = {});

  /// Full pipeline: normalize + build CNN + train.
  void fit(const std::vector<LabeledMatrix>& labeled,
           std::vector<Format> candidates);

  /// Trains on a pre-built dataset (its candidates become this selector's).
  void fit(const Dataset& train);

  /// Trains the optional SpMM head on SpMM-measured labels (same candidate
  /// set and representation geometry; only the label distribution differs).
  /// Requires fit() first: the SpMV head defines candidates and geometry,
  /// the SpMM head rides along through clone/save/migrate/quantize. After
  /// this, predict*(a, SpOp::kSpmm) routes through the new head.
  void fit_spmm(const std::vector<LabeledMatrix>& labeled);
  void fit_spmm(const Dataset& train);

  /// Whether predict*() can answer for `op`: kSpmv after fit(), kSpmm after
  /// fit_spmm().
  bool supports(SpOp op) const;

  /// Predicted best format for a new matrix.
  ///
  /// Thread safety: predict/predict_index/predict_batch/predict_prepared
  /// may be called concurrently from any number of threads on a trained
  /// selector. MergeNet keeps mutable per-forward scratch (activations for
  /// backward), so inference is internally serialized on a per-selector
  /// mutex; representation-building (prepare_inputs) runs outside the lock
  /// and scales with the callers. Concurrent prediction must not overlap
  /// with fit()/migrate() on the same object.
  Format predict(const Csr& a, SpOp op = SpOp::kSpmv) const;

  /// Index into candidates() instead of the Format enum.
  std::int32_t predict_index(const Csr& a, SpOp op = SpOp::kSpmv) const;

  /// Batched predict: one forward pass over all matrices through the same
  /// batched-tensor path the trainer uses. Element i equals predict(as[i])
  /// exactly (per-sample arithmetic is batch-size invariant).
  std::vector<Format> predict_batch(const std::vector<Csr>& as,
                                    SpOp op = SpOp::kSpmv) const;
  std::vector<std::int32_t> predict_index_batch(
      const std::vector<const Csr*>& as, SpOp op = SpOp::kSpmv) const;

  /// CNN-ready representations of one matrix — the per-request work a
  /// serving layer runs in its client threads. Pure function of the matrix
  /// and options; safe concurrently without the inference lock.
  std::vector<Tensor> prepare_inputs(const Csr& a) const;

  /// Argmax candidate indices for pre-built representations, one batched
  /// forward pass. The micro-batching backend of serve::SelectionService.
  /// `ws` optionally supplies the forward-pass scratch workspace (serve
  /// workers keep one per thread so miss-path inference reuses warm
  /// buffers); null falls back to the net's own.
  std::vector<std::int32_t> predict_prepared(
      const std::vector<std::vector<Tensor>>& prepared, Workspace* ws = nullptr,
      SpOp op = SpOp::kSpmv) const;

  const std::vector<Format>& candidates() const { return candidates_; }

  /// The streaming representation builder prepare_inputs runs — exposed so
  /// serving layers can drive the allocation-free build_into() path with
  /// their own arenas and pooled output buffers.
  const StreamingRepBuilder& rep_builder() const { return rep_builder_; }

  /// Index of `f` in candidates(), or -1 when `f` is not a candidate.
  /// Lets alternate answer paths (the serve layer's FallbackSelector, cost
  /// models) map a Format into this selector's class-index space.
  std::int32_t candidate_index(Format f) const;
  const SelectorOptions& options() const { return opts_; }
  bool trained() const { return net_ != nullptr; }
  MergeNet& net();

  /// Calibrates on `calib` (observer pass over its samples) and converts
  /// the net to int8 inference. Subsequent predictions run the quantized
  /// kernels; the fp32 weights stay untouched (training/migration still
  /// works). Called automatically by fit()/migrate() when
  /// SelectorOptions::quantize is set; public so an already-trained
  /// selector can be quantized after the fact.
  void quantize(const Dataset& calib);
  bool quantized() const { return qws_ != nullptr; }

  /// The quantized weight set, or null when not quantized. Exposed for
  /// serialization tests; treat as read-only.
  const QuantizedWeightSet* quantized_weights() const { return qws_.get(); }

  /// Version of this weight set in its ModelRegistry's numbering: 0 for a
  /// model that was never published (offline training, ad-hoc clones);
  /// >= 1 once stamped by ModelRegistry::publish. Rides clone(), save()
  /// and load(), so a serialized weight set keeps its provenance.
  std::uint64_t model_version() const { return model_version_; }

  /// Deep copy of a trained selector: a fresh MergeNet with identical
  /// architecture and weights and its own inference mutex. Because forward
  /// passes are serialized per selector, N clones give N independent
  /// inference lanes — the per-replica model copies of serve's
  /// ReplicaRouter. O(#params); no retraining.
  FormatSelector clone() const;

  /// Migrates this selector's model to a new platform's labels.
  FormatSelector migrate(MigrationMethod method, const Dataset& target_train,
                         const TrainConfig& cfg) const;

  void save(const std::string& path) const;
  static FormatSelector load(const std::string& path);

 private:
  CnnSpec make_spec() const;
  std::vector<std::vector<Tensor>> calib_batches(const Dataset& calib) const;
  void quantize_spmm(const Dataset& calib);

  friend class ModelRegistry;  // stamps model_version_ at publish time

  SelectorOptions opts_;
  StreamingRepBuilder rep_builder_;  // derived from opts_; keep adjacent
  std::vector<Format> candidates_;
  std::uint64_t model_version_ = 0;
  std::unique_ptr<MergeNet> net_;  // unique_ptr: MergeNet is move-averse
  // Optional SpMM head: same architecture over the same representations,
  // trained on SpMM-measured labels. Shares the inference mutex (forward
  // scratch is per-net, but keeping one lock keeps the serve worker model
  // simple — at most one forward in flight per selector either way).
  std::unique_ptr<MergeNet> spmm_net_;
  // Int8 inference state: the serializable weight set and the compiled
  // executor over net_. Both null on fp32 selectors; rebuilt (never
  // shared) on clone so every inference lane owns its scratch.
  std::unique_ptr<QuantizedWeightSet> qws_;
  std::unique_ptr<QuantizedMergeNet> qnet_;
  std::unique_ptr<QuantizedWeightSet> spmm_qws_;
  std::unique_ptr<QuantizedMergeNet> spmm_qnet_;
  // Serializes forward passes (MergeNet scratch is not re-entrant); in a
  // unique_ptr so the selector stays movable.
  std::unique_ptr<std::mutex> infer_mu_ = std::make_unique<std::mutex>();
};

}  // namespace dnnspmv
