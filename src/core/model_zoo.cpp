#include "core/model_zoo.hpp"

#include "common/error.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/pool.hpp"

namespace dnnspmv {
namespace {

/// Appends the convolutional stack for one tower; returns its flattened
/// output feature count for input ch×h×w.
std::int64_t build_tower(Sequential& tower, std::int64_t ch, std::int64_t h,
                         std::int64_t w, const CnnSpec& spec, Rng& rng) {
  DNNSPMV_CHECK_MSG(h >= 8 && w >= 8, "input " << h << "x" << w
                                               << " too small for the CNN");
  tower.emplace<Conv2D>(ch, spec.conv1_channels, 3, 1, 1, rng);
  tower.emplace<ReLU>();
  tower.emplace<MaxPool2D>(2);
  tower.emplace<Conv2D>(spec.conv1_channels, spec.conv2_channels, 3, 2, 1,
                        rng);
  tower.emplace<ReLU>();
  tower.emplace<MaxPool2D>(2);
  if (h >= 128 && w >= 128) {
    // Third stage, as in the paper's 128×128 network (Figure 10).
    tower.emplace<Conv2D>(spec.conv2_channels, spec.conv2_channels, 3, 2, 1,
                          rng);
    tower.emplace<ReLU>();
    tower.emplace<MaxPool2D>(2);
  }
  const auto out = tower.output_shape({1, ch, h, w});
  return out[1] * out[2] * out[3];
}

}  // namespace

int num_net_inputs(const CnnSpec& spec) {
  return spec.late_merge ? static_cast<int>(spec.input_hw.size()) : 1;
}

MergeNet build_cnn(const CnnSpec& spec) {
  DNNSPMV_CHECK(!spec.input_hw.empty() && spec.num_classes >= 2);
  Rng rng(spec.seed);
  MergeNet net;
  std::int64_t feat = 0;
  if (spec.late_merge) {
    for (const auto& hw : spec.input_hw) {
      Sequential& tower = net.add_tower();
      feat += build_tower(tower, 1, hw[0], hw[1], spec, rng);
      tower.emplace<Flatten>();
    }
  } else {
    for (const auto& hw : spec.input_hw)
      DNNSPMV_CHECK_MSG(hw == spec.input_hw[0],
                        "early merge requires equal input shapes");
    Sequential& tower = net.add_tower();
    feat = build_tower(tower, static_cast<std::int64_t>(spec.input_hw.size()),
                       spec.input_hw[0][0], spec.input_hw[0][1], spec, rng);
    tower.emplace<Flatten>();
  }
  net.head().emplace<Dense>(feat, spec.head_hidden, rng);
  net.head().emplace<ReLU>();
  if (spec.dropout > 0.0)
    net.head().emplace<Dropout>(spec.dropout, rng.next_u64());
  net.head().emplace<Dense>(spec.head_hidden, spec.num_classes, rng);
  return net;
}

}  // namespace dnnspmv
