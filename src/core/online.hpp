// OnlineTrainer — the learning half of the online loop (DESIGN.md §12).
//
//   FeedbackCollector ──drain──▶ replay buffer ──round──▶ fine-tune ──▶
//   (serve/feedback.hpp)          (bounded, newest-kept)  (top evolvement,
//                                                          transfer.cpp)
//                                                              │
//                                    ModelRegistry.publish() ◀─┘
//                                    (version N+1; subscribers hot-swap)
//
// Each training round:
//   1. drains the feedback stream into a bounded replay buffer (newest
//      samples evict oldest — served traffic is the distribution we want);
//   2. derives labels from the measured times (argmin, labels.hpp) —
//      measured ground truth, not model predictions, so rounds cannot
//      collapse into self-confirmation;
//   3. fine-tunes the *current* published model via the paper's §6
//      transfer paths (default top evolvement: conv towers frozen, head
//      retrained — cheap, and the representation geometry is pinned by the
//      registry anyway). The published model itself is never mutated:
//      migrate() builds a fresh network, so versions stay immutable.
//   4. publishes the result; every subscriber adopts on its next staleness
//      check, no pause, in-flight batches finish on their pinned version.
//
// Run it either embedded (start()/stop() spawn a polling thread — the
// serve_demo --online path) or stepped (train_once() from a bench/test
// loop for deterministic rounds).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>

#include "core/model_registry.hpp"
#include "core/trainer.hpp"
#include "core/transfer.hpp"
#include "serve/feedback.hpp"

namespace dnnspmv {

struct OnlineTrainerOptions {
  /// Samples the replay buffer must hold before a round fine-tunes
  /// (rounds below this drain the stream but skip training).
  std::size_t min_batch = 32;
  /// Replay-buffer capacity; oldest samples are evicted past it.
  std::size_t replay_capacity = 512;
  /// Background-thread poll period between rounds (start()/stop() mode).
  std::int64_t poll_interval_ms = 50;
  /// Which §6 transfer path fine-tuning uses. Top evolvement freezes the
  /// conv towers and retrains the head — the cheap option the paper found
  /// sufficient for same-geometry migration.
  MigrationMethod method = MigrationMethod::kTopEvolve;
  /// Per-round fine-tune config (keep epochs small: rounds should be
  /// frequent and cheap, not full retrains).
  TrainConfig train{/*epochs=*/4, /*batch=*/16, /*lr=*/1e-3,
                    /*seed=*/123, /*verbose=*/false};
};

class OnlineTrainer {
 public:
  /// Both `registry` and `feedback` must outlive the trainer. The trainer
  /// is the feedback stream's single consumer — do not drain() elsewhere
  /// while one is attached.
  OnlineTrainer(ModelRegistry& registry, FeedbackCollector& feedback,
                OnlineTrainerOptions opts = {});
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Spawns the background round loop. Idempotent.
  void start();
  /// Stops and joins the loop (also run by the destructor). A round in
  /// progress completes — publish is never torn.
  void stop();

  /// One synchronous round: drain, maybe fine-tune, maybe publish.
  /// Returns true iff a new version was published. Not thread-safe
  /// against a running background loop.
  bool train_once();

  /// Rounds that ran (including ones that skipped training).
  std::uint64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }
  /// Versions this trainer published.
  std::uint64_t published() const {
    return published_n_.load(std::memory_order_relaxed);
  }
  /// Feedback samples accepted into the replay buffer so far.
  std::uint64_t consumed() const {
    return consumed_n_.load(std::memory_order_relaxed);
  }

  const OnlineTrainerOptions& options() const { return opts_; }

 private:
  /// Replay buffer -> Dataset with measured-argmin labels.
  Dataset make_dataset() const;

  ModelRegistry& registry_;
  FeedbackCollector& feedback_;
  OnlineTrainerOptions opts_;

  std::deque<FeedbackSample> replay_;
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> published_n_{0};
  std::atomic<std::uint64_t> consumed_n_{0};

  std::string prefix_;  // "online<N>." in the global obs registry
  obs::Counter& rounds_counter_;
  obs::Counter& published_counter_;
  obs::Counter& consumed_counter_;
  obs::Counter& discarded_counter_;
  obs::Gauge& replay_depth_;

  std::atomic<bool> stop_{false};
  std::thread loop_;
};

}  // namespace dnnspmv
