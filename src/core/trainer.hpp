// Mini-batch CNN training loop (paper Figure 3, step 4).
#pragma once

#include <cstdint>
#include <vector>

#include "core/model_zoo.hpp"
#include "io/dataset.hpp"

namespace dnnspmv {

struct TrainConfig {
  int epochs = 15;
  int batch = 32;
  double lr = 1e-3;
  std::uint64_t seed = 123;
  bool verbose = false;
};

struct TrainHistory {
  std::vector<double> step_loss;   // cross-entropy per optimizer step
  std::vector<double> epoch_loss;  // mean loss per epoch
};

/// Builds the NCHW batch tensors for samples `idx`. When the network has a
/// single tower but samples carry several sources (early merging), the
/// sources are stacked as channels.
std::vector<Tensor> assemble_batch(const Dataset& data,
                                   const std::vector<std::int32_t>& idx,
                                   int net_inputs);

/// Trains in place with Adam; respects frozen parameters.
TrainHistory train_cnn(MergeNet& net, const Dataset& data,
                       int net_inputs, const TrainConfig& cfg);

/// Argmax predictions for every sample. `ws` optionally supplies the
/// scratch workspace for the forward passes (serve workers pass a
/// per-thread one); null falls back to the net's own.
std::vector<std::int32_t> predict_cnn(MergeNet& net, const Dataset& data,
                                      int net_inputs, int batch = 64,
                                      Workspace* ws = nullptr);

/// Fraction of samples predicted correctly.
double accuracy_cnn(MergeNet& net, const Dataset& data, int net_inputs);

}  // namespace dnnspmv
