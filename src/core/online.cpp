#include "core/online.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "perf/labels.hpp"

namespace dnnspmv {
namespace {

std::string next_online_prefix() {
  static std::atomic<int> instance{0};
  return "online" + std::to_string(instance.fetch_add(1)) + ".";
}

bool usable(const FeedbackSample& s, std::size_t num_candidates) {
  if (s.inputs.empty()) return false;
  if (s.format_times.size() != num_candidates) return false;
  return std::any_of(s.format_times.begin(), s.format_times.end(),
                     [](double t) { return std::isfinite(t); });
}

}  // namespace

OnlineTrainer::OnlineTrainer(ModelRegistry& registry,
                             FeedbackCollector& feedback,
                             OnlineTrainerOptions opts)
    : registry_(registry),
      feedback_(feedback),
      opts_(opts),
      prefix_(next_online_prefix()),
      rounds_counter_(obs::MetricsRegistry::global().counter(prefix_ +
                                                             "rounds")),
      published_counter_(
          obs::MetricsRegistry::global().counter(prefix_ + "published")),
      consumed_counter_(obs::MetricsRegistry::global().counter(
          prefix_ + "samples_consumed")),
      discarded_counter_(obs::MetricsRegistry::global().counter(
          prefix_ + "samples_discarded")),
      replay_depth_(
          obs::MetricsRegistry::global().gauge(prefix_ + "replay_depth")) {
  if (opts_.min_batch == 0) opts_.min_batch = 1;
  if (opts_.replay_capacity < opts_.min_batch)
    opts_.replay_capacity = opts_.min_batch;
}

OnlineTrainer::~OnlineTrainer() { stop(); }

void OnlineTrainer::start() {
  if (loop_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      train_once();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.poll_interval_ms));
    }
  });
}

void OnlineTrainer::stop() {
  stop_.store(true, std::memory_order_release);
  if (loop_.joinable()) loop_.join();
}

Dataset OnlineTrainer::make_dataset() const {
  Dataset ds;
  ds.candidates = registry_.candidates();
  ds.samples.reserve(replay_.size());
  for (const FeedbackSample& f : replay_) {
    Sample s;
    s.inputs = f.inputs;
    s.format_times = f.format_times;
    // Measured argmin is the label — ground truth from the traffic itself,
    // exactly how the offline pipeline labels its corpus.
    s.label = best_format_index(f.format_times);
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

bool OnlineTrainer::train_once() {
  rounds_.fetch_add(1, std::memory_order_relaxed);
  rounds_counter_.inc();

  std::vector<FeedbackSample> fresh;
  feedback_.drain(fresh);
  std::size_t accepted = 0;
  const std::size_t ncand = registry_.candidates().size();
  for (FeedbackSample& s : fresh) {
    if (!usable(s, ncand)) {
      discarded_counter_.inc();
      continue;
    }
    replay_.push_back(std::move(s));
    if (replay_.size() > opts_.replay_capacity) replay_.pop_front();
    ++accepted;
  }
  consumed_n_.fetch_add(accepted, std::memory_order_relaxed);
  consumed_counter_.inc(accepted);
  replay_depth_.set(static_cast<double>(replay_.size()));

  // Fine-tune only when this round actually learned something new: no
  // fresh samples means another epoch over the same replay data, which
  // would churn versions without changing behaviour.
  if (accepted == 0 || replay_.size() < opts_.min_batch) return false;

  const Dataset ds = make_dataset();
  // migrate() builds a fresh network (the published version is immutable);
  // top evolvement freezes the towers and retrains the head on the
  // measured labels — paper §6, pointed at served traffic.
  FormatSelector next =
      registry_.current()->migrate(opts_.method, ds, opts_.train);
  registry_.publish(std::move(next));
  published_n_.fetch_add(1, std::memory_order_relaxed);
  published_counter_.inc();
  return true;
}

}  // namespace dnnspmv
