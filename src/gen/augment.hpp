// Corpus augmentation (paper §7.1: "cropping, transforming and randomized
// combinations of the original matrices" grow 2,757 matrices to 9,200).
#pragma once

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace dnnspmv {

/// Submatrix [r0, r0+h) × [c0, c0+w).
Csr crop(const Csr& a, index_t r0, index_t c0, index_t h, index_t w);

/// Random crop keeping at least `min_frac` of each dimension.
Csr random_crop(const Csr& a, double min_frac, Rng& rng);

/// Applies `swaps` random row swaps and `swaps` random column swaps —
/// a mild structural perturbation that keeps coarse patterns.
Csr perturb_permute(const Csr& a, index_t swaps, Rng& rng);

/// Block-diagonal stack: diag(A, B).
Csr block_diag(const Csr& a, const Csr& b);

/// Structural overlay: A + B restricted to A's shape (B entries outside
/// A's bounds are dropped; coincident entries sum).
Csr overlay(const Csr& a, const Csr& b);

/// Scales every value by s (SpMV structure unchanged — sanity tool).
Csr scale_values(const Csr& a, double s);

}  // namespace dnnspmv
