#include "gen/dlmc.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

// Layout of the cached-corpus file; bump when the entry encoding changes.
constexpr char kCorpusMagic[8] = {'D', 'N', 'S', 'P', 'C', 'O', 'R', 'P'};
constexpr std::uint32_t kCorpusVersion = 1;

index_t rand_dim(const DlmcSpec& spec, Rng& rng) {
  const double lo = std::log(static_cast<double>(spec.min_dim));
  const double hi = std::log(static_cast<double>(spec.max_dim));
  return static_cast<index_t>(std::exp(rng.uniform(lo, hi)));
}

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(is);
}

template <typename T>
bool read_vec(std::ifstream& is, std::size_t n, std::vector<T>* v) {
  v->resize(n);
  is.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(is);
}

}  // namespace

Csr gen_pruned_random(index_t rows, index_t cols, double density, Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && density > 0.0 && density <= 1.0);
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(density * rows * cols * 1.05));
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c)
      if (rng.bernoulli(density)) ts.push_back({r, c, rng.normal()});
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_pruned_magnitude(index_t rows, index_t cols, double density,
                         Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && density > 0.0 && density <= 1.0);
  const std::size_t total =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  std::vector<double> w(total);
  for (double& v : w) v = rng.normal();
  // Global magnitude threshold: |w| of the keep-budget'th largest weight.
  const std::size_t keep = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::llround(density * total)), 1, total);
  std::vector<double> mag(total);
  for (std::size_t i = 0; i < total; ++i) mag[i] = std::fabs(w[i]);
  std::nth_element(mag.begin(), mag.begin() + (keep - 1), mag.end(),
                   std::greater<double>());
  const double thresh = mag[keep - 1];
  std::vector<Triplet> ts;
  ts.reserve(keep);
  for (index_t r = 0; r < rows; ++r) {
    const double* wr = w.data() + static_cast<std::size_t>(r) * cols;
    for (index_t c = 0; c < cols; ++c)
      if (std::fabs(wr[c]) >= thresh) ts.push_back({r, c, wr[c]});
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_pruned_block(index_t rows, index_t cols, index_t block,
                     double density, Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && block >= 1 && density > 0.0 &&
                density <= 1.0);
  const index_t brows = (rows + block - 1) / block;
  const index_t bcols = (cols + block - 1) / block;
  const std::size_t ntiles =
      static_cast<std::size_t>(brows) * static_cast<std::size_t>(bcols);
  // Tile scores stand in for the L2 norm of each tile's weights; only the
  // top `density` fraction of tiles survives.
  std::vector<double> score(ntiles);
  for (double& s : score) s = rng.uniform();
  const std::size_t keep = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::llround(density * ntiles)), 1, ntiles);
  std::vector<double> sorted = score;
  std::nth_element(sorted.begin(), sorted.begin() + (keep - 1), sorted.end(),
                   std::greater<double>());
  const double thresh = sorted[keep - 1];
  std::vector<Triplet> ts;
  for (index_t br = 0; br < brows; ++br)
    for (index_t bc = 0; bc < bcols; ++bc) {
      if (score[static_cast<std::size_t>(br) * bcols + bc] < thresh) continue;
      for (index_t i = 0; i < block; ++i) {
        const index_t r = br * block + i;
        if (r >= rows) break;
        for (index_t j = 0; j < block; ++j) {
          const index_t c = bc * block + j;
          if (c >= cols) break;
          ts.push_back({r, c, rng.normal()});
        }
      }
    }
  return csr_from_triplets(rows, cols, std::move(ts));
}

std::vector<CorpusEntry> build_dlmc_corpus(const DlmcSpec& spec) {
  DNNSPMV_CHECK(spec.count > 0 && spec.min_dim >= 8 &&
                spec.max_dim >= spec.min_dim && !spec.densities.empty());
  Rng rng(spec.seed);
  std::vector<CorpusEntry> corpus;
  corpus.reserve(static_cast<std::size_t>(spec.count));
  for (std::int64_t i = 0; i < spec.count; ++i) {
    // Cycle the density grid so every density appears at every count; the
    // pruning method is sampled so the mix matches the collection's
    // random/magnitude-heavy skew.
    const double density =
        spec.densities[static_cast<std::size_t>(i) % spec.densities.size()];
    const index_t m = rand_dim(spec, rng);
    const index_t n = rand_dim(spec, rng);
    const double u = rng.uniform();
    if (u < 0.35) {
      corpus.push_back({gen_pruned_random(m, n, density, rng),
                        GenClass::kPrunedRandom});
    } else if (u < 0.70) {
      corpus.push_back({gen_pruned_magnitude(m, n, density, rng),
                        GenClass::kPrunedMagnitude});
    } else {
      const index_t block = rng.bernoulli(0.5) ? 4 : 8;
      corpus.push_back({gen_pruned_block(m, n, block, density, rng),
                        GenClass::kPrunedBlock});
    }
  }
  return corpus;
}

bool save_corpus(const std::string& path,
                 const std::vector<CorpusEntry>& corpus) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(kCorpusMagic, sizeof(kCorpusMagic));
  write_pod(os, kCorpusVersion);
  write_pod(os, static_cast<std::uint64_t>(corpus.size()));
  for (const CorpusEntry& e : corpus) {
    write_pod(os, static_cast<std::int32_t>(e.gen_class));
    write_pod(os, e.matrix.rows);
    write_pod(os, e.matrix.cols);
    write_pod(os, static_cast<std::int64_t>(e.matrix.idx.size()));
    os.write(reinterpret_cast<const char*>(e.matrix.ptr.data()),
             static_cast<std::streamsize>(e.matrix.ptr.size() *
                                          sizeof(std::int64_t)));
    os.write(reinterpret_cast<const char*>(e.matrix.idx.data()),
             static_cast<std::streamsize>(e.matrix.idx.size() *
                                          sizeof(index_t)));
    os.write(reinterpret_cast<const char*>(e.matrix.val.data()),
             static_cast<std::streamsize>(e.matrix.val.size() *
                                          sizeof(double)));
  }
  return static_cast<bool>(os);
}

bool load_corpus(const std::string& path, std::vector<CorpusEntry>* out) {
  out->clear();
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[sizeof(kCorpusMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kCorpusMagic, sizeof(magic)) != 0)
    return false;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!read_pod(is, &version) || version != kCorpusVersion ||
      !read_pod(is, &count))
    return false;
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int32_t cls = 0;
    CorpusEntry e;
    std::int64_t nnz = 0;
    if (!read_pod(is, &cls) || cls < 0 || cls >= kNumGenClasses ||
        !read_pod(is, &e.matrix.rows) || !read_pod(is, &e.matrix.cols) ||
        !read_pod(is, &nnz) || e.matrix.rows <= 0 || e.matrix.cols <= 0 ||
        nnz < 0) {
      out->clear();
      return false;
    }
    e.gen_class = static_cast<GenClass>(cls);
    if (!read_vec(is, static_cast<std::size_t>(e.matrix.rows) + 1,
                  &e.matrix.ptr) ||
        !read_vec(is, static_cast<std::size_t>(nnz), &e.matrix.idx) ||
        !read_vec(is, static_cast<std::size_t>(nnz), &e.matrix.val) ||
        e.matrix.ptr.front() != 0 || e.matrix.ptr.back() != nnz) {
      out->clear();
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace dnnspmv
