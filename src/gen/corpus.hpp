// Corpus builder: a reproducible mix of generator classes plus augmented
// derivatives, standing in for the paper's SuiteSparse-derived 9,200-matrix
// set (DESIGN.md §2).
#pragma once

#include <vector>

#include "gen/generators.hpp"

namespace dnnspmv {

struct CorpusEntry {
  Csr matrix;
  GenClass gen_class;
};

struct CorpusSpec {
  std::int64_t count = 1200;
  index_t min_dim = 128;
  index_t max_dim = 1024;
  double derived_frac = 0.30;  // fraction produced by augmenting base ones
  std::uint64_t seed = 42;
};

/// Builds `spec.count` matrices. Class mix is fixed by the seed; the
/// structural parameters of each matrix are randomized within class-typical
/// ranges so no two matrices are identical.
std::vector<CorpusEntry> build_corpus(const CorpusSpec& spec);

}  // namespace dnnspmv
