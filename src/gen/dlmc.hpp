// DLMC-style pruned-weight generators.
//
// The Deep Learning Matrix Collection (Gale et al.) holds the sparse weight
// tensors left behind by pruning transformer/ResNet layers: moderate
// densities (2–50%), near-uniform row lengths for random/magnitude pruning,
// and dense sub-blocks for structured pruning. These matrices feed SpMM
// (activations have K columns), not SpMV, and their format winners differ —
// which is exactly the traffic the op-aware selector has to handle. The
// three generators below synthesize those structure classes at fixed
// densities, mirroring the spmm/spmv split of the upstream `dlmc/`
// benchmark suite.
#pragma once

#include <string>
#include <vector>

#include "gen/corpus.hpp"

namespace dnnspmv {

/// Unstructured random pruning: every weight survives i.i.d. with
/// probability `density`.
Csr gen_pruned_random(index_t rows, index_t cols, double density, Rng& rng);

/// Magnitude pruning: draw a dense N(0,1) weight matrix and keep the top
/// `density` fraction by |w|. Row lengths concentrate around
/// density*cols but fluctuate with the weight draw, like real DLMC layers.
Csr gen_pruned_magnitude(index_t rows, index_t cols, double density,
                         Rng& rng);

/// Structured block pruning: score `block`×`block` tiles by their L2 norm
/// and keep the top `density` fraction of tiles, each kept tile fully
/// dense (the BSR-friendly end of the DLMC spectrum).
Csr gen_pruned_block(index_t rows, index_t cols, index_t block,
                     double density, Rng& rng);

struct DlmcSpec {
  std::int64_t count = 300;
  index_t min_dim = 128;
  index_t max_dim = 1024;
  std::uint64_t seed = 42;
  /// The fixed density grid the collection is published at.
  std::vector<double> densities = {0.5, 0.3, 0.2, 0.1, 0.05, 0.02};
};

/// Builds `spec.count` pruned-weight matrices cycling through the pruning
/// methods and density grid, with log-uniform layer shapes.
std::vector<CorpusEntry> build_dlmc_corpus(const DlmcSpec& spec);

/// Binary corpus (de)serialization so CI can cache the generated slice
/// between runs (keyed on a hash of the generator sources). Returns false
/// on open failure; load also returns false on a corrupt or
/// version-mismatched file, leaving `out` empty.
bool save_corpus(const std::string& path,
                 const std::vector<CorpusEntry>& corpus);
bool load_corpus(const std::string& path, std::vector<CorpusEntry>* out);

}  // namespace dnnspmv
