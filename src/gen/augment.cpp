#include "gen/augment.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace dnnspmv {

Csr crop(const Csr& a, index_t r0, index_t c0, index_t h, index_t w) {
  DNNSPMV_CHECK(r0 >= 0 && c0 >= 0 && h > 0 && w > 0);
  DNNSPMV_CHECK(r0 + h <= a.rows && c0 + w <= a.cols);
  std::vector<Triplet> ts;
  for (index_t r = r0; r < r0 + h; ++r) {
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j) {
      const index_t c = a.idx[j];
      if (c >= c0 && c < c0 + w)
        ts.push_back({r - r0, c - c0, a.val[j]});
    }
  }
  return csr_from_triplets(h, w, std::move(ts));
}

Csr random_crop(const Csr& a, double min_frac, Rng& rng) {
  DNNSPMV_CHECK(min_frac > 0.0 && min_frac <= 1.0);
  const index_t h = std::max<index_t>(
      1, static_cast<index_t>(a.rows * rng.uniform(min_frac, 1.0)));
  const index_t w = std::max<index_t>(
      1, static_cast<index_t>(a.cols * rng.uniform(min_frac, 1.0)));
  const index_t r0 =
      static_cast<index_t>(rng.uniform_int(0, a.rows - h));
  const index_t c0 =
      static_cast<index_t>(rng.uniform_int(0, a.cols - w));
  return crop(a, r0, c0, h, w);
}

Csr perturb_permute(const Csr& a, index_t swaps, Rng& rng) {
  std::vector<index_t> rperm(static_cast<std::size_t>(a.rows));
  std::vector<index_t> cperm(static_cast<std::size_t>(a.cols));
  std::iota(rperm.begin(), rperm.end(), 0);
  std::iota(cperm.begin(), cperm.end(), 0);
  for (index_t s = 0; s < swaps; ++s) {
    if (a.rows > 1)
      std::swap(rperm[rng.uniform_u64(static_cast<std::uint64_t>(a.rows))],
                rperm[rng.uniform_u64(static_cast<std::uint64_t>(a.rows))]);
    if (a.cols > 1)
      std::swap(cperm[rng.uniform_u64(static_cast<std::uint64_t>(a.cols))],
                cperm[rng.uniform_u64(static_cast<std::uint64_t>(a.cols))]);
  }
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.rows; ++r)
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      ts.push_back({rperm[r], cperm[a.idx[j]], a.val[j]});
  return csr_from_triplets(a.rows, a.cols, std::move(ts));
}

Csr block_diag(const Csr& a, const Csr& b) {
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t r = 0; r < a.rows; ++r)
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      ts.push_back({r, a.idx[j], a.val[j]});
  for (index_t r = 0; r < b.rows; ++r)
    for (std::int64_t j = b.ptr[r]; j < b.ptr[r + 1]; ++j)
      ts.push_back({a.rows + r, a.cols + b.idx[j], b.val[j]});
  return csr_from_triplets(a.rows + b.rows, a.cols + b.cols, std::move(ts));
}

Csr overlay(const Csr& a, const Csr& b) {
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t r = 0; r < a.rows; ++r)
    for (std::int64_t j = a.ptr[r]; j < a.ptr[r + 1]; ++j)
      ts.push_back({r, a.idx[j], a.val[j]});
  for (index_t r = 0; r < std::min(a.rows, b.rows); ++r)
    for (std::int64_t j = b.ptr[r]; j < b.ptr[r + 1]; ++j)
      if (b.idx[j] < a.cols) ts.push_back({r, b.idx[j], b.val[j]});
  return csr_from_triplets(a.rows, a.cols, std::move(ts));
}

Csr scale_values(const Csr& a, double s) {
  Csr out = a;
  for (double& v : out.val) v *= s;
  return out;
}

}  // namespace dnnspmv
