#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

double rand_val(Rng& rng) { return rng.uniform(0.5, 1.5); }

/// Draws `k` distinct columns in [0, cols) into `out` (sorted).
void distinct_cols(index_t cols, index_t k, Rng& rng,
                   std::vector<index_t>& out) {
  out.clear();
  if (k >= cols) {
    for (index_t c = 0; c < cols; ++c) out.push_back(c);
    return;
  }
  std::unordered_set<index_t> seen;
  while (static_cast<index_t>(out.size()) < k) {
    const auto c = static_cast<index_t>(rng.uniform_u64(
        static_cast<std::uint64_t>(cols)));
    if (seen.insert(c).second) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

std::string gen_class_name(GenClass c) {
  switch (c) {
    case GenClass::kBanded: return "banded";
    case GenClass::kMultiDiag: return "multidiag";
    case GenClass::kUniformRows: return "uniform_rows";
    case GenClass::kPowerLaw: return "powerlaw";
    case GenClass::kBlock: return "block";
    case GenClass::kHypersparse: return "hypersparse";
    case GenClass::kDenseRows: return "dense_rows";
    case GenClass::kRmat: return "rmat";
    case GenClass::kDerived: return "derived";
    case GenClass::kReal: return "real";
    case GenClass::kPrunedRandom: return "pruned_random";
    case GenClass::kPrunedMagnitude: return "pruned_magnitude";
    case GenClass::kPrunedBlock: return "pruned_block";
  }
  DNNSPMV_CHECK_MSG(false, "invalid GenClass");
}

Csr gen_banded(index_t rows, index_t cols, index_t band, double fill,
               Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && band >= 0);
  std::vector<Triplet> ts;
  for (index_t r = 0; r < rows; ++r) {
    const index_t c0 = std::max<index_t>(0, r - band);
    const index_t c1 = std::min<index_t>(cols - 1, r + band);
    for (index_t c = c0; c <= c1; ++c)
      if (rng.bernoulli(fill)) ts.push_back({r, c, rand_val(rng)});
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_multidiag(index_t rows, index_t cols, index_t ndiags, double fill,
                  Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && ndiags >= 1);
  std::vector<index_t> offsets = {0};
  std::unordered_set<index_t> seen = {0};
  // Keep offsets within a quarter of the span so diagonals are only mildly
  // truncated at the matrix edge (heavily clipped diagonals would drag the
  // effective DIA fill toward the DIA/CSR crossover for every matrix).
  const index_t span = std::max<index_t>(1, (std::min(rows, cols) - 1) / 4);
  while (static_cast<index_t>(offsets.size()) < ndiags && span > 0) {
    const auto off =
        static_cast<index_t>(rng.uniform_int(-span, span));
    if (seen.insert(off).second) offsets.push_back(off);
  }
  std::vector<Triplet> ts;
  for (index_t off : offsets) {
    const index_t r0 = std::max<index_t>(0, -off);
    const index_t r1 = std::min<index_t>(rows, cols - off);
    for (index_t r = r0; r < r1; ++r)
      if (rng.bernoulli(fill)) ts.push_back({r, r + off, rand_val(rng)});
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_uniform_rows(index_t rows, index_t cols, index_t nnz_per_row,
                     index_t jitter, Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && nnz_per_row >= 0);
  std::vector<Triplet> ts;
  std::vector<index_t> cbuf;
  for (index_t r = 0; r < rows; ++r) {
    const index_t k = std::clamp<index_t>(
        nnz_per_row +
            static_cast<index_t>(jitter > 0 ? rng.uniform_int(-jitter, jitter)
                                            : 0),
        0, cols);
    distinct_cols(cols, k, rng, cbuf);
    for (index_t c : cbuf) ts.push_back({r, c, rand_val(rng)});
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_powerlaw(index_t rows, index_t cols, double mean_nnz, double alpha,
                 Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && alpha > 1.0);
  // Pareto with xm chosen so the mean is mean_nnz: mean = alpha*xm/(alpha-1).
  const double xm = mean_nnz * (alpha - 1.0) / alpha;
  std::vector<Triplet> ts;
  std::vector<index_t> cbuf;
  for (index_t r = 0; r < rows; ++r) {
    const double u = std::max(rng.uniform(), 1e-12);
    const double len = xm / std::pow(u, 1.0 / alpha);
    const index_t k = std::clamp<index_t>(
        static_cast<index_t>(std::lround(len)), 0, cols);
    distinct_cols(cols, k, rng, cbuf);
    for (index_t c : cbuf) ts.push_back({r, c, rand_val(rng)});
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_block(index_t rows, index_t cols, double blocks_per_row,
              double inner_fill, Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && blocks_per_row >= 0 &&
                inner_fill > 0.0 && inner_fill <= 1.0);
  const index_t brows = (rows + 3) / 4;
  const index_t bcols = (cols + 3) / 4;
  std::vector<Triplet> ts;
  std::vector<index_t> bbuf;
  for (index_t br = 0; br < brows; ++br) {
    // Poisson-ish block count around blocks_per_row.
    const index_t nb = std::clamp<index_t>(
        static_cast<index_t>(
            std::lround(blocks_per_row * rng.uniform(0.5, 1.5))),
        1, bcols);
    distinct_cols(bcols, nb, rng, bbuf);
    for (index_t bc : bbuf) {
      for (index_t i = 0; i < 4; ++i) {
        const index_t r = br * 4 + i;
        if (r >= rows) break;
        for (index_t j = 0; j < 4; ++j) {
          const index_t c = bc * 4 + j;
          if (c >= cols) break;
          if (rng.bernoulli(inner_fill)) ts.push_back({r, c, rand_val(rng)});
        }
      }
    }
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_hypersparse(index_t rows, index_t cols, std::int64_t nnz, Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0 && nnz >= 0);
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(nnz));
  for (std::int64_t i = 0; i < nnz; ++i) {
    const auto r = static_cast<index_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(rows)));
    const auto c = static_cast<index_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(cols)));
    ts.push_back({r, c, rand_val(rng)});  // duplicates merge in csr builder
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_dense_rows(index_t rows, index_t cols, index_t base_nnz,
                   index_t n_dense, index_t dense_len, Rng& rng) {
  DNNSPMV_CHECK(rows > 0 && cols > 0);
  std::vector<Triplet> ts;
  std::vector<index_t> cbuf;
  std::unordered_set<index_t> dense_rows;
  while (static_cast<index_t>(dense_rows.size()) <
         std::min<index_t>(n_dense, rows)) {
    dense_rows.insert(static_cast<index_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(rows))));
  }
  for (index_t r = 0; r < rows; ++r) {
    const index_t k = dense_rows.count(r)
                          ? std::min<index_t>(dense_len, cols)
                          : std::min<index_t>(base_nnz, cols);
    distinct_cols(cols, k, rng, cbuf);
    for (index_t c : cbuf) ts.push_back({r, c, rand_val(rng)});
  }
  return csr_from_triplets(rows, cols, std::move(ts));
}

Csr gen_rmat(index_t scale, std::int64_t nnz, double a, double b, double c,
             Rng& rng) {
  DNNSPMV_CHECK(scale >= 1 && scale <= 20);
  DNNSPMV_CHECK(a + b + c < 1.0);
  const index_t n = static_cast<index_t>(1) << scale;
  std::vector<Triplet> ts;
  ts.reserve(static_cast<std::size_t>(nnz));
  for (std::int64_t e = 0; e < nnz; ++e) {
    index_t r = 0, col = 0;
    for (index_t lvl = 0; lvl < scale; ++lvl) {
      const double u = rng.uniform();
      const bool down = (u >= a + b);         // lower half
      const bool right = (u >= a && u < a + b) || (u >= a + b + c);
      r = (r << 1) | (down ? 1 : 0);
      col = (col << 1) | (right ? 1 : 0);
    }
    ts.push_back({r, col, rand_val(rng)});
  }
  return csr_from_triplets(n, n, std::move(ts));
}

}  // namespace dnnspmv
