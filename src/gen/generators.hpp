// Synthetic sparse-matrix generators.
//
// The paper's corpus is 2,757 SuiteSparse matrices plus derived variants
// (~9,200 total). Offline we synthesize a corpus that spans the same
// structural axes those matrices cover — and that make different storage
// formats win: diagonal structure (DIA), uniform row lengths (ELL), skewed
// row lengths (CSR/CSR5/HYB), dense 4×4 blocks (BSR), and extreme sparsity
// (COO). Class tags are carried for analysis only; labels always come from
// measured/modelled SpMV time (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace dnnspmv {

enum class GenClass : std::int32_t {
  kBanded = 0,      // contiguous band around the principal diagonal
  kMultiDiag = 1,   // a handful of scattered, well-filled diagonals
  kUniformRows = 2, // near-constant nonzeros per row, random columns
  kPowerLaw = 3,    // Pareto row lengths (scale-free graphs)
  kBlock = 4,       // dense 4×4 blocks at random block positions
  kHypersparse = 5, // nnz << rows, isolated entries
  kDenseRows = 6,   // uniform base plus a few very long rows
  kRmat = 7,        // recursive Kronecker-style skewed graph
  kDerived = 8,     // produced by augmentation of another matrix
  kReal = 9,        // read from a MatrixMarket file
  // DLMC-style pruned deep-learning weight matrices (src/gen/dlmc.hpp).
  kPrunedRandom = 10,     // Bernoulli mask at a fixed density
  kPrunedMagnitude = 11,  // keep the top-|w| fraction of dense weights
  kPrunedBlock = 12,      // keep the top-scoring dense sub-blocks
};

constexpr std::int32_t kNumGenClasses = 13;

std::string gen_class_name(GenClass c);

/// Band of half-width `band` around the diagonal; each in-band entry is
/// present with probability `fill`.
Csr gen_banded(index_t rows, index_t cols, index_t band, double fill,
               Rng& rng);

/// `ndiags` distinct diagonals (principal always included), each filled with
/// probability `fill`.
Csr gen_multidiag(index_t rows, index_t cols, index_t ndiags, double fill,
                  Rng& rng);

/// Each row gets nnz_per_row ± jitter entries at uniform random columns.
Csr gen_uniform_rows(index_t rows, index_t cols, index_t nnz_per_row,
                     index_t jitter, Rng& rng);

/// Row lengths ~ Pareto(alpha) scaled to `mean_nnz`, clamped to [0, cols].
Csr gen_powerlaw(index_t rows, index_t cols, double mean_nnz, double alpha,
                 Rng& rng);

/// Random 4×4 blocks: `blocks_per_row` blocks per block-row on average,
/// each block `inner_fill` dense.
Csr gen_block(index_t rows, index_t cols, double blocks_per_row,
              double inner_fill, Rng& rng);

/// `nnz` isolated entries scattered uniformly.
Csr gen_hypersparse(index_t rows, index_t cols, std::int64_t nnz, Rng& rng);

/// Uniform base of `base_nnz` per row plus `n_dense` rows of `dense_len`.
Csr gen_dense_rows(index_t rows, index_t cols, index_t base_nnz,
                   index_t n_dense, index_t dense_len, Rng& rng);

/// R-MAT recursive generator (a,b,c,d quadrant probabilities).
Csr gen_rmat(index_t scale, std::int64_t nnz, double a, double b, double c,
             Rng& rng);

}  // namespace dnnspmv
