#include "gen/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "gen/augment.hpp"

namespace dnnspmv {
namespace {

index_t rand_dim(const CorpusSpec& spec, Rng& rng) {
  // Log-uniform between min and max so small and large matrices both appear.
  const double lo = std::log(static_cast<double>(spec.min_dim));
  const double hi = std::log(static_cast<double>(spec.max_dim));
  return static_cast<index_t>(std::exp(rng.uniform(lo, hi)));
}

CorpusEntry make_base(const CorpusSpec& spec, Rng& rng) {
  // Class weights loosely follow the label skew the paper reports in
  // Table 2 (CSR-friendly matrices dominate real collections).
  const double u = rng.uniform();
  const index_t m = rand_dim(spec, rng);
  const index_t n = rand_dim(spec, rng);
  // Real collections cluster away from format-crossover boundaries, so
  // fills/jitters are sampled bimodally: mostly deep inside a format's
  // comfort zone, with a thin boundary population.
  if (u < 0.14) {
    const double fill =
        rng.bernoulli(0.75) ? rng.uniform(0.8, 1.0) : rng.uniform(0.5, 0.8);
    return {gen_banded(m, m, static_cast<index_t>(rng.uniform_int(1, 8)),
                       fill, rng),
            GenClass::kBanded};
  }
  if (u < 0.26) {
    const double fill =
        rng.bernoulli(0.75) ? rng.uniform(0.8, 1.0) : rng.uniform(0.55, 0.8);
    return {gen_multidiag(m, m,
                          static_cast<index_t>(rng.uniform_int(3, 12)),
                          fill, rng),
            GenClass::kMultiDiag};
  }
  if (u < 0.44) {
    const index_t jitter =
        rng.bernoulli(0.7) ? 0
                           : static_cast<index_t>(rng.uniform_int(1, 2));
    return {gen_uniform_rows(m, n,
                             static_cast<index_t>(rng.uniform_int(4, 24)),
                             jitter, rng),
            GenClass::kUniformRows};
  }
  if (u < 0.66) {
    return {gen_powerlaw(m, n, rng.uniform(4.0, 16.0),
                         rng.uniform(1.3, 2.5), rng),
            GenClass::kPowerLaw};
  }
  if (u < 0.78) {
    return {gen_block(m, n, rng.uniform(1.0, 6.0), rng.uniform(0.8, 1.0),
                      rng),
            GenClass::kBlock};
  }
  if (u < 0.86) {
    const std::int64_t nnz =
        std::max<std::int64_t>(8, static_cast<std::int64_t>(m) / 4);
    return {gen_hypersparse(m, n, nnz, rng), GenClass::kHypersparse};
  }
  if (u < 0.94) {
    return {gen_dense_rows(m, n,
                           static_cast<index_t>(rng.uniform_int(3, 10)),
                           static_cast<index_t>(rng.uniform_int(2, 8)),
                           std::min<index_t>(n, static_cast<index_t>(
                                                    rng.uniform_int(64, 256))),
                           rng),
            GenClass::kDenseRows};
  }
  // R-MAT: scale derived from requested dims.
  index_t scale = 7;
  while ((static_cast<index_t>(1) << (scale + 1)) <= spec.max_dim &&
         scale < 12)
    ++scale;
  scale = static_cast<index_t>(rng.uniform_int(7, scale));
  const std::int64_t nnz = (static_cast<std::int64_t>(1) << scale) *
                           rng.uniform_int(4, 12);
  return {gen_rmat(scale, nnz, 0.45, 0.22, 0.22, rng), GenClass::kRmat};
}

CorpusEntry derive(const CorpusEntry& base, const CorpusSpec& spec,
                   Rng& rng) {
  const double u = rng.uniform();
  const Csr& a = base.matrix;
  if (u < 0.4 && a.rows > 8 && a.cols > 8) {
    return {random_crop(a, 0.4, rng), GenClass::kDerived};
  }
  if (u < 0.7) {
    const auto swaps = static_cast<index_t>(
        std::max<std::int64_t>(1, a.rows / 32));
    return {perturb_permute(a, swaps, rng), GenClass::kDerived};
  }
  // Randomized combination with a fresh base matrix.
  CorpusEntry other = make_base(spec, rng);
  if (rng.bernoulli(0.5) &&
      static_cast<std::int64_t>(a.rows) + other.matrix.rows <=
          2 * spec.max_dim) {
    return {block_diag(a, other.matrix), GenClass::kDerived};
  }
  return {overlay(a, other.matrix), GenClass::kDerived};
}

}  // namespace

std::vector<CorpusEntry> build_corpus(const CorpusSpec& spec) {
  DNNSPMV_CHECK(spec.count > 0 && spec.min_dim >= 8 &&
                spec.max_dim >= spec.min_dim);
  Rng rng(spec.seed);
  std::vector<CorpusEntry> corpus;
  corpus.reserve(static_cast<std::size_t>(spec.count));
  const auto n_base = static_cast<std::int64_t>(
      static_cast<double>(spec.count) * (1.0 - spec.derived_frac));
  for (std::int64_t i = 0; i < n_base; ++i)
    corpus.push_back(make_base(spec, rng));
  while (static_cast<std::int64_t>(corpus.size()) < spec.count) {
    const auto pick = rng.uniform_u64(corpus.size());
    corpus.push_back(derive(corpus[static_cast<std::size_t>(pick)], spec,
                            rng));
  }
  return corpus;
}

}  // namespace dnnspmv
