// Error taxonomy and checking macros used across the library.
//
// Every throwing path raises DnnspmvError, which derives from
// std::runtime_error (so pre-taxonomy call sites that catch the base type
// keep working) and carries a machine-readable errc so callers can branch
// on the failure class instead of parsing what() strings:
//
//   try { service.predict(a); }
//   catch (const DnnspmvError& e) {
//     if (e.code() == errc::service_shutdown) resubmit_elsewhere();
//   }
//
// DNNSPMV_CHECK throws with source file/line context; it stays active in
// release builds because almost every failure it guards (shape mismatches,
// malformed files, invalid formats) is a data error, not a programming
// error. Parsers (io/mmio) additionally put the *input's* path and line
// number in what().
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dnnspmv {

/// Failure classes. Keep the list short: a code is only worth adding when
/// some caller would plausibly branch on it.
enum class errc {
  ok = 0,
  invalid_argument,   // caller broke an API contract
  data_error,         // malformed or inconsistent data (default for checks)
  parse_error,        // unparseable input file (mmio, model files)
  io_error,           // filesystem open/read/write failure
  not_trained,        // predict/save/migrate before fit() or load()
  service_shutdown,   // request submitted after SelectionService::shutdown()
  deadline_exceeded,  // request expired before a worker could serve it
  fault_injected,     // failure injected by the serve-layer fault hook
};

inline const char* errc_name(errc c) {
  switch (c) {
    case errc::ok: return "ok";
    case errc::invalid_argument: return "invalid_argument";
    case errc::data_error: return "data_error";
    case errc::parse_error: return "parse_error";
    case errc::io_error: return "io_error";
    case errc::not_trained: return "not_trained";
    case errc::service_shutdown: return "service_shutdown";
    case errc::deadline_exceeded: return "deadline_exceeded";
    case errc::fault_injected: return "fault_injected";
  }
  return "unknown";
}

class DnnspmvError : public std::runtime_error {
 public:
  DnnspmvError(errc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  errc code() const noexcept { return code_; }

 private:
  errc code_;
};

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg,
                                             errc code = errc::data_error) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw DnnspmvError(code, os.str());
}

}  // namespace dnnspmv

#define DNNSPMV_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dnnspmv::throw_check_failure(#cond, __FILE__, __LINE__, {});       \
  } while (0)

#define DNNSPMV_CHECK_MSG(cond, msg)                                       \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::dnnspmv::throw_check_failure(#cond, __FILE__, __LINE__, os_.str());\
    }                                                                      \
  } while (0)

// Like DNNSPMV_CHECK_MSG but tags the thrown DnnspmvError with a specific
// errc instead of the data_error default.
#define DNNSPMV_CHECK_ERRC(cond, code, msg)                                \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::dnnspmv::throw_check_failure(#cond, __FILE__, __LINE__, os_.str(), \
                                     code);                                \
    }                                                                      \
  } while (0)
