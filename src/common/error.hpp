// Error-checking macros used across the library.
//
// DNNSPMV_CHECK throws std::runtime_error with file/line context; it stays
// active in release builds because almost every failure it guards (shape
// mismatches, malformed files, invalid formats) is a data error, not a
// programming error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dnnspmv {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace dnnspmv

#define DNNSPMV_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dnnspmv::throw_check_failure(#cond, __FILE__, __LINE__, {});       \
  } while (0)

#define DNNSPMV_CHECK_MSG(cond, msg)                                       \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::dnnspmv::throw_check_failure(#cond, __FILE__, __LINE__, os_.str());\
    }                                                                      \
  } while (0)
