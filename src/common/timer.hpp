// Wall-clock timing helpers for kernel measurement.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace dnnspmv {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Times `fn` robustly: runs `warmup` unmeasured calls, then `reps` measured
/// calls, and returns the minimum per-call time in seconds. The minimum is
/// the standard estimator for kernel benchmarking because measurement noise
/// is strictly additive.
double time_kernel(const std::function<void()>& fn, int warmup = 1,
                   int reps = 5);

}  // namespace dnnspmv
