#include "common/cli.hpp"

#include "common/error.hpp"

namespace dnnspmv {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DNNSPMV_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare flag == boolean true
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double def) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return std::stod(it->second);
}

std::string Cli::get_string(const std::string& name, const std::string& def) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return it->second;
}

bool Cli::get_bool(const std::string& name, bool def) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Cli::check_unused() const {
  for (const auto& [name, value] : flags_) {
    DNNSPMV_CHECK_MSG(used_.count(name), "unknown flag --" << name << "="
                                                           << value);
  }
}

}  // namespace dnnspmv
