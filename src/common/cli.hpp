// Minimal command-line flag parser for benches and examples.
//
// Flags take the form `--name value` or `--name=value`. Unknown flags are an
// error so typos in experiment sweeps fail loudly instead of silently using
// defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dnnspmv {

class Cli {
 public:
  Cli(int argc, char** argv);

  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  std::string get_string(const std::string& name, const std::string& def);
  bool get_bool(const std::string& name, bool def);

  /// Throws if any provided flag was never consumed by a get_* call.
  void check_unused() const;

 private:
  std::map<std::string, std::string> flags_;
  std::map<std::string, bool> used_;
};

}  // namespace dnnspmv
