// Small non-cryptographic hashing utilities.
//
// Used for structural matrix fingerprints and cache shard selection
// (src/serve). splitmix64 is the standard 64-bit finalizer/mixer of
// Steele et al.; hash_combine folds values into a running state the same
// way, so combined hashes keep full avalanche behaviour.
#pragma once

#include <bit>
#include <cstdint>

namespace dnnspmv {

/// splitmix64 mixing step: maps a 64-bit value to a well-distributed one.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds `v` into running hash `h` (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Bit pattern of a double, with -0.0 canonicalized to +0.0 so numerically
/// equal keys hash equally.
inline std::uint64_t hash_double(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0
  return std::bit_cast<std::uint64_t>(d);
}

}  // namespace dnnspmv
