#include "common/timer.hpp"

#include <algorithm>

namespace dnnspmv {

double time_kernel(const std::function<void()>& fn, int warmup, int reps) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (int i = 0; i < std::max(reps, 1); ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace dnnspmv
