// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// that tests and benchmarks are reproducible run-to-run. Rng wraps a
// SplitMix64-seeded xoshiro256** generator: cheap to construct (no 2.5 KB
// mt19937 state), cheap to fork, and high quality for Monte Carlo use.
#pragma once

#include <cstdint>
#include <limits>

namespace dnnspmv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (for parallel work-splitting).
  Rng fork();

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dnnspmv
