// Persistent scratch memory for layer forward/backward passes.
//
// Layers request buffers keyed by (owner pointer, slot); a buffer grows to
// the largest size ever requested under its key and is reused across calls,
// so steady-state inference — the serve tier's cache-miss path — performs
// zero heap allocation once shapes have been seen. A Workspace is NOT
// thread-safe: use one per thread (the serve batcher keeps one per worker,
// the trainer one per training loop, and every Layer owns a lazily created
// fallback for callers that don't thread one through).
//
// Since the streaming-representation refactor, Workspace is a thin float
// view over the general TensorArena (src/tensor/arena.hpp) — the same
// arena abstraction the representation builder uses upstream of the net —
// kept as its own type so layer code keeps its narrow float-scratch API.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/arena.hpp"

namespace dnnspmv {

class Workspace {
 public:
  /// Scratch buffer of at least `size` floats for (owner, slot). Contents
  /// are unspecified — callers must fully overwrite what they read back.
  float* get(const void* owner, int slot, std::int64_t size) {
    return arena_.floats(owner, slot, size);
  }

  /// Total floats currently held across all buffers.
  std::size_t floats_held() const { return arena_.bytes_held() / sizeof(float); }

  void clear() { arena_.clear(); }

  /// The backing arena, for callers that also need tensor-level slots.
  TensorArena& arena() { return arena_; }

 private:
  TensorArena arena_;
};

}  // namespace dnnspmv
