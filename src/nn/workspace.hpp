// Persistent scratch memory for layer forward/backward passes.
//
// Layers request buffers keyed by (owner pointer, slot); a buffer grows to
// the largest size ever requested under its key and is reused across calls,
// so steady-state inference — the serve tier's cache-miss path — performs
// zero heap allocation once shapes have been seen. A Workspace is NOT
// thread-safe: use one per thread (the serve batcher keeps one per worker,
// the trainer one per training loop, and every Layer owns a lazily created
// fallback for callers that don't thread one through).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dnnspmv {

class Workspace {
 public:
  /// Scratch buffer of at least `size` floats for (owner, slot). Contents
  /// are unspecified — callers must fully overwrite what they read back.
  float* get(const void* owner, int slot, std::int64_t size);

  /// Total floats currently held across all buffers.
  std::size_t floats_held() const;

  void clear() { bufs_.clear(); }

 private:
  struct Key {
    const void* owner;
    int slot;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.owner) ^
             (std::hash<int>()(k.slot) * 0x9e3779b97f4a7c15ULL);
    }
  };
  std::unordered_map<Key, std::vector<float>, KeyHash> bufs_;
};

}  // namespace dnnspmv
