// Flattens NCHW activations to [batch, features].
#pragma once

#include "nn/layer.hpp"

namespace dnnspmv {

class Flatten final : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  void forward(const Tensor& in, Tensor& out, bool training,
               Workspace& ws) override;
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in, Workspace& ws) override;
  std::string name() const override { return "flatten"; }
  std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const override;
};

}  // namespace dnnspmv
