#include "nn/dense.hpp"

#include <cmath>

#include "tensor/gemm.hpp"

namespace dnnspmv {

Dense::Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  DNNSPMV_CHECK(in_features > 0 && out_features > 0);
  weight_.name = "dense_w";
  weight_.value.resize({out_features, in_features});
  weight_.value.fill_normal(
      rng, static_cast<float>(std::sqrt(2.0 / in_features)));
  weight_.grad.resize({out_features, in_features});
  bias_.name = "dense_b";
  bias_.value.resize({out_features});
  bias_.grad.resize({out_features});
}

std::vector<std::int64_t> Dense::output_shape(
    const std::vector<std::int64_t>& in) const {
  DNNSPMV_CHECK_MSG(in.size() == 2 && in[1] == in_features_,
                    "Dense expects [batch," << in_features_ << "]");
  return {in[0], out_features_};
}

void Dense::forward(const Tensor& in, Tensor& out, bool, Workspace&) {
  const auto os = output_shape(in.shape());
  out.ensure(os);
  const std::int64_t batch = in.dim(0);
  // out[b, o] = sum_i in[b, i] * W[o, i] + b[o], bias in the epilogue.
  sgemm_bt_col_bias(batch, out_features_, in_features_, 1.0f, in.data(),
                    weight_.value.data(), 0.0f, out.data(),
                    bias_.value.data());
}

void Dense::backward(const Tensor& in, const Tensor&, const Tensor& grad_out,
                     Tensor& grad_in, Workspace&) {
  const std::int64_t batch = in.dim(0);
  grad_in.ensure(in.shape());
  // dW[o, i] += sum_b go[b, o] * in[b, i]  (= go^T * in)
  sgemm_at(out_features_, in_features_, batch, 1.0f, grad_out.data(),
           in.data(), 1.0f, weight_.grad.data());
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = grad_out.data() + b * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o)
      bias_.grad[o] += row[o];
  }
  // dIn = go * W
  sgemm(batch, in_features_, out_features_, 1.0f, grad_out.data(),
        weight_.value.data(), 0.0f, grad_in.data());
}

}  // namespace dnnspmv
