#include "nn/pool.hpp"

#include <algorithm>

#ifdef __SSE2__
#include <emmintrin.h>
#endif

namespace dnnspmv {

std::vector<std::int64_t> MaxPool2D::output_shape(
    const std::vector<std::int64_t>& in) const {
  DNNSPMV_CHECK(in.size() == 4);
  const std::int64_t oh = (in[2] - k_) / stride_ + 1;
  const std::int64_t ow = (in[3] - k_) / stride_ + 1;
  DNNSPMV_CHECK_MSG(oh > 0 && ow > 0, "pool window larger than input");
  return {in[0], in[1], oh, ow};
}

void MaxPool2D::forward(const Tensor& in, Tensor& out, bool training,
                        Workspace&) {
  const auto os = output_shape(in.shape());
  out.ensure(os);
  const std::int64_t planes = in.dim(0) * in.dim(1);
  const std::int64_t h = in.dim(2), w = in.dim(3);
  const std::int64_t oh = os[2], ow = os[3];
  if (!training) {
    // Inference: backward never runs, so skip the argmax bookkeeping and
    // take branchless maxes (same values — max over finite floats is
    // exact). This is on the cold-miss latency path.
#pragma omp parallel for schedule(static) if (planes > 4)
    for (std::int64_t pl = 0; pl < planes; ++pl) {
      const float* src = in.data() + pl * h * w;
      float* dst = out.data() + pl * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        const float* rows = src + y * stride_ * w;
        float* drow = dst + y * ow;
        std::int64_t x = 0;
#ifdef __SSE2__
        if (k_ == 2 && stride_ == 2) {
          // 2×2/2 window: vertical max of two rows, then pairwise
          // horizontal max via even/odd shuffles — four outputs per step.
          for (; x + 4 <= ow; x += 4) {
            const float* r0 = rows + 2 * x;
            const float* r1 = r0 + w;
            const __m128 v0 = _mm_max_ps(_mm_loadu_ps(r0),
                                         _mm_loadu_ps(r1));
            const __m128 v1 = _mm_max_ps(_mm_loadu_ps(r0 + 4),
                                         _mm_loadu_ps(r1 + 4));
            const __m128 ev = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
            const __m128 od = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));
            _mm_storeu_ps(drow + x, _mm_max_ps(ev, od));
          }
        }
#endif
        for (; x < ow; ++x) {
          const float* win = rows + x * stride_;
          float best = win[0];
          for (std::int64_t dy = 0; dy < k_; ++dy)
            for (std::int64_t dx = 0; dx < k_; ++dx)
              best = std::max(best, win[dy * w + dx]);
          drow[x] = best;
        }
      }
    }
    argmax_valid_ = false;
    return;
  }
  record_argmax(in, out);
  argmax_valid_ = true;
}

void MaxPool2D::record_argmax(const Tensor& in, Tensor& out) {
  const std::int64_t planes = in.dim(0) * in.dim(1);
  const std::int64_t h = in.dim(2), w = in.dim(3);
  const std::int64_t oh = out.dim(2), ow = out.dim(3);
  argmax_.assign(static_cast<std::size_t>(out.size()), 0);

#pragma omp parallel for schedule(static)
  for (std::int64_t pl = 0; pl < planes; ++pl) {
    const float* src = in.data() + pl * h * w;
    float* dst = out.data() + pl * oh * ow;
    std::int32_t* arg = argmax_.data() + pl * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        float best = -1e30f;
        std::int64_t besti = 0;
        for (std::int64_t dy = 0; dy < k_; ++dy) {
          const std::int64_t iy = y * stride_ + dy;
          for (std::int64_t dx = 0; dx < k_; ++dx) {
            const std::int64_t ix = x * stride_ + dx;
            const std::int64_t idx = iy * w + ix;
            if (src[idx] > best) {
              best = src[idx];
              besti = idx;
            }
          }
        }
        dst[y * ow + x] = best;
        arg[y * ow + x] = static_cast<std::int32_t>(besti);
      }
    }
  }
}

void MaxPool2D::backward(const Tensor& in, const Tensor& out,
                         const Tensor& grad_out, Tensor& grad_in,
                         Workspace&) {
  if (!argmax_valid_) {
    // The preceding forward ran in inference mode and skipped the argmax
    // bookkeeping — rebuild the routing (same first-maximum rule the
    // training forward records) before scattering gradients.
    Tensor scratch;
    scratch.ensure(out.shape());
    record_argmax(in, scratch);
    argmax_valid_ = true;
  }
  grad_in.ensure(in.shape());
  grad_in.zero();
  const std::int64_t planes = in.dim(0) * in.dim(1);
  const std::int64_t h = in.dim(2), w = in.dim(3);
  const std::int64_t opix = out.dim(2) * out.dim(3);
#pragma omp parallel for schedule(static)
  for (std::int64_t pl = 0; pl < planes; ++pl) {
    const float* go = grad_out.data() + pl * opix;
    const std::int32_t* arg = argmax_.data() + pl * opix;
    float* gi = grad_in.data() + pl * h * w;
    for (std::int64_t p = 0; p < opix; ++p) gi[arg[p]] += go[p];
  }
}

}  // namespace dnnspmv
