#include "nn/sequential.hpp"

#include "obs/trace.hpp"

namespace dnnspmv {

void Sequential::ensure_span_names() {
  if (span_fwd_.size() == layers_.size()) return;
  span_fwd_.clear();
  span_bwd_.clear();
  for (const auto& l : layers_) {
    span_fwd_.push_back("nn." + l->name() + ".fwd");
    span_bwd_.push_back("nn." + l->name() + ".bwd");
  }
}

void Sequential::forward(const Tensor& in, Tensor& out, bool training,
                         Workspace& ws) {
  DNNSPMV_CHECK_MSG(!layers_.empty(), "empty Sequential");
  const bool traced = obs::enabled();
  if (traced) ensure_span_names();
  acts_.resize(layers_.size());
  const Tensor* cur = &in;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    obs::Span span(traced ? std::string_view(span_fwd_[i])
                          : std::string_view());
    layers_[i]->forward(*cur, acts_[i], training, ws);
    cur = &acts_[i];
  }
  out = acts_.back();
}

void Sequential::backward(const Tensor& in, const Tensor&,
                          const Tensor& grad_out, Tensor& grad_in,
                          Workspace& ws) {
  DNNSPMV_CHECK_MSG(acts_.size() == layers_.size(),
                    "backward without matching forward");
  const bool traced = obs::enabled();
  if (traced) ensure_span_names();
  Tensor grad = grad_out;
  Tensor next;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    obs::Span span(traced ? std::string_view(span_bwd_[i])
                          : std::string_view());
    const Tensor& input = (i == 0) ? in : acts_[i - 1];
    layers_[i]->backward(input, acts_[i], grad, next, ws);
    grad = std::move(next);
    next = Tensor();
  }
  grad_in = std::move(grad);
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> ps;
  for (auto& l : layers_)
    for (Param* p : l->params()) ps.push_back(p);
  return ps;
}

std::vector<std::int64_t> Sequential::output_shape(
    const std::vector<std::int64_t>& in) const {
  std::vector<std::int64_t> s = in;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

void Sequential::set_frozen(bool frozen) {
  for (auto& l : layers_)
    for (Param* p : l->params()) p->frozen = frozen;
}

}  // namespace dnnspmv
