// Gradient-descent optimizers. Frozen parameters are skipped, which is how
// "top evolvement" transfer learning restricts training to the head.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dnnspmv {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void step() = 0;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 protected:
  std::vector<Param*> params_;
  double lr_ = 1e-3;
};

class SgdMomentum final : public Optimizer {
 public:
  SgdMomentum(std::vector<Param*> params, double lr, double momentum = 0.9,
              double weight_decay = 0.0);
  void step() override;

 private:
  double momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

 private:
  double beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace dnnspmv
