// Layer abstraction for the CNN stack.
//
// Layers are stateless with respect to activations: forward takes the input
// batch and produces the output batch; backward re-receives both plus the
// output gradient and produces the input gradient. Parameterized layers
// expose their weights through Param so optimizers and serializers can walk
// a network generically. A Param can be frozen, which is the mechanism the
// "top evolvement" transfer-learning mode uses to pin the convolutional
// towers while retraining the head (paper §6.2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dnnspmv {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  bool frozen = false;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes out from in. `training` toggles train-only behaviour (dropout).
  virtual void forward(const Tensor& in, Tensor& out, bool training) = 0;

  /// Computes grad_in from grad_out and accumulates parameter gradients.
  /// `in` and `out` are the tensors seen by the matching forward call.
  virtual void backward(const Tensor& in, const Tensor& out,
                        const Tensor& grad_out, Tensor& grad_in) = 0;

  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;

  /// Shape of the output batch given the input batch shape.
  virtual std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const = 0;
};

/// Zeroes the gradients of every parameter in `ps`.
void zero_grads(const std::vector<Param*>& ps);

/// Total element count across parameter values.
std::int64_t param_count(const std::vector<Param*>& ps);

}  // namespace dnnspmv
