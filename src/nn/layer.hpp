// Layer abstraction for the CNN stack.
//
// Layers are stateless with respect to activations: forward takes the input
// batch and produces the output batch; backward re-receives both plus the
// output gradient and produces the input gradient. Parameterized layers
// expose their weights through Param so optimizers and serializers can walk
// a network generically. A Param can be frozen, which is the mechanism the
// "top evolvement" transfer-learning mode uses to pin the convolutional
// towers while retraining the head (paper §6.2).
//
// Scratch memory (conv's im2col matrices, GEMM staging) comes from a
// Workspace threaded through forward/backward, so repeated passes reuse the
// same buffers instead of allocating. Containers (Sequential, MergeNet)
// pass one workspace down their whole stack; the three/four-argument
// convenience overloads fall back to a workspace owned by the layer itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/workspace.hpp"
#include "tensor/tensor.hpp"

namespace dnnspmv {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  bool frozen = false;
};

class Layer {
 public:
  Layer() = default;
  virtual ~Layer() = default;
  // The fallback workspace is per-instance scratch, not state: copies
  // start with a fresh (lazily created) one, moves carry it along.
  Layer(const Layer&) {}
  Layer& operator=(const Layer&) { return *this; }
  Layer(Layer&&) = default;
  Layer& operator=(Layer&&) = default;

  /// Computes out from in. `training` toggles train-only behaviour
  /// (dropout); `ws` supplies scratch buffers reused across calls.
  virtual void forward(const Tensor& in, Tensor& out, bool training,
                       Workspace& ws) = 0;

  /// Computes grad_in from grad_out and accumulates parameter gradients.
  /// `in` and `out` are the tensors seen by the matching forward call.
  virtual void backward(const Tensor& in, const Tensor& out,
                        const Tensor& grad_out, Tensor& grad_in,
                        Workspace& ws) = 0;

  /// Convenience overloads using this layer's own fallback workspace.
  /// (Derived classes re-expose them with `using Layer::forward;`.)
  void forward(const Tensor& in, Tensor& out, bool training) {
    forward(in, out, training, scratch());
  }
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in) {
    backward(in, out, grad_out, grad_in, scratch());
  }

  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;

  /// Shape of the output batch given the input batch shape.
  virtual std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const = 0;

  /// Lazily created workspace for callers that don't thread one through.
  Workspace& scratch();

 private:
  std::unique_ptr<Workspace> scratch_;
};

/// Zeroes the gradients of every parameter in `ps`.
void zero_grads(const std::vector<Param*>& ps);

/// Total element count across parameter values.
std::int64_t param_count(const std::vector<Param*>& ps);

}  // namespace dnnspmv
