#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

constexpr char kMagic[8] = {'D', 'N', 'N', 'S', 'P', 'M', 'V', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DNNSPMV_CHECK_MSG(is.good(), "truncated model file");
}

// Chosen to be impossible as a legacy file's first field: pre-header
// selector files begin with a RepMode int32 (a small non-negative enum).
constexpr std::uint32_t kWeightSetMagic = 0x57534D56;  // "VMSW"

}  // namespace

void save_weight_set_header(std::ostream& os, const WeightSetHeader& h) {
  write_pod(os, kWeightSetMagic);
  write_pod(os, h.format_version);
  write_pod(os, h.model_version);
  DNNSPMV_CHECK_MSG(os.good(), "weight-set header write failed");
}

bool read_weight_set_header(std::istream& is, WeightSetHeader& h) {
  h = WeightSetHeader{};
  const std::istream::pos_type start = is.tellg();
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is.good() || magic != kWeightSetMagic) {
    // Legacy stream (or too short to hold a header): rewind untouched.
    is.clear();
    is.seekg(start);
    return false;
  }
  read_pod(is, h.format_version);
  // v1: header + fp32 params. v2 (PR 9): adds the quantize flag to the
  // selector options block and an optional QuantizedWeightSet trailer.
  // v3 (PR 10): adds the SpMM-head flag + spmm_cols to the options block
  // and an optional second params (+ quant) section.
  DNNSPMV_CHECK_MSG(h.format_version >= 1 && h.format_version <= 3,
                    "unknown weight-set format version " << h.format_version);
  read_pod(is, h.model_version);
  return true;
}

void save_params(std::ostream& os, const std::vector<Param*>& params) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Param* p : params) {
    write_pod(os, static_cast<std::uint32_t>(p->value.rank()));
    for (auto d : p->value.shape()) write_pod(os, static_cast<std::int64_t>(d));
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  DNNSPMV_CHECK_MSG(os.good(), "model write failed");
}

void load_params(std::istream& is, const std::vector<Param*>& params) {
  char magic[8];
  is.read(magic, sizeof(magic));
  DNNSPMV_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 8) == 0,
                    "bad model file magic");
  std::uint64_t n = 0;
  read_pod(is, n);
  DNNSPMV_CHECK_MSG(n == params.size(), "model has " << n << " params, net has "
                                                     << params.size());
  for (Param* p : params) {
    std::uint32_t rank = 0;
    read_pod(is, rank);
    std::vector<std::int64_t> shape(rank);
    for (auto& d : shape) read_pod(is, d);
    DNNSPMV_CHECK_MSG(shape == p->value.shape(),
                      "shape mismatch loading param " << p->name);
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    DNNSPMV_CHECK_MSG(is.good(), "truncated model file");
  }
}

void save_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  std::ofstream os(path, std::ios::binary);
  DNNSPMV_CHECK_MSG(os.is_open(), "cannot open " << path << " for write");
  save_params(os, params);
}

void load_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  std::ifstream is(path, std::ios::binary);
  DNNSPMV_CHECK_MSG(is.is_open(), "cannot open " << path);
  load_params(is, params);
}

void copy_params(const std::vector<Param*>& src,
                 const std::vector<Param*>& dst) {
  DNNSPMV_CHECK(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    DNNSPMV_CHECK_MSG(src[i]->value.shape() == dst[i]->value.shape(),
                      "copy_params shape mismatch at " << i);
    dst[i]->value = src[i]->value;
  }
}

}  // namespace dnnspmv
