// Binary weight (de)serialization.
//
// Weights are written in parameter-walk order with shapes, so a file can be
// loaded back into any network with an identical architecture — including a
// freshly constructed one on another "machine", which is what the transfer-
// learning migration drivers do.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace dnnspmv {

void save_params(std::ostream& os, const std::vector<Param*>& params);
void load_params(std::istream& is, const std::vector<Param*>& params);

/// Versioned weight-set header, prefixed to serialized models so a weight
/// file keeps its ModelRegistry provenance across save/load.
/// `format_version` versions the header layout itself; `model_version` is
/// the registry version the weights were published as (0 = never
/// published). Files written before this header existed start with a small
/// enum field instead of the magic, so readers stay backward compatible
/// via read_weight_set_header's rewind-on-miss.
struct WeightSetHeader {
  std::uint32_t format_version = 1;
  std::uint64_t model_version = 0;
};

void save_weight_set_header(std::ostream& os, const WeightSetHeader& h);

/// Probes `is` for a weight-set header. When the stream starts with the
/// header magic, consumes the header into `h` and returns true; otherwise
/// rewinds to where it started and returns false (`h` reset to defaults
/// with model_version 0 — the legacy-file interpretation).
bool read_weight_set_header(std::istream& is, WeightSetHeader& h);

void save_params_file(const std::string& path,
                      const std::vector<Param*>& params);
void load_params_file(const std::string& path,
                      const std::vector<Param*>& params);

/// Copies values (not gradients) from src into dst; shapes must match
/// pairwise. Used to warm-start "continuous evolvement".
void copy_params(const std::vector<Param*>& src,
                 const std::vector<Param*>& dst);

}  // namespace dnnspmv
