// Binary weight (de)serialization.
//
// Weights are written in parameter-walk order with shapes, so a file can be
// loaded back into any network with an identical architecture — including a
// freshly constructed one on another "machine", which is what the transfer-
// learning migration drivers do.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace dnnspmv {

void save_params(std::ostream& os, const std::vector<Param*>& params);
void load_params(std::istream& is, const std::vector<Param*>& params);

void save_params_file(const std::string& path,
                      const std::vector<Param*>& params);
void load_params_file(const std::string& path,
                      const std::vector<Param*>& params);

/// Copies values (not gradients) from src into dst; shapes must match
/// pairwise. Used to warm-start "continuous evolvement".
void copy_params(const std::vector<Param*>& src,
                 const std::vector<Param*>& dst);

}  // namespace dnnspmv
