#include "nn/dropout.hpp"

#include <algorithm>

namespace dnnspmv {

void Dropout::forward(const Tensor& in, Tensor& out, bool training,
                      Workspace&) {
  out.ensure(in.shape());
  const std::int64_t n = in.size();
  if (!training || rate_ == 0.0) {
    std::copy(in.data(), in.data() + n, out.data());
    mask_.assign(static_cast<std::size_t>(n), 1.0f);
    return;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    mask_[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    out[i] = in[i] * mask_[i];
  }
}

void Dropout::backward(const Tensor& in, const Tensor&,
                       const Tensor& grad_out, Tensor& grad_in,
                       Workspace&) {
  grad_in.ensure(in.shape());
  const std::int64_t n = in.size();
  DNNSPMV_CHECK(static_cast<std::int64_t>(mask_.size()) == n);
  for (std::int64_t i = 0; i < n; ++i) grad_in[i] = grad_out[i] * mask_[i];
}

}  // namespace dnnspmv
