// 2-D convolution layer (NCHW), lowered to GEMM via im2col.
//
// The whole batch is lowered at once: forward builds a single
// [patch_size, batch*out_pixels] column matrix and issues ONE GEMM with the
// bias folded into its epilogue, so parallelism scales with the batch
// rather than just out_channels. The col/staging matrices live in the
// Workspace and are reused across calls. Batched and per-sample forward
// produce bitwise-identical outputs (the GEMM's per-column accumulation
// order is position-independent; tests/test_gemm_property.cpp holds this).
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace dnnspmv {

class Conv2D final : public Layer {
 public:
  /// Filters are out_channels × in_channels × k × k, He-initialized.
  Conv2D(std::int64_t in_channels, std::int64_t out_channels, std::int64_t k,
         std::int64_t stride, std::int64_t pad, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  void forward(const Tensor& in, Tensor& out, bool training,
               Workspace& ws) override;
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in, Workspace& ws) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "conv2d"; }
  std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const override;

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel_size() const { return k_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return pad_; }

 private:
  ConvGeom geom(const std::vector<std::int64_t>& in_shape) const;

  std::int64_t in_channels_, out_channels_, k_, stride_, pad_;
  Param weight_;  // [out_c, in_c*k*k]
  Param bias_;    // [out_c]
};

}  // namespace dnnspmv
