// Inverted dropout: active only in training mode.
#pragma once

#include "nn/layer.hpp"

namespace dnnspmv {

class Dropout final : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
    DNNSPMV_CHECK(rate >= 0.0 && rate < 1.0);
  }

  using Layer::forward;
  using Layer::backward;
  void forward(const Tensor& in, Tensor& out, bool training,
               Workspace& ws) override;
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in, Workspace& ws) override;
  std::string name() const override { return "dropout"; }
  std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const override {
    return in;
  }

 private:
  double rate_;
  Rng rng_;
  std::vector<float> mask_;  // keep-scale per element of the last forward
};

}  // namespace dnnspmv
