// Fully connected layer: out = in * W^T + b over a [batch, features] input.
// The bias add is folded into the GEMM epilogue (sgemm_bt_col_bias).
#pragma once

#include "nn/layer.hpp"

namespace dnnspmv {

class Dense final : public Layer {
 public:
  Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  using Layer::forward;
  using Layer::backward;
  void forward(const Tensor& in, Tensor& out, bool training,
               Workspace& ws) override;
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in, Workspace& ws) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "dense"; }
  std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t in_features_, out_features_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
};

}  // namespace dnnspmv
