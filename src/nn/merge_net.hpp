// Multi-tower networks for the paper's structure study (§5, Figures 6/7/10).
//
// MergeNet holds one convolutional tower per input source plus a fully
// connected head. The towers' flattened outputs are concatenated and fed to
// the head:
//
//   * late-merging  — one tower per source (paper Figure 7/10);
//   * early-merging — callers stack the sources as channels of a single
//     input and use one tower (paper Figure 6).
//
// freeze_towers() implements the "top evolvement" transfer-learning mode:
// the tower parameters are pinned and only the head retrains on the target
// platform's labels (§6.2). The concatenated tower output is exactly what
// the paper calls the "CNN codes" of a matrix.
//
// Thread safety: forward()/backward()/codes() share mutable per-forward
// scratch (tower_out_, merged_, head_out_ and the Sequential activation
// caches), so a MergeNet instance is NOT re-entrant — concurrent callers
// must serialize. FormatSelector holds the inference mutex that makes its
// predict paths safe (selector.hpp); anything driving a MergeNet directly
// owes the same care.
#pragma once

#include <memory>

#include "nn/sequential.hpp"

namespace dnnspmv {

class MergeNet {
 public:
  MergeNet() = default;

  /// Adds a tower; towers are indexed by the order of addition and consume
  /// the matching entry of the forward() input vector.
  Sequential& add_tower();

  /// The fully connected head applied to the concatenated tower outputs.
  Sequential& head() { return head_; }

  std::size_t num_towers() const { return towers_.size(); }
  Sequential& tower(std::size_t i) { return *towers_.at(i); }

  /// Forward pass over a batch; inputs[i] feeds tower i. All inputs must
  /// share the same batch dimension. Returns logits [batch, classes]. The
  /// Workspace overloads let callers (trainer, serve workers) supply their
  /// own scratch; the plain ones fall back to a net-owned workspace.
  void forward(const std::vector<Tensor>& inputs, Tensor& logits,
               bool training);
  void forward(const std::vector<Tensor>& inputs, Tensor& logits,
               bool training, Workspace& ws);

  /// Backward from logits gradient; parameter gradients accumulate.
  void backward(const std::vector<Tensor>& inputs, const Tensor& grad_logits);
  void backward(const std::vector<Tensor>& inputs, const Tensor& grad_logits,
                Workspace& ws);

  std::vector<Param*> params();
  std::vector<Param*> head_params() { return head_.params(); }

  void freeze_towers();
  void unfreeze_all();

  /// The concatenated flattened tower outputs for a batch ("CNN codes").
  void codes(const std::vector<Tensor>& inputs, Tensor& out);
  void codes(const std::vector<Tensor>& inputs, Tensor& out, Workspace& ws);

 private:
  void flatten_tower_outputs(Tensor& merged);

  std::vector<std::unique_ptr<Sequential>> towers_;
  Sequential head_;
  // Cached per-forward state for backward.
  std::vector<Tensor> tower_out_;
  Tensor merged_;
  Tensor head_out_;
  Workspace ws_;  // fallback scratch for the workspace-less overloads
};

}  // namespace dnnspmv
