#include "nn/layer.hpp"

namespace dnnspmv {

Workspace& Layer::scratch() {
  if (!scratch_) scratch_ = std::make_unique<Workspace>();
  return *scratch_;
}

void zero_grads(const std::vector<Param*>& ps) {
  for (Param* p : ps) p->grad.zero();
}

std::int64_t param_count(const std::vector<Param*>& ps) {
  std::int64_t n = 0;
  for (const Param* p : ps) n += p->value.size();
  return n;
}

}  // namespace dnnspmv
