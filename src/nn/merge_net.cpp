#include "nn/merge_net.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dnnspmv {
namespace {

// Whole-net pass durations land in these histograms (µs) whenever tracing
// is on; the per-layer breakdown inside comes from Sequential's spans.
obs::Histogram& forward_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("nn.forward_us");
  return h;
}

obs::Histogram& backward_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("nn.backward_us");
  return h;
}

}  // namespace

Sequential& MergeNet::add_tower() {
  towers_.push_back(std::make_unique<Sequential>());
  return *towers_.back();
}

void MergeNet::flatten_tower_outputs(Tensor& merged) {
  const std::int64_t batch = tower_out_[0].dim(0);
  std::int64_t total = 0;
  std::vector<std::int64_t> feat(towers_.size());
  for (std::size_t t = 0; t < towers_.size(); ++t) {
    DNNSPMV_CHECK_MSG(tower_out_[t].dim(0) == batch,
                      "tower batch mismatch");
    feat[t] = tower_out_[t].size() / batch;
    total += feat[t];
  }
  merged.resize({batch, total});
  for (std::int64_t b = 0; b < batch; ++b) {
    float* dst = merged.data() + b * total;
    for (std::size_t t = 0; t < towers_.size(); ++t) {
      const float* src = tower_out_[t].data() + b * feat[t];
      std::copy(src, src + feat[t], dst);
      dst += feat[t];
    }
  }
}

void MergeNet::forward(const std::vector<Tensor>& inputs, Tensor& logits,
                       bool training) {
  forward(inputs, logits, training, ws_);
}

void MergeNet::forward(const std::vector<Tensor>& inputs, Tensor& logits,
                       bool training, Workspace& ws) {
  obs::Span span("nn.forward", &forward_hist());
  DNNSPMV_CHECK_MSG(inputs.size() == towers_.size(),
                    "expected " << towers_.size() << " inputs, got "
                                << inputs.size());
  tower_out_.resize(towers_.size());
  for (std::size_t t = 0; t < towers_.size(); ++t)
    towers_[t]->forward(inputs[t], tower_out_[t], training, ws);
  flatten_tower_outputs(merged_);
  head_.forward(merged_, head_out_, training, ws);
  logits = head_out_;
}

void MergeNet::backward(const std::vector<Tensor>& inputs,
                        const Tensor& grad_logits) {
  backward(inputs, grad_logits, ws_);
}

void MergeNet::backward(const std::vector<Tensor>& inputs,
                        const Tensor& grad_logits, Workspace& ws) {
  obs::Span span("nn.backward", &backward_hist());
  Tensor grad_merged;
  head_.backward(merged_, head_out_, grad_logits, grad_merged, ws);

  const std::int64_t batch = merged_.dim(0);
  const std::int64_t total = merged_.dim(1);
  for (std::size_t t = 0, off = 0; t < towers_.size(); ++t) {
    const std::int64_t feat = tower_out_[t].size() / batch;
    Tensor gslice(tower_out_[t].shape());
    for (std::int64_t b = 0; b < batch; ++b) {
      const float* src = grad_merged.data() + b * total + off;
      std::copy(src, src + feat, gslice.data() + b * feat);
    }
    Tensor gin;  // input gradient unused — inputs are data, not activations
    towers_[t]->backward(inputs[t], tower_out_[t], gslice, gin, ws);
    off += static_cast<std::size_t>(feat);
  }
}

std::vector<Param*> MergeNet::params() {
  std::vector<Param*> ps;
  for (auto& t : towers_)
    for (Param* p : t->params()) ps.push_back(p);
  for (Param* p : head_.params()) ps.push_back(p);
  return ps;
}

void MergeNet::freeze_towers() {
  for (auto& t : towers_) t->set_frozen(true);
  head_.set_frozen(false);
}

void MergeNet::unfreeze_all() {
  for (auto& t : towers_) t->set_frozen(false);
  head_.set_frozen(false);
}

void MergeNet::codes(const std::vector<Tensor>& inputs, Tensor& out) {
  codes(inputs, out, ws_);
}

void MergeNet::codes(const std::vector<Tensor>& inputs, Tensor& out,
                     Workspace& ws) {
  DNNSPMV_CHECK(inputs.size() == towers_.size());
  tower_out_.resize(towers_.size());
  for (std::size_t t = 0; t < towers_.size(); ++t)
    towers_[t]->forward(inputs[t], tower_out_[t], /*training=*/false, ws);
  flatten_tower_outputs(out);
}

}  // namespace dnnspmv
