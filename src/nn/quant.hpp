// Post-training int8 quantization of a MergeNet (DESIGN.md §13).
//
// The flow mirrors the torch.ao.quantization observer → calibrate → convert
// idiom:
//
//   1. *Observe.* A calibration pass walks the fp32 net layer by layer over
//      a held-out corpus slice, recording the input distribution of every
//      conv/dense layer with a MinMaxObserver (exact range) and a
//      HistogramObserver (percentile range — robust to single outliers).
//   2. *Convert.* Weights quantize per output channel with symmetric int8
//      scales (s_w[i] = max|W[i,:]| / 127); activations get one affine
//      7-bit scale/zero-point per layer input from the observed range.
//      The result is a QuantizedWeightSet: pure, serializable data.
//   3. *Execute.* QuantizedMergeNet compiles net + weight set into an
//      inference plan: per layer, quantize the input to u7, run the int8
//      GEMM (gemm.hpp qgemm_u7, weights pre-packed at convert time), and
//      dequantize in the kernel epilogue with the zero-point correction
//      folded into an effective bias:
//
//        y[i] = s_w[i]·s_x·(acc[i] − zp·Σ_p Wq[i,p]) + b[i]
//             = acc[i]·out_scale[i] + bias_eff[i].
//
//      A ReLU directly after a quantized layer fuses into the epilogue and
//      Dropout is elided (inference identity), so a cold-miss forward runs
//      fewer passes than the fp32 path on top of the cheaper kernel.
//
// Activations use [0, 127] rather than the full u8 range: maddubs
// accumulates byte-pair products in int16, and 2·127·127 is the largest
// pair sum that cannot saturate — correctness over one bit of precision.
//
// Everything here is deterministic: fixed observation order, scalar
// quantization arithmetic, and a kernel whose SIMD/scalar paths are
// bit-identical, so calibrating twice on the same data yields byte-equal
// weight sets and predictions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/merge_net.hpp"
#include "tensor/gemm.hpp"

namespace dnnspmv {

class Conv2D;
class Dense;

/// Exact running range of everything observed.
class MinMaxObserver {
 public:
  void observe(const float* x, std::int64_t n);
  bool seen() const { return seen_; }
  float lo() const { return seen_ ? lo_ : 0.0f; }
  float hi() const { return seen_ ? hi_ : 0.0f; }

 private:
  float lo_ = 0.0f, hi_ = 0.0f;
  bool seen_ = false;
};

/// |x| histogram with a power-of-two growing range: when a sample exceeds
/// the current range the range doubles and adjacent bin pairs merge, so
/// early observations keep their (coarsened) mass. percentile(p) returns
/// the |x| bound covering p% of observed mass — the calibration range that
/// ignores the tail a lone outlier would otherwise stretch.
class HistogramObserver {
 public:
  explicit HistogramObserver(std::int64_t bins = 2048);
  void observe(const float* x, std::int64_t n);
  float percentile(double pct) const;
  std::int64_t total() const { return total_; }

 private:
  std::vector<std::int64_t> counts_;
  float range_ = 0.0f;
  std::int64_t total_ = 0;
};

struct QuantConfig {
  enum class Observer : std::uint8_t { kMinMax = 0, kPercentile = 1 };
  Observer observer = Observer::kPercentile;
  /// Percentile of observed |x| mass kept inside the clipping range.
  double percentile = 99.9;
  /// Calibration budget: at most this many held-out samples are walked.
  std::int64_t max_calib_samples = 256;
};

/// One quantized conv/dense layer, addressed by (seq, index) into the
/// MergeNet: seq ∈ [0, num_towers) is a tower, seq == -1 the head.
struct QLayer {
  static constexpr std::uint8_t kConv = 0;
  static constexpr std::uint8_t kDense = 1;

  std::int32_t seq = 0;
  std::int32_t index = 0;
  std::uint8_t kind = kConv;
  std::int64_t rows = 0, cols = 0;  // weight matrix [rows, cols]
  float act_scale = 1.0f;           // input x ≈ (q − act_zp)·act_scale
  std::int32_t act_zp = 0;
  std::vector<float> w_scale;       // [rows] per-channel symmetric scales
  std::vector<float> bias;          // [rows] fp32 bias copy
  std::vector<std::int8_t> wq;      // [rows·cols] quantized weights
};

/// The serializable product of convert: plain data, no pointers into the
/// net, copyable between clones. Rides the v2 weight-set format as a
/// trailer block after the fp32 params (selector.cpp).
struct QuantizedWeightSet {
  std::vector<QLayer> layers;

  bool empty() const { return layers.empty(); }
  const QLayer* find(std::int32_t seq, std::int32_t index) const;

  void save(std::ostream& os) const;
  static QuantizedWeightSet load(std::istream& is);
};

/// Quantizes W[rows, cols] per row: scales[i] = max|W[i,:]|/127 (1.0 for an
/// all-zero row), wq = clamp(round(W/scale), −127, 127).
void quantize_weights_per_channel(const float* w, std::int64_t rows,
                                  std::int64_t cols, std::int8_t* wq,
                                  float* scales);

/// Observer + calibrate + convert in one pass: walks `calib` (one Tensor
/// per tower per batch, NCHW) through the net, observes every conv/dense
/// input, and returns the quantized weight set. Deterministic for a fixed
/// net and calibration set.
QuantizedWeightSet quantize_merge_net(
    MergeNet& net, const std::vector<std::vector<Tensor>>& calib,
    const QuantConfig& cfg = {});

/// Compiled inference plan over a net + weight set. Holds pre-packed int8
/// weight panels, fused per-layer epilogue data, and raw byte scratch, and
/// points into the MergeNet for the layers that stay fp32 (pool, flatten).
/// Construction validates the weight set against the net (layer kinds and
/// shapes) and throws errc::data_error on mismatch.
///
/// Thread safety: like MergeNet, an instance is NOT re-entrant — callers
/// serialize (FormatSelector runs it under its inference mutex).
class QuantizedMergeNet {
 public:
  QuantizedMergeNet(MergeNet& net, const QuantizedWeightSet& qws);

  /// Quantized forward: inputs[i] feeds tower i, logits [batch, classes].
  void forward(const std::vector<Tensor>& inputs, Tensor& logits);

 private:
  struct Op {
    enum class Kind : std::uint8_t { kLayer, kConv, kDense };
    Kind kind = Kind::kLayer;
    Layer* layer = nullptr;    // kLayer: run the fp32 forward
    Conv2D* conv = nullptr;    // kConv
    Dense* dense = nullptr;    // kDense
    QGemmWeights packed;       // pre-packed int8 panels
    std::vector<float> out_scale;  // w_scale[i]·act_scale
    std::vector<float> bias_eff;   // bias[i] − out_scale[i]·zp·Σ Wq[i,:]
    float act_inv_scale = 1.0f;
    std::int32_t act_zp = 0;
    bool relu = false;  // ReLU fused into the epilogue
  };

  void compile(Sequential& seq, std::int32_t seq_id,
               const QuantizedWeightSet& qws, std::vector<Op>& plan);
  void run(std::vector<Op>& plan, const Tensor& in, Tensor& out);
  void run_conv(Op& op, const Tensor& in, Tensor& out);
  void run_dense(Op& op, const Tensor& in, Tensor& out);

  MergeNet* net_;
  std::vector<std::vector<Op>> tower_plans_;
  std::vector<Op> head_plan_;
  Workspace ws_;                    // scratch for the fp32 passthrough ops
  Tensor ping_, pong_, merged_;     // inter-layer activations
  std::vector<Tensor> tower_out_;
  std::vector<std::uint8_t> qin_, qcol_;  // quantized input / col matrix
  std::vector<float> mat_;                // GEMM staging (batch > 1)
};

}  // namespace dnnspmv
