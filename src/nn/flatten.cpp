#include "nn/flatten.hpp"

#include <algorithm>

namespace dnnspmv {

std::vector<std::int64_t> Flatten::output_shape(
    const std::vector<std::int64_t>& in) const {
  DNNSPMV_CHECK(!in.empty());
  std::int64_t f = 1;
  for (std::size_t i = 1; i < in.size(); ++i) f *= in[i];
  return {in[0], f};
}

void Flatten::forward(const Tensor& in, Tensor& out, bool, Workspace&) {
  out.ensure(output_shape(in.shape()));
  std::copy(in.data(), in.data() + in.size(), out.data());
}

void Flatten::backward(const Tensor& in, const Tensor&,
                       const Tensor& grad_out, Tensor& grad_in,
                       Workspace&) {
  grad_in.ensure(in.shape());
  std::copy(grad_out.data(), grad_out.data() + grad_out.size(),
            grad_in.data());
}

}  // namespace dnnspmv
