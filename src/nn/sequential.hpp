// Sequential container: a linear stack of layers with cached activations so
// backward can replay the forward pass. One Workspace (the layer's own
// fallback, or whatever the caller threads in) is shared by every layer in
// the stack, so a whole forward/backward pass reuses one set of scratch
// buffers.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace dnnspmv {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  using Layer::forward;
  using Layer::backward;
  void forward(const Tensor& in, Tensor& out, bool training,
               Workspace& ws) override;
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in, Workspace& ws) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "sequential"; }
  std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const override;

  /// Sets the frozen flag on every parameter in this stack.
  void set_frozen(bool frozen);

 private:
  // Builds the cached per-layer span names ("nn.<layer>.fwd"/".bwd") the
  // first traced pass needs; called only when obs tracing is enabled so
  // untraced passes never pay the string work.
  void ensure_span_names();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> acts_;  // activations: acts_[i] = output of layer i
  std::vector<std::string> span_fwd_, span_bwd_;  // cached obs span names
};

}  // namespace dnnspmv
