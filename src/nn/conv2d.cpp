#include "nn/conv2d.hpp"

#include <cmath>

#include "tensor/gemm.hpp"

namespace dnnspmv {

Conv2D::Conv2D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t k, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      k_(k),
      stride_(stride),
      pad_(pad) {
  DNNSPMV_CHECK(in_channels > 0 && out_channels > 0 && k > 0 && stride > 0 &&
                pad >= 0);
  const std::int64_t fan_in = in_channels * k * k;
  weight_.name = "conv_w";
  weight_.value.resize({out_channels, fan_in});
  weight_.value.fill_normal(rng,
                            static_cast<float>(std::sqrt(2.0 / fan_in)));
  weight_.grad.resize({out_channels, fan_in});
  bias_.name = "conv_b";
  bias_.value.resize({out_channels});
  bias_.grad.resize({out_channels});
}

ConvGeom Conv2D::geom(const std::vector<std::int64_t>& in_shape) const {
  DNNSPMV_CHECK_MSG(in_shape.size() == 4 && in_shape[1] == in_channels_,
                    "Conv2D expects NCHW with C=" << in_channels_);
  return ConvGeom{in_shape[1], in_shape[2], in_shape[3], k_, k_,
                  stride_,     stride_,     pad_,        pad_};
}

std::vector<std::int64_t> Conv2D::output_shape(
    const std::vector<std::int64_t>& in) const {
  const ConvGeom g = geom(in);
  return {in[0], out_channels_, g.out_h(), g.out_w()};
}

void Conv2D::forward(const Tensor& in, Tensor& out, bool) {
  const ConvGeom g = geom(in.shape());
  const std::int64_t batch = in.dim(0);
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t psz = g.patch_size();
  out.resize(output_shape(in.shape()));

  Tensor col({psz, opix});
  for (std::int64_t n = 0; n < batch; ++n) {
    im2col(g, in.data() + n * g.channels * g.height * g.width, col.data());
    float* dst = out.data() + n * out_channels_ * opix;
    sgemm(out_channels_, opix, psz, 1.0f, weight_.value.data(), col.data(),
          0.0f, dst);
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_.value[oc];
      float* row = dst + oc * opix;
      for (std::int64_t p = 0; p < opix; ++p) row[p] += b;
    }
  }
}

void Conv2D::backward(const Tensor& in, const Tensor&, const Tensor& grad_out,
                      Tensor& grad_in) {
  const ConvGeom g = geom(in.shape());
  const std::int64_t batch = in.dim(0);
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t psz = g.patch_size();
  const std::int64_t imsz = g.channels * g.height * g.width;
  grad_in.resize(in.shape());

  Tensor col({psz, opix});
  Tensor gcol({psz, opix});
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* go = grad_out.data() + n * out_channels_ * opix;
    // dW += dOut * col^T  — re-lower the input instead of caching the
    // (large) col matrix from forward.
    im2col(g, in.data() + n * imsz, col.data());
    sgemm_bt(out_channels_, psz, opix, 1.0f, go, col.data(), 1.0f,
             weight_.grad.data());
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      double acc = 0.0;
      const float* row = go + oc * opix;
      for (std::int64_t p = 0; p < opix; ++p) acc += row[p];
      bias_.grad[oc] += static_cast<float>(acc);
    }
    // dCol = W^T * dOut, then scatter back to the image.
    sgemm_at(psz, opix, out_channels_, 1.0f, weight_.value.data(), go, 0.0f,
             gcol.data());
    col2im(g, gcol.data(), grad_in.data() + n * imsz);
  }
}

}  // namespace dnnspmv
