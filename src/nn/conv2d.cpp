#include "nn/conv2d.hpp"

#include <cmath>
#include <cstring>

#include "tensor/gemm.hpp"

namespace dnnspmv {
namespace {

// Workspace slots: the staging matrices of the batched lowering.
constexpr int kColSlot = 0;    // [psz, batch*opix] lowered input
constexpr int kOutMatSlot = 1; // [out_c, batch*opix] GEMM output
constexpr int kGoMatSlot = 2;  // [out_c, batch*opix] gathered grad_out
constexpr int kGColSlot = 3;   // [psz, batch*opix] column gradients

}  // namespace

Conv2D::Conv2D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t k, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      k_(k),
      stride_(stride),
      pad_(pad) {
  DNNSPMV_CHECK(in_channels > 0 && out_channels > 0 && k > 0 && stride > 0 &&
                pad >= 0);
  const std::int64_t fan_in = in_channels * k * k;
  weight_.name = "conv_w";
  weight_.value.resize({out_channels, fan_in});
  weight_.value.fill_normal(rng,
                            static_cast<float>(std::sqrt(2.0 / fan_in)));
  weight_.grad.resize({out_channels, fan_in});
  bias_.name = "conv_b";
  bias_.value.resize({out_channels});
  bias_.grad.resize({out_channels});
}

ConvGeom Conv2D::geom(const std::vector<std::int64_t>& in_shape) const {
  DNNSPMV_CHECK_MSG(in_shape.size() == 4 && in_shape[1] == in_channels_,
                    "Conv2D expects NCHW with C=" << in_channels_);
  return ConvGeom{in_shape[1], in_shape[2], in_shape[3], k_, k_,
                  stride_,     stride_,     pad_,        pad_};
}

std::vector<std::int64_t> Conv2D::output_shape(
    const std::vector<std::int64_t>& in) const {
  const ConvGeom g = geom(in);
  return {in[0], out_channels_, g.out_h(), g.out_w()};
}

void Conv2D::forward(const Tensor& in, Tensor& out, bool, Workspace& ws) {
  const ConvGeom g = geom(in.shape());
  const std::int64_t batch = in.dim(0);
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t psz = g.patch_size();
  const std::int64_t ncols = batch * opix;
  out.ensure(output_shape(in.shape()));

  // Lower the whole batch, run one wide GEMM with the bias in the
  // epilogue, then scatter [oc, n*opix+p] rows back to NCHW.
  float* col = ws.get(this, kColSlot, psz * ncols);
  float* out_mat = ws.get(this, kOutMatSlot, out_channels_ * ncols);
  im2col_batch(g, batch, in.data(), col);
  sgemm_row_bias(out_channels_, ncols, psz, 1.0f, weight_.value.data(), col,
                 0.0f, out_mat, bias_.value.data());
#pragma omp parallel for schedule(static)
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t oc = 0; oc < out_channels_; ++oc)
      std::memcpy(out.data() + (n * out_channels_ + oc) * opix,
                  out_mat + oc * ncols + n * opix,
                  static_cast<std::size_t>(opix) * sizeof(float));
}

void Conv2D::backward(const Tensor& in, const Tensor&, const Tensor& grad_out,
                      Tensor& grad_in, Workspace& ws) {
  const ConvGeom g = geom(in.shape());
  const std::int64_t batch = in.dim(0);
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t psz = g.patch_size();
  const std::int64_t ncols = batch * opix;
  grad_in.ensure(in.shape());

  // Re-lower the input instead of caching the (large) col matrix from
  // forward, and gather grad_out from NCHW into the matching [oc, ncols]
  // matrix so both gradient GEMMs run once over the whole batch.
  float* col = ws.get(this, kColSlot, psz * ncols);
  float* go_mat = ws.get(this, kGoMatSlot, out_channels_ * ncols);
  float* gcol = ws.get(this, kGColSlot, psz * ncols);
  im2col_batch(g, batch, in.data(), col);
#pragma omp parallel for schedule(static)
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t oc = 0; oc < out_channels_; ++oc)
      std::memcpy(go_mat + oc * ncols + n * opix,
                  grad_out.data() + (n * out_channels_ + oc) * opix,
                  static_cast<std::size_t>(opix) * sizeof(float));

  // dW += dOut * col^T.
  sgemm_bt(out_channels_, psz, ncols, 1.0f, go_mat, col, 1.0f,
           weight_.grad.data());
#pragma omp parallel for schedule(static)
  for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
    double acc = 0.0;
    const float* row = go_mat + oc * ncols;
    for (std::int64_t p = 0; p < ncols; ++p) acc += row[p];
    bias_.grad[oc] += static_cast<float>(acc);
  }
  // dCol = W^T * dOut, then scatter back to the images.
  sgemm_at(psz, ncols, out_channels_, 1.0f, weight_.value.data(), go_mat,
           0.0f, gcol);
  col2im_batch(g, batch, gcol, grad_in.data());
}

}  // namespace dnnspmv
