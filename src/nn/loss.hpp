// Softmax cross-entropy loss (the paper's training objective, §7.5).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dnnspmv {

/// Computes mean cross-entropy over a batch of logits [batch, classes]
/// against integer labels, and writes d(loss)/d(logits) into grad_logits.
double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<std::int32_t>& labels,
                             Tensor& grad_logits);

/// Row-wise softmax probabilities.
void softmax(const Tensor& logits, Tensor& probs);

/// Argmax class per row.
std::vector<std::int32_t> argmax_rows(const Tensor& logits);

}  // namespace dnnspmv
