#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>

#include "common/error.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "tensor/im2col.hpp"
#include "tensor/pack.hpp"

namespace dnnspmv {
namespace {

constexpr std::uint32_t kQwsMagic = 0x31535751;  // "QWS1"

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DNNSPMV_CHECK_MSG(is.good(), "truncated quantized weight set");
}

// Affine u7 parameters for an observed range. The range always includes 0
// (so the zero-point is representable and padding dequantizes to exactly
// the zero-point byte), and degenerate all-zero ranges fall back to
// scale 1 / zp 0.
void range_to_qparams(float lo, float hi, float* scale, std::int32_t* zp) {
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  const float s = (hi - lo) / 127.0f;
  if (!(s > 0.0f)) {
    *scale = 1.0f;
    *zp = 0;
    return;
  }
  *scale = s;
  *zp = static_cast<std::int32_t>(
      std::min(127.0f, std::max(0.0f, std::nearbyint(-lo / s))));
}

}  // namespace

void MinMaxObserver::observe(const float* x, std::int64_t n) {
  if (n <= 0) return;
  float lo = seen_ ? lo_ : x[0];
  float hi = seen_ ? hi_ : x[0];
  for (std::int64_t i = 0; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  lo_ = lo;
  hi_ = hi;
  seen_ = true;
}

HistogramObserver::HistogramObserver(std::int64_t bins)
    : counts_(static_cast<std::size_t>(bins), 0) {
  DNNSPMV_CHECK(bins >= 2 && bins % 2 == 0);
}

void HistogramObserver::observe(const float* x, std::int64_t n) {
  const std::int64_t bins = static_cast<std::int64_t>(counts_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (!(a >= 0.0f)) continue;  // drop NaNs rather than poison the range
    if (a > range_) {
      // Double the range (merging bin pairs) until the sample fits; the
      // first observation seeds the range directly.
      if (range_ == 0.0f) {
        range_ = a > 0.0f ? a : 1.0f;
      } else {
        while (a > range_) {
          for (std::int64_t b = 0; b < bins / 2; ++b)
            counts_[b] = counts_[2 * b] + counts_[2 * b + 1];
          std::fill(counts_.begin() + bins / 2, counts_.end(), 0);
          range_ *= 2.0f;
        }
      }
    }
    std::int64_t bin = static_cast<std::int64_t>(a / range_ *
                                                 static_cast<float>(bins));
    bin = std::min(bin, bins - 1);
    counts_[static_cast<std::size_t>(bin)]++;
    total_++;
  }
}

float HistogramObserver::percentile(double pct) const {
  if (total_ == 0) return 0.0f;
  const std::int64_t bins = static_cast<std::int64_t>(counts_.size());
  const double target = static_cast<double>(total_) * pct / 100.0;
  double cum = 0.0;
  for (std::int64_t b = 0; b < bins; ++b) {
    cum += static_cast<double>(counts_[static_cast<std::size_t>(b)]);
    if (cum >= target)
      return static_cast<float>(b + 1) / static_cast<float>(bins) * range_;
  }
  return range_;
}

const QLayer* QuantizedWeightSet::find(std::int32_t seq,
                                       std::int32_t index) const {
  for (const QLayer& l : layers)
    if (l.seq == seq && l.index == index) return &l;
  return nullptr;
}

void QuantizedWeightSet::save(std::ostream& os) const {
  write_pod(os, kQwsMagic);
  write_pod(os, static_cast<std::uint32_t>(layers.size()));
  for (const QLayer& l : layers) {
    write_pod(os, l.seq);
    write_pod(os, l.index);
    write_pod(os, l.kind);
    write_pod(os, l.rows);
    write_pod(os, l.cols);
    write_pod(os, l.act_scale);
    write_pod(os, l.act_zp);
    os.write(reinterpret_cast<const char*>(l.w_scale.data()),
             static_cast<std::streamsize>(l.w_scale.size() * sizeof(float)));
    os.write(reinterpret_cast<const char*>(l.bias.data()),
             static_cast<std::streamsize>(l.bias.size() * sizeof(float)));
    os.write(reinterpret_cast<const char*>(l.wq.data()),
             static_cast<std::streamsize>(l.wq.size()));
  }
  DNNSPMV_CHECK_MSG(os.good(), "quantized weight set write failed");
}

QuantizedWeightSet QuantizedWeightSet::load(std::istream& is) {
  std::uint32_t magic = 0;
  read_pod(is, magic);
  DNNSPMV_CHECK_ERRC(magic == kQwsMagic, errc::data_error,
                     "bad quantized weight set magic");
  std::uint32_t n = 0;
  read_pod(is, n);
  QuantizedWeightSet qws;
  qws.layers.resize(n);
  for (QLayer& l : qws.layers) {
    read_pod(is, l.seq);
    read_pod(is, l.index);
    read_pod(is, l.kind);
    read_pod(is, l.rows);
    read_pod(is, l.cols);
    read_pod(is, l.act_scale);
    read_pod(is, l.act_zp);
    DNNSPMV_CHECK_ERRC(
        l.rows > 0 && l.cols > 0 && (l.kind == QLayer::kConv ||
                                     l.kind == QLayer::kDense),
        errc::data_error, "corrupt quantized layer record");
    l.w_scale.resize(static_cast<std::size_t>(l.rows));
    l.bias.resize(static_cast<std::size_t>(l.rows));
    l.wq.resize(static_cast<std::size_t>(l.rows * l.cols));
    is.read(reinterpret_cast<char*>(l.w_scale.data()),
            static_cast<std::streamsize>(l.w_scale.size() * sizeof(float)));
    is.read(reinterpret_cast<char*>(l.bias.data()),
            static_cast<std::streamsize>(l.bias.size() * sizeof(float)));
    is.read(reinterpret_cast<char*>(l.wq.data()),
            static_cast<std::streamsize>(l.wq.size()));
    DNNSPMV_CHECK_MSG(is.good(), "truncated quantized weight set");
  }
  return qws;
}

void quantize_weights_per_channel(const float* w, std::int64_t rows,
                                  std::int64_t cols, std::int8_t* wq,
                                  float* scales) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = w + i * cols;
    float amax = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j)
      amax = std::max(amax, std::fabs(row[j]));
    const float s = amax > 0.0f ? amax / 127.0f : 1.0f;
    scales[i] = s;
    std::int8_t* qrow = wq + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) {
      const float q = std::nearbyint(row[j] / s);
      qrow[j] = static_cast<std::int8_t>(
          std::min(127.0f, std::max(-127.0f, q)));
    }
  }
}

QuantizedWeightSet quantize_merge_net(
    MergeNet& net, const std::vector<std::vector<Tensor>>& calib,
    const QuantConfig& cfg) {
  DNNSPMV_CHECK_ERRC(!calib.empty(), errc::invalid_argument,
                     "quantize_merge_net needs a calibration set");
  const std::int32_t ntowers = static_cast<std::int32_t>(net.num_towers());

  struct Obs {
    MinMaxObserver mm;
    HistogramObserver hist;
  };
  std::map<std::pair<std::int32_t, std::int32_t>, Obs> observers;
  auto observe = [&](std::int32_t seq, std::int32_t index, const Tensor& t) {
    Obs& o = observers[{seq, index}];
    o.mm.observe(t.data(), t.size());
    o.hist.observe(t.data(), t.size());
  };

  // Calibration walk: replicate MergeNet::forward layer by layer (towers →
  // flatten-concat → head), observing each conv/dense input. Runs in
  // inference mode so dropout and batchless layers behave as they will at
  // serve time.
  Workspace ws;
  Tensor ping, pong, merged;
  std::vector<Tensor> touts(static_cast<std::size_t>(ntowers));
  std::int64_t walked = 0;
  auto walk_seq = [&](Sequential& seq, std::int32_t seq_id, const Tensor& in,
                      Tensor& out) {
    const Tensor* cur = &in;
    for (std::size_t li = 0; li < seq.num_layers(); ++li) {
      Layer& layer = seq.layer(li);
      if (dynamic_cast<Conv2D*>(&layer) || dynamic_cast<Dense*>(&layer))
        observe(seq_id, static_cast<std::int32_t>(li), *cur);
      Tensor& dst = (cur == &ping) ? pong : ping;
      layer.forward(*cur, dst, /*training=*/false, ws);
      cur = &dst;
    }
    out = *cur;
  };
  for (const std::vector<Tensor>& batch : calib) {
    DNNSPMV_CHECK_ERRC(batch.size() == static_cast<std::size_t>(ntowers),
                       errc::invalid_argument,
                       "calibration batch has " << batch.size()
                                                << " inputs, net has "
                                                << ntowers << " towers");
    if (walked >= cfg.max_calib_samples) break;
    for (std::int32_t t = 0; t < ntowers; ++t)
      walk_seq(net.tower(static_cast<std::size_t>(t)), t, batch[t],
               touts[static_cast<std::size_t>(t)]);
    // Concatenate the flattened tower outputs exactly like
    // MergeNet::flatten_tower_outputs.
    const std::int64_t nb = batch[0].dim(0);
    std::int64_t feat = 0;
    for (const Tensor& to : touts) feat += to.size() / nb;
    merged.ensure2(nb, feat);
    std::int64_t off = 0;
    for (const Tensor& to : touts) {
      const std::int64_t f = to.size() / nb;
      for (std::int64_t s = 0; s < nb; ++s)
        std::memcpy(merged.data() + s * feat + off, to.data() + s * f,
                    static_cast<std::size_t>(f) * sizeof(float));
      off += f;
    }
    Tensor head_out;
    walk_seq(net.head(), -1, merged, head_out);
    walked += nb;
  }

  // Convert: per observed layer, weight scales from the weights themselves
  // and activation qparams from the chosen observer.
  QuantizedWeightSet qws;
  auto convert = [&](Sequential& seq, std::int32_t seq_id) {
    for (std::size_t li = 0; li < seq.num_layers(); ++li) {
      Layer& layer = seq.layer(li);
      const bool is_conv = dynamic_cast<Conv2D*>(&layer) != nullptr;
      const bool is_dense = dynamic_cast<Dense*>(&layer) != nullptr;
      if (!is_conv && !is_dense) continue;
      const auto it =
          observers.find({seq_id, static_cast<std::int32_t>(li)});
      DNNSPMV_CHECK_ERRC(it != observers.end() && it->second.mm.seen(),
                         errc::data_error,
                         "layer never observed during calibration");
      const Obs& o = it->second;
      float lo = o.mm.lo(), hi = o.mm.hi();
      if (cfg.observer == QuantConfig::Observer::kPercentile) {
        const float bound = o.hist.percentile(cfg.percentile);
        lo = std::max(lo, -bound);
        hi = std::min(hi, bound);
      }
      QLayer ql;
      ql.seq = seq_id;
      ql.index = static_cast<std::int32_t>(li);
      ql.kind = is_conv ? QLayer::kConv : QLayer::kDense;
      range_to_qparams(lo, hi, &ql.act_scale, &ql.act_zp);
      const std::vector<Param*> params = layer.params();
      const Tensor& w = params[0]->value;
      const Tensor& b = params[1]->value;
      ql.rows = w.dim(0);
      ql.cols = w.dim(1);
      ql.w_scale.resize(static_cast<std::size_t>(ql.rows));
      ql.wq.resize(static_cast<std::size_t>(ql.rows * ql.cols));
      quantize_weights_per_channel(w.data(), ql.rows, ql.cols, ql.wq.data(),
                                   ql.w_scale.data());
      ql.bias.assign(b.data(), b.data() + b.size());
      qws.layers.push_back(std::move(ql));
    }
  };
  for (std::int32_t t = 0; t < ntowers; ++t)
    convert(net.tower(static_cast<std::size_t>(t)), t);
  convert(net.head(), -1);
  return qws;
}

// ---------------------------------------------------------------------------
// QuantizedMergeNet

QuantizedMergeNet::QuantizedMergeNet(MergeNet& net,
                                     const QuantizedWeightSet& qws)
    : net_(&net) {
  tower_plans_.resize(net.num_towers());
  std::size_t used = 0;
  for (std::size_t t = 0; t < net.num_towers(); ++t) {
    compile(net.tower(t), static_cast<std::int32_t>(t), qws,
            tower_plans_[t]);
    for (const Op& op : tower_plans_[t])
      used += op.kind != Op::Kind::kLayer ? 1 : 0;
  }
  compile(net.head(), -1, qws, head_plan_);
  for (const Op& op : head_plan_)
    used += op.kind != Op::Kind::kLayer ? 1 : 0;
  DNNSPMV_CHECK_ERRC(used == qws.layers.size(), errc::data_error,
                     "quantized weight set has " << qws.layers.size()
                                                 << " layers, net consumed "
                                                 << used);
  tower_out_.resize(net.num_towers());
}

void QuantizedMergeNet::compile(Sequential& seq, std::int32_t seq_id,
                                const QuantizedWeightSet& qws,
                                std::vector<Op>& plan) {
  plan.clear();
  for (std::size_t li = 0; li < seq.num_layers(); ++li) {
    Layer& layer = seq.layer(li);
    if (dynamic_cast<Dropout*>(&layer)) continue;  // inference identity
    Conv2D* conv = dynamic_cast<Conv2D*>(&layer);
    Dense* dense = dynamic_cast<Dense*>(&layer);
    if (!conv && !dense) {
      Op op;
      op.kind = Op::Kind::kLayer;
      op.layer = &layer;
      plan.push_back(std::move(op));
      continue;
    }
    const QLayer* ql = qws.find(seq_id, static_cast<std::int32_t>(li));
    DNNSPMV_CHECK_ERRC(ql != nullptr, errc::data_error,
                       "no quantized weights for layer " << li << " of seq "
                                                         << seq_id);
    DNNSPMV_CHECK_ERRC(
        ql->kind == (conv ? QLayer::kConv : QLayer::kDense),
        errc::data_error, "quantized layer kind mismatch at " << li);
    const Tensor& w = layer.params()[0]->value;
    DNNSPMV_CHECK_ERRC(ql->rows == w.dim(0) && ql->cols == w.dim(1),
                       errc::data_error,
                       "quantized weight shape [" << ql->rows << ", "
                                                  << ql->cols
                                                  << "] does not match net");
    Op op;
    op.kind = conv ? Op::Kind::kConv : Op::Kind::kDense;
    op.conv = conv;
    op.dense = dense;
    op.packed = qgemm_pack_weights(ql->rows, ql->cols, ql->wq.data());
    op.act_inv_scale = 1.0f / ql->act_scale;
    op.act_zp = ql->act_zp;
    op.out_scale.resize(static_cast<std::size_t>(ql->rows));
    op.bias_eff.resize(static_cast<std::size_t>(ql->rows));
    for (std::int64_t i = 0; i < ql->rows; ++i) {
      const double os = static_cast<double>(ql->w_scale[i]) *
                        static_cast<double>(ql->act_scale);
      std::int64_t wsum = 0;
      const std::int8_t* row = ql->wq.data() + i * ql->cols;
      for (std::int64_t j = 0; j < ql->cols; ++j) wsum += row[j];
      op.out_scale[static_cast<std::size_t>(i)] = static_cast<float>(os);
      op.bias_eff[static_cast<std::size_t>(i)] = static_cast<float>(
          static_cast<double>(ql->bias[static_cast<std::size_t>(i)]) -
          os * static_cast<double>(ql->act_zp) *
              static_cast<double>(wsum));
    }
    // A ReLU right after a quantized layer becomes a free epilogue max.
    if (li + 1 < seq.num_layers() &&
        dynamic_cast<ReLU*>(&seq.layer(li + 1))) {
      op.relu = true;
      ++li;
    }
    plan.push_back(std::move(op));
  }
}

void QuantizedMergeNet::run_conv(Op& op, const Tensor& in, Tensor& out) {
  Conv2D& c = *op.conv;
  const ConvGeom g{c.in_channels(), in.dim(2),     in.dim(3),
                   c.kernel_size(), c.kernel_size(), c.stride(),
                   c.stride(),      c.padding(),     c.padding()};
  const std::int64_t batch = in.dim(0);
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t psz = g.patch_size();
  const std::int64_t ncols = batch * opix;
  const std::int64_t oc = c.out_channels();
  out.ensure({batch, oc, g.out_h(), g.out_w()});

  qin_.resize(static_cast<std::size_t>(in.size()));
  qcol_.resize(static_cast<std::size_t>(psz * ncols));
  quantize_u7(in.data(), in.size(), op.act_inv_scale, op.act_zp,
              qin_.data());
  im2col_batch_u8(g, batch, qin_.data(), qcol_.data(),
                  static_cast<std::uint8_t>(op.act_zp));
  if (batch == 1) {
    // The [oc, opix] GEMM output IS the NCHW sample: dequantize straight
    // into the output tensor, no scatter pass — the cold-miss case.
    qgemm_u7(op.packed, ncols, qcol_.data(), ncols, 1, op.out_scale.data(),
             op.bias_eff.data(), op.relu, out.data(), ncols);
    return;
  }
  mat_.resize(static_cast<std::size_t>(oc * ncols));
  qgemm_u7(op.packed, ncols, qcol_.data(), ncols, 1, op.out_scale.data(),
           op.bias_eff.data(), op.relu, mat_.data(), ncols);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t ch = 0; ch < oc; ++ch)
      std::memcpy(out.data() + (n * oc + ch) * opix,
                  mat_.data() + ch * ncols + n * opix,
                  static_cast<std::size_t>(opix) * sizeof(float));
}

void QuantizedMergeNet::run_dense(Op& op, const Tensor& in, Tensor& out) {
  Dense& d = *op.dense;
  const std::int64_t batch = in.dim(0);
  const std::int64_t in_f = d.in_features();
  const std::int64_t out_f = d.out_features();
  out.ensure2(batch, out_f);

  qin_.resize(static_cast<std::size_t>(in.size()));
  quantize_u7(in.data(), in.size(), op.act_inv_scale, op.act_zp,
              qin_.data());
  // Compute C^T[out_f, batch] = Wq · Xq^T: depth stride 1 within a sample,
  // column (= batch) stride in_f. batch == 1 writes the output row direct.
  if (batch == 1) {
    qgemm_u7(op.packed, 1, qin_.data(), 1, in_f, op.out_scale.data(),
             op.bias_eff.data(), op.relu, out.data(), 1);
    return;
  }
  mat_.resize(static_cast<std::size_t>(out_f * batch));
  qgemm_u7(op.packed, batch, qin_.data(), 1, in_f, op.out_scale.data(),
           op.bias_eff.data(), op.relu, mat_.data(), batch);
  for (std::int64_t s = 0; s < batch; ++s)
    for (std::int64_t o = 0; o < out_f; ++o)
      out.data()[s * out_f + o] = mat_[static_cast<std::size_t>(o * batch + s)];
}

void QuantizedMergeNet::run(std::vector<Op>& plan, const Tensor& in,
                            Tensor& out) {
  const Tensor* cur = &in;
  for (Op& op : plan) {
    Tensor& dst = (cur == &ping_) ? pong_ : ping_;
    switch (op.kind) {
      case Op::Kind::kLayer:
        op.layer->forward(*cur, dst, /*training=*/false, ws_);
        break;
      case Op::Kind::kConv:
        run_conv(op, *cur, dst);
        break;
      case Op::Kind::kDense:
        run_dense(op, *cur, dst);
        break;
    }
    cur = &dst;
  }
  out = *cur;
}

void QuantizedMergeNet::forward(const std::vector<Tensor>& inputs,
                                Tensor& logits) {
  DNNSPMV_CHECK_ERRC(inputs.size() == tower_plans_.size(),
                     errc::invalid_argument,
                     "expected " << tower_plans_.size() << " inputs, got "
                                 << inputs.size());
  for (std::size_t t = 0; t < tower_plans_.size(); ++t)
    run(tower_plans_[t], inputs[t], tower_out_[t]);
  const std::int64_t batch = inputs[0].dim(0);
  std::int64_t feat = 0;
  for (const Tensor& to : tower_out_) feat += to.size() / batch;
  merged_.ensure2(batch, feat);
  std::int64_t off = 0;
  for (const Tensor& to : tower_out_) {
    const std::int64_t f = to.size() / batch;
    for (std::int64_t s = 0; s < batch; ++s)
      std::memcpy(merged_.data() + s * feat + off, to.data() + s * f,
                  static_cast<std::size_t>(f) * sizeof(float));
    off += f;
  }
  run(head_plan_, merged_, logits);
}

}  // namespace dnnspmv
