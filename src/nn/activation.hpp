// Element-wise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace dnnspmv {

class ReLU final : public Layer {
 public:
  using Layer::forward;
  using Layer::backward;
  void forward(const Tensor& in, Tensor& out, bool training,
               Workspace& ws) override;
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in, Workspace& ws) override;
  std::string name() const override { return "relu"; }
  std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const override {
    return in;
  }
};

}  // namespace dnnspmv
