#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dnnspmv {

void softmax(const Tensor& logits, Tensor& probs) {
  DNNSPMV_CHECK(logits.rank() == 2);
  probs.resize(logits.shape());
  const std::int64_t batch = logits.dim(0), k = logits.dim(1);
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* in = logits.data() + b * k;
    float* out = probs.data() + b * k;
    const float mx = *std::max_element(in, in + k);
    double sum = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      out[j] = std::exp(in[j] - mx);
      sum += out[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t j = 0; j < k; ++j) out[j] *= inv;
  }
}

double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<std::int32_t>& labels,
                             Tensor& grad_logits) {
  const std::int64_t batch = logits.dim(0), k = logits.dim(1);
  DNNSPMV_CHECK(static_cast<std::int64_t>(labels.size()) == batch);
  Tensor probs;
  softmax(logits, probs);
  grad_logits.resize(logits.shape());
  double loss = 0.0;
  const float inv_batch = static_cast<float>(1.0 / batch);
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int32_t y = labels[static_cast<std::size_t>(b)];
    DNNSPMV_CHECK_MSG(y >= 0 && y < k, "label " << y << " out of range");
    const float* p = probs.data() + b * k;
    float* g = grad_logits.data() + b * k;
    loss -= std::log(std::max(p[y], 1e-12f));
    for (std::int64_t j = 0; j < k; ++j)
      g[j] = (p[j] - (j == y ? 1.0f : 0.0f)) * inv_batch;
  }
  return loss / static_cast<double>(batch);
}

std::vector<std::int32_t> argmax_rows(const Tensor& logits) {
  const std::int64_t batch = logits.dim(0), k = logits.dim(1);
  std::vector<std::int32_t> out(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * k;
    out[static_cast<std::size_t>(b)] = static_cast<std::int32_t>(
        std::max_element(row, row + k) - row);
  }
  return out;
}

}  // namespace dnnspmv
