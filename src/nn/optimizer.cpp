#include "nn/optimizer.hpp"

#include <cmath>

namespace dnnspmv {

SgdMomentum::SgdMomentum(std::vector<Param*> params, double lr,
                         double momentum, double weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void SgdMomentum::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (p.frozen) {
      p.grad.zero();
      continue;
    }
    Tensor& vel = velocity_[i];
    const float lr = static_cast<float>(lr_);
    const float mom = static_cast<float>(momentum_);
    const float wd = static_cast<float>(weight_decay_);
    for (std::int64_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad[j] + wd * p.value[j];
      vel[j] = mom * vel[j] - lr * g;
      p.value[j] += vel[j];
    }
    p.grad.zero();
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (p.frozen) {
      p.grad.zero();
      continue;
    }
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    const float b1 = static_cast<float>(beta1_);
    const float b2 = static_cast<float>(beta2_);
    const float eps = static_cast<float>(eps_);
    for (std::int64_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      p.value[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps);
    }
    p.grad.zero();
  }
}

}  // namespace dnnspmv
