#include "nn/workspace.hpp"

#include "common/error.hpp"

namespace dnnspmv {

float* Workspace::get(const void* owner, int slot, std::int64_t size) {
  DNNSPMV_CHECK(size >= 0);
  std::vector<float>& buf = bufs_[Key{owner, slot}];
  if (buf.size() < static_cast<std::size_t>(size))
    buf.resize(static_cast<std::size_t>(size));
  return buf.data();
}

std::size_t Workspace::floats_held() const {
  std::size_t total = 0;
  for (const auto& [key, buf] : bufs_) total += buf.size();
  return total;
}

}  // namespace dnnspmv
