#include "nn/activation.hpp"

namespace dnnspmv {

void ReLU::forward(const Tensor& in, Tensor& out, bool, Workspace&) {
  out.ensure(in.shape());
  const std::int64_t n = in.size();
  const float* src = in.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void ReLU::backward(const Tensor& in, const Tensor&, const Tensor& grad_out,
                    Tensor& grad_in, Workspace&) {
  grad_in.ensure(in.shape());
  const std::int64_t n = in.size();
  const float* src = in.data();
  const float* go = grad_out.data();
  float* gi = grad_in.data();
  for (std::int64_t i = 0; i < n; ++i) gi[i] = src[i] > 0.0f ? go[i] : 0.0f;
}

}  // namespace dnnspmv
