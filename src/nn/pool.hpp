// 2×2-style max pooling (NCHW).
#pragma once

#include "nn/layer.hpp"

namespace dnnspmv {

class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::int64_t k = 2, std::int64_t stride = 0)
      : k_(k), stride_(stride == 0 ? k : stride) {
    DNNSPMV_CHECK(k_ > 0 && stride_ > 0);
  }

  using Layer::forward;
  using Layer::backward;
  void forward(const Tensor& in, Tensor& out, bool training,
               Workspace& ws) override;
  void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                Tensor& grad_in, Workspace& ws) override;
  std::string name() const override { return "maxpool2d"; }
  std::vector<std::int64_t> output_shape(
      const std::vector<std::int64_t>& in) const override;

 private:
  /// Fills argmax_ with the flat input offset of each window's maximum
  /// (first occurrence in row-major window order, as forward records it).
  void record_argmax(const Tensor& in, Tensor& out);

  std::int64_t k_, stride_;
  std::vector<std::int32_t> argmax_;  // flat input offset of each max
  // False after an inference forward (which skips the bookkeeping);
  // backward then rebuilds argmax_ from the inputs before routing.
  bool argmax_valid_ = false;
};

}  // namespace dnnspmv
