#include "ml/dtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace dnnspmv {
namespace {

double gini_from_counts(const std::vector<std::int64_t>& counts,
                        std::int64_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (std::int64_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

std::int32_t majority(const std::vector<std::int64_t>& counts) {
  return static_cast<std::int32_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

void DecisionTree::fit(const std::vector<std::vector<double>>& x,
                       const std::vector<std::int32_t>& y,
                       const DTreeConfig& cfg) {
  DNNSPMV_CHECK(!x.empty() && x.size() == y.size());
  num_classes_ = cfg.num_classes;
  if (num_classes_ == 0)
    num_classes_ = *std::max_element(y.begin(), y.end()) + 1;
  for (std::int32_t label : y)
    DNNSPMV_CHECK_MSG(label >= 0 && label < num_classes_,
                      "label " << label << " out of range");
  nodes_.clear();
  std::vector<std::int32_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  build(x, y, idx, 0, static_cast<int>(x.size()), 0, cfg);
}

std::int32_t DecisionTree::build(const std::vector<std::vector<double>>& x,
                                 const std::vector<std::int32_t>& y,
                                 std::vector<std::int32_t>& idx, int lo,
                                 int hi, int depth, const DTreeConfig& cfg) {
  const int n = hi - lo;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (int i = lo; i < hi; ++i) ++counts[static_cast<std::size_t>(y[idx[i]])];
  const double node_gini = gini_from_counts(counts, n);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].label = majority(counts);

  if (depth >= cfg.max_depth || n < 2 * cfg.min_leaf || node_gini == 0.0)
    return node_id;

  // Exhaustive best split: for each feature, sort the index range by that
  // feature and sweep the boundary.
  const int d = static_cast<int>(x[0].size());
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  std::vector<std::int32_t> work(idx.begin() + lo, idx.begin() + hi);
  for (int f = 0; f < d; ++f) {
    std::sort(work.begin(), work.end(),
              [&](std::int32_t a, std::int32_t b) {
                return x[a][f] < x[b][f];
              });
    std::vector<std::int64_t> left(
        static_cast<std::size_t>(num_classes_), 0);
    std::vector<std::int64_t> right = counts;
    for (int i = 0; i + 1 < n; ++i) {
      const std::int32_t s = work[i];
      ++left[static_cast<std::size_t>(y[s])];
      --right[static_cast<std::size_t>(y[s])];
      if (i + 1 < cfg.min_leaf || n - i - 1 < cfg.min_leaf) continue;
      const double v = x[s][f];
      const double vnext = x[work[i + 1]][f];
      if (v == vnext) continue;  // can't split between equal values
      const double gl = gini_from_counts(left, i + 1);
      const double gr = gini_from_counts(right, n - i - 1);
      const double gain =
          node_gini - (static_cast<double>(i + 1) * gl +
                       static_cast<double>(n - i - 1) * gr) /
                          static_cast<double>(n);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (v + vnext);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition idx[lo, hi) in place by the chosen split.
  const auto mid_it = std::stable_partition(
      idx.begin() + lo, idx.begin() + hi, [&](std::int32_t s) {
        return x[s][best_feature] <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return node_id;  // degenerate split

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const std::int32_t left_id = build(x, y, idx, lo, mid, depth + 1, cfg);
  nodes_[node_id].left = left_id;
  const std::int32_t right_id = build(x, y, idx, mid, hi, depth + 1, cfg);
  nodes_[node_id].right = right_id;
  return node_id;
}

std::int32_t DecisionTree::predict(const std::vector<double>& x) const {
  DNNSPMV_CHECK_MSG(trained(), "predict on untrained tree");
  std::int32_t cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(cur)];
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                  : nd.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].label;
}

std::vector<std::int32_t> DecisionTree::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::int32_t> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

int DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, int>> stack = {{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.feature >= 0) {
      stack.push_back({nd.left, d + 1});
      stack.push_back({nd.right, d + 1});
    }
  }
  return best;
}

}  // namespace dnnspmv
