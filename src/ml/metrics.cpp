#include "ml/metrics.hpp"

#include "common/error.hpp"

namespace dnnspmv {

EvalResult evaluate(const std::vector<std::int32_t>& truth,
                    const std::vector<std::int32_t>& pred, int num_classes) {
  DNNSPMV_CHECK(truth.size() == pred.size() && !truth.empty());
  EvalResult r;
  r.confusion.assign(static_cast<std::size_t>(num_classes),
                     std::vector<std::int64_t>(
                         static_cast<std::size_t>(num_classes), 0));
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    DNNSPMV_CHECK(truth[i] >= 0 && truth[i] < num_classes);
    DNNSPMV_CHECK(pred[i] >= 0 && pred[i] < num_classes);
    ++r.confusion[static_cast<std::size_t>(truth[i])]
                 [static_cast<std::size_t>(pred[i])];
    if (truth[i] == pred[i]) ++correct;
  }
  r.accuracy = static_cast<double>(correct) /
               static_cast<double>(truth.size());
  r.per_class.resize(static_cast<std::size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    std::int64_t row_sum = 0, col_sum = 0;
    for (int j = 0; j < num_classes; ++j) {
      row_sum += r.confusion[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(j)];
      col_sum += r.confusion[static_cast<std::size_t>(j)]
                            [static_cast<std::size_t>(c)];
    }
    ClassMetrics& m = r.per_class[static_cast<std::size_t>(c)];
    m.ground_truth = row_sum;
    const std::int64_t tp = r.confusion[static_cast<std::size_t>(c)]
                                       [static_cast<std::size_t>(c)];
    m.recall = row_sum > 0 ? static_cast<double>(tp) /
                                 static_cast<double>(row_sum)
                           : 0.0;
    m.precision = col_sum > 0 ? static_cast<double>(tp) /
                                    static_cast<double>(col_sum)
                              : 0.0;
  }
  return r;
}

}  // namespace dnnspmv
