// CART decision-tree classifier — the paper's baseline model family
// (Li et al. [20], Sedaghati et al. [32] both use decision trees over
// hand-crafted features).
//
// Gini-impurity splits over continuous features, depth/min-leaf stopping.
#pragma once

#include <cstdint>
#include <vector>

namespace dnnspmv {

struct DTreeConfig {
  int max_depth = 12;
  int min_leaf = 4;
  int num_classes = 0;  // inferred from labels when 0
};

class DecisionTree {
 public:
  /// Trains on row-major features [n x d] with integer labels.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<std::int32_t>& y, const DTreeConfig& cfg = {});

  std::int32_t predict(const std::vector<double>& x) const;

  std::vector<std::int32_t> predict(
      const std::vector<std::vector<double>>& x) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const;
  bool trained() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t label = 0;  // majority class (used at leaves)
  };

  std::int32_t build(const std::vector<std::vector<double>>& x,
                     const std::vector<std::int32_t>& y,
                     std::vector<std::int32_t>& idx, int lo, int hi,
                     int depth, const DTreeConfig& cfg);

  std::vector<Node> nodes_;
  int num_classes_ = 0;
};

}  // namespace dnnspmv
