#include "ml/crossval.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnnspmv {

std::vector<FoldSplit> stratified_kfold(
    const std::vector<std::int32_t>& labels, int k, std::uint64_t seed) {
  DNNSPMV_CHECK(k >= 2 && labels.size() >= static_cast<std::size_t>(k));
  const std::int32_t num_classes =
      *std::max_element(labels.begin(), labels.end()) + 1;

  // Shuffle within each class, then deal samples round-robin into folds.
  Rng rng(seed);
  std::vector<std::vector<std::int32_t>> by_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[static_cast<std::size_t>(labels[i])].push_back(
        static_cast<std::int32_t>(i));
  std::vector<std::vector<std::int32_t>> fold_members(
      static_cast<std::size_t>(k));
  for (auto& cls : by_class) {
    std::shuffle(cls.begin(), cls.end(), rng);
    for (std::size_t i = 0; i < cls.size(); ++i)
      fold_members[i % static_cast<std::size_t>(k)].push_back(cls[i]);
  }

  std::vector<FoldSplit> folds(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) {
    FoldSplit& split = folds[static_cast<std::size_t>(f)];
    split.test = fold_members[static_cast<std::size_t>(f)];
    std::sort(split.test.begin(), split.test.end());
    for (int g = 0; g < k; ++g) {
      if (g == f) continue;
      split.train.insert(split.train.end(),
                         fold_members[static_cast<std::size_t>(g)].begin(),
                         fold_members[static_cast<std::size_t>(g)].end());
    }
    std::sort(split.train.begin(), split.train.end());
  }
  return folds;
}

}  // namespace dnnspmv
