// Stratified k-fold cross-validation splits (paper §7.1 uses 5-fold CV).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dnnspmv {

struct FoldSplit {
  std::vector<std::int32_t> train;
  std::vector<std::int32_t> test;
};

/// Produces k folds stratified by label so rare classes appear in every
/// test set with their corpus-level frequency.
std::vector<FoldSplit> stratified_kfold(const std::vector<std::int32_t>& labels,
                                        int k, std::uint64_t seed);

}  // namespace dnnspmv
