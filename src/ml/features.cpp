#include "ml/features.hpp"

#include <cmath>

namespace dnnspmv {
namespace {

double log1p_safe(double v) { return std::log1p(std::max(0.0, v)); }

}  // namespace

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> kNames = {
      "log_rows",      "log_cols",     "log_nnz",     "log_density",
      "row_nnz_mean",  "row_nnz_sd",   "row_nnz_cv",  "row_nnz_max",
      "max_over_mean", "empty_frac",   "log_ndiags",  "dia_fill",
      "diag_frac",     "ell_fill",     "bsr_fill",    "mean_dist",
  };
  return kNames;
}

std::vector<double> extract_features(const MatrixStats& s) {
  std::vector<double> f;
  f.reserve(kNumFeatures);
  f.push_back(log1p_safe(static_cast<double>(s.rows)));
  f.push_back(log1p_safe(static_cast<double>(s.cols)));
  f.push_back(log1p_safe(static_cast<double>(s.nnz)));
  f.push_back(std::log(std::max(s.density, 1e-12)));
  f.push_back(s.row_nnz_mean);
  f.push_back(s.row_nnz_sd);
  f.push_back(s.row_nnz_cv);
  f.push_back(static_cast<double>(s.row_nnz_max));
  f.push_back(s.max_over_mean);
  f.push_back(s.rows > 0 ? static_cast<double>(s.empty_rows) /
                               static_cast<double>(s.rows)
                         : 0.0);
  f.push_back(log1p_safe(static_cast<double>(s.ndiags)));
  f.push_back(s.dia_fill);
  f.push_back(s.diag_frac);
  f.push_back(s.ell_fill);
  f.push_back(s.bsr_fill);
  f.push_back(s.mean_dist);
  return f;
}

std::vector<double> extract_features(const Csr& a) {
  return extract_features(compute_stats(a));
}

}  // namespace dnnspmv
