// Classification metrics: the paper evaluates overall accuracy plus
// per-format precision and recall (§7.2, Tables 2–3).
#pragma once

#include <cstdint>
#include <vector>

namespace dnnspmv {

struct ClassMetrics {
  std::int64_t ground_truth = 0;  // # samples whose true label is this class
  double recall = 0.0;            // fraction of true-X predicted X
  double precision = 0.0;         // fraction of predicted-X that are X
};

struct EvalResult {
  double accuracy = 0.0;
  std::vector<ClassMetrics> per_class;
  std::vector<std::vector<std::int64_t>> confusion;  // [true][pred]
};

EvalResult evaluate(const std::vector<std::int32_t>& truth,
                    const std::vector<std::int32_t>& pred, int num_classes);

}  // namespace dnnspmv
