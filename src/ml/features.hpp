// Hand-crafted feature vector for the decision-tree baseline.
//
// These mirror the SMAT feature families (Li et al., PLDI'13 — the paper's
// state-of-the-art comparator): size, density, row-length distribution,
// diagonal structure, and format-specific padding ratios.
#pragma once

#include <string>
#include <vector>

#include "sparse/stats.hpp"

namespace dnnspmv {

constexpr int kNumFeatures = 16;

/// Feature names, index-aligned with extract_features output.
const std::vector<std::string>& feature_names();

/// 16 scalar features; log-scaled where the raw value spans decades.
std::vector<double> extract_features(const MatrixStats& s);

std::vector<double> extract_features(const Csr& a);

}  // namespace dnnspmv
