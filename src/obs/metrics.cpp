#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace dnnspmv::obs {

void Gauge::add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void Gauge::update_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::Snapshot::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_upper(i);
  }
  return bucket_upper(kHistogramBuckets - 1);
}

void Histogram::observe(double v) {
  v = std::max(v, 0.0);
  const auto ticks = static_cast<std::uint64_t>(v);
  const int idx =
      ticks == 0
          ? 0
          : std::min(kHistogramBuckets - 1,
                     static_cast<int>(std::bit_width(ticks)) - 1);
  buckets_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (int i = 0; i < kHistogramBuckets; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

namespace {

// Creating an instrument under a name already registered as another kind
// is a wiring bug; fail loudly rather than silently splitting the metric.
template <typename Map, typename... Others>
void check_name_free(std::string_view name, const char* kind,
                     const Others&... others) {
  const bool clash = (... || (others.find(name) != others.end()));
  if (clash)
    throw std::logic_error("obs: metric '" + std::string(name) +
                           "' already registered as a different kind than " +
                           kind);
  (void)sizeof(Map);
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_name_free<decltype(counters_)>(name, "counter", gauges_,
                                         histograms_);
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_name_free<decltype(gauges_)>(name, "gauge", counters_, histograms_);
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_name_free<decltype(histograms_)>(name, "histogram", counters_,
                                           gauges_);
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& name,
                                          std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge_or(const std::string& name,
                                 double fallback) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

Histogram::Snapshot MetricsSnapshot::histogram_or(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? Histogram::Snapshot{} : it->second;
}

MetricsSnapshot MetricsRegistry::snapshot(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_)
    if (name.compare(0, prefix.size(), prefix) == 0)
      s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_)
    if (name.compare(0, prefix.size(), prefix) == 0)
      s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_)
    if (name.compare(0, prefix.size(), prefix) == 0)
      s.histograms.emplace(name, h->snapshot());
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dnnspmv::obs
