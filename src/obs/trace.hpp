// RAII span tracing with per-thread lock-free event sinks.
//
// A Span measures one scoped region: construction stamps a start time and
// bumps a thread-local nesting depth, destruction emits a TraceEvent into
// the calling thread's ring buffer (and optionally observes the duration
// into a Histogram). Rings are single-producer (the owning thread) /
// single-consumer (whoever drains, serialized by a global mutex), bounded,
// and drop-on-full — producers never block and never overwrite a slot a
// drain might be reading, which keeps the design ThreadSanitizer-clean.
//
// Everything is gated on a process-wide runtime flag (set_enabled). While
// the flag is off, constructing a Span costs one relaxed atomic load and a
// branch — no clock read, no name copy, no allocation — so instrumented
// code is effectively free in production paths that don't want tracing.
// Counters and histograms (obs/metrics.hpp) are NOT gated by this flag;
// they are always live because service stats are built on them.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dnnspmv::obs {

class Histogram;

/// Master tracing switch. Off by default.
void set_enabled(bool on);
bool enabled();

/// Microseconds since the first obs call in the process (steady clock).
std::int64_t now_us();

inline constexpr std::size_t kSpanNameCapacity = 48;

/// One completed span. `ts_us`/`dur_us` are in the now_us() timebase;
/// `tid` is a small dense id assigned per thread on first use; `depth` is
/// the span nesting level within its thread at the time it opened.
struct TraceEvent {
  char name[kSpanNameCapacity];  // NUL-terminated, truncated if longer
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
};

/// RAII scoped span. Non-copyable, meant for stack use only.
class Span {
 public:
  /// `hist`, when given, receives the span duration (in seconds, via
  /// observe_seconds) at close — one timing site feeding both sinks.
  explicit Span(std::string_view name, Histogram* hist = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::int64_t start_us_ = -1;  // -1 ⇒ tracing was off at construction
  Histogram* hist_ = nullptr;
  std::uint32_t depth_ = 0;
  char name_[kSpanNameCapacity];
};

/// Moves every pending event (all threads, including exited ones) out of
/// the rings, in per-thread FIFO order. Concurrent producers keep running;
/// events they publish mid-drain are picked up by the next drain.
std::vector<TraceEvent> drain_trace_events();

/// Total events dropped because a thread's ring was full.
std::uint64_t dropped_trace_events();

/// Drains and discards everything pending and zeroes the dropped count.
void clear_trace();

}  // namespace dnnspmv::obs
