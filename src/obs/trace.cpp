#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace dnnspmv::obs {
namespace {

std::atomic<bool> g_enabled{false};

// Bounded SPSC ring. The owning thread is the only producer; drains (any
// thread, serialized by g_rings_mu) are the only consumer. head_ counts
// published events, tail_ consumed ones; slots in [tail_, head_) are
// immutable until the consumer advances tail_, so a full ring drops new
// events instead of overwriting ones a drain may be copying.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 8192;

  void push(const TraceEvent& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (slots_.empty()) slots_.resize(kCapacity);  // first traced event
    slots_[h % kCapacity] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  void drain(std::vector<TraceEvent>& out) {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    for (; t < h; ++t) out.push_back(slots_[t % kCapacity]);
    tail_.store(t, std::memory_order_release);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void reset_dropped() { dropped_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> slots_;  // sized lazily: untraced threads stay tiny
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

struct ThreadSink {
  TraceRing ring;
  std::uint32_t tid = 0;
};

std::mutex g_rings_mu;  // guards the registry below + serializes drains
std::vector<std::shared_ptr<ThreadSink>>& rings() {
  static std::vector<std::shared_ptr<ThreadSink>> v;
  return v;
}

ThreadSink& local_sink() {
  thread_local std::shared_ptr<ThreadSink> sink = [] {
    auto s = std::make_shared<ThreadSink>();
    std::lock_guard<std::mutex> lock(g_rings_mu);
    s->tid = static_cast<std::uint32_t>(rings().size());
    rings().push_back(s);  // registry keeps events of exited threads alive
    return s;
  }();
  return *sink;
}

thread_local std::uint32_t t_depth = 0;

}  // namespace

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::int64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               epoch)
      .count();
}

Span::Span(std::string_view name, Histogram* hist) {
  if (!enabled()) return;  // start_us_ stays -1: the destructor is a no-op
  const std::size_t n = std::min(name.size(), kSpanNameCapacity - 1);
  std::memcpy(name_, name.data(), n);
  name_[n] = '\0';
  hist_ = hist;
  depth_ = t_depth++;
  start_us_ = now_us();
}

Span::~Span() {
  if (start_us_ < 0) return;
  const std::int64_t end = now_us();
  --t_depth;
  ThreadSink& sink = local_sink();
  TraceEvent e;
  std::memcpy(e.name, name_, kSpanNameCapacity);
  e.ts_us = start_us_;
  e.dur_us = end - start_us_;
  e.tid = sink.tid;
  e.depth = depth_;
  sink.ring.push(e);
  if (hist_) hist_->observe_seconds(static_cast<double>(e.dur_us) * 1e-6);
}

std::vector<TraceEvent> drain_trace_events() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  std::vector<TraceEvent> out;
  for (const auto& sink : rings()) sink->ring.drain(out);
  return out;
}

std::uint64_t dropped_trace_events() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  std::uint64_t total = 0;
  for (const auto& sink : rings()) total += sink->ring.dropped();
  return total;
}

void clear_trace() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  std::vector<TraceEvent> scratch;
  for (const auto& sink : rings()) {
    sink->ring.drain(scratch);
    sink->ring.reset_dropped();
    scratch.clear();
  }
}

}  // namespace dnnspmv::obs
