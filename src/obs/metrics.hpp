// Process-wide metrics: named atomic counters, gauges, and fixed-bucket
// histograms behind a registry.
//
// Instruments are registered once by name and returned by reference; the
// references are stable for the registry's lifetime, so instrumentation
// sites resolve their handles once (at construction, or via a local
// static) and then update through plain relaxed atomics — the hot path
// never takes the registry lock and never hashes a name.
//
// Histogram buckets are powers of two of the observed value: bucket i
// counts observations in [2^i, 2^(i+1)), bucket 0 additionally takes
// values < 1 and the last bucket takes everything larger. Latency
// histograms record microseconds (observe_seconds converts), so the
// buckets span 1 µs … ~2 s — the same shape the serve layer has used
// since PR 1.
//
// A process-global registry (MetricsRegistry::global()) is what the
// library's built-in instrumentation reports through; independent
// instances can be created for isolation (tests do).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace dnnspmv::obs {

inline constexpr int kHistogramBuckets = 22;

/// Monotonic event count. All updates are relaxed atomics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (plus a CAS-max update for high-water marks).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  /// Raises the gauge to `v` if larger (monotonic high-water mark).
  void update_max(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed power-of-two-bucket histogram with count and sum.
class Histogram {
 public:
  struct Snapshot {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;  // in observed-value units

    /// Upper edge of bucket `i`, in observed-value units.
    static double bucket_upper(int i) {
      return static_cast<double>(1ULL << (i + 1));
    }
    /// Upper edge of the bucket containing the q-th observation.
    double quantile(double q) const;
    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  void observe(double v);
  /// Seconds → microseconds, so latency buckets span 1 µs … ~2 s.
  void observe_seconds(double s) { observe(s * 1e6); }

  Snapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Lenient accessors: a name that was never registered (e.g. a counter
  /// no request path has touched yet) reads as zero/empty instead of the
  /// std::out_of_range that map::at would throw. Exports and assertions
  /// over optional instruments stay one-liners.
  std::uint64_t counter_or(const std::string& name,
                           std::uint64_t fallback = 0) const;
  double gauge_or(const std::string& name, double fallback = 0.0) const;
  Histogram::Snapshot histogram_or(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The registry the library's built-in instrumentation reports through.
  static MetricsRegistry& global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime. Asking for an
  /// existing name with a different instrument kind throws.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Copies every instrument whose name starts with `prefix` (all of them
  /// for the default empty prefix). Names are kept un-stripped so exports
  /// from the global registry stay unambiguous.
  MetricsSnapshot snapshot(std::string_view prefix = {}) const;

  /// Zeroes every instrument (benches reset between configurations).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dnnspmv::obs
