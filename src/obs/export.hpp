// Exporters for the obs subsystem.
//
//   * metrics_to_json — flat JSON snapshot of a MetricsRegistry: counters
//     and gauges as name→number, histograms as objects carrying count,
//     sum, mean, p50/p90/p99 (in observed-value units) and the raw bucket
//     array.
//   * trace_to_chrome_json — "Trace Event Format" JSON that loads
//     directly in chrome://tracing / Perfetto: one complete ("ph":"X")
//     event per span, ts/dur in microseconds, one row per traced thread.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dnnspmv::obs {

std::string metrics_to_json(const MetricsSnapshot& snap);

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events);

/// Writes `text` to `path`; returns false (and leaves no partial file
/// guarantees) on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

/// Drains every thread's pending trace events and writes them as a
/// chrome://tracing file. Returns the number of events written, or -1 on
/// I/O failure.
std::int64_t write_chrome_trace_file(const std::string& path);

}  // namespace dnnspmv::obs
