#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dnnspmv::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_double(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    append_double(out, h.sum);
    out += ", \"mean\": ";
    append_double(out, h.mean());
    out += ", \"p50\": ";
    append_double(out, h.quantile(0.50));
    out += ", \"p90\": ";
    append_double(out, h.quantile(0.90));
    out += ", \"p99\": ";
    append_double(out, h.quantile(0.99));
    out += ", \"buckets\": [";
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (i) out += ", ";
      out += std::to_string(h.buckets[static_cast<std::size_t>(i)]);
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i ? ",\n  " : "\n  ";
    out += "{\"name\": ";
    append_escaped(out, e.name);
    out += ", \"cat\": \"dnnspmv\", \"ph\": \"X\", \"ts\": " +
           std::to_string(e.ts_us) + ", \"dur\": " + std::to_string(e.dur_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
           ", \"args\": {\"depth\": " + std::to_string(e.depth) + "}}";
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  if (!os.is_open()) return false;
  os << text;
  return os.good();
}

std::int64_t write_chrome_trace_file(const std::string& path) {
  const std::vector<TraceEvent> events = drain_trace_events();
  if (!write_text_file(path, trace_to_chrome_json(events))) return -1;
  return static_cast<std::int64_t>(events.size());
}

}  // namespace dnnspmv::obs
