#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace dnnspmv {

void Tensor::resize(std::vector<std::int64_t> shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    DNNSPMV_CHECK_MSG(d >= 0, "negative tensor dimension " << d);
    n *= d;
  }
  shape_ = std::move(shape);
  data_.assign(static_cast<std::size_t>(n), 0.0f);
}

void Tensor::ensure(std::vector<std::int64_t> shape) {
  if (shape_ == shape) return;
  resize(std::move(shape));
}

void Tensor::reshape(std::vector<std::int64_t> shape) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  DNNSPMV_CHECK_MSG(n == size(), "reshape element count mismatch: " << n
                                                                    << " vs "
                                                                    << size());
  shape_ = std::move(shape);
}

void Tensor::fill_normal(Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::add_(const Tensor& other) {
  DNNSPMV_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float s) {
  for (auto& v : data_) v *= s;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace dnnspmv
