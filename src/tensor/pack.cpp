#include "tensor/pack.hpp"

#include <algorithm>
#include <cstring>

#if defined(DNNSPMV_SIMD) && defined(__AVX2__)
#define DNNSPMV_PACK_SIMD 1
#include <immintrin.h>
#endif

namespace dnnspmv {

void pack_a_panel(std::int64_t rows, std::int64_t kc, const float* a,
                  std::int64_t rs, std::int64_t cs, float* dst) {
  if (rows == kMR && cs == 1) {
    // Contiguous depth walk per row (the sgemm_at layout, rs == 1, lands in
    // the generic branch below, where the i-walk is the contiguous one).
    for (std::int64_t p = 0; p < kc; ++p)
      for (std::int64_t i = 0; i < kMR; ++i)
        dst[p * kMR + i] = a[i * rs + p];
    return;
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    float* out = dst + p * kMR;
    for (std::int64_t i = 0; i < rows; ++i) out[i] = a[i * rs + p * cs];
    for (std::int64_t i = rows; i < kMR; ++i) out[i] = 0.0f;
  }
}

void pack_b_panel(std::int64_t kc, std::int64_t cols, const float* b,
                  std::int64_t rs, std::int64_t cs, float* dst) {
  if (cols == kNR && cs == 1) {
    for (std::int64_t p = 0; p < kc; ++p)
      std::memcpy(dst + p * kNR, b + p * rs, kNR * sizeof(float));
    return;
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    float* out = dst + p * kNR;
    for (std::int64_t j = 0; j < cols; ++j) out[j] = b[p * rs + j * cs];
    for (std::int64_t j = cols; j < kNR; ++j) out[j] = 0.0f;
  }
}

void pack_a_panel_s8(std::int64_t rows, std::int64_t kc, const std::int8_t* a,
                     std::int64_t rs, std::int64_t cs, std::int8_t* dst) {
  const std::int64_t kq = (kc + kQK - 1) / kQK;
  for (std::int64_t q = 0; q < kq; ++q) {
    std::int8_t* out = dst + q * kQuadA;
    const std::int64_t p0 = q * kQK;
    const std::int64_t tn = std::min(kQK, kc - p0);
    for (std::int64_t i = 0; i < rows; ++i) {
      const std::int8_t* src = a + i * rs + p0 * cs;
      for (std::int64_t t = 0; t < tn; ++t) out[i * kQK + t] = src[t * cs];
      for (std::int64_t t = tn; t < kQK; ++t) out[i * kQK + t] = 0;
    }
    if (rows < kMR)
      std::memset(out + rows * kQK, 0,
                  static_cast<std::size_t>((kMR - rows) * kQK));
  }
}

void pack_b_panel_u8(std::int64_t kc, std::int64_t cols,
                     const std::uint8_t* b, std::int64_t rs, std::int64_t cs,
                     std::uint8_t* dst) {
  const std::int64_t kq = (kc + kQK - 1) / kQK;
#ifdef DNNSPMV_PACK_SIMD
  if (cols == kNR && cs == 1) {
    // Full panel with contiguous columns (the im2col layout): each depth
    // quad is a 4×16 byte transpose — two unpack rounds interleave the
    // four 16-byte depth rows into the [col][quad] kernel order. Pure data
    // movement, byte-for-byte the scalar loop's output.
    for (std::int64_t q = 0; q < kq; ++q) {
      const std::int64_t p0 = q * kQK;
      const std::int64_t tn = std::min(kQK, kc - p0);
      const std::uint8_t* src = b + p0 * rs;
      const __m128i z = _mm_setzero_si128();
      __m128i r[4] = {z, z, z, z};
      for (std::int64_t t = 0; t < tn; ++t)
        r[t] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + t * rs));
      const __m128i t0 = _mm_unpacklo_epi8(r[0], r[1]);
      const __m128i t1 = _mm_unpackhi_epi8(r[0], r[1]);
      const __m128i t2 = _mm_unpacklo_epi8(r[2], r[3]);
      const __m128i t3 = _mm_unpackhi_epi8(r[2], r[3]);
      __m128i* out = reinterpret_cast<__m128i*>(dst + q * kQuadB);
      _mm_storeu_si128(out + 0, _mm_unpacklo_epi16(t0, t2));
      _mm_storeu_si128(out + 1, _mm_unpackhi_epi16(t0, t2));
      _mm_storeu_si128(out + 2, _mm_unpacklo_epi16(t1, t3));
      _mm_storeu_si128(out + 3, _mm_unpackhi_epi16(t1, t3));
    }
    return;
  }
#endif
  for (std::int64_t q = 0; q < kq; ++q) {
    std::uint8_t* out = dst + q * kQuadB;
    const std::int64_t p0 = q * kQK;
    const std::int64_t tn = std::min(kQK, kc - p0);
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::uint8_t* src = b + p0 * rs + j * cs;
      for (std::int64_t t = 0; t < tn; ++t) out[j * kQK + t] = src[t * rs];
      for (std::int64_t t = tn; t < kQK; ++t) out[j * kQK + t] = 0;
    }
    if (cols < kNR)
      std::memset(out + cols * kQK, 0,
                  static_cast<std::size_t>((kNR - cols) * kQK));
  }
}

}  // namespace dnnspmv
