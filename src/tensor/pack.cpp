#include "tensor/pack.hpp"

#include <algorithm>
#include <cstring>

namespace dnnspmv {

void pack_a_panel(std::int64_t rows, std::int64_t kc, const float* a,
                  std::int64_t rs, std::int64_t cs, float* dst) {
  if (rows == kMR && cs == 1) {
    // Contiguous depth walk per row (the sgemm_at layout, rs == 1, lands in
    // the generic branch below, where the i-walk is the contiguous one).
    for (std::int64_t p = 0; p < kc; ++p)
      for (std::int64_t i = 0; i < kMR; ++i)
        dst[p * kMR + i] = a[i * rs + p];
    return;
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    float* out = dst + p * kMR;
    for (std::int64_t i = 0; i < rows; ++i) out[i] = a[i * rs + p * cs];
    for (std::int64_t i = rows; i < kMR; ++i) out[i] = 0.0f;
  }
}

void pack_b_panel(std::int64_t kc, std::int64_t cols, const float* b,
                  std::int64_t rs, std::int64_t cs, float* dst) {
  if (cols == kNR && cs == 1) {
    for (std::int64_t p = 0; p < kc; ++p)
      std::memcpy(dst + p * kNR, b + p * rs, kNR * sizeof(float));
    return;
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    float* out = dst + p * kNR;
    for (std::int64_t j = 0; j < cols; ++j) out[j] = b[p * rs + j * cs];
    for (std::int64_t j = cols; j < kNR; ++j) out[j] = 0.0f;
  }
}

}  // namespace dnnspmv
