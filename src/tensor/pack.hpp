// Panel packing for the blocked GEMM (gemm.cpp).
//
// The micro-kernel consumes A and B through cache-resident packed panels:
//
//   * an A panel holds kMR rows × kc depth, stored depth-major
//     (dst[p*kMR + i]), so the kernel broadcasts kMR contiguous floats per
//     depth step;
//   * a B panel holds kc depth × kNR columns, stored depth-major
//     (dst[p*kNR + j]), so the kernel loads one contiguous kNR-vector per
//     depth step.
//
// Panels are zero-padded to the full kMR/kNR width at the m/n edges, which
// lets the kernel always run the full register tile; the edge garbage never
// reaches C because stores are bounded by the real tile size. Both packers
// take explicit row/column strides, so the same routines lower the plain,
// A-transposed, and B-transposed GEMM variants.
#pragma once

#include <cstdint>

namespace dnnspmv {

/// Register-tile dimensions of the micro-kernel: 6 rows × 16 columns (two
/// AVX2 float vectors wide). 6×2 accumulators + 2 B vectors + 1 broadcast
/// fill 15 of the 16 ymm registers, and a 16-column C row is a whole cache
/// line, which keeps the store streams from thrashing one L1 set when C's
/// row stride is a large power of two. The portable kernel uses the same
/// shape so packed layouts (and results) are identical across builds.
inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 16;

/// Packs one A panel: rows [i0, i0+rows) over depths [p0, p0+kc) of the
/// logical m×k matrix A with element (i, p) at a[i*rs + p*cs]. Writes
/// kc*kMR floats to dst, zero-padding rows beyond `rows`.
void pack_a_panel(std::int64_t rows, std::int64_t kc, const float* a,
                  std::int64_t rs, std::int64_t cs, float* dst);

/// Packs one B panel: depths [0, kc) over `cols` columns of the logical
/// k×n matrix B with element (p, j) at b[p*rs + j*cs]. Writes kc*kNR
/// floats to dst, zero-padding columns beyond `cols`.
void pack_b_panel(std::int64_t kc, std::int64_t cols, const float* b,
                  std::int64_t rs, std::int64_t cs, float* dst);

/// Depth quad of the int8 kernel: `maddubs` consumes 4 consecutive depth
/// bytes per 32-bit lane, so int8 panels interleave the depth dimension in
/// groups of 4 (zero-padded when k is not a multiple of 4 — a zero weight
/// byte annihilates whatever sits in the matching activation slot).
inline constexpr std::int64_t kQK = 4;
inline constexpr std::int64_t kQuadA = kMR * kQK;  // A-panel bytes per quad
inline constexpr std::int64_t kQuadB = kNR * kQK;  // B-panel bytes per quad

/// Packs one int8 A (weight) panel: rows [0, rows) over depths [0, kc) of
/// the logical m×k matrix with element (i, p) at a[i*rs + p*cs]. Layout is
/// quad-major: dst[(q*kMR + i)*kQK + t] = A[i, q*4 + t], so the kernel
/// broadcasts one 4-byte weight dword per (row, quad). Writes
/// ceil(kc/4)*kMR*4 bytes, zero-padding rows beyond `rows` and the depth
/// remainder.
void pack_a_panel_s8(std::int64_t rows, std::int64_t kc, const std::int8_t* a,
                     std::int64_t rs, std::int64_t cs, std::int8_t* dst);

/// Packs one uint8 B (activation) panel: depths [0, kc) over `cols`
/// columns with element (p, j) at b[p*rs + j*cs]. Layout is quad-major:
/// dst[(q*kNR + j)*kQK + t] = B[q*4 + t, j], so one 32-byte kernel load
/// covers 8 columns × 4 depths. Writes ceil(kc/4)*kNR*4 bytes,
/// zero-padding columns beyond `cols` and the depth remainder.
void pack_b_panel_u8(std::int64_t kc, std::int64_t cols,
                     const std::uint8_t* b, std::int64_t rs, std::int64_t cs,
                     std::uint8_t* dst);

}  // namespace dnnspmv
