// Panel packing for the blocked GEMM (gemm.cpp).
//
// The micro-kernel consumes A and B through cache-resident packed panels:
//
//   * an A panel holds kMR rows × kc depth, stored depth-major
//     (dst[p*kMR + i]), so the kernel broadcasts kMR contiguous floats per
//     depth step;
//   * a B panel holds kc depth × kNR columns, stored depth-major
//     (dst[p*kNR + j]), so the kernel loads one contiguous kNR-vector per
//     depth step.
//
// Panels are zero-padded to the full kMR/kNR width at the m/n edges, which
// lets the kernel always run the full register tile; the edge garbage never
// reaches C because stores are bounded by the real tile size. Both packers
// take explicit row/column strides, so the same routines lower the plain,
// A-transposed, and B-transposed GEMM variants.
#pragma once

#include <cstdint>

namespace dnnspmv {

/// Register-tile dimensions of the micro-kernel: 6 rows × 16 columns (two
/// AVX2 float vectors wide). 6×2 accumulators + 2 B vectors + 1 broadcast
/// fill 15 of the 16 ymm registers, and a 16-column C row is a whole cache
/// line, which keeps the store streams from thrashing one L1 set when C's
/// row stride is a large power of two. The portable kernel uses the same
/// shape so packed layouts (and results) are identical across builds.
inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 16;

/// Packs one A panel: rows [i0, i0+rows) over depths [p0, p0+kc) of the
/// logical m×k matrix A with element (i, p) at a[i*rs + p*cs]. Writes
/// kc*kMR floats to dst, zero-padding rows beyond `rows`.
void pack_a_panel(std::int64_t rows, std::int64_t kc, const float* a,
                  std::int64_t rs, std::int64_t cs, float* dst);

/// Packs one B panel: depths [0, kc) over `cols` columns of the logical
/// k×n matrix B with element (p, j) at b[p*rs + j*cs]. Writes kc*kNR
/// floats to dst, zero-padding columns beyond `cols`.
void pack_b_panel(std::int64_t kc, std::int64_t cols, const float* b,
                  std::int64_t rs, std::int64_t cs, float* dst);

}  // namespace dnnspmv
