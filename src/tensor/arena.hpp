// Per-thread arena of reusable tensors and raw scratch buffers.
//
// TensorArena generalizes the nn-layer Workspace idea (src/nn/workspace.hpp,
// now a thin adapter over this class) to whole Tensors, so producers
// *upstream* of the net — the streaming representation builder, feature
// extraction, anything that materializes per-request tensors — can run
// allocation-free at steady state: a buffer is keyed by (owner pointer,
// slot), grows to the largest size ever requested under its key, and is
// reused across requests.
//
// A TensorArena is NOT thread-safe: use one per thread. thread_arena()
// returns a lazily created per-thread instance with process lifetime — the
// serve tier's client threads share it across requests, which is exactly
// what makes the cache-miss representation build allocation-free after the
// first request of each shape.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace dnnspmv {

class TensorArena {
 public:
  /// Persistent tensor for (owner, slot). The tensor keeps whatever shape
  /// and contents its last user left; callers ensure2()/ensure() it to
  /// their geometry (a no-op re-shape once warm) and must overwrite what
  /// they read back.
  Tensor& tensor(const void* owner, int slot);

  /// Raw float scratch of at least `size` elements for (owner, slot).
  /// Contents are unspecified.
  float* floats(const void* owner, int slot, std::int64_t size);

  /// Raw int32 scratch of at least `size` elements for (owner, slot).
  std::int32_t* ints(const void* owner, int slot, std::int64_t size);

  /// Total bytes currently held across all buffers (steady-state tests
  /// assert this stops growing once shapes have been seen).
  std::size_t bytes_held() const;

  void clear();

 private:
  struct Key {
    const void* owner;
    int slot;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.owner) ^
             (std::hash<int>()(k.slot) * 0x9e3779b97f4a7c15ULL);
    }
  };
  std::unordered_map<Key, Tensor, KeyHash> tensors_;
  std::unordered_map<Key, std::vector<float>, KeyHash> floats_;
  std::unordered_map<Key, std::vector<std::int32_t>, KeyHash> ints_;
};

/// The calling thread's arena (created on first use, process lifetime).
TensorArena& thread_arena();

}  // namespace dnnspmv
