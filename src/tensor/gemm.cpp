#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

namespace dnnspmv {
namespace {

constexpr std::int64_t kBlockK = 256;
constexpr std::int64_t kBlockN = 512;

// Scales a row-panel of C by beta before accumulation.
void scale_c(std::int64_t m, std::int64_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
}

}  // namespace

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k, k0 + kBlockK);
      for (std::int64_t n0 = 0; n0 < n; n0 += kBlockN) {
        const std::int64_t n1 = std::min(n, n0 + kBlockN);
        for (std::int64_t p = k0; p < k1; ++p) {
          const float av = alpha * a[i * k + p];
          if (av == 0.0f) continue;
          const float* brow = b + p * n;
          for (std::int64_t j = n0; j < n1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  // A is k×m: column i of the logical A^T is a strided walk; parallelize
  // over output rows and stream B rows.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = alpha * a[p * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // Dot-product form: both A rows and B rows are contiguous.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
  }
}

}  // namespace dnnspmv
