#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tensor/pack.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(DNNSPMV_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define DNNSPMV_GEMM_AVX2 1
#include <immintrin.h>
#endif

namespace dnnspmv {
namespace {

// Cache blocking: an A block (kMC×kKC ≈ 128 KB) targets L2, a B block
// (kKC×kNC ≈ 2 MB) targets L3, and one B panel (kKC×kNR = 8 KB) stays in
// L1 across the whole ic loop.
constexpr std::int64_t kMC = 64;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 2048;

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Per-calling-thread packing buffers. Sized on first use and reused, so
// steady-state GEMM performs no heap allocation; OpenMP workers read them
// through pointers captured by the parallel regions.
struct PackBuffers {
  std::vector<float> a, b;
};

PackBuffers& tls_buffers() {
  static thread_local PackBuffers bufs;
  return bufs;
}

// Computes one C tile: C[mr×nr] (+)= alpha * Ap * Bp. The A operand is
// always a packed panel (pack.hpp); the B panel rows are `ldb` floats
// apart — kNR for a packed (zero-padded) panel, or B's own row stride when
// the driver feeds a full-width tile of row-major B in place. Callers must
// guarantee 8 readable floats per B row (tail tiles always come packed).
// `first` selects the beta epilogue (only the first depth block
// scales/reads the prior C); `last` folds the optional biases.
// Accumulation order over kc is fixed and position-independent, so a given
// output column sees bit-identical arithmetic wherever it lands in the
// tiling — the property the batched-conv == per-sample guarantee rests on.
#ifdef DNNSPMV_GEMM_AVX2

// Lane mask for the `nr`-wide tail of one 8-float vector. nr <= 0 masks
// every lane off, nr >= 8 masks every lane on, so the two halves of a
// 16-column tile can share it via tail_mask(nr) / tail_mask(nr - 8).
inline __m256i tail_mask(std::int64_t nr) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(nr)), idx);
}

// Fully-unrolled accumulation over exactly MR rows × 16 columns — edge
// tiles (mr < kMR) skip the padded rows' FLOPs entirely, which matters for
// skinny operands like conv1's [12, N·opix, 9] where the kernel body is
// the whole cost. MR=6 uses 12 accumulator registers + 2 B vectors + 1
// broadcast: 15 of the 16 ymm registers, no spills.
template <int MR>
inline void accumulate(std::int64_t kc, const float* ap, const float* bp,
                       std::int64_t ldb, __m256* acc0, __m256* acc1) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(bp + p * ldb + 8);
    const float* arow = ap + p * kMR;
    for (int i = 0; i < MR; ++i) {
      const __m256 av = _mm256_broadcast_ss(arow + i);
      acc0[i] = _mm256_fmadd_ps(av, b0, acc0[i]);
      acc1[i] = _mm256_fmadd_ps(av, b1, acc1[i]);
    }
  }
}

// C = A·B for one full-width tile when no epilogue work exists (alpha 1,
// beta 0, single depth block, no bias): accumulators never leave registers
// and results store straight out. Bit-identical to the general path below
// (1.0f*x and +0.0f are exact), it just skips the stack round-trip the
// dynamically-indexed epilogue forces.
template <int MR>
inline void kernel_fused(std::int64_t kc, const float* ap, const float* bp,
                         std::int64_t ldb, float* c, std::int64_t ldc) {
  __m256 acc0[MR], acc1[MR];
  for (int i = 0; i < MR; ++i) {
    acc0[i] = _mm256_setzero_ps();
    acc1[i] = _mm256_setzero_ps();
  }
  accumulate<MR>(kc, ap, bp, ldb, acc0, acc1);
  for (int i = 0; i < MR; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc0[i]);
    _mm256_storeu_ps(c + i * ldc + 8, acc1[i]);
  }
}

// Small dispatcher the driver calls directly on the no-epilogue fast path;
// being a lean leaf it inlines into the tile loop, skipping the full
// micro_kernel's argument setup and branch tree per tile.
inline void kernel_fused_dispatch(std::int64_t kc, const float* ap,
                                  const float* bp, std::int64_t ldb, float* c,
                                  std::int64_t ldc, std::int64_t mr) {
  switch (mr) {
    case 1: kernel_fused<1>(kc, ap, bp, ldb, c, ldc); return;
    case 2: kernel_fused<2>(kc, ap, bp, ldb, c, ldc); return;
    case 3: kernel_fused<3>(kc, ap, bp, ldb, c, ldc); return;
    case 4: kernel_fused<4>(kc, ap, bp, ldb, c, ldc); return;
    case 5: kernel_fused<5>(kc, ap, bp, ldb, c, ldc); return;
    default: kernel_fused<6>(kc, ap, bp, ldb, c, ldc); return;
  }
}

void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t mr, std::int64_t nr, float alpha, float beta,
                  bool first, bool last, const float* row_bias,
                  const float* col_bias) {
  if (alpha == 1.0f && beta == 0.0f && first && last && !row_bias &&
      !col_bias && nr == kNR) {
    kernel_fused_dispatch(kc, ap, bp, ldb, c, ldc, mr);
    return;
  }
  __m256 acc0[kMR], acc1[kMR];
  for (std::int64_t i = 0; i < kMR; ++i) {
    acc0[i] = _mm256_setzero_ps();
    acc1[i] = _mm256_setzero_ps();
  }
  switch (mr) {
    case 1: accumulate<1>(kc, ap, bp, ldb, acc0, acc1); break;
    case 2: accumulate<2>(kc, ap, bp, ldb, acc0, acc1); break;
    case 3: accumulate<3>(kc, ap, bp, ldb, acc0, acc1); break;
    case 4: accumulate<4>(kc, ap, bp, ldb, acc0, acc1); break;
    case 5: accumulate<5>(kc, ap, bp, ldb, acc0, acc1); break;
    default: accumulate<6>(kc, ap, bp, ldb, acc0, acc1); break;
  }
  const __m256 av = _mm256_set1_ps(alpha);
  const __m256 betav = _mm256_set1_ps(beta);
  // Per-half lane masks; a half whose mask is all-on uses plain loads and
  // stores. The accumulated lanes are identical either way, so a column
  // sees the same bits whether it sits in a full or a tail tile.
  const std::int64_t n0 = std::min<std::int64_t>(nr, 8);
  const std::int64_t n1 = nr - n0;
  const __m256i m0 = tail_mask(n0);
  const __m256i m1 = tail_mask(n1);
  __m256 cb0 = _mm256_setzero_ps(), cb1 = _mm256_setzero_ps();
  if (last && col_bias) {
    cb0 = n0 == 8 ? _mm256_loadu_ps(col_bias)
                  : _mm256_maskload_ps(col_bias, m0);
    cb1 = n1 == 8 ? _mm256_loadu_ps(col_bias + 8)
                  : _mm256_maskload_ps(col_bias + 8, m1);
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    __m256 cv0 = _mm256_mul_ps(av, acc0[i]);
    __m256 cv1 = _mm256_mul_ps(av, acc1[i]);
    if (first) {
      if (beta != 0.0f) {
        cv0 = _mm256_fmadd_ps(
            betav,
            n0 == 8 ? _mm256_loadu_ps(crow) : _mm256_maskload_ps(crow, m0),
            cv0);
        cv1 = _mm256_fmadd_ps(betav,
                              n1 == 8 ? _mm256_loadu_ps(crow + 8)
                                      : _mm256_maskload_ps(crow + 8, m1),
                              cv1);
      }
    } else {
      cv0 = _mm256_add_ps(
          cv0,
          n0 == 8 ? _mm256_loadu_ps(crow) : _mm256_maskload_ps(crow, m0));
      cv1 = _mm256_add_ps(cv1, n1 == 8 ? _mm256_loadu_ps(crow + 8)
                                       : _mm256_maskload_ps(crow + 8, m1));
    }
    if (last) {
      if (row_bias) {
        const __m256 rb = _mm256_set1_ps(row_bias[i]);
        cv0 = _mm256_add_ps(cv0, rb);
        cv1 = _mm256_add_ps(cv1, rb);
      }
      if (col_bias) {
        cv0 = _mm256_add_ps(cv0, cb0);
        cv1 = _mm256_add_ps(cv1, cb1);
      }
    }
    if (n0 == 8)
      _mm256_storeu_ps(crow, cv0);
    else
      _mm256_maskstore_ps(crow, m0, cv0);
    if (n1 == 8)
      _mm256_storeu_ps(crow + 8, cv1);
    else if (n1 > 0)
      _mm256_maskstore_ps(crow + 8, m1, cv1);
  }
}

#else  // portable micro-kernel

void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t mr, std::int64_t nr, float alpha, float beta,
                  bool first, bool last, const float* row_bias,
                  const float* col_bias) {
  // Full-tile accumulation over the zero-padded panels; one code path for
  // interior and edge tiles keeps per-column arithmetic identical.
  float acc[kMR][kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * ldb;
    for (std::int64_t i = 0; i < mr; ++i) {
      const float avv = arow[i];
      for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] += avv * brow[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      float v = alpha * acc[i][j];
      if (first) {
        if (beta != 0.0f) v += beta * crow[j];
      } else {
        v += crow[j];
      }
      if (last) {
        if (row_bias) v += row_bias[i];
        if (col_bias) v += col_bias[j];
      }
      crow[j] = v;
    }
  }
}

// Portable twin of the AVX2 fast-path dispatcher: same call site in the
// driver, same arithmetic — the scalar kernel has no epilogue spill to
// skip, so it just forwards.
inline void kernel_fused_dispatch(std::int64_t kc, const float* ap,
                                  const float* bp, std::int64_t ldb, float* c,
                                  std::int64_t ldc, std::int64_t mr) {
  micro_kernel(kc, ap, bp, ldb, c, ldc, mr, kNR, 1.0f, 0.0f, true, true,
               nullptr, nullptr);
}

#endif  // DNNSPMV_GEMM_AVX2

// One thread's contiguous share of the (jp, ip) tile sweep for a single
// (jc, pc, ic) block. Passed by value: every field becomes a plain local,
// so the loop compiles without the per-iteration shared-variable reloads
// GCC emits for variables captured by reference in OpenMP closures.
struct TileRange {
  // mend = ic + mc bounds tile rows to the current MC block — the final A
  // panel of a block is zero-padded, and running it past the block would
  // overwrite the next block's C rows with epilogue-scaled garbage.
  std::int64_t jp0, jp1, jc, ic, pc, mend, n, kc, mb;
  float alpha, beta;
  bool first, last, fused, direct_b;
  std::int64_t rs_b;
  const float* b;
  float* c;
  const float* abuf;
  const float* bbuf;
  const float* row_bias;
  const float* col_bias;
};

void tile_range(const TileRange t) {
  for (std::int64_t jp = t.jp0; jp < t.jp1; ++jp) {
    const std::int64_t j0 = t.jc + jp * kNR;
    const std::int64_t nr = std::min(t.n - j0, kNR);
    const float* bp = t.bbuf + jp * t.kc * kNR;
    std::int64_t ldb = kNR;
    if (t.direct_b && nr == kNR) {
      bp = t.b + t.pc * t.rs_b + j0;
      ldb = t.rs_b;
    } else if (t.direct_b) {
      bp = t.bbuf;  // the one packed tail panel
    }
    if (t.fused && nr == kNR) {
      for (std::int64_t ip = 0; ip < t.mb; ++ip) {
        const std::int64_t i0 = t.ic + ip * kMR;
        kernel_fused_dispatch(t.kc, t.abuf + ip * t.kc * kMR, bp, ldb,
                              t.c + i0 * t.n + j0, t.n,
                              std::min(t.mend - i0, kMR));
      }
    } else {
      for (std::int64_t ip = 0; ip < t.mb; ++ip) {
        const std::int64_t i0 = t.ic + ip * kMR;
        const std::int64_t mr = std::min(t.mend - i0, kMR);
        micro_kernel(t.kc, t.abuf + ip * t.kc * kMR, bp, ldb,
                     t.c + i0 * t.n + j0, t.n, mr, nr, t.alpha, t.beta,
                     t.first, t.last,
                     t.row_bias ? t.row_bias + i0 : nullptr,
                     t.col_bias ? t.col_bias + j0 : nullptr);
      }
    }
  }
}

// Degenerate case (k == 0 or alpha == 0): C = beta*C + biases. Runs the
// whole O(m·n) pass under OpenMP — this replaces the seed's serial
// scale_c.
void epilogue_only(std::int64_t m, std::int64_t n, float beta, float* c,
                   const float* row_bias, const float* col_bias) {
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float rb = row_bias ? row_bias[i] : 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      float v = (beta == 0.0f) ? 0.0f : beta * crow[j];
      v += rb;
      if (col_bias) v += col_bias[j];
      crow[j] = v;
    }
  }
}

// Shared driver for every public variant. The logical operands are
// A[m,k] with element (i,p) at a[i*rs_a + p*cs_a] and B[k,n] with element
// (p,j) at b[p*rs_b + j*cs_b]; transposed variants just swap strides.
void gemm_driver(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t rs_a, std::int64_t cs_a,
                 const float* b, std::int64_t rs_b, std::int64_t cs_b,
                 float beta, float* c, const float* row_bias,
                 const float* col_bias) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == 0.0f) {
    epilogue_only(m, n, beta, c, row_bias, col_bias);
    return;
  }

  // When B is row-major and all of A fits one MC block, each B panel is
  // consumed exactly once per depth block — packing it would only add a
  // copy pass. Feed full-width tiles straight from B instead (the kernel
  // takes the row stride); only the ragged last panel still gets packed,
  // so the kernel never reads past a row end. This is the case for every
  // forward conv/dense GEMM (m = channels/batch, n = batch·pixels).
  const bool direct_b = cs_b == 1 && m <= kMC;

  PackBuffers& buf = tls_buffers();
  const std::int64_t kc_max = std::min(k, kKC);
  buf.a.resize(static_cast<std::size_t>(
      ceil_div(std::min(m, kMC), kMR) * kMR * kc_max));
  buf.b.resize(static_cast<std::size_t>(
      (direct_b ? 1 : ceil_div(std::min(n, kNC), kNR)) * kNR * kc_max));
  float* abuf = buf.a.data();
  float* bbuf = buf.b.data();

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(n - jc, kNC);
    const std::int64_t nb = ceil_div(nc, kNR);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(k - pc, kKC);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      // No epilogue work at all for this depth block → full-width tiles can
      // take the store-straight-out kernel without re-testing per tile.
      const bool fused = alpha == 1.0f && beta == 0.0f && first && last &&
                         !row_bias && !col_bias;
      if (direct_b) {
        if (nc % kNR != 0) {
          const std::int64_t j0 = (nb - 1) * kNR;
          pack_b_panel(kc, nc - j0, b + pc * rs_b + (jc + j0), rs_b, 1, bbuf);
        }
      } else {
#pragma omp parallel for schedule(static)
        for (std::int64_t jp = 0; jp < nb; ++jp) {
          const std::int64_t j0 = jp * kNR;
          pack_b_panel(kc, std::min(nc - j0, kNR),
                       b + pc * rs_b + (jc + j0) * cs_b, rs_b, cs_b,
                       bbuf + jp * kc * kNR);
        }
      }
      for (std::int64_t ic = 0; ic < m; ic += kMC) {
        const std::int64_t mc = std::min(m - ic, kMC);
        const std::int64_t mb = ceil_div(mc, kMR);
        for (std::int64_t ip = 0; ip < mb; ++ip) {
          const std::int64_t i0 = ip * kMR;
          pack_a_panel(std::min(mc - i0, kMR), kc,
                       a + (ic + i0) * rs_a + pc * cs_a, rs_a, cs_a,
                       abuf + ip * kc * kMR);
        }
        // Each (jp, ip) tile is owned by one thread, and the contiguous
        // static split below matches schedule(static): deterministic
        // results at any thread count. tile_range (plain value arguments,
        // no OpenMP closure) keeps the per-tile loop free of the shared-
        // variable indirection GCC emits inside outlined regions.
#pragma omp parallel
        {
#ifdef _OPENMP
          const std::int64_t nth = omp_get_num_threads();
          const std::int64_t tid = omp_get_thread_num();
#else
          const std::int64_t nth = 1, tid = 0;
#endif
          const std::int64_t chunk = ceil_div(nb, nth);
          const std::int64_t jp0 = tid * chunk;
          const std::int64_t jp1 = std::min(nb, jp0 + chunk);
          if (jp0 < jp1)
            tile_range({jp0, jp1, jc, ic, pc, ic + mc, n, kc, mb, alpha,
                        beta, first, last, fused, direct_b, rs_b, b, c, abuf,
                        bbuf, row_bias, col_bias});
        }
      }
    }
  }
}

}  // namespace

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  gemm_driver(m, n, k, alpha, a, k, 1, b, n, 1, beta, c, nullptr, nullptr);
}

void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // A stored k×m: logical A[i,p] = a[p*m + i].
  gemm_driver(m, n, k, alpha, a, 1, m, b, n, 1, beta, c, nullptr, nullptr);
}

void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // B stored n×k: logical B[p,j] = b[j*k + p].
  gemm_driver(m, n, k, alpha, a, k, 1, b, 1, k, beta, c, nullptr, nullptr);
}

void sgemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, const float* b, float beta,
                    float* c, const float* row_bias) {
  gemm_driver(m, n, k, alpha, a, k, 1, b, n, 1, beta, c, row_bias, nullptr);
}

void sgemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                       float alpha, const float* a, const float* b,
                       float beta, float* c, const float* col_bias) {
  gemm_driver(m, n, k, alpha, a, k, 1, b, 1, k, beta, c, nullptr, col_bias);
}

}  // namespace dnnspmv
