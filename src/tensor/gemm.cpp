#include "tensor/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/pack.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(DNNSPMV_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define DNNSPMV_GEMM_AVX2 1
#include <immintrin.h>
#endif

namespace dnnspmv {
namespace {

// Cache blocking: an A block (kMC×kKC ≈ 128 KB) targets L2, a B block
// (kKC×kNC ≈ 2 MB) targets L3, and one B panel (kKC×kNR = 8 KB) stays in
// L1 across the whole ic loop.
constexpr std::int64_t kMC = 64;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 2048;

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Per-calling-thread packing buffers. Sized on first use and reused, so
// steady-state GEMM performs no heap allocation; OpenMP workers read them
// through pointers captured by the parallel regions.
struct PackBuffers {
  std::vector<float> a, b;
};

PackBuffers& tls_buffers() {
  static thread_local PackBuffers bufs;
  return bufs;
}

// Computes one C tile: C[mr×nr] (+)= alpha * Ap * Bp. The A operand is
// always a packed panel (pack.hpp); the B panel rows are `ldb` floats
// apart — kNR for a packed (zero-padded) panel, or B's own row stride when
// the driver feeds a full-width tile of row-major B in place. Callers must
// guarantee 8 readable floats per B row (tail tiles always come packed).
// `first` selects the beta epilogue (only the first depth block
// scales/reads the prior C); `last` folds the optional biases.
// Accumulation order over kc is fixed and position-independent, so a given
// output column sees bit-identical arithmetic wherever it lands in the
// tiling — the property the batched-conv == per-sample guarantee rests on.
#ifdef DNNSPMV_GEMM_AVX2

// Lane mask for the `nr`-wide tail of one 8-float vector. nr <= 0 masks
// every lane off, nr >= 8 masks every lane on, so the two halves of a
// 16-column tile can share it via tail_mask(nr) / tail_mask(nr - 8).
inline __m256i tail_mask(std::int64_t nr) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(nr)), idx);
}

// Fully-unrolled accumulation over exactly MR rows × 16 columns — edge
// tiles (mr < kMR) skip the padded rows' FLOPs entirely, which matters for
// skinny operands like conv1's [12, N·opix, 9] where the kernel body is
// the whole cost. MR=6 uses 12 accumulator registers + 2 B vectors + 1
// broadcast: 15 of the 16 ymm registers, no spills.
template <int MR>
inline void accumulate(std::int64_t kc, const float* ap, const float* bp,
                       std::int64_t ldb, __m256* acc0, __m256* acc1) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(bp + p * ldb + 8);
    const float* arow = ap + p * kMR;
    for (int i = 0; i < MR; ++i) {
      const __m256 av = _mm256_broadcast_ss(arow + i);
      acc0[i] = _mm256_fmadd_ps(av, b0, acc0[i]);
      acc1[i] = _mm256_fmadd_ps(av, b1, acc1[i]);
    }
  }
}

// C = A·B for one full-width tile when no epilogue work exists (alpha 1,
// beta 0, single depth block, no bias): accumulators never leave registers
// and results store straight out. Bit-identical to the general path below
// (1.0f*x and +0.0f are exact), it just skips the stack round-trip the
// dynamically-indexed epilogue forces.
template <int MR>
inline void kernel_fused(std::int64_t kc, const float* ap, const float* bp,
                         std::int64_t ldb, float* c, std::int64_t ldc) {
  __m256 acc0[MR], acc1[MR];
  for (int i = 0; i < MR; ++i) {
    acc0[i] = _mm256_setzero_ps();
    acc1[i] = _mm256_setzero_ps();
  }
  accumulate<MR>(kc, ap, bp, ldb, acc0, acc1);
  for (int i = 0; i < MR; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc0[i]);
    _mm256_storeu_ps(c + i * ldc + 8, acc1[i]);
  }
}

// Small dispatcher the driver calls directly on the no-epilogue fast path;
// being a lean leaf it inlines into the tile loop, skipping the full
// micro_kernel's argument setup and branch tree per tile.
inline void kernel_fused_dispatch(std::int64_t kc, const float* ap,
                                  const float* bp, std::int64_t ldb, float* c,
                                  std::int64_t ldc, std::int64_t mr) {
  switch (mr) {
    case 1: kernel_fused<1>(kc, ap, bp, ldb, c, ldc); return;
    case 2: kernel_fused<2>(kc, ap, bp, ldb, c, ldc); return;
    case 3: kernel_fused<3>(kc, ap, bp, ldb, c, ldc); return;
    case 4: kernel_fused<4>(kc, ap, bp, ldb, c, ldc); return;
    case 5: kernel_fused<5>(kc, ap, bp, ldb, c, ldc); return;
    default: kernel_fused<6>(kc, ap, bp, ldb, c, ldc); return;
  }
}

void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t mr, std::int64_t nr, float alpha, float beta,
                  bool first, bool last, const float* row_bias,
                  const float* col_bias) {
  if (alpha == 1.0f && beta == 0.0f && first && last && !row_bias &&
      !col_bias && nr == kNR) {
    kernel_fused_dispatch(kc, ap, bp, ldb, c, ldc, mr);
    return;
  }
  __m256 acc0[kMR], acc1[kMR];
  for (std::int64_t i = 0; i < kMR; ++i) {
    acc0[i] = _mm256_setzero_ps();
    acc1[i] = _mm256_setzero_ps();
  }
  switch (mr) {
    case 1: accumulate<1>(kc, ap, bp, ldb, acc0, acc1); break;
    case 2: accumulate<2>(kc, ap, bp, ldb, acc0, acc1); break;
    case 3: accumulate<3>(kc, ap, bp, ldb, acc0, acc1); break;
    case 4: accumulate<4>(kc, ap, bp, ldb, acc0, acc1); break;
    case 5: accumulate<5>(kc, ap, bp, ldb, acc0, acc1); break;
    default: accumulate<6>(kc, ap, bp, ldb, acc0, acc1); break;
  }
  const __m256 av = _mm256_set1_ps(alpha);
  const __m256 betav = _mm256_set1_ps(beta);
  // Per-half lane masks; a half whose mask is all-on uses plain loads and
  // stores. The accumulated lanes are identical either way, so a column
  // sees the same bits whether it sits in a full or a tail tile.
  const std::int64_t n0 = std::min<std::int64_t>(nr, 8);
  const std::int64_t n1 = nr - n0;
  const __m256i m0 = tail_mask(n0);
  const __m256i m1 = tail_mask(n1);
  __m256 cb0 = _mm256_setzero_ps(), cb1 = _mm256_setzero_ps();
  if (last && col_bias) {
    cb0 = n0 == 8 ? _mm256_loadu_ps(col_bias)
                  : _mm256_maskload_ps(col_bias, m0);
    cb1 = n1 == 8 ? _mm256_loadu_ps(col_bias + 8)
                  : _mm256_maskload_ps(col_bias + 8, m1);
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    __m256 cv0 = _mm256_mul_ps(av, acc0[i]);
    __m256 cv1 = _mm256_mul_ps(av, acc1[i]);
    if (first) {
      if (beta != 0.0f) {
        cv0 = _mm256_fmadd_ps(
            betav,
            n0 == 8 ? _mm256_loadu_ps(crow) : _mm256_maskload_ps(crow, m0),
            cv0);
        cv1 = _mm256_fmadd_ps(betav,
                              n1 == 8 ? _mm256_loadu_ps(crow + 8)
                                      : _mm256_maskload_ps(crow + 8, m1),
                              cv1);
      }
    } else {
      cv0 = _mm256_add_ps(
          cv0,
          n0 == 8 ? _mm256_loadu_ps(crow) : _mm256_maskload_ps(crow, m0));
      cv1 = _mm256_add_ps(cv1, n1 == 8 ? _mm256_loadu_ps(crow + 8)
                                       : _mm256_maskload_ps(crow + 8, m1));
    }
    if (last) {
      if (row_bias) {
        const __m256 rb = _mm256_set1_ps(row_bias[i]);
        cv0 = _mm256_add_ps(cv0, rb);
        cv1 = _mm256_add_ps(cv1, rb);
      }
      if (col_bias) {
        cv0 = _mm256_add_ps(cv0, cb0);
        cv1 = _mm256_add_ps(cv1, cb1);
      }
    }
    if (n0 == 8)
      _mm256_storeu_ps(crow, cv0);
    else
      _mm256_maskstore_ps(crow, m0, cv0);
    if (n1 == 8)
      _mm256_storeu_ps(crow + 8, cv1);
    else if (n1 > 0)
      _mm256_maskstore_ps(crow + 8, m1, cv1);
  }
}

#else  // portable micro-kernel

void micro_kernel(std::int64_t kc, const float* ap, const float* bp,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t mr, std::int64_t nr, float alpha, float beta,
                  bool first, bool last, const float* row_bias,
                  const float* col_bias) {
  // Full-tile accumulation over the zero-padded panels; one code path for
  // interior and edge tiles keeps per-column arithmetic identical.
  float acc[kMR][kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMR;
    const float* brow = bp + p * ldb;
    for (std::int64_t i = 0; i < mr; ++i) {
      const float avv = arow[i];
      for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] += avv * brow[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      float v = alpha * acc[i][j];
      if (first) {
        if (beta != 0.0f) v += beta * crow[j];
      } else {
        v += crow[j];
      }
      if (last) {
        if (row_bias) v += row_bias[i];
        if (col_bias) v += col_bias[j];
      }
      crow[j] = v;
    }
  }
}

// Portable twin of the AVX2 fast-path dispatcher: same call site in the
// driver, same arithmetic — the scalar kernel has no epilogue spill to
// skip, so it just forwards.
inline void kernel_fused_dispatch(std::int64_t kc, const float* ap,
                                  const float* bp, std::int64_t ldb, float* c,
                                  std::int64_t ldc, std::int64_t mr) {
  micro_kernel(kc, ap, bp, ldb, c, ldc, mr, kNR, 1.0f, 0.0f, true, true,
               nullptr, nullptr);
}

#endif  // DNNSPMV_GEMM_AVX2

// One thread's contiguous share of the (jp, ip) tile sweep for a single
// (jc, pc, ic) block. Passed by value: every field becomes a plain local,
// so the loop compiles without the per-iteration shared-variable reloads
// GCC emits for variables captured by reference in OpenMP closures.
struct TileRange {
  // mend = ic + mc bounds tile rows to the current MC block — the final A
  // panel of a block is zero-padded, and running it past the block would
  // overwrite the next block's C rows with epilogue-scaled garbage.
  std::int64_t jp0, jp1, jc, ic, pc, mend, n, kc, mb;
  float alpha, beta;
  bool first, last, fused, direct_b;
  std::int64_t rs_b;
  const float* b;
  float* c;
  const float* abuf;
  const float* bbuf;
  const float* row_bias;
  const float* col_bias;
};

void tile_range(const TileRange t) {
  for (std::int64_t jp = t.jp0; jp < t.jp1; ++jp) {
    const std::int64_t j0 = t.jc + jp * kNR;
    const std::int64_t nr = std::min(t.n - j0, kNR);
    const float* bp = t.bbuf + jp * t.kc * kNR;
    std::int64_t ldb = kNR;
    if (t.direct_b && nr == kNR) {
      bp = t.b + t.pc * t.rs_b + j0;
      ldb = t.rs_b;
    } else if (t.direct_b) {
      bp = t.bbuf;  // the one packed tail panel
    }
    if (t.fused && nr == kNR) {
      for (std::int64_t ip = 0; ip < t.mb; ++ip) {
        const std::int64_t i0 = t.ic + ip * kMR;
        kernel_fused_dispatch(t.kc, t.abuf + ip * t.kc * kMR, bp, ldb,
                              t.c + i0 * t.n + j0, t.n,
                              std::min(t.mend - i0, kMR));
      }
    } else {
      for (std::int64_t ip = 0; ip < t.mb; ++ip) {
        const std::int64_t i0 = t.ic + ip * kMR;
        const std::int64_t mr = std::min(t.mend - i0, kMR);
        micro_kernel(t.kc, t.abuf + ip * t.kc * kMR, bp, ldb,
                     t.c + i0 * t.n + j0, t.n, mr, nr, t.alpha, t.beta,
                     t.first, t.last,
                     t.row_bias ? t.row_bias + i0 : nullptr,
                     t.col_bias ? t.col_bias + j0 : nullptr);
      }
    }
  }
}

// Degenerate case (k == 0 or alpha == 0): C = beta*C + biases. Runs the
// whole O(m·n) pass under OpenMP — this replaces the seed's serial
// scale_c.
void epilogue_only(std::int64_t m, std::int64_t n, float beta, float* c,
                   const float* row_bias, const float* col_bias) {
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float rb = row_bias ? row_bias[i] : 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      float v = (beta == 0.0f) ? 0.0f : beta * crow[j];
      v += rb;
      if (col_bias) v += col_bias[j];
      crow[j] = v;
    }
  }
}

// Shared driver for every public variant. The logical operands are
// A[m,k] with element (i,p) at a[i*rs_a + p*cs_a] and B[k,n] with element
// (p,j) at b[p*rs_b + j*cs_b]; transposed variants just swap strides.
void gemm_driver(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, std::int64_t rs_a, std::int64_t cs_a,
                 const float* b, std::int64_t rs_b, std::int64_t cs_b,
                 float beta, float* c, const float* row_bias,
                 const float* col_bias) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == 0.0f) {
    epilogue_only(m, n, beta, c, row_bias, col_bias);
    return;
  }

  // When B is row-major and all of A fits one MC block, each B panel is
  // consumed exactly once per depth block — packing it would only add a
  // copy pass. Feed full-width tiles straight from B instead (the kernel
  // takes the row stride); only the ragged last panel still gets packed,
  // so the kernel never reads past a row end. This is the case for every
  // forward conv/dense GEMM (m = channels/batch, n = batch·pixels).
  const bool direct_b = cs_b == 1 && m <= kMC;

  PackBuffers& buf = tls_buffers();
  const std::int64_t kc_max = std::min(k, kKC);
  buf.a.resize(static_cast<std::size_t>(
      ceil_div(std::min(m, kMC), kMR) * kMR * kc_max));
  buf.b.resize(static_cast<std::size_t>(
      (direct_b ? 1 : ceil_div(std::min(n, kNC), kNR)) * kNR * kc_max));
  float* abuf = buf.a.data();
  float* bbuf = buf.b.data();

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(n - jc, kNC);
    const std::int64_t nb = ceil_div(nc, kNR);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(k - pc, kKC);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      // No epilogue work at all for this depth block → full-width tiles can
      // take the store-straight-out kernel without re-testing per tile.
      const bool fused = alpha == 1.0f && beta == 0.0f && first && last &&
                         !row_bias && !col_bias;
      if (direct_b) {
        if (nc % kNR != 0) {
          const std::int64_t j0 = (nb - 1) * kNR;
          pack_b_panel(kc, nc - j0, b + pc * rs_b + (jc + j0), rs_b, 1, bbuf);
        }
      } else {
#pragma omp parallel for schedule(static)
        for (std::int64_t jp = 0; jp < nb; ++jp) {
          const std::int64_t j0 = jp * kNR;
          pack_b_panel(kc, std::min(nc - j0, kNR),
                       b + pc * rs_b + (jc + j0) * cs_b, rs_b, cs_b,
                       bbuf + jp * kc * kNR);
        }
      }
      for (std::int64_t ic = 0; ic < m; ic += kMC) {
        const std::int64_t mc = std::min(m - ic, kMC);
        const std::int64_t mb = ceil_div(mc, kMR);
        for (std::int64_t ip = 0; ip < mb; ++ip) {
          const std::int64_t i0 = ip * kMR;
          pack_a_panel(std::min(mc - i0, kMR), kc,
                       a + (ic + i0) * rs_a + pc * cs_a, rs_a, cs_a,
                       abuf + ip * kc * kMR);
        }
        // Each (jp, ip) tile is owned by one thread, and the contiguous
        // static split below matches schedule(static): deterministic
        // results at any thread count. tile_range (plain value arguments,
        // no OpenMP closure) keeps the per-tile loop free of the shared-
        // variable indirection GCC emits inside outlined regions.
#pragma omp parallel
        {
#ifdef _OPENMP
          const std::int64_t nth = omp_get_num_threads();
          const std::int64_t tid = omp_get_thread_num();
#else
          const std::int64_t nth = 1, tid = 0;
#endif
          const std::int64_t chunk = ceil_div(nb, nth);
          const std::int64_t jp0 = tid * chunk;
          const std::int64_t jp1 = std::min(nb, jp0 + chunk);
          if (jp0 < jp1)
            tile_range({jp0, jp1, jc, ic, pc, ic + mc, n, kc, mb, alpha,
                        beta, first, last, fused, direct_b, rs_b, b, c, abuf,
                        bbuf, row_bias, col_bias});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Int8 micro-kernels (see gemm.hpp for the contract). The integer
// accumulation is exact, so the only arithmetic that could diverge between
// SIMD and scalar is the fp32 epilogue — both paths use one fused
// multiply-add (std::fmaf / _mm256_fmadd_ps: single rounding, same result)
// and the same max-against-+0.0 ReLU, which keeps them bit-identical. The
// scalar kernel is always compiled: it is the reference the property tests
// compare against and the fallback for non-AVX2 builds.

void qkernel_scalar(std::int64_t kq, const std::int8_t* ap,
                    const std::uint8_t* bp, float* c, std::int64_t ldc,
                    std::int64_t mr, std::int64_t nr, const float* scale,
                    const float* bias, bool relu) {
  std::int32_t acc[kMR][kNR] = {};
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::int8_t* arow = ap + q * kQuadA;
    const std::uint8_t* brow = bp + q * kQuadB;
    for (std::int64_t i = 0; i < mr; ++i) {
      for (std::int64_t j = 0; j < kNR; ++j) {
        std::int32_t s = 0;
        for (std::int64_t t = 0; t < kQK; ++t)
          s += static_cast<std::int32_t>(arow[i * kQK + t]) *
               static_cast<std::int32_t>(brow[j * kQK + t]);
        acc[i][j] += s;
      }
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    const float sv = scale[i];
    const float bv = bias ? bias[i] : 0.0f;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) {
      float v = std::fmaf(static_cast<float>(acc[i][j]), sv, bv);
      // Matches _mm256_max_ps(v, +0.0): -0.0 maps to +0.0.
      if (relu) v = v > 0.0f ? v : 0.0f;
      crow[j] = v;
    }
  }
}

// GEMV twin of the kernel above, for n == 1 (the cold-miss dense layers):
// one int32 accumulator per row, weights read from the [group][quad][8][4]
// gemv packing, the activation quad shared across the 8 rows of a group.
// Integer accumulation is exact, so this evaluation order produces the
// same acc — and with the same fmaf epilogue the same bits — as the tiled
// kernel would.
void qgemv_scalar(std::int64_t kq, const std::int8_t* gv,
                  const std::uint8_t* xq, std::int64_t mr, const float* scale,
                  const float* bias, bool relu, float* c, std::int64_t ldc) {
  std::int32_t acc[8] = {};
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::int8_t* wrow = gv + q * 32;
    const std::uint8_t* x = xq + q * kQK;
    for (std::int64_t r = 0; r < 8; ++r) {
      std::int32_t s = 0;
      for (std::int64_t t = 0; t < kQK; ++t)
        s += static_cast<std::int32_t>(wrow[r * kQK + t]) *
             static_cast<std::int32_t>(x[t]);
      acc[r] += s;
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    float v = std::fmaf(static_cast<float>(acc[r]), scale[r],
                        bias ? bias[r] : 0.0f);
    if (relu) v = v > 0.0f ? v : 0.0f;
    c[r * ldc] = v;
  }
}

#ifdef DNNSPMV_GEMM_AVX2

// MR rows × 16 columns per call: 12 int32 accumulators + 2 B vectors + 1
// broadcast + the i16 ones vector fill the ymm file like the fp32 kernel.
// Per depth quad: one 32-byte B load covers 8 columns × 4 depths
// (pack_b_panel_u8 layout), the 4 weight bytes of row i broadcast as one
// dword, and maddubs (unsigned B × signed A) + madd-by-ones reduce the
// quad into each column's int32 lane.
template <int MR>
inline void qkernel_avx2(std::int64_t kq, const std::int8_t* ap,
                         const std::uint8_t* bp, float* c, std::int64_t ldc,
                         std::int64_t nr, const float* scale,
                         const float* bias, bool relu) {
  __m256i acc0[MR], acc1[MR];
  for (int i = 0; i < MR; ++i) {
    acc0[i] = _mm256_setzero_si256();
    acc1[i] = _mm256_setzero_si256();
  }
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t q = 0; q < kq; ++q) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kQuadB));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kQuadB + 32));
    const std::int8_t* arow = ap + q * kQuadA;
    for (int i = 0; i < MR; ++i) {
      std::int32_t aq;
      std::memcpy(&aq, arow + i * kQK, sizeof(aq));
      const __m256i av = _mm256_set1_epi32(aq);
      const __m256i p0 = _mm256_maddubs_epi16(b0, av);
      const __m256i p1 = _mm256_maddubs_epi16(b1, av);
      acc0[i] = _mm256_add_epi32(acc0[i], _mm256_madd_epi16(p0, ones));
      acc1[i] = _mm256_add_epi32(acc1[i], _mm256_madd_epi16(p1, ones));
    }
  }
  const std::int64_t n0 = std::min<std::int64_t>(nr, 8);
  const std::int64_t n1 = nr - n0;
  const __m256i m0 = tail_mask(n0);
  const __m256i m1 = tail_mask(n1);
  const __m256 zero = _mm256_setzero_ps();
  for (int i = 0; i < MR; ++i) {
    const __m256 sv = _mm256_set1_ps(scale[i]);
    const __m256 bv = _mm256_set1_ps(bias ? bias[i] : 0.0f);
    __m256 v0 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(acc0[i]), sv, bv);
    __m256 v1 = _mm256_fmadd_ps(_mm256_cvtepi32_ps(acc1[i]), sv, bv);
    if (relu) {
      v0 = _mm256_max_ps(v0, zero);
      v1 = _mm256_max_ps(v1, zero);
    }
    float* crow = c + i * ldc;
    if (n0 == 8)
      _mm256_storeu_ps(crow, v0);
    else
      _mm256_maskstore_ps(crow, m0, v0);
    if (n1 == 8)
      _mm256_storeu_ps(crow + 8, v1);
    else if (n1 > 0)
      _mm256_maskstore_ps(crow + 8, m1, v1);
  }
}

// 8 rows per call: the activation quad broadcasts as one dword (unsigned
// maddubs operand), a 32-byte load covers the group's 8 row-quads.
inline void qgemv_avx2(std::int64_t kq, const std::int8_t* gv,
                       const std::uint8_t* xq, std::int64_t mr,
                       const float* scale, const float* bias, bool relu,
                       float* c, std::int64_t ldc) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t q = 0; q < kq; ++q) {
    std::int32_t xd;
    std::memcpy(&xd, xq + q * kQK, sizeof(xd));
    const __m256i xv = _mm256_set1_epi32(xd);
    const __m256i wv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(gv + q * 32));
    const __m256i p = _mm256_maddubs_epi16(xv, wv);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(p, ones));
  }
  const __m256i m = tail_mask(mr);
  const __m256 sv =
      mr == 8 ? _mm256_loadu_ps(scale) : _mm256_maskload_ps(scale, m);
  const __m256 bv =
      bias ? (mr == 8 ? _mm256_loadu_ps(bias) : _mm256_maskload_ps(bias, m))
           : _mm256_setzero_ps();
  __m256 v = _mm256_fmadd_ps(_mm256_cvtepi32_ps(acc), sv, bv);
  if (relu) v = _mm256_max_ps(v, _mm256_setzero_ps());
  if (ldc == 1) {
    if (mr == 8)
      _mm256_storeu_ps(c, v);
    else
      _mm256_maskstore_ps(c, m, v);
    return;
  }
  alignas(32) float tmp[8];
  _mm256_store_ps(tmp, v);
  for (std::int64_t r = 0; r < mr; ++r) c[r * ldc] = tmp[r];
}

inline void qkernel_avx2_dispatch(std::int64_t kq, const std::int8_t* ap,
                                  const std::uint8_t* bp, float* c,
                                  std::int64_t ldc, std::int64_t mr,
                                  std::int64_t nr, const float* scale,
                                  const float* bias, bool relu) {
  switch (mr) {
    case 1: qkernel_avx2<1>(kq, ap, bp, c, ldc, nr, scale, bias, relu); return;
    case 2: qkernel_avx2<2>(kq, ap, bp, c, ldc, nr, scale, bias, relu); return;
    case 3: qkernel_avx2<3>(kq, ap, bp, c, ldc, nr, scale, bias, relu); return;
    case 4: qkernel_avx2<4>(kq, ap, bp, c, ldc, nr, scale, bias, relu); return;
    case 5: qkernel_avx2<5>(kq, ap, bp, c, ldc, nr, scale, bias, relu); return;
    default:
      qkernel_avx2<6>(kq, ap, bp, c, ldc, nr, scale, bias, relu);
      return;
  }
}

#endif  // DNNSPMV_GEMM_AVX2

// Per-thread activation packing buffer (weights are pre-packed, so this is
// the only scratch the quantized path needs).
std::vector<std::uint8_t>& qtls_buffer() {
  static thread_local std::vector<std::uint8_t> buf;
  return buf;
}

// Unlike the fp32 driver there is no depth blocking: the MergeNet reduction
// lengths (k ≤ a few hundred) fit one pass, every call is first-and-last,
// and the dequant epilogue runs straight from registers. Each column panel
// is packed and consumed by the same thread (pack-and-compute fused), and
// each output tile is written exactly once — results are independent of
// thread count because tiles never share accumulation.
void qgemm_driver(const QGemmWeights& w, std::int64_t n,
                  const std::uint8_t* b, std::int64_t rs_b, std::int64_t cs_b,
                  const float* scale, const float* bias, bool relu, float* c,
                  std::int64_t ldc, bool simd) {
  const std::int64_t m = w.rows;
  const std::int64_t k = w.depth;
  if (m <= 0 || n <= 0) return;
  const std::int64_t kq = ceil_div(k, kQK);
#ifndef DNNSPMV_GEMM_AVX2
  (void)simd;
#endif
  if (n == 1) {
    // GEMV fast path: the tiled kernel would waste 15/16 of its column
    // lanes on a single activation vector, which is exactly the cold-miss
    // dense-layer shape. Exact integer accumulation + the shared fmaf
    // epilogue keep this path bit-identical to the tiled one.
    std::vector<std::uint8_t>& xbuf = qtls_buffer();
    xbuf.assign(static_cast<std::size_t>(kq * kQK), 0);
    for (std::int64_t d = 0; d < k; ++d) xbuf[d] = b[d * rs_b];
    const std::int64_t gb = ceil_div(m, 8);
    const std::int8_t* gv = w.gemv.data();
    for (std::int64_t g = 0; g < gb; ++g) {
      const std::int64_t r0 = g * 8;
      const std::int64_t mr = std::min<std::int64_t>(m - r0, 8);
      const std::int8_t* gvp = gv + g * kq * 32;
      float* ct = c + r0 * ldc;
#ifdef DNNSPMV_GEMM_AVX2
      if (simd) {
        qgemv_avx2(kq, gvp, xbuf.data(), mr, scale + r0,
                   bias ? bias + r0 : nullptr, relu, ct, ldc);
        continue;
      }
#endif
      qgemv_scalar(kq, gvp, xbuf.data(), mr, scale + r0,
                   bias ? bias + r0 : nullptr, relu, ct, ldc);
    }
    return;
  }
  const std::int64_t nb = ceil_div(n, kNR);
  const std::int64_t mb = ceil_div(m, kMR);
  const std::int64_t apanel = kq * kQuadA;
  const std::int64_t bpanel = kq * kQuadB;
  std::vector<std::uint8_t>& buf = qtls_buffer();
  buf.resize(static_cast<std::size_t>(nb * bpanel));
  std::uint8_t* bbuf = buf.data();
  const std::int8_t* abuf = w.panels.data();
  // One or two panels (the small cold-miss convs) aren't worth a fork/join.
#pragma omp parallel for schedule(static) if (nb > 2)
  for (std::int64_t jp = 0; jp < nb; ++jp) {
    const std::int64_t j0 = jp * kNR;
    const std::int64_t nr = std::min(n - j0, kNR);
    std::uint8_t* bp = bbuf + jp * bpanel;
    pack_b_panel_u8(k, nr, b + j0 * cs_b, rs_b, cs_b, bp);
    for (std::int64_t ip = 0; ip < mb; ++ip) {
      const std::int64_t i0 = ip * kMR;
      const std::int64_t mr = std::min(m - i0, kMR);
      float* ct = c + i0 * ldc + j0;
#ifdef DNNSPMV_GEMM_AVX2
      if (simd) {
        qkernel_avx2_dispatch(kq, abuf + ip * apanel, bp, ct, ldc, mr, nr,
                              scale + i0, bias ? bias + i0 : nullptr, relu);
        continue;
      }
#endif
      qkernel_scalar(kq, abuf + ip * apanel, bp, ct, ldc, mr, nr, scale + i0,
                     bias ? bias + i0 : nullptr, relu);
    }
  }
}

}  // namespace

QGemmWeights qgemm_pack_weights(std::int64_t m, std::int64_t k,
                                const std::int8_t* a) {
  QGemmWeights w;
  w.rows = m;
  w.depth = k;
  if (m <= 0 || k <= 0) return w;
  const std::int64_t kq = ceil_div(k, kQK);
  const std::int64_t mb = ceil_div(m, kMR);
  const std::int64_t apanel = kq * kQuadA;
  w.panels.assign(static_cast<std::size_t>(mb * apanel), 0);
  for (std::int64_t ip = 0; ip < mb; ++ip) {
    const std::int64_t i0 = ip * kMR;
    pack_a_panel_s8(std::min(m - i0, kMR), k, a + i0 * k, k, 1,
                    w.panels.data() + ip * apanel);
  }
  // GEMV twin: [group][quad][8 rows][4 bytes], zero-padded, so the n == 1
  // kernel reads one contiguous 32-byte vector per (group, quad).
  const std::int64_t gb = ceil_div(m, 8);
  w.gemv.assign(static_cast<std::size_t>(gb * kq * 32), 0);
  for (std::int64_t g = 0; g < gb; ++g)
    for (std::int64_t q = 0; q < kq; ++q)
      for (std::int64_t r = 0; r < 8; ++r) {
        const std::int64_t row = g * 8 + r;
        if (row >= m) break;
        for (std::int64_t t = 0; t < kQK; ++t) {
          const std::int64_t d = q * kQK + t;
          if (d < k) w.gemv[((g * kq + q) * 8 + r) * 4 + t] = a[row * k + d];
        }
      }
  return w;
}

void quantize_u7(const float* x, std::int64_t n, float inv_scale,
                 std::int32_t zp, std::uint8_t* q) {
  const float zpf = static_cast<float>(zp);
  std::int64_t i = 0;
#ifdef DNNSPMV_GEMM_AVX2
  // _mm256_round_ps to-nearest == std::nearbyint under the default
  // round-to-nearest-even mode, so this produces the scalar loop's bytes.
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256 zpv = _mm256_set1_ps(zpf);
  const __m256 lo = _mm256_setzero_ps();
  const __m256 hi = _mm256_set1_ps(127.0f);
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_round_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), inv),
                               _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    v = _mm256_min_ps(hi, _mm256_max_ps(lo, _mm256_add_ps(v, zpv)));
    const __m256i w = _mm256_cvtps_epi32(v);
    // 8×i32 → 8×u8: narrow to i16 (cross-lane fixup), then to u8.
    const __m256i w16 = _mm256_permute4x64_epi64(
        _mm256_packs_epi32(w, _mm256_setzero_si256()), 0b11011000);
    const __m256i w8 = _mm256_packus_epi16(w16, _mm256_setzero_si256());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i),
                     _mm256_castsi256_si128(w8));
  }
#endif
  for (; i < n; ++i) {
    const float v = std::nearbyint(x[i] * inv_scale) + zpf;
    q[i] = static_cast<std::uint8_t>(std::min(127.0f, std::max(0.0f, v)));
  }
}

void qgemm_u7(const QGemmWeights& a, std::int64_t n, const std::uint8_t* b,
              std::int64_t rs_b, std::int64_t cs_b, const float* scale,
              const float* bias, bool relu, float* c, std::int64_t ldc) {
  qgemm_driver(a, n, b, rs_b, cs_b, scale, bias, relu, c, ldc, true);
}

void qgemm_u7_ref(const QGemmWeights& a, std::int64_t n,
                  const std::uint8_t* b, std::int64_t rs_b,
                  std::int64_t cs_b, const float* scale, const float* bias,
                  bool relu, float* c, std::int64_t ldc) {
  qgemm_driver(a, n, b, rs_b, cs_b, scale, bias, relu, c, ldc, false);
}

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  gemm_driver(m, n, k, alpha, a, k, 1, b, n, 1, beta, c, nullptr, nullptr);
}

void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // A stored k×m: logical A[i,p] = a[p*m + i].
  gemm_driver(m, n, k, alpha, a, 1, m, b, n, 1, beta, c, nullptr, nullptr);
}

void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // B stored n×k: logical B[p,j] = b[j*k + p].
  gemm_driver(m, n, k, alpha, a, k, 1, b, 1, k, beta, c, nullptr, nullptr);
}

void sgemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, const float* b, float beta,
                    float* c, const float* row_bias) {
  gemm_driver(m, n, k, alpha, a, k, 1, b, n, 1, beta, c, row_bias, nullptr);
}

void sgemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                       float alpha, const float* a, const float* b,
                       float beta, float* c, const float* col_bias) {
  gemm_driver(m, n, k, alpha, a, k, 1, b, 1, k, beta, c, nullptr, col_bias);
}

}  // namespace dnnspmv
