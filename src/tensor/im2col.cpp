#include "tensor/im2col.hpp"

#include <algorithm>

namespace dnnspmv {
namespace {

// Lowers one sample into the column block starting at `col` inside a matrix
// whose rows are `ldc` floats long (ldc == opix for the single-sample case,
// batch*opix for the batched one). The write pattern per column is
// identical either way — only the row stride changes.
void im2col_one(const ConvGeom& g, const float* im, float* col,
                std::int64_t ldc) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* imc = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = col + row * ldc;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) {
            std::fill(out + y * ow, out + (y + 1) * ow, 0.0f);
            continue;
          }
          const float* imrow = imc + iy * g.width;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w + kw - g.pad_w;
            out[y * ow + x] =
                (ix >= 0 && ix < g.width) ? imrow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

// Scatter-accumulates one sample's column block back into its image; the
// image must be zeroed by the caller.
void col2im_one(const ConvGeom& g, const float* col, float* im,
                std::int64_t ldc) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* imc = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * ldc;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) continue;
          float* imrow = imc + iy * g.width;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w + kw - g.pad_w;
            if (ix >= 0 && ix < g.width) imrow[ix] += src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace

void im2col(const ConvGeom& g, const float* im, float* col) {
  im2col_one(g, im, col, g.out_h() * g.out_w());
}

void col2im(const ConvGeom& g, const float* col, float* im) {
  std::fill(im, im + g.channels * g.height * g.width, 0.0f);
  col2im_one(g, col, im, g.out_h() * g.out_w());
}

void im2col_batch(const ConvGeom& g, std::int64_t batch, const float* im,
                  float* col) {
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t imsz = g.channels * g.height * g.width;
  const std::int64_t ldc = batch * opix;
#pragma omp parallel for schedule(static)
  for (std::int64_t n = 0; n < batch; ++n)
    im2col_one(g, im + n * imsz, col + n * opix, ldc);
}

void col2im_batch(const ConvGeom& g, std::int64_t batch, const float* col,
                  float* im) {
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t imsz = g.channels * g.height * g.width;
  const std::int64_t ldc = batch * opix;
#pragma omp parallel for schedule(static)
  for (std::int64_t n = 0; n < batch; ++n) {
    float* dst = im + n * imsz;
    std::fill(dst, dst + imsz, 0.0f);
    col2im_one(g, col + n * opix, dst, ldc);
  }
}

}  // namespace dnnspmv
