#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(DNNSPMV_SIMD) && defined(__AVX2__)
#define DNNSPMV_IM2COL_SIMD 1
#include <immintrin.h>
#endif

namespace dnnspmv {
namespace {

// out[x] = src[2x] for n bytes — the stride-2 u8 interior gather. `end`
// bounds the readable image so the 8/16-byte vector loads never run past
// the activation buffer; the scalar tail finishes whatever the guard
// rejects. Byte-for-byte the scalar loop's output.
inline void gather_stride2_u8(const std::uint8_t* src,
                              const std::uint8_t* end, std::int64_t n,
                              std::uint8_t* out) {
  std::int64_t x = 0;
#ifdef DNNSPMV_IM2COL_SIMD
  const __m128i evens = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1,
                                      -1, -1, -1, -1, -1);
  for (; x + 8 <= n && src + 2 * x + 16 <= end; x += 8) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * x));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + x),
                     _mm_shuffle_epi8(v, evens));
  }
  for (; x + 4 <= n && src + 2 * x + 8 <= end; x += 4) {
    const __m128i v =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + 2 * x));
    const std::int32_t packed =
        _mm_cvtsi128_si32(_mm_shuffle_epi8(v, evens));
    std::memcpy(out + x, &packed, 4);
  }
#else
  (void)end;
#endif
  for (; x < n; ++x) out[x] = src[2 * x];
}

// Lowers one sample into the column block starting at `col` inside a matrix
// whose rows are `ldc` elements long (ldc == opix for the single-sample
// case, batch*opix for the batched one). The write pattern per column is
// identical either way — only the row stride changes. Templated over the
// element type so the uint8 quantized path (pad = activation zero-point)
// shares the exact loop structure with fp32 (pad = 0.0f).
template <typename T>
void im2col_one(const ConvGeom& g, const T* im, T* col, std::int64_t ldc,
                T pad) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const T* imend = im + g.channels * g.height * g.width;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const T* imc = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        T* out = col + row * ldc;
        // Hoist the horizontal bounds check out of the x loop: ix =
        // x·stride + off is in [0, width) iff x ∈ [x0, x1]. The interior
        // is then branch-free — a straight copy when stride_w == 1.
        const std::int64_t off = kw - g.pad_w;
        const std::int64_t x0 =
            off >= 0 ? 0
                     : std::min(ow, (-off + g.stride_w - 1) / g.stride_w);
        const std::int64_t x1 =
            off >= g.width
                ? x0 - 1
                : std::min(ow - 1, (g.width - 1 - off) / g.stride_w);
        if (g.stride_w == 1 && g.stride_h == 1 && ow == g.width &&
            x1 >= x0) {
          // Full-pitch case ("same" convolution): src and dst rows both
          // advance by `width` per y, so the whole valid y-span is one
          // linear copy — the few out-of-image pad columns are patched
          // afterwards. Turns oh tiny row copies into one memcpy.
          const std::int64_t y0 = std::max<std::int64_t>(0, g.pad_h - kh);
          const std::int64_t y1 =
              std::min(oh - 1, g.height - 1 + g.pad_h - kh);
          if (y1 < y0) {
            std::fill(out, out + oh * ow, pad);
            continue;
          }
          std::fill(out, out + y0 * ow, pad);
          std::memcpy(out + y0 * ow + x0,
                      imc + (y0 + kh - g.pad_h) * g.width + x0 + off,
                      static_cast<std::size_t>((y1 - y0) * g.width + x1 + 1 -
                                               x0) *
                          sizeof(T));
          std::fill(out + (y1 + 1) * ow, out + oh * ow, pad);
          if (x0 > 0 || x1 < ow - 1)
            for (std::int64_t y = y0; y <= y1; ++y) {
              T* orow = out + y * ow;
              for (std::int64_t x = 0; x < x0; ++x) orow[x] = pad;
              for (std::int64_t x = x1 + 1; x < ow; ++x) orow[x] = pad;
            }
          continue;
        }
#ifdef DNNSPMV_IM2COL_SIMD
        if constexpr (std::is_same_v<T, std::uint8_t>) {
          if (g.stride_w == 2 && g.width <= 16 && ow <= 8) {
            // Narrow stride-2 rows (the downsampling conv on a pooled
            // representation): gather a whole output row with one pshufb
            // of the 16-byte input row. Lane x reads byte 2x+off; lanes
            // outside the image become pad via the OR mask. The guarded
            // scalar fallback covers rows whose 16-byte load would run
            // past the activation buffer.
            alignas(16) std::int8_t midx[16];
            alignas(16) std::uint8_t mpad[16];
            for (std::int64_t x = 0; x < 16; ++x) {
              const std::int64_t ix = 2 * x + off;
              const bool in_row = x < ow && ix >= 0 && ix < g.width;
              midx[x] = in_row ? static_cast<std::int8_t>(ix) : -1;
              mpad[x] = (x < ow && !in_row) ? pad : 0;
            }
            const __m128i mi =
                _mm_load_si128(reinterpret_cast<const __m128i*>(midx));
            const __m128i mp =
                _mm_load_si128(reinterpret_cast<const __m128i*>(mpad));
            for (std::int64_t y = 0; y < oh; ++y) {
              const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
              std::uint8_t* orow = out + y * ow;
              if (iy < 0 || iy >= g.height) {
                std::fill(orow, orow + ow, pad);
                continue;
              }
              const std::uint8_t* imrow = imc + iy * g.width;
              if (imrow + 16 <= imend) {
                const __m128i r = _mm_or_si128(
                    _mm_shuffle_epi8(_mm_loadu_si128(
                                         reinterpret_cast<const __m128i*>(
                                             imrow)),
                                     mi),
                    mp);
                if (ow == 8) {
                  _mm_storel_epi64(reinterpret_cast<__m128i*>(orow), r);
                } else if (ow == 4) {
                  const std::int32_t packed = _mm_cvtsi128_si32(r);
                  std::memcpy(orow, &packed, 4);
                } else {
                  alignas(16) std::uint8_t tmp[16];
                  _mm_store_si128(reinterpret_cast<__m128i*>(tmp), r);
                  std::memcpy(orow, tmp, static_cast<std::size_t>(ow));
                }
              } else {
                for (std::int64_t x = 0; x < ow; ++x) {
                  const std::int64_t ix = 2 * x + off;
                  orow[x] = (ix >= 0 && ix < g.width) ? imrow[ix] : pad;
                }
              }
            }
            continue;
          }
        }
#endif
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
          T* orow = out + y * ow;
          if (iy < 0 || iy >= g.height) {
            std::fill(orow, orow + ow, pad);
            continue;
          }
          const T* imrow = imc + iy * g.width;
          std::fill(orow, orow + x0, pad);
          if (g.stride_w == 1) {
            std::copy(imrow + x0 + off, imrow + x1 + 1 + off, orow + x0);
          } else if constexpr (std::is_same_v<T, std::uint8_t>) {
            if (g.stride_w == 2) {
              gather_stride2_u8(imrow + 2 * x0 + off, imend, x1 - x0 + 1,
                                orow + x0);
            } else {
              for (std::int64_t x = x0; x <= x1; ++x)
                orow[x] = imrow[x * g.stride_w + off];
            }
          } else {
            for (std::int64_t x = x0; x <= x1; ++x)
              orow[x] = imrow[x * g.stride_w + off];
          }
          std::fill(orow + std::max(x0, x1 + 1), orow + ow, pad);
        }
      }
    }
  }
}

// Scatter-accumulates one sample's column block back into its image; the
// image must be zeroed by the caller.
void col2im_one(const ConvGeom& g, const float* col, float* im,
                std::int64_t ldc) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* imc = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * ldc;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) continue;
          float* imrow = imc + iy * g.width;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w + kw - g.pad_w;
            if (ix >= 0 && ix < g.width) imrow[ix] += src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace

void im2col(const ConvGeom& g, const float* im, float* col) {
  im2col_one(g, im, col, g.out_h() * g.out_w(), 0.0f);
}

void col2im(const ConvGeom& g, const float* col, float* im) {
  std::fill(im, im + g.channels * g.height * g.width, 0.0f);
  col2im_one(g, col, im, g.out_h() * g.out_w());
}

void im2col_batch(const ConvGeom& g, std::int64_t batch, const float* im,
                  float* col) {
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t imsz = g.channels * g.height * g.width;
  const std::int64_t ldc = batch * opix;
#pragma omp parallel for schedule(static) if (batch > 1)
  for (std::int64_t n = 0; n < batch; ++n)
    im2col_one(g, im + n * imsz, col + n * opix, ldc, 0.0f);
}

void im2col_batch_u8(const ConvGeom& g, std::int64_t batch,
                     const std::uint8_t* im, std::uint8_t* col,
                     std::uint8_t pad) {
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t imsz = g.channels * g.height * g.width;
  const std::int64_t ldc = batch * opix;
#pragma omp parallel for schedule(static) if (batch > 1)
  for (std::int64_t n = 0; n < batch; ++n)
    im2col_one(g, im + n * imsz, col + n * opix, ldc, pad);
}

void col2im_batch(const ConvGeom& g, std::int64_t batch, const float* col,
                  float* im) {
  const std::int64_t opix = g.out_h() * g.out_w();
  const std::int64_t imsz = g.channels * g.height * g.width;
  const std::int64_t ldc = batch * opix;
#pragma omp parallel for schedule(static)
  for (std::int64_t n = 0; n < batch; ++n) {
    float* dst = im + n * imsz;
    std::fill(dst, dst + imsz, 0.0f);
    col2im_one(g, col + n * opix, dst, ldc);
  }
}

}  // namespace dnnspmv
