#include "tensor/im2col.hpp"

#include <algorithm>

namespace dnnspmv {

void im2col(const ConvGeom& g, const float* im, float* col) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t ocols = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* imc = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = col + row * ocols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) {
            std::fill(out + y * ow, out + (y + 1) * ow, 0.0f);
            continue;
          }
          const float* imrow = imc + iy * g.width;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w + kw - g.pad_w;
            out[y * ow + x] =
                (ix >= 0 && ix < g.width) ? imrow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeom& g, const float* col, float* im) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t ocols = oh * ow;
  std::fill(im, im + g.channels * g.height * g.width, 0.0f);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* imc = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * ocols;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) continue;
          float* imrow = imc + iy * g.width;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w + kw - g.pad_w;
            if (ix >= 0 && ix < g.width) imrow[ix] += src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace dnnspmv
