// im2col / col2im lowering for convolution.
//
// Maps a C×H×W image (one sample of an NCHW batch) to a matrix whose rows
// are (C*kh*kw) filter-patch elements and whose columns are output pixels,
// so conv forward becomes one GEMM per sample. col2im scatters gradients
// back, accumulating where patches overlap.
#pragma once

#include <cstdint>

namespace dnnspmv {

struct ConvGeom {
  std::int64_t channels, height, width;   // input
  std::int64_t kernel_h, kernel_w;
  std::int64_t stride_h, stride_w;
  std::int64_t pad_h, pad_w;

  std::int64_t out_h() const {
    return (height + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  std::int64_t out_w() const {
    return (width + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  std::int64_t patch_size() const { return channels * kernel_h * kernel_w; }
};

/// im: C*H*W input sample; col: patch_size × (out_h*out_w) output matrix.
void im2col(const ConvGeom& g, const float* im, float* col);

/// Inverse scatter-accumulate: col gradients back into im (im zeroed first).
void col2im(const ConvGeom& g, const float* col, float* im);

/// Batched lowering: all `batch` samples of an NCHW batch land in one
/// patch_size × (batch*out_h*out_w) matrix, sample n occupying columns
/// [n*opix, (n+1)*opix). Conv forward then runs ONE GEMM whose width — and
/// thus its parallelism — scales with the batch. Samples are lowered in
/// parallel; each column's values match the per-sample im2col exactly.
void im2col_batch(const ConvGeom& g, std::int64_t batch, const float* im,
                  float* col);

/// im2col_batch over already-quantized uint8 activations (the int8 conv
/// path). `pad` is the byte written at spatial-padding positions: the
/// quantized representation of fp32 0.0, i.e. the activation zero-point —
/// so dequantized padding contributes exactly zero, matching the fp32 path.
void im2col_batch_u8(const ConvGeom& g, std::int64_t batch,
                     const std::uint8_t* im, std::uint8_t* col,
                     std::uint8_t pad);

/// Batched inverse of im2col_batch: scatters column gradients of the
/// [patch_size, batch*opix] matrix back into the NCHW image batch (which is
/// zeroed first). Samples scatter in parallel into disjoint images.
void col2im_batch(const ConvGeom& g, std::int64_t batch, const float* col,
                  float* im);

}  // namespace dnnspmv
