// Single-precision GEMM kernels used by conv (im2col) and dense layers.
//
// C = alpha * op(A) * op(B) + beta * C with row-major storage. All variants
// share one packed, register-blocked driver (BLIS-style): operands are
// packed into cache-resident kMR/kNR panels (pack.hpp) and multiplied by an
// 8×8 micro-kernel — portable C++ by default, AVX2/FMA when the library is
// built with DNNSPMV_SIMD (see DESIGN.md). Results are deterministic and
// independent of thread count: every output tile is accumulated by exactly
// one thread in a fixed depth order.
//
// The *_bias variants fold a bias add into the GEMM epilogue (applied once,
// after the final depth block), which is how Conv2D and Dense avoid a
// second pass over their outputs.
#pragma once

#include <cstdint>
#include <vector>

namespace dnnspmv {

/// C[m,n] = alpha*A[m,k]*B[k,n] + beta*C. Row-major, no transposes.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C[m,n] = alpha*A^T[k,m]*B[k,n] + beta*C (A stored k×m row-major).
void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m,n] = alpha*A[m,k]*B^T[n,k] + beta*C (B stored n×k row-major).
void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// sgemm, then C[i,:] += row_bias[i] folded into the epilogue (may be
/// null). The conv forward path: rows are output channels.
void sgemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, const float* b, float beta,
                    float* c, const float* row_bias);

/// sgemm_bt, then C[:,j] += col_bias[j] folded into the epilogue (may be
/// null). The dense forward path: columns are output features.
void sgemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                       float alpha, const float* a, const float* b,
                       float beta, float* c, const float* col_bias);

// ---------------------------------------------------------------------------
// Int8 GEMM (quantized inference path, DESIGN.md §13).
//
// C[m,n] = dequant(Wq[m,k] · Xq[k,n]) where Wq is signed int8 (per-row
// symmetric scales) and Xq is unsigned 7-bit [0,127] (per-tensor affine).
// The integer product accumulates exactly in int32 — capping activations at
// 127 keeps every `maddubs` pair sum (≤ 2·127·127) inside int16 — so SIMD
// and scalar paths are bit-identical by construction; the epilogue applies
// C[i,j] = fma((float)acc, scale[i], bias[i]) (one rounding in both paths)
// with an optional fused ReLU. Zero-point handling is the caller's job:
// fold -scale[i]·zp·Σ_p Wq[i,p] into bias[i] (quant.cpp does this).

/// Weights packed once at convert time into kernel-ready kMR×4-quad panels
/// (pack_a_panel_s8 layout). Cold-miss inference re-packs nothing on the
/// weight side — only the per-request activations are packed.
struct QGemmWeights {
  std::int64_t rows = 0;   // m: output channels / features
  std::int64_t depth = 0;  // k: reduction length
  std::vector<std::int8_t> panels;  // ceil(m/kMR) panels × ceil(k/4)·kMR·4
  // GEMV twin packing for the n == 1 cold-miss case: row groups of 8 ×
  // depth quads ([group][quad][8 rows][4 bytes], zero-padded) so a
  // single-column product reads whole 32-byte vectors instead of wasting
  // 15/16 of the tiled kernel's column lanes.
  std::vector<std::int8_t> gemv;
};

/// Packs row-major int8 weights W[m,k] into micro-kernel panels.
QGemmWeights qgemm_pack_weights(std::int64_t m, std::int64_t k,
                                const std::int8_t* a);

/// Quantizes fp32 activations to u7: q = clamp(round(x·inv_scale) + zp,
/// 0, 127), round-to-nearest-even. Vectorized with the kernel (same
/// arithmetic, element-identical results).
void quantize_u7(const float* x, std::int64_t n, float inv_scale,
                 std::int32_t zp, std::uint8_t* q);

/// C[i,j] = relu?( (float)(Wq·Xq)[i,j] * scale[i] + bias[i] ) for the n
/// columns of Xq with element (p, j) at b[p*rs_b + j*cs_b] (values must be
/// in [0,127]). C is m×n with row stride ldc; bias may be null (treated as
/// +0.0f). Uses the AVX2 maddubs/madd micro-kernel when the library is
/// built with DNNSPMV_SIMD, the scalar reference otherwise.
void qgemm_u7(const QGemmWeights& a, std::int64_t n, const std::uint8_t* b,
              std::int64_t rs_b, std::int64_t cs_b, const float* scale,
              const float* bias, bool relu, float* c, std::int64_t ldc);

/// Scalar reference path: identical packing, integer accumulation order,
/// and epilogue arithmetic — bit-identical to qgemm_u7 on every input
/// (asserted by test_quant.cpp), always compiled regardless of SIMD flags.
void qgemm_u7_ref(const QGemmWeights& a, std::int64_t n,
                  const std::uint8_t* b, std::int64_t rs_b,
                  std::int64_t cs_b, const float* scale, const float* bias,
                  bool relu, float* c, std::int64_t ldc);

}  // namespace dnnspmv
