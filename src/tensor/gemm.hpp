// Single-precision GEMM kernels used by conv (im2col) and dense layers.
//
// C = alpha * op(A) * op(B) + beta * C with row-major storage. All variants
// share one packed, register-blocked driver (BLIS-style): operands are
// packed into cache-resident kMR/kNR panels (pack.hpp) and multiplied by an
// 8×8 micro-kernel — portable C++ by default, AVX2/FMA when the library is
// built with DNNSPMV_SIMD (see DESIGN.md). Results are deterministic and
// independent of thread count: every output tile is accumulated by exactly
// one thread in a fixed depth order.
//
// The *_bias variants fold a bias add into the GEMM epilogue (applied once,
// after the final depth block), which is how Conv2D and Dense avoid a
// second pass over their outputs.
#pragma once

#include <cstdint>

namespace dnnspmv {

/// C[m,n] = alpha*A[m,k]*B[k,n] + beta*C. Row-major, no transposes.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C[m,n] = alpha*A^T[k,m]*B[k,n] + beta*C (A stored k×m row-major).
void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m,n] = alpha*A[m,k]*B^T[n,k] + beta*C (B stored n×k row-major).
void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// sgemm, then C[i,:] += row_bias[i] folded into the epilogue (may be
/// null). The conv forward path: rows are output channels.
void sgemm_row_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, const float* b, float beta,
                    float* c, const float* row_bias);

/// sgemm_bt, then C[:,j] += col_bias[j] folded into the epilogue (may be
/// null). The dense forward path: columns are output features.
void sgemm_bt_col_bias(std::int64_t m, std::int64_t n, std::int64_t k,
                       float alpha, const float* a, const float* b,
                       float beta, float* c, const float* col_bias);

}  // namespace dnnspmv
