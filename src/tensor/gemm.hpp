// Single-precision GEMM kernels used by conv (im2col) and dense layers.
//
// C = alpha * op(A) * op(B) + beta * C with row-major storage. The kernel is
// register-blocked and OpenMP-parallel over row panels — not MKL-fast, but
// within the envelope needed to train the paper's CNNs on a CPU.
#pragma once

#include <cstdint>

namespace dnnspmv {

/// C[m,n] = alpha*A[m,k]*B[k,n] + beta*C. Row-major, no transposes.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C[m,n] = alpha*A^T[k,m]*B[k,n] + beta*C (A stored k×m row-major).
void sgemm_at(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C[m,n] = alpha*A[m,k]*B^T[n,k] + beta*C (B stored n×k row-major).
void sgemm_bt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

}  // namespace dnnspmv
